//! Work queue entries (WQEs) and their in-memory wire format.
//!
//! Send-queue WQEs are serialized into **64-byte records in host
//! memory** — this is not an implementation convenience but the core of
//! HyperLoop's *remote work request manipulation*: a replica registers
//! its send-queue rings as RDMA-writable memory, and the client's
//! metadata SEND is scattered directly into the descriptor fields of
//! pre-posted WQEs. The NIC re-reads the record at execution time, so
//! whatever bytes arrived over the wire are the descriptors executed.
//!
//! The modified driver (paper §4.1) posts WQEs *without* the hardware
//! ownership bit; a triggered WAIT grants ownership by flipping the flag
//! byte in memory for the following WQEs.

/// Size of one serialized WQE.
pub const WQE_SIZE: u64 = 64;

/// WQE opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// No operation; still produces a completion (used by gCAS's execute
    /// map to skip replicas while keeping WAIT counting intact).
    Nop = 0,
    /// Two-sided send; consumes a RECV at the responder.
    Send = 1,
    /// One-sided RDMA write.
    Write = 2,
    /// One-sided RDMA read (fences the send queue until the response).
    Read = 3,
    /// Remote compare-and-swap on a u64.
    Cas = 4,
    /// RDMA write with immediate; consumes a RECV at the responder.
    WriteImm = 5,
    /// Wait for completions on another CQ, then activate following WQEs.
    Wait = 6,
    /// NIC-local DMA copy (loopback QP; used by gMEMCPY).
    LocalCopy = 7,
    /// NIC-local compare-and-swap (loopback QP; used by gCAS).
    LocalCas = 8,
    /// Durability flush: 0-byte READ semantics — the responder drains
    /// its NIC cache for the addressed range into NVM (used by gFLUSH).
    Flush = 9,
    /// NIC-local durability flush of the own arena range `[raddr, +len)`
    /// (loopback QP; interleaves with gMEMCPY whose copy is local).
    LocalFlush = 10,
}

impl Opcode {
    /// Decode from the wire byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0 => Opcode::Nop,
            1 => Opcode::Send,
            2 => Opcode::Write,
            3 => Opcode::Read,
            4 => Opcode::Cas,
            5 => Opcode::WriteImm,
            6 => Opcode::Wait,
            7 => Opcode::LocalCopy,
            8 => Opcode::LocalCas,
            9 => Opcode::Flush,
            10 => Opcode::LocalFlush,
            _ => return None,
        })
    }
}

/// WQE flag bits.
pub mod flags {
    /// The NIC owns this WQE and may execute it. Cleared by the modified
    /// driver's deferred posting; set by WAIT activation (or normal
    /// posting).
    pub const HW_OWNED: u8 = 1 << 0;
    /// Generate a completion when the operation finishes.
    pub const SIGNALED: u8 = 1 << 1;
    /// WAIT only: fire when the watched CQ's total production reaches
    /// the absolute threshold in the count field, without consuming.
    /// Lets many WAITs (on different QPs) trigger off the same CQ —
    /// the fan-out extension's parallel dispatch and ack aggregation.
    pub const WAIT_THRESHOLD: u8 = 1 << 2;
}

/// A decoded work queue entry. Field meaning varies by opcode:
///
/// | opcode      | `laddr`              | `raddr`                 | `len`        |
/// |-------------|----------------------|-------------------------|--------------|
/// | `Send`      | local source         | —                       | bytes        |
/// | `Write`/`WriteImm` | local source  | remote destination      | bytes        |
/// | `Read`      | local destination    | remote source           | bytes        |
/// | `Cas`       | local result (8 B)   | remote target (8 B)     | 8            |
/// | `Flush`     | —                    | remote range start      | range length |
/// | `Wait`      | —                    | low 32: CQ id, high 32: count | —      |
/// | `LocalCopy` | local source         | local destination       | bytes        |
/// | `LocalCas`  | local result (8 B)   | local target (8 B)      | 8            |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wqe {
    /// Operation.
    pub opcode: Opcode,
    /// Flag bits (`flags::*`).
    pub flags: u8,
    /// Transfer length.
    pub len: u32,
    /// Local address (see table).
    pub laddr: u64,
    /// Remote address or WAIT target (see table).
    pub raddr: u64,
    /// Local memory key.
    pub lkey: u32,
    /// Remote memory key.
    pub rkey: u32,
    /// CAS compare value.
    pub cmp: u64,
    /// CAS swap value.
    pub swp: u64,
    /// Immediate data (`WriteImm`).
    pub imm: u32,
    /// WAIT: how many following WQEs to grant to the NIC on trigger.
    pub activate_n: u16,
    /// Telemetry op id (0 = untracked). Propagated into packets and
    /// CQEs so every hop of a group operation can be attributed; on
    /// pre-posted replica WQEs the field is scatter-stamped by the
    /// client's metadata SEND just like the other descriptor fields.
    pub op: u32,
    /// Caller cookie, echoed in completions.
    pub wr_id: u64,
}

impl Default for Wqe {
    fn default() -> Self {
        Wqe {
            opcode: Opcode::Nop,
            flags: 0,
            len: 0,
            laddr: 0,
            raddr: 0,
            lkey: 0,
            rkey: 0,
            cmp: 0,
            swp: 0,
            imm: 0,
            activate_n: 0,
            op: 0,
            wr_id: 0,
        }
    }
}

impl Wqe {
    /// Serialize to the 64-byte in-memory record.
    pub fn encode(&self) -> [u8; WQE_SIZE as usize] {
        let mut b = [0u8; WQE_SIZE as usize];
        b[0] = self.opcode as u8;
        b[1] = self.flags;
        b[2..4].copy_from_slice(&self.activate_n.to_le_bytes());
        b[4..8].copy_from_slice(&self.len.to_le_bytes());
        b[8..16].copy_from_slice(&self.laddr.to_le_bytes());
        b[16..24].copy_from_slice(&self.raddr.to_le_bytes());
        b[24..28].copy_from_slice(&self.lkey.to_le_bytes());
        b[28..32].copy_from_slice(&self.rkey.to_le_bytes());
        b[32..40].copy_from_slice(&self.cmp.to_le_bytes());
        b[40..48].copy_from_slice(&self.swp.to_le_bytes());
        b[48..52].copy_from_slice(&self.imm.to_le_bytes());
        b[52..56].copy_from_slice(&self.op.to_le_bytes());
        b[56..64].copy_from_slice(&self.wr_id.to_le_bytes());
        b
    }

    /// Decode from a 64-byte in-memory record. `None` if the opcode byte
    /// is invalid (e.g. scribbled by a misdirected scatter).
    pub fn decode(b: &[u8]) -> Option<Wqe> {
        assert_eq!(b.len(), WQE_SIZE as usize, "WQE records are 64 bytes");
        Some(Wqe {
            opcode: Opcode::from_u8(b[0])?,
            flags: b[1],
            activate_n: u16::from_le_bytes(b[2..4].try_into().unwrap()),
            len: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            laddr: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            raddr: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            lkey: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            rkey: u32::from_le_bytes(b[28..32].try_into().unwrap()),
            cmp: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            swp: u64::from_le_bytes(b[40..48].try_into().unwrap()),
            imm: u32::from_le_bytes(b[48..52].try_into().unwrap()),
            op: u32::from_le_bytes(b[52..56].try_into().unwrap()),
            wr_id: u64::from_le_bytes(b[56..64].try_into().unwrap()),
        })
    }

    /// Is the hardware ownership bit set?
    pub fn hw_owned(&self) -> bool {
        self.flags & flags::HW_OWNED != 0
    }

    /// Is the completion-requested bit set?
    pub fn signaled(&self) -> bool {
        self.flags & flags::SIGNALED != 0
    }

    /// For `Wait`: the watched CQ id.
    pub fn wait_cq(&self) -> u32 {
        (self.raddr & 0xffff_ffff) as u32
    }

    /// For `Wait`: how many completions to wait for.
    pub fn wait_count(&self) -> u32 {
        (self.raddr >> 32) as u32
    }

    /// Pack WAIT parameters into `raddr`.
    pub fn wait_params(cq: u32, count: u32) -> u64 {
        (count as u64) << 32 | cq as u64
    }
}

/// Byte offsets of descriptor fields within a serialized WQE. These are
/// what the client's metadata scatter targets when it rewrites pre-posted
/// WQEs on replicas (remote work request manipulation).
pub mod field_offset {
    /// Opcode byte (rewritten by gCAS's execute map: CAS → NOP).
    pub const OPCODE: u64 = 0;
    /// Flags byte (ownership grants write here).
    pub const FLAGS: u64 = 1;
    /// Transfer length.
    pub const LEN: u64 = 4;
    /// Local address.
    pub const LADDR: u64 = 8;
    /// Remote address.
    pub const RADDR: u64 = 16;
    /// CAS compare value.
    pub const CMP: u64 = 32;
    /// CAS swap value.
    pub const SWP: u64 = 40;
    /// Immediate data.
    pub const IMM: u64 = 48;
    /// Telemetry op id (scatter-stamped alongside the data fields so
    /// the op identity travels through pre-posted WQEs without CPU).
    pub const OP: u64 = 52;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let w = Wqe {
            opcode: Opcode::Write,
            flags: flags::HW_OWNED | flags::SIGNALED,
            len: 4096,
            laddr: 0x1000,
            raddr: 0x2000,
            lkey: 7,
            rkey: 9,
            cmp: 1,
            swp: 2,
            imm: 0xabcd,
            activate_n: 3,
            op: 0x1234_5678,
            wr_id: 0xdead_beef,
        };
        let enc = w.encode();
        assert_eq!(Wqe::decode(&enc), Some(w));
    }

    #[test]
    fn invalid_opcode_decodes_to_none() {
        let mut b = [0u8; 64];
        b[0] = 200;
        assert_eq!(Wqe::decode(&b), None);
    }

    #[test]
    fn wait_param_packing() {
        let packed = Wqe::wait_params(17, 3);
        let w = Wqe {
            opcode: Opcode::Wait,
            raddr: packed,
            ..Default::default()
        };
        assert_eq!(w.wait_cq(), 17);
        assert_eq!(w.wait_count(), 3);
    }

    #[test]
    fn field_offsets_match_encoding() {
        let w = Wqe {
            opcode: Opcode::Cas,
            flags: flags::SIGNALED,
            len: 8,
            laddr: 0x1111_2222_3333_4444,
            raddr: 0x5555_6666_7777_8888,
            cmp: 0xaaaa,
            swp: 0xbbbb,
            imm: 0xcccc_dddd,
            op: 0x0102_0304,
            ..Default::default()
        };
        let b = w.encode();
        assert_eq!(b[field_offset::OPCODE as usize], Opcode::Cas as u8);
        assert_eq!(b[field_offset::FLAGS as usize], flags::SIGNALED);
        let off = field_offset::LADDR as usize;
        assert_eq!(
            u64::from_le_bytes(b[off..off + 8].try_into().unwrap()),
            w.laddr
        );
        let off = field_offset::RADDR as usize;
        assert_eq!(
            u64::from_le_bytes(b[off..off + 8].try_into().unwrap()),
            w.raddr
        );
        let off = field_offset::CMP as usize;
        assert_eq!(
            u64::from_le_bytes(b[off..off + 8].try_into().unwrap()),
            w.cmp
        );
        let off = field_offset::IMM as usize;
        assert_eq!(
            u32::from_le_bytes(b[off..off + 4].try_into().unwrap()),
            w.imm
        );
        let off = field_offset::OP as usize;
        assert_eq!(
            u32::from_le_bytes(b[off..off + 4].try_into().unwrap()),
            w.op
        );
    }

    /// Rewriting descriptor fields in the serialized form then decoding
    /// must be equivalent to mutating the struct — this is the property
    /// remote WQE manipulation relies on.
    #[test]
    fn in_place_field_rewrite() {
        let w = Wqe {
            opcode: Opcode::Write,
            flags: 0,
            len: 100,
            laddr: 0x100,
            raddr: 0x200,
            ..Default::default()
        };
        let mut b = w.encode();
        // Scatter: new laddr/raddr/len + ownership grant.
        b[field_offset::LEN as usize..field_offset::LEN as usize + 4]
            .copy_from_slice(&777u32.to_le_bytes());
        b[field_offset::LADDR as usize..field_offset::LADDR as usize + 8]
            .copy_from_slice(&0x9999u64.to_le_bytes());
        b[field_offset::FLAGS as usize] = flags::HW_OWNED;
        let got = Wqe::decode(&b).unwrap();
        assert_eq!(got.len, 777);
        assert_eq!(got.laddr, 0x9999);
        assert!(got.hw_owned());
        assert_eq!(got.raddr, 0x200); // untouched field preserved
    }

    proptest! {
        #[test]
        fn roundtrip_any(
            op in 0u8..=10,
            flags in any::<u8>(),
            len in any::<u32>(),
            laddr in any::<u64>(),
            raddr in any::<u64>(),
            lkey in any::<u32>(),
            rkey in any::<u32>(),
            cmp in any::<u64>(),
            swp in any::<u64>(),
            imm in any::<u32>(),
            activate_n in any::<u16>(),
            opid in any::<u32>(),
            wr_id in any::<u64>(),
        ) {
            let w = Wqe {
                opcode: Opcode::from_u8(op).unwrap(),
                flags, len, laddr, raddr, lkey, rkey, cmp, swp, imm,
                activate_n, op: opid, wr_id,
            };
            prop_assert_eq!(Wqe::decode(&w.encode()), Some(w));
        }
    }
}
