//! doclite edge cases: lock contention between pipelined transactions,
//! lock-free mode, and document/slot boundaries.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimTime};
use hl_store::doc::{DocLayout, DocStore, Document};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn setup() -> (World, Engine<World>, Rc<HyperLoopClient>) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(71).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 2 << 20,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));
    (w, eng, client)
}

fn doc(id: u64, marker: &str) -> Document {
    let mut d = Document::new(id);
    d.set("m", marker.as_bytes());
    d
}

/// Two upserts issued back-to-back: the second's wrLock finds the lock
/// held, backs off, retries, and both commit with the later value
/// winning the shared slot.
#[test]
fn pipelined_upserts_serialize_via_group_lock() {
    let (mut w, mut eng, client) = setup();
    let store = DocStore::open(client.clone(), DocLayout::default(), 1, true);
    let done = Rc::new(RefCell::new(0u32));
    for marker in ["first", "second"] {
        let d = done.clone();
        store
            .upsert(
                &mut w,
                &mut eng,
                &doc(5, marker),
                Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
            )
            .unwrap();
    }
    let probe = done.clone();
    eng.run_while(&mut w, move |_| *probe.borrow() < 2);
    assert_eq!(store.committed(), 2);
    // Journal appends are FIFO on the gWRITE ring, so "second" executed
    // last and owns the slot.
    let got = store.read(&mut w, 5).unwrap();
    assert_eq!(got.get("m"), Some(b"second".as_slice()));
    // The lock is free on every member.
    for m in 0..3 {
        use hyperloop::api::GroupClient;
        let host = client.member_host(m);
        let v = w.hosts[host.0]
            .mem
            .read_u64(client.member_addr(m, DocLayout::default().lock_off))
            .unwrap();
        assert_eq!(v, 0, "member {m} lock free");
    }
}

/// Lock-free mode (weaker isolation, as §7's non-ACID variants): same
/// data path minus the gCAS pair.
#[test]
fn lock_free_mode_commits_without_touching_lock_word() {
    let (mut w, mut eng, client) = setup();
    let store = DocStore::open(client.clone(), DocLayout::default(), 1, false);
    let done = Rc::new(RefCell::new(0u32));
    for id in 0..5u64 {
        let d = done.clone();
        store
            .upsert(
                &mut w,
                &mut eng,
                &doc(id, "nolock"),
                Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
            )
            .unwrap();
        let probe = done.clone();
        let want = id as u32 + 1;
        eng.run_while(&mut w, move |_| *probe.borrow() < want);
    }
    assert_eq!(store.committed(), 5);
    for id in 0..5 {
        assert!(store.read(&mut w, id).is_some());
        assert!(store.read_at(&mut w, 2, id).is_some());
    }
    // No gCAS ever ran: the lock word was never written.
    use hyperloop::api::GroupClient;
    let v = w.hosts[1]
        .mem
        .read_u64(client.member_addr(1, DocLayout::default().lock_off))
        .unwrap();
    assert_eq!(v, 0);
}

/// Documents hash onto slots; two ids that collide (id % n_slots) are
/// last-writer-wins in the slot — the store's documented semantics.
#[test]
fn slot_collisions_are_last_writer_wins() {
    let (mut w, mut eng, client) = setup();
    let layout = DocLayout {
        n_slots: 16,
        ..Default::default()
    };
    let store = DocStore::open(client, layout, 1, true);
    let done = Rc::new(RefCell::new(0u32));
    for id in [3u64, 19] {
        // 19 % 16 == 3: same slot.
        let d = done.clone();
        store
            .upsert(
                &mut w,
                &mut eng,
                &doc(id, "v"),
                Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
            )
            .unwrap();
        let probe = done.clone();
        eng.run_while(&mut w, move |_| *probe.borrow() < 1);
    }
    let probe = done.clone();
    eng.run_while(&mut w, move |_| *probe.borrow() < 2);
    // The slot now holds id 19; a read of 3 sees the collision.
    let got = store.read(&mut w, 3).unwrap();
    assert_eq!(got.id, 19);
}

/// A maximal document that exactly fits its slot round-trips; the slot
/// header length is validated everywhere.
#[test]
fn max_size_document_fits_slot_exactly() {
    let (mut w, mut eng, client) = setup();
    let layout = DocLayout::default();
    let slot = layout.slot_size as usize;
    let store = DocStore::open(client, layout, 1, true);
    // Build a document whose encoding is exactly slot - 4.
    let mut d = Document::new(1);
    let overhead = d.encoded_len() + 2 + 1 + 4; // one field named "x"
    d.set("x", &vec![9u8; slot - 4 - overhead]);
    assert_eq!(d.encoded_len() + 4, slot);
    let done = Rc::new(RefCell::new(0u32));
    let dn = done.clone();
    store
        .upsert(
            &mut w,
            &mut eng,
            &d,
            Box::new(move |_w, _e, _r| *dn.borrow_mut() += 1),
        )
        .unwrap();
    let probe = done.clone();
    eng.run_while(&mut w, move |_| *probe.borrow() < 1);
    let got = store.read(&mut w, 1).unwrap();
    assert_eq!(got.get("x").unwrap().len(), slot - 4 - overhead);
    let _ = eng.now() < SimTime::MAX;
}
