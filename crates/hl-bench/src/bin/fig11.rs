//! Figure 11: replicated RocksDB (kvlite) YCSB-A update latency —
//! Naïve-RDMA event-based vs polling vs HyperLoop, co-located with
//! I/O-intensive background tenants (10:1 threads to cores).
//!
//! Usage: `fig11 [--ops N]`

use hl_bench::apps::{run_fig11, Fig11Cfg, KvBackend};
use hl_bench::table::{us, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);

    println!("== Figure 11: kvlite (RocksDB-like) update latency (us), YCSB-A ==");
    let mut t = Table::new(&["impl", "avg", "p95", "p99"]);
    let mut results = Vec::new();
    for backend in [
        KvBackend::NaiveEvent,
        KvBackend::NaivePolling,
        KvBackend::HyperLoop,
    ] {
        let s = run_fig11(&Fig11Cfg {
            backend,
            ops,
            ..Default::default()
        });
        t.row(&[
            backend.name().to_string(),
            format!("{:.1}", s.mean_us()),
            us(s.p95_ns),
            us(s.p99_ns),
        ]);
        results.push((backend, s));
    }
    t.print();
    let hl = &results[2].1;
    println!(
        "p99: HyperLoop {:.0}x lower than Naive-Event, {:.0}x lower than Naive-Polling  (paper: 5.7x / 24.2x)",
        results[0].1.p99_ns as f64 / hl.p99_ns as f64,
        results[1].1.p99_ns as f64 / hl.p99_ns as f64,
    );
    println!(
        "avg: Naive-Event {} Naive-Polling  (paper: Naive-Event < Naive-Polling under co-location)",
        if results[0].1.mean_ns < results[1].1.mean_ns {
            "<"
        } else {
            ">="
        }
    );
}
