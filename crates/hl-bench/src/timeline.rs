//! Shard timeline: per-shard p50/p99-over-time with fault marks.
//!
//! Runs a small sharded campaign (disjoint HyperLoop groups behind a
//! [`ShardRouter`]) with the windowed time-series store enabled, drops
//! a time-bounded straggler-NIC fault on shard 0's head replica
//! mid-run, and renders the `op_latency_ns` timeline: one table per
//! label set (`shard=0`, `shard=1`, …, plus the supervised aggregate),
//! one row per window, with the `fault:` / `heal:` marks overlaid on
//! the windows they land in. The victim shard's p99 bars swell across
//! the fault window; the bystander's stay flat — the whole scale-out
//! isolation story in one deterministic text artifact.

use hl_cluster::chaos::{FaultEvent, FaultKind, FaultSchedule};
use hl_cluster::shard::ShardPlan;
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{SimDuration, SimTime};
use hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupOp, HyperLoopClient, RetryClient,
    ShardRouter,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of one shard-timeline run.
#[derive(Debug, Clone)]
pub struct TimelineCfg {
    /// Independent HyperLoop groups (first one takes the fault).
    pub n_shards: usize,
    /// Open-loop operations per shard (one every 100µs).
    pub ops_per_shard: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Time-series window width.
    pub window: SimDuration,
}

impl Default for TimelineCfg {
    fn default() -> Self {
        TimelineCfg {
            n_shards: 2,
            ops_per_shard: 400,
            seed: 7007,
            window: SimDuration::from_millis(1),
        }
    }
}

/// Deterministic artifacts of one shard-timeline run.
#[derive(Debug, Clone)]
pub struct TimelineArtifact {
    /// Rendered `op_latency_ns` timeline (per label set, marks overlaid).
    pub timeline: String,
    /// Time-series JSON snapshot.
    pub snapshot_json: String,
    /// CSV flattening of the snapshot.
    pub snapshot_csv: String,
    /// One-line deterministic report.
    pub report: String,
}

/// Run the shard-timeline scenario.
pub fn run_shard_timeline(cfg: &TimelineCfg) -> TimelineArtifact {
    const WRITE: usize = 256;
    const SLOTS: u64 = 128;
    let group_size = 3; // client + 2 replicas per shard
    let n_hosts = cfg.n_shards * group_size;
    let rep_bytes = ((SLOTS as usize * WRITE) as u64 + (64 << 10)).next_power_of_two();

    let (mut w, mut eng) = ClusterBuilder::new(n_hosts)
        .arena_size((rep_bytes as usize + (2 << 20)).next_power_of_two())
        .seed(cfg.seed)
        .build();
    w.enable_timeseries(cfg.window);

    let hosts: Vec<HostId> = (0..n_hosts).map(HostId).collect();
    let plan = ShardPlan::place(cfg.n_shards, group_size - 1, &hosts);
    assert!(plan.is_disjoint(), "sized pool must place disjointly");
    let victim = plan.groups[0].replicas[0];

    let mut shards = Vec::with_capacity(cfg.n_shards);
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes,
            ring_slots: 128,
            replenish_period: SimDuration::from_micros(50),
            transport_timeout: None,
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group, &mut w);
        shards.push(RetryClient::with_policy(client, DeadlinePolicy::default()));
    }
    let router = Rc::new(ShardRouter::new(shards));

    // The fault: shard 0's head replica NIC straggles from 10ms to 25ms.
    FaultSchedule {
        seed: cfg.seed,
        events: vec![FaultEvent {
            at: SimTime::from_nanos(10_000_000),
            duration: Some(SimDuration::from_millis(15)),
            kind: FaultKind::StragglerNic {
                host: victim,
                delay: SimDuration::from_micros(60),
            },
        }],
    }
    .apply(&mut eng);

    // Open-loop: every shard issues one 256B write per 100µs.
    let ok = Rc::new(RefCell::new(0usize));
    let failed = Rc::new(RefCell::new(0usize));
    for sid in 0..cfg.n_shards {
        for k in 0..cfg.ops_per_shard {
            let router = router.clone();
            let ok = ok.clone();
            let failed = failed.clone();
            let at = SimTime::from_nanos(1_000_000 + k as u64 * 100_000);
            eng.schedule_at(at, move |w: &mut World, eng| {
                let slot = k as u64 % SLOTS;
                let data = hl_sim::Bytes::from(vec![(k & 0xff) as u8; WRITE]);
                router.issue_on(
                    w,
                    eng,
                    sid,
                    GroupOp::Write {
                        offset: slot * WRITE as u64,
                        data,
                        flush: false,
                    },
                    Box::new(move |_w, _e, r| match r {
                        Ok(_) => *ok.borrow_mut() += 1,
                        Err(_) => *failed.borrow_mut() += 1,
                    }),
                );
            });
        }
    }

    let horizon = 1_000_000 + cfg.ops_per_shard as u64 * 100_000 + 100_000_000;
    eng.run_until(&mut w, SimTime::from_nanos(horizon));
    let now = eng.now();
    w.collect_metrics(now);

    let total = cfg.n_shards * cfg.ops_per_shard;
    let ok = *ok.borrow();
    let failed = *failed.borrow();
    assert_eq!(ok + failed, total, "timeline ops unsettled");

    let timeline = w.telemetry.timeline("op_latency_ns");
    let snapshot_json = w.telemetry.timeseries_json();
    let snapshot_csv = w.telemetry.timeseries_csv();
    let report = format!(
        "timeline shards={} ops={total} ok={ok} failed={failed} victim={victim} seed={}",
        cfg.n_shards, cfg.seed
    );
    TimelineArtifact {
        timeline,
        snapshot_json,
        snapshot_csv,
        report,
    }
}
