//! Differential oracle: HyperLoop vs the Naïve-RDMA baseline.
//!
//! Both backends implement the same group primitives (gWRITE / gMEMCPY /
//! gCAS / gFLUSH) over the same chain topology — HyperLoop executes them
//! on replica NICs, the baseline on replica CPUs. Whatever the datapath,
//! the *replicated state machine* must agree: after any operation
//! sequence, every member's NVM region must be byte-identical across the
//! two backends (and across members within a backend), and every gCAS
//! must observe the same original values on the same members.
//!
//! The suite generates randomized operation sequences from seeded
//! proptest strategies (deterministic per case, ≥16 cases per property)
//! and drives them closed-loop through both backends in separate
//! simulated clusters:
//!
//! * [`unsharded_backends_agree`] — one 3-member group, ops issued
//!   straight at the [`GroupClient`] surface.
//! * [`sharded_backends_agree`] — two disjoint groups placed by
//!   [`ShardPlan::place`]; the HyperLoop side routes keyed ops through
//!   the real [`ShardRouter`]/[`RetryClient`] stack while the baseline
//!   side uses an equal [`HashRing`] over per-shard naive groups, so the
//!   oracle also proves the router maps every key to the same shard.
//!
//! Under `--features check-ownership` both worlds additionally assert an
//! empty WQE-ownership/DMA race report.

use hyperloop_repro::cluster::exec::ShardExecutor;
use hyperloop_repro::cluster::shard::{HashRing, ShardGroup, ShardPlan};
use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::GroupClient;
use hyperloop_repro::hyperloop::naive::{Mode, NaiveBuilder, NaiveClient, NaiveConfig};
use hyperloop_repro::hyperloop::{
    replica, GroupBuilder, GroupConfig, GroupOp, HyperLoopClient, OnDone, OnOutcome, RetryClient,
    ShardRouter,
};
use hyperloop_repro::sim::{Bytes, Engine, SimDuration, SimTime};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Replicated-region size per group.
const REP_BYTES: u64 = 64 << 10;
/// Write/memcpy slot geometry: 64 disjoint 256-byte slots from offset 0.
const SLOT: usize = 256;
const N_SLOTS: u64 = 64;
/// Bytes covered by the write/memcpy slots — the uniformly-replicated
/// prefix. gCAS words live past it because a partial execute-map
/// *intentionally* diverges members (the lock undo flow), so
/// within-backend member equality only holds for this prefix.
const UNIFORM_BYTES: usize = N_SLOTS as usize * SLOT;
/// gCAS word area: 64 u64 words starting at 32 KiB (8-aligned).
const CAS_BASE: u64 = 32 << 10;
const N_WORDS: u64 = 64;
/// Members per group (client + 2 replicas).
const G: usize = 3;
/// Simulation seed (op sequences vary per proptest case instead).
const SIM_SEED: u64 = 7;

/// One generated group operation. `key` picks the shard in the sharded
/// property (ignored unsharded); offsets are slot-based so pipelined
/// ranges stay disjoint and gCAS words stay 8-aligned by construction.
#[derive(Debug, Clone)]
enum OpSpec {
    /// gWRITE of `len` patterned bytes at `slot`.
    Write {
        key: u64,
        slot: u64,
        len: usize,
        fill: u8,
        flush: bool,
    },
    /// gMEMCPY between two distinct slots (disjoint by construction).
    Memcpy {
        key: u64,
        src_slot: u64,
        dst_slot: u64,
        len: usize,
        flush: bool,
    },
    /// gCAS on word `word` with an arbitrary member execute-map.
    Cas {
        key: u64,
        word: u64,
        cmp_zero: bool,
        swp: u64,
        exec_map: u32,
    },
    /// Standalone gFLUSH over `len` bytes of `slot`.
    Flush { key: u64, slot: u64, len: usize },
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        4 => (any::<u64>(), 0u64..N_SLOTS, 1usize..=SLOT, any::<u8>(), any::<bool>()).prop_map(
            |(key, slot, len, fill, flush)| OpSpec::Write { key, slot, len, fill, flush }
        ),
        2 => (any::<u64>(), 0u64..N_SLOTS, 0u64..N_SLOTS - 1, 1usize..=SLOT, any::<bool>())
            .prop_map(|(key, src_slot, d, len, flush)| {
                // Skip over the source slot so src != dst always.
                let dst_slot = if d >= src_slot { d + 1 } else { d };
                OpSpec::Memcpy { key, src_slot, dst_slot, len, flush }
            }),
        2 => (any::<u64>(), 0u64..N_WORDS, any::<bool>(), any::<u64>(), 1u32..(1 << G) as u32)
            .prop_map(|(key, word, cmp_zero, swp, exec_map)| OpSpec::Cas {
                key, word, cmp_zero, swp, exec_map
            }),
        1 => (any::<u64>(), 0u64..N_SLOTS, 1usize..=SLOT)
            .prop_map(|(key, slot, len)| OpSpec::Flush { key, slot, len }),
    ]
}

/// The patterned gWRITE payload — a pure function of the spec so both
/// backends replicate identical bytes.
fn write_payload(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8)).collect()
}

/// Per-op observation: the original values a gCAS saw on the members of
/// its execute map (empty for the other primitives).
type CasObs = Vec<(usize, u64)>;

fn cas_obs(spec: &OpSpec, results: &[u64]) -> CasObs {
    match spec {
        OpSpec::Cas { exec_map, .. } => (0..G)
            .filter(|m| exec_map & (1 << m) != 0)
            .map(|m| (m, results[m]))
            .collect(),
        _ => Vec::new(),
    }
}

/// Drive `ops` sequentially (closed loop: each op completes before the
/// next is issued) at the raw [`GroupClient`] surface, routing each op's
/// key through `ring` to pick among `clients`. Returns the gCAS
/// observations in op order.
fn drive_clients<C: GroupClient + 'static>(
    clients: &[Rc<C>],
    ring: &HashRing,
    ops: &[OpSpec],
    w: &mut World,
    eng: &mut Engine<World>,
) -> Vec<CasObs> {
    let mut obs = Vec::with_capacity(ops.len());
    for spec in ops {
        let slot_done: Rc<RefCell<Option<Vec<u64>>>> = Rc::new(RefCell::new(None));
        let d = slot_done.clone();
        let done: OnDone = Box::new(move |_w, _e, r| *d.borrow_mut() = Some(r.results));
        let key = match *spec {
            OpSpec::Write { key, .. }
            | OpSpec::Memcpy { key, .. }
            | OpSpec::Cas { key, .. }
            | OpSpec::Flush { key, .. } => key,
        };
        let c = &clients[ring.shard_of_u64(key)];
        match *spec {
            OpSpec::Write {
                slot,
                len,
                fill,
                flush,
                ..
            } => {
                let data = write_payload(len, fill);
                c.gwrite(w, eng, slot * SLOT as u64, &data, flush, done)
                    .expect("sequential issue never backpressures");
            }
            OpSpec::Memcpy {
                src_slot,
                dst_slot,
                len,
                flush,
                ..
            } => {
                c.gmemcpy(
                    w,
                    eng,
                    src_slot * SLOT as u64,
                    dst_slot * SLOT as u64,
                    len as u32,
                    flush,
                    done,
                )
                .expect("sequential issue never backpressures");
            }
            OpSpec::Cas {
                word,
                cmp_zero,
                swp,
                exec_map,
                ..
            } => {
                let cmp = if cmp_zero { 0 } else { swp.wrapping_add(1) };
                c.gcas(w, eng, CAS_BASE + word * 8, cmp, swp, exec_map, done)
                    .expect("sequential issue never backpressures");
            }
            OpSpec::Flush { slot, len, .. } => {
                c.gflush(w, eng, slot * SLOT as u64, len as u32, done)
                    .expect("sequential issue never backpressures");
            }
        }
        let d2 = slot_done.clone();
        eng.run_while(w, move |_| d2.borrow().is_none());
        let results = slot_done
            .borrow_mut()
            .take()
            .expect("op completed before the event queue drained");
        obs.push(cas_obs(spec, &results));
    }
    // Quiesce: let any trailing deliveries settle before state capture.
    let end = eng.now() + SimDuration::from_millis(1);
    eng.run_until(w, end);
    obs
}

/// Drive `ops` sequentially through the real [`ShardRouter`] (the
/// supervised HyperLoop path the sharded stack uses in production).
fn drive_router(
    router: &Rc<ShardRouter>,
    ops: &[OpSpec],
    w: &mut World,
    eng: &mut Engine<World>,
) -> Vec<CasObs> {
    let mut obs = Vec::with_capacity(ops.len());
    for spec in ops {
        let slot_done: Rc<RefCell<Option<Vec<u64>>>> = Rc::new(RefCell::new(None));
        let d = slot_done.clone();
        let done: OnOutcome = Box::new(move |_w, _e, r| {
            let r = r.expect("fault-free run must not fail ops");
            *d.borrow_mut() = Some(r.results);
        });
        let (key, op) = match *spec {
            OpSpec::Write {
                key,
                slot,
                len,
                fill,
                flush,
            } => (
                key,
                GroupOp::Write {
                    offset: slot * SLOT as u64,
                    data: Bytes::from(write_payload(len, fill)),
                    flush,
                },
            ),
            OpSpec::Memcpy {
                key,
                src_slot,
                dst_slot,
                len,
                flush,
            } => (
                key,
                GroupOp::Memcpy {
                    src_off: src_slot * SLOT as u64,
                    dst_off: dst_slot * SLOT as u64,
                    len: len as u32,
                    flush,
                },
            ),
            OpSpec::Cas {
                key,
                word,
                cmp_zero,
                swp,
                exec_map,
            } => (
                key,
                GroupOp::Cas {
                    offset: CAS_BASE + word * 8,
                    cmp: if cmp_zero { 0 } else { swp.wrapping_add(1) },
                    swp,
                    exec_map,
                },
            ),
            OpSpec::Flush { key, slot, len } => (
                key,
                GroupOp::Flush {
                    offset: slot * SLOT as u64,
                    len: len as u32,
                },
            ),
        };
        let sid = router.shard_of_u64(key);
        router.issue_on(w, eng, sid, op, done);
        let d2 = slot_done.clone();
        eng.run_while(w, move |_| d2.borrow().is_none());
        let results = slot_done
            .borrow_mut()
            .take()
            .expect("op completed before the event queue drained");
        obs.push(cas_obs(spec, &results));
    }
    let end = eng.now() + SimDuration::from_millis(1);
    eng.run_until(w, end);
    obs
}

/// Snapshot every member's full replicated region.
fn member_regions<C: GroupClient>(client: &C, w: &World) -> Vec<Vec<u8>> {
    (0..client.group_size())
        .map(|m| {
            let host = client.member_host(m);
            let addr = client.member_addr(m, 0);
            w.hosts[host.0]
                .mem
                .read_vec(addr, REP_BYTES as usize)
                .expect("replicated region mapped")
        })
        .collect()
}

fn first_mismatch(a: &[u8], b: &[u8]) -> Option<usize> {
    a.iter().zip(b.iter()).position(|(x, y)| x != y)
}

fn build_hl_shard(g: &ShardGroup, w: &mut World, eng: &mut Engine<World>) -> HyperLoopClient {
    let group = GroupBuilder::new(GroupConfig {
        client: g.client,
        replicas: g.replicas.clone(),
        rep_bytes: REP_BYTES,
        ring_slots: 64,
        ..Default::default()
    })
    .build(w);
    replica::start_replenishers(&group, w, eng);
    HyperLoopClient::new(group, w)
}

fn build_naive_shard(g: &ShardGroup, w: &mut World, eng: &mut Engine<World>) -> NaiveClient {
    NaiveBuilder::new(NaiveConfig {
        client: g.client,
        replicas: g.replicas.clone(),
        rep_bytes: REP_BYTES,
        ring_slots: 64,
        mode: Mode::Event,
        ..Default::default()
    })
    .build(w, eng)
}

fn fresh_world(n_hosts: usize) -> (World, Engine<World>) {
    let (mut w, mut eng) = ClusterBuilder::new(n_hosts)
        .arena_size(4 << 20)
        .seed(SIM_SEED)
        .build();
    // Prime chains (replenishers, QP wiring) before the first op.
    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    (w, eng)
}

#[cfg(feature = "check-ownership")]
fn assert_race_free(w: &World, which: &str) {
    let report = w.race_report();
    assert!(report.is_empty(), "{which}: WQE/DMA races: {report:?}");
}

#[cfg(not(feature = "check-ownership"))]
fn assert_race_free(_w: &World, _which: &str) {}

/// The disjoint two-shard placement both sharded worlds use.
fn two_shard_plan() -> ShardPlan {
    let hosts: Vec<HostId> = (0..2 * G).map(HostId).collect();
    let plan = ShardPlan::place(2, G - 1, &hosts);
    assert!(plan.is_disjoint(), "sized pool must place disjointly");
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One 3-member group per backend: any op sequence leaves every
    /// member byte-identical across backends and across members, with
    /// matching gCAS observations.
    #[test]
    fn unsharded_backends_agree(ops in pvec(op_strategy(), 8..33)) {
        let ring = HashRing::new(1);

        let (mut hw, mut he) = fresh_world(G);
        let plan = ShardPlan::place(1, G - 1, &(0..G).map(HostId).collect::<Vec<_>>());
        let hl = Rc::new(build_hl_shard(&plan.groups[0], &mut hw, &mut he));
        let hl_obs = drive_clients(std::slice::from_ref(&hl), &ring, &ops, &mut hw, &mut he);

        let (mut nw, mut ne) = fresh_world(G);
        let nv = Rc::new(build_naive_shard(&plan.groups[0], &mut nw, &mut ne));
        let nv_obs = drive_clients(std::slice::from_ref(&nv), &ring, &ops, &mut nw, &mut ne);

        prop_assert_eq!(&hl_obs, &nv_obs, "gCAS observations diverged");

        let hl_members = member_regions(hl.as_ref(), &hw);
        let nv_members = member_regions(nv.as_ref(), &nw);
        for m in 0..G {
            let mm = first_mismatch(&hl_members[m], &nv_members[m]);
            prop_assert!(
                mm.is_none(),
                "member {} NVM diverged between backends at byte {:?}",
                m, mm
            );
        }
        for m in 1..G {
            let mm = first_mismatch(
                &hl_members[0][..UNIFORM_BYTES],
                &hl_members[m][..UNIFORM_BYTES],
            );
            prop_assert!(mm.is_none(), "HyperLoop member {} != client at byte {:?}", m, mm);
        }

        assert_race_free(&hw, "hyperloop world");
        assert_race_free(&nw, "naive world");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two disjoint shards per backend: keyed ops routed through the
    /// real [`ShardRouter`] on the HyperLoop side and an equal
    /// [`HashRing`] on the baseline side land on the same shard and
    /// leave every member of every shard byte-identical.
    #[test]
    fn sharded_backends_agree(ops in pvec(op_strategy(), 8..33)) {
        let plan = two_shard_plan();

        // HyperLoop side: RetryClient-supervised groups behind the router.
        let (mut hw, mut he) = fresh_world(2 * G);
        let hl_clients: Vec<HyperLoopClient> = plan
            .groups
            .iter()
            .map(|g| build_hl_shard(g, &mut hw, &mut he))
            .collect();
        let router = Rc::new(ShardRouter::new(
            hl_clients.iter().cloned().map(RetryClient::new).collect(),
        ));
        let hl_obs = drive_router(&router, &ops, &mut hw, &mut he);
        prop_assert_eq!(router.failures().len(), 0, "fault-free run must not fail ops");

        // Baseline side: the same ring geometry over naive groups.
        let ring = HashRing::new(2);
        prop_assert_eq!(ring.n_shards(), router.ring().n_shards());
        let (mut nw, mut ne) = fresh_world(2 * G);
        let nv_clients: Vec<Rc<NaiveClient>> = plan
            .groups
            .iter()
            .map(|g| Rc::new(build_naive_shard(g, &mut nw, &mut ne)))
            .collect();
        let nv_obs = drive_clients(&nv_clients, &ring, &ops, &mut nw, &mut ne);

        prop_assert_eq!(&hl_obs, &nv_obs, "gCAS observations diverged");

        for (sid, g) in plan.groups.iter().enumerate() {
            let _ = g;
            let hl_members = member_regions(&router.client(sid).client(), &hw);
            let nv_members = member_regions(nv_clients[sid].as_ref(), &nw);
            for m in 0..G {
                let mm = first_mismatch(&hl_members[m], &nv_members[m]);
                prop_assert!(
                    mm.is_none(),
                    "shard {} member {} NVM diverged between backends at byte {:?}",
                    sid, m, mm
                );
            }
            for m in 1..G {
                let mm = first_mismatch(
                    &hl_members[0][..UNIFORM_BYTES],
                    &hl_members[m][..UNIFORM_BYTES],
                );
                prop_assert!(
                    mm.is_none(),
                    "shard {} HyperLoop member {} != client at byte {:?}",
                    sid, m, mm
                );
            }
        }

        assert_race_free(&hw, "hyperloop world");
        assert_race_free(&nw, "naive world");
    }
}

// ---------------------------------------------------------------------
// Mid-sequence migration: the oracle with a SplitAt(op_idx) marker.
// ---------------------------------------------------------------------

/// Hosts for the split-off shard's chain (past the two-shard pool).
fn split_dest_group() -> ShardGroup {
    ShardGroup {
        shard: 2,
        client: HostId(2 * G),
        replicas: (1..G).map(|i| HostId(2 * G + i)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `SplitAt(op_idx)`: the sharded oracle with a live migration in
    /// the middle of the sequence. The HyperLoop side runs the *real*
    /// [`split_live`] protocol (dirty log, streamed catch-up, dual
    /// window, router flip) between ops `split_at - 1` and `split_at`;
    /// the baseline side models the same split at spec level (copy the
    /// donor region, swap in the split ring). Afterwards both sides
    /// route by the identical three-shard ring, so every member of
    /// every shard — including the freshly stood-up one — must be
    /// byte-identical across backends.
    #[test]
    fn sharded_backends_agree_with_mid_sequence_split(
        ops in pvec(op_strategy(), 8..33),
        split_frac in 0usize..100,
        parent in 0usize..2,
    ) {
        use hyperloop_repro::hyperloop::{split_live, MigrationSpec};

        let split_at = split_frac * ops.len() / 100;
        let plan = two_shard_plan();
        let dest = split_dest_group();
        let n_hosts = 3 * G;

        // HyperLoop side: drive to the split point, run the live
        // migration to completion (closed loop: no concurrent traffic,
        // so the delta is empty and the dest region is an exact donor
        // snapshot), then drive the rest through the flipped router.
        let (mut hw, mut he) = fresh_world(n_hosts);
        let hl_clients: Vec<HyperLoopClient> = plan
            .groups
            .iter()
            .map(|g| build_hl_shard(g, &mut hw, &mut he))
            .collect();
        let router = Rc::new(ShardRouter::new(
            hl_clients.iter().cloned().map(RetryClient::new).collect(),
        ));
        let mut hl_obs = drive_router(&router, &ops[..split_at], &mut hw, &mut he);
        let migrated = Rc::new(RefCell::new(false));
        {
            let m = migrated.clone();
            split_live(
                &router,
                parent,
                dest.clone(),
                MigrationSpec::default(),
                &mut hw,
                &mut he,
                Box::new(move |_w, _e| *m.borrow_mut() = true),
            );
        }
        let m2 = migrated.clone();
        he.run_while(&mut hw, move |_| !*m2.borrow());
        prop_assert!(*migrated.borrow(), "split did not complete");
        prop_assert_eq!(router.epoch(), 1);
        hl_obs.extend(drive_router(&router, &ops[split_at..], &mut hw, &mut he));
        prop_assert_eq!(router.failures().len(), 0, "fault-free run must not fail ops");
        let ring3 = router.ring();
        prop_assert_eq!(ring3.n_shards(), 3);

        // Baseline side: the same split at spec level.
        let ring2 = HashRing::new(2);
        prop_assert_eq!(&ring3, &ring2.split_shard(parent));
        let (mut nw, mut ne) = fresh_world(n_hosts);
        let mut nv_clients: Vec<Rc<NaiveClient>> = plan
            .groups
            .iter()
            .map(|g| Rc::new(build_naive_shard(g, &mut nw, &mut ne)))
            .collect();
        let mut nv_obs = drive_clients(&nv_clients, &ring2, &ops[..split_at], &mut nw, &mut ne);
        let nv_dest = Rc::new(build_naive_shard(&dest, &mut nw, &mut ne));
        {
            // Spec-level migration: the dest region becomes a byte copy
            // of the donor head's region on every new member.
            let donor = &nv_clients[parent];
            let src = nw.hosts[donor.member_host(0).0]
                .mem
                .read_vec(donor.member_addr(0, 0), REP_BYTES as usize)
                .unwrap();
            for m in 0..nv_dest.group_size() {
                let host = nv_dest.member_host(m);
                let addr = nv_dest.member_addr(m, 0);
                nw.hosts[host.0].mem.write(addr, &src).unwrap();
            }
        }
        nv_clients.push(nv_dest);
        nv_obs.extend(drive_clients(&nv_clients, &ring3, &ops[split_at..], &mut nw, &mut ne));

        prop_assert_eq!(&hl_obs, &nv_obs, "gCAS observations diverged across the split");

        for (sid, nv_client) in nv_clients.iter().enumerate() {
            let hl_members = member_regions(&router.client(sid).client(), &hw);
            let nv_members = member_regions(nv_client.as_ref(), &nw);
            for m in 0..G {
                let mm = first_mismatch(&hl_members[m], &nv_members[m]);
                prop_assert!(
                    mm.is_none(),
                    "shard {} member {} NVM diverged between backends at byte {:?} \
                     (split_at {} of {}, parent {})",
                    sid, m, mm, split_at, ops.len(), parent
                );
            }
        }

        assert_race_free(&hw, "split hyperloop world");
        assert_race_free(&nw, "split naive world");
    }
}

// ---------------------------------------------------------------------
// Threaded 8-shard configuration: the oracle under the ShardExecutor.
// ---------------------------------------------------------------------

/// The routing key of any generated op.
fn op_key(spec: &OpSpec) -> u64 {
    match *spec {
        OpSpec::Write { key, .. }
        | OpSpec::Memcpy { key, .. }
        | OpSpec::Cas { key, .. }
        | OpSpec::Flush { key, .. } => key,
    }
}

/// Seeded splitmix64 op generator mirroring [`op_strategy`]'s shapes —
/// a plain function so the threaded property needs no proptest runner
/// (the sequence must be *fixed*, the only varying input is the thread
/// count).
fn gen_ops(seed: u64, n: usize) -> Vec<OpSpec> {
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let key = next();
            match next() % 9 {
                0..=3 => OpSpec::Write {
                    key,
                    slot: next() % N_SLOTS,
                    len: 1 + (next() as usize % SLOT),
                    fill: next() as u8,
                    flush: next() % 2 == 0,
                },
                4 | 5 => {
                    let src_slot = next() % N_SLOTS;
                    let d = next() % (N_SLOTS - 1);
                    let dst_slot = if d >= src_slot { d + 1 } else { d };
                    OpSpec::Memcpy {
                        key,
                        src_slot,
                        dst_slot,
                        len: 1 + (next() as usize % SLOT),
                        flush: next() % 2 == 0,
                    }
                }
                6 | 7 => OpSpec::Cas {
                    key,
                    word: next() % N_WORDS,
                    cmp_zero: next() % 2 == 0,
                    swp: next(),
                    exec_map: 1 + (next() as u32 % (((1u32 << G) - 1) - 1 + 1)),
                },
                _ => OpSpec::Flush {
                    key,
                    slot: next() % N_SLOTS,
                    len: 1 + (next() as usize % SLOT),
                },
            }
        })
        .collect()
}

/// Everything one threaded shard job observes — plain `Send` data.
#[derive(Debug, Clone, PartialEq)]
struct ShardObs {
    obs: Vec<CasObs>,
    hl_members: Vec<Vec<u8>>,
    nv_members: Vec<Vec<u8>>,
}

/// Run shard `sid`'s cut of `ops` through both backends in fresh
/// single-group worlds (built inside the job — the executor's contract)
/// and snapshot everything the oracle compares.
fn run_shard_oracle(ops: &[OpSpec], global_ring: &HashRing, sid: usize) -> ShardObs {
    let local = HashRing::new(1);
    let mine: Vec<OpSpec> = ops
        .iter()
        .filter(|op| global_ring.shard_of_u64(op_key(op)) == sid)
        .cloned()
        .collect();
    let plan = ShardPlan::place(1, G - 1, &(0..G).map(HostId).collect::<Vec<_>>());

    let (mut hw, mut he) = fresh_world(G);
    let hl = Rc::new(build_hl_shard(&plan.groups[0], &mut hw, &mut he));
    let hl_obs = drive_clients(std::slice::from_ref(&hl), &local, &mine, &mut hw, &mut he);

    let (mut nw, mut ne) = fresh_world(G);
    let nv = Rc::new(build_naive_shard(&plan.groups[0], &mut nw, &mut ne));
    let nv_obs = drive_clients(std::slice::from_ref(&nv), &local, &mine, &mut nw, &mut ne);

    assert_eq!(hl_obs, nv_obs, "shard {sid}: gCAS observations diverged");
    assert_race_free(&hw, "threaded hyperloop shard world");
    assert_race_free(&nw, "threaded naive shard world");

    ShardObs {
        obs: hl_obs,
        hl_members: member_regions(hl.as_ref(), &hw),
        nv_members: member_regions(nv.as_ref(), &nw),
    }
}

/// Eight disjoint shards, each running the differential oracle in its
/// own world on its own thread: backends agree on every shard, and
/// every artifact — gCAS observations, both backends' member NVM
/// snapshots — is byte-identical to the sequential (`threads == 1`)
/// execution of the very same jobs.
#[test]
fn threaded_eight_shard_oracle_matches_sequential() {
    const N_SHARDS: usize = 8;
    let ops = gen_ops(0x5EED_CAFE, 192);
    let ring = HashRing::new(N_SHARDS);
    // Every shard must own at least one op, or a slice of the identity
    // check is vacuous.
    for sid in 0..N_SHARDS {
        assert!(
            ops.iter().any(|op| ring.shard_of_u64(op_key(op)) == sid),
            "shard {sid} owns no ops; enlarge the sequence"
        );
    }

    let seq = ShardExecutor::sequential().run(N_SHARDS, |sid| run_shard_oracle(&ops, &ring, sid));
    let par = ShardExecutor::new(8).run(N_SHARDS, |sid| run_shard_oracle(&ops, &ring, sid));

    for (sid, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(
            a, b,
            "shard {sid}: threaded artifacts diverged from sequential"
        );
        for m in 0..G {
            let mm = first_mismatch(&a.hl_members[m], &a.nv_members[m]);
            assert!(
                mm.is_none(),
                "shard {sid} member {m}: NVM diverged between backends at byte {mm:?}"
            );
        }
        for m in 1..G {
            let mm = first_mismatch(
                &a.hl_members[0][..UNIFORM_BYTES],
                &a.hl_members[m][..UNIFORM_BYTES],
            );
            assert!(
                mm.is_none(),
                "shard {sid}: HyperLoop member {m} != client at byte {mm:?}"
            );
        }
        assert!(
            a.hl_members.iter().any(|r| r.iter().any(|&x| x != 0)),
            "shard {sid}: all-zero NVM; oracle is vacuous"
        );
    }
}
