//! SLO burn-rate alerting on windowed time series, end to end: a
//! jitter excursion inflates the supervised p99, the declarative SLO
//! rule fires, the health monitor degrades the backend to the CPU
//! path, the fault heals, the alert resolves, and the monitor
//! re-promotes — all visible on one timeline render with the marks
//! overlaid on the window where they happened.
//!
//! ```sh
//! cargo run --release --example slo_timeline
//! ```

use hyperloop_repro::cluster::chaos::{FaultEvent, FaultKind, FaultSchedule};
use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::health::{HealthConfig, HealthMonitor};
use hyperloop_repro::hyperloop::naive::Mode;
use hyperloop_repro::hyperloop::slo::{SloEngine, SloRule};
use hyperloop_repro::hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, HyperLoopClient, RetryClient,
};
use hyperloop_repro::sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const CLIENT: HostId = HostId(0);
const REC: usize = 256;

fn main() {
    let seed = 9090;
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();

    // One call turns on telemetry plus the windowed store (1ms
    // windows): per-window counter deltas, gauge samples, and latency
    // sketches.
    w.enable_timeseries(SimDuration::from_millis(1));

    let group = GroupBuilder::new(GroupConfig {
        client: CLIENT,
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 64 << 10,
        ring_slots: 64,
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);

    // A generous per-attempt deadline keeps the health score quiet:
    // the SLO alert is the only signal that can degrade the backend,
    // so the fire mark strictly precedes the Degrading transition.
    let retry = RetryClient::with_policy(
        client,
        DeadlinePolicy {
            deadline: SimDuration::from_millis(4),
            max_attempts: 40,
            backoff: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(4),
        },
    );
    let monitor = HealthMonitor::start(
        retry.clone(),
        group,
        HealthConfig {
            period: SimDuration::from_millis(2),
            degrade_score: 20,
            healthy_score: 5,
            degrade_after: 2,
            promote_after: 3,
            min_degraded_dwell: SimDuration::from_millis(3),
            ring_slots: 64,
            naive_mode: Mode::Event,
        },
        &mut w,
        &mut eng,
    );

    // The objective, as you would write it in an alerting config:
    // fire when both the long (8-window) and short (2-window) burn
    // fractions breach; resolve when the short lookback is clean.
    let slo = Rc::new(RefCell::new(SloEngine::new()));
    slo.borrow_mut().add_rule(
        SloRule::parse(
            "supervised-p99",
            "p99(op_latency_ns{layer=supervised}) < 150us over 8 windows",
        )
        .unwrap()
        .with_short_windows(2),
    );
    monitor.attach_slo(slo.clone());

    // The excursion: heavy jitter on the client's links, 10ms → 35ms.
    FaultSchedule {
        seed,
        events: vec![
            FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(25)),
                kind: FaultKind::Jitter {
                    src: CLIENT,
                    dst: HostId(1),
                    delay: SimDuration::from_micros(40),
                    jitter: SimDuration::from_micros(120),
                },
            },
            FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(25)),
                kind: FaultKind::Jitter {
                    src: HostId(2),
                    dst: CLIENT,
                    delay: SimDuration::from_micros(40),
                    jitter: SimDuration::from_micros(120),
                },
            },
        ],
    }
    .apply(&mut eng);

    // Open-loop supervised writes, one every 100µs, spanning the
    // whole excursion and the recovery after it.
    for k in 0..500usize {
        let retry2 = retry.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 100_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            let data = vec![b'a' + (k % 26) as u8; REC];
            retry2.gwrite(
                w,
                eng,
                ((k % 64) * REC) as u64,
                &data,
                true,
                Box::new(|_w, _e, r| {
                    r.expect("supervised op failed");
                }),
            );
        });
    }
    eng.run_until(&mut w, SimTime::from_nanos(250_000_000));
    monitor.stop();

    // The timeline: p50/p99 per window with fault/fire/transition/
    // heal/resolve marks inlined. Same seed → byte-identical render.
    println!("{}", w.telemetry.timeline("op_latency_ns"));
    println!(
        "alert fired {}x, firing now: {}; degrades={} promotes={}",
        slo.borrow().fired("supervised-p99"),
        slo.borrow().any_firing(),
        monitor.degrades(),
        monitor.promotes()
    );

    // The same data, machine-readable: a versioned JSON snapshot, a
    // flat CSV, and Prometheus text exposition off the cumulative
    // registry.
    let json = w.telemetry.timeseries_json();
    let csv = w.telemetry.timeseries_csv();
    println!(
        "snapshot: {} bytes JSON, {} CSV rows",
        json.len(),
        csv.lines().count().saturating_sub(1)
    );
    let prom = w.telemetry.metrics.render_prom();
    for line in prom
        .lines()
        .filter(|l| l.contains("slo_") || l.contains("health_score"))
        .take(8)
    {
        println!("prom> {line}");
    }
}
