//! Shard migration state machine and its checkable shadow model.
//!
//! A live split/merge walks five stages:
//!
//! ```text
//! Planned → Streaming → Draining → CutOver → Retired
//! ```
//!
//! * **Planned** — the destination chain is placed and the donor's
//!   dirty-range log is armed; no data has moved.
//! * **Streaming** — the bulk of the moving range is copied to the
//!   destination with chunked one-sided READs while the donor keeps
//!   serving; every concurrent write lands in the donor's region *and*
//!   the dirty log.
//! * **Draining** — the router opens the dual window: new operations on
//!   moving keys park in arrival order, in-flight donor ops drain
//!   (bounded).
//! * **CutOver** — the dirty delta is copied, the ring flips atomically
//!   and parked operations replay onto the post-cutover owner. This
//!   stage is the commit point: before it the source is authoritative,
//!   from it on the destination is.
//! * **Retired** — the migration object is dismantled (for a merge, the
//!   victim chain is torn down).
//!
//! The driver that executes this against a real cluster lives in the
//! `hyperloop` crate (it needs clients and the router); this module
//! keeps the *protocol* — legal transitions, who is authoritative
//! where, and what a crash at each point must do — as plain data so the
//! model checker can enumerate every fault point exhaustively without
//! standing up a simulator.

use std::collections::BTreeMap;

/// The five stages of a live shard migration, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MigrationStage {
    /// Destination placed, dirty log armed, nothing copied yet.
    Planned,
    /// Bulk copy in flight; donor still serves all traffic.
    Streaming,
    /// Dual window open: moving-key ops park, donor drains.
    Draining,
    /// Commit point: delta copied, ring flipped, parked ops replayed.
    CutOver,
    /// Migration dismantled; for a merge the victim chain is torn down.
    Retired,
}

impl MigrationStage {
    /// All stages in protocol order (for exhaustive enumeration).
    pub const ALL: [MigrationStage; 5] = [
        MigrationStage::Planned,
        MigrationStage::Streaming,
        MigrationStage::Draining,
        MigrationStage::CutOver,
        MigrationStage::Retired,
    ];

    /// Stage name as it appears in telemetry transitions.
    pub fn name(self) -> &'static str {
        match self {
            MigrationStage::Planned => "planned",
            MigrationStage::Streaming => "streaming",
            MigrationStage::Draining => "draining",
            MigrationStage::CutOver => "cutover",
            MigrationStage::Retired => "retired",
        }
    }

    /// The next stage, if any.
    pub fn next(self) -> Option<MigrationStage> {
        match self {
            MigrationStage::Planned => Some(MigrationStage::Streaming),
            MigrationStage::Streaming => Some(MigrationStage::Draining),
            MigrationStage::Draining => Some(MigrationStage::CutOver),
            MigrationStage::CutOver => Some(MigrationStage::Retired),
            MigrationStage::Retired => None,
        }
    }

    /// True once the commit point has been passed: the destination is
    /// authoritative for the moving range from `CutOver` on.
    pub fn dest_authoritative(self) -> bool {
        matches!(self, MigrationStage::CutOver | MigrationStage::Retired)
    }
}

/// The three processes whose crash the protocol must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationActor {
    /// Head (client/coordinator) of the donor chain.
    SourceHead,
    /// Head of the freshly built destination chain.
    DestHead,
    /// The frontend routing process holding the dual window.
    Router,
}

impl MigrationActor {
    /// All actors (for exhaustive enumeration).
    pub const ALL: [MigrationActor; 3] = [
        MigrationActor::SourceHead,
        MigrationActor::DestHead,
        MigrationActor::Router,
    ];
}

/// What recovery does after `actor` crashes while the migration sits in
/// `stage`. Chain replication makes each side individually durable
/// (a crashed head rebuilds from its replicas); the only protocol-level
/// question is which side owns the moving range afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOutcome {
    /// Migration aborts: the destination is discarded, parked ops
    /// re-issue onto the source, the source remains authoritative.
    AbortToSource,
    /// Migration is already committed: the destination is
    /// authoritative; the crashed process recovers independently and
    /// parked ops replay onto the destination.
    CommittedToDest,
}

/// The recovery rule table: before the commit point every crash aborts
/// back to the source (nothing the destination holds is authoritative
/// yet); from `CutOver` on the flip has happened and every crash
/// resolves toward the destination.
pub fn on_crash(stage: MigrationStage, _actor: MigrationActor) -> CrashOutcome {
    if stage.dest_authoritative() {
        CrashOutcome::CommittedToDest
    } else {
        CrashOutcome::AbortToSource
    }
}

// ---------------------------------------------------------------------------
// Executable shadow model
// ---------------------------------------------------------------------------

/// A checkable shadow model of one migration: keys are `u64`, each
/// applied operation is a unique id appended to its key's history, and
/// state transfer copies histories wholesale (byte-copy semantics —
/// idempotent overwrite, unlike *applying* an op twice, which the model
/// flags). After the run, [`MigrationModel::check`] asserts every
/// issued op appears exactly once in the final owner's history.
#[derive(Debug)]
pub struct MigrationModel {
    stage: MigrationStage,
    aborted: bool,
    /// Key → applied op ids, donor side.
    src: BTreeMap<u64, Vec<u64>>,
    /// Key → applied op ids, destination side.
    dest: BTreeMap<u64, Vec<u64>>,
    /// Ops parked by the router during the dual window.
    parked: Vec<(u64, u64)>,
    /// Dirty log: keys written since the log was armed (the real log is
    /// offset ranges; keys stand in for ranges here).
    dirty: Vec<u64>,
    /// Every op ever issued, `(key, op id)`.
    issued: Vec<(u64, u64)>,
    next_op: u64,
}

impl MigrationModel {
    /// A model at `Planned` with the dirty log armed (arming precedes
    /// any copy, exactly as the driver orders it).
    pub fn new() -> Self {
        MigrationModel {
            stage: MigrationStage::Planned,
            aborted: false,
            src: BTreeMap::new(),
            dest: BTreeMap::new(),
            parked: Vec::new(),
            dirty: Vec::new(),
            issued: Vec::new(),
            next_op: 0,
        }
    }

    /// Current stage.
    pub fn stage(&self) -> MigrationStage {
        self.stage
    }

    /// True once a crash rolled the migration back to the source.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Pre-populate `key` on the source (state that existed before the
    /// migration was planned). Not recorded as an issued op.
    pub fn seed(&mut self, key: u64) {
        self.src.entry(key).or_default();
    }

    /// Issue a client write to `key` on behalf of the key's owner.
    /// `moving` says whether the key belongs to the moving range.
    /// Returns the op id.
    pub fn issue(&mut self, key: u64, moving: bool) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        self.issued.push((key, op));
        match self.stage {
            // Before the window opens every op applies at the source;
            // while streaming it is also captured by the dirty log.
            MigrationStage::Planned | MigrationStage::Streaming => {
                self.src.entry(key).or_default().push(op);
                self.dirty.push(key);
            }
            // In the dual window moving keys park unapplied; bystander
            // keys flow to the source untouched.
            MigrationStage::Draining => {
                if moving {
                    self.parked.push((key, op));
                } else {
                    self.src.entry(key).or_default().push(op);
                    self.dirty.push(key);
                }
            }
            // Post-flip the destination owns the moving range.
            MigrationStage::CutOver | MigrationStage::Retired => {
                let side = if moving && !self.aborted {
                    &mut self.dest
                } else {
                    &mut self.src
                };
                side.entry(key).or_default().push(op);
            }
        }
        op
    }

    /// Advance one stage, performing that stage's state transfer:
    /// entering `Streaming` copies the bulk snapshot, entering
    /// `CutOver` copies the dirty delta, flips and replays parked ops
    /// (the driver performs these as one atomic event-time step).
    pub fn advance(&mut self, moving: impl Fn(u64) -> bool) {
        assert!(!self.aborted, "cannot advance an aborted migration");
        let next = self.stage.next().expect("advance past Retired");
        match next {
            MigrationStage::Streaming => {
                // Bulk copy: overwrite the destination's image of every
                // moving key with the source's current history.
                let snap: Vec<(u64, Vec<u64>)> = self
                    .src
                    .iter()
                    .filter(|(k, _)| moving(**k))
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                for (k, v) in snap {
                    self.dest.insert(k, v);
                }
            }
            MigrationStage::CutOver => {
                // Delta copy: only keys dirtied since the log was armed
                // (an idempotent overwrite — re-copying a key the bulk
                // already carried is harmless).
                let dirty = std::mem::take(&mut self.dirty);
                for k in dirty {
                    if moving(k) {
                        let v = self.src.get(&k).cloned().unwrap_or_default();
                        self.dest.insert(k, v);
                    }
                }
                // Flip, then replay parked ops onto the new owner.
                let parked = std::mem::take(&mut self.parked);
                for (k, op) in parked {
                    self.dest.entry(k).or_default().push(op);
                }
            }
            MigrationStage::Draining | MigrationStage::Retired => {}
            MigrationStage::Planned => unreachable!(),
        }
        self.stage = next;
    }

    /// Crash `actor` at the current stage and run recovery per
    /// [`on_crash`]. Chain durability keeps each side's applied state;
    /// the parked queue is re-issued (exactly once) onto whichever side
    /// recovery made authoritative.
    pub fn crash(&mut self, actor: MigrationActor) -> CrashOutcome {
        let outcome = on_crash(self.stage, actor);
        let parked = std::mem::take(&mut self.parked);
        match outcome {
            CrashOutcome::AbortToSource => {
                // Destination discarded; nothing applied there was
                // authoritative. Parked ops re-issue onto the source.
                self.dest.clear();
                self.dirty.clear();
                for (k, op) in parked {
                    self.src.entry(k).or_default().push(op);
                }
                self.aborted = true;
                self.stage = MigrationStage::Retired;
            }
            CrashOutcome::CommittedToDest => {
                // Flip already happened; a straggling parked queue (the
                // router died mid-replay) replays onto the destination.
                for (k, op) in parked {
                    self.dest.entry(k).or_default().push(op);
                }
                self.stage = MigrationStage::Retired;
            }
        }
        outcome
    }

    /// Verify the end state: every issued op id appears **exactly
    /// once** in its key's final-owner history — no op lost, none
    /// double-applied — and no op leaked onto the non-owning side.
    pub fn check(&self, moving: impl Fn(u64) -> bool) -> Result<(), String> {
        assert_eq!(self.stage, MigrationStage::Retired, "run not finished");
        let dest_owns = !self.aborted;
        for &(key, op) in &self.issued {
            let owner = if moving(key) && dest_owns {
                &self.dest
            } else {
                &self.src
            };
            let n = owner
                .get(&key)
                .map(|h| h.iter().filter(|&&o| o == op).count())
                .unwrap_or(0);
            if n == 0 {
                return Err(format!("op {op} on key {key} lost"));
            }
            if n > 1 {
                return Err(format!("op {op} on key {key} applied {n} times"));
            }
        }
        // A committed migration must actually have transferred every
        // pre-cutover write: the destination history of each moving key
        // equals the source's (the copies were overwrites of it).
        if dest_owns {
            for (k, hist) in &self.src {
                if moving(*k) {
                    let d = self.dest.get(k).cloned().unwrap_or_default();
                    if !hist.iter().all(|op| d.contains(op)) {
                        return Err(format!("moving key {k} missing source history at dest"));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moving(k: u64) -> bool {
        k % 2 == 1
    }

    #[test]
    fn stage_order_and_names() {
        let mut s = MigrationStage::Planned;
        let mut names = vec![s.name()];
        while let Some(n) = s.next() {
            s = n;
            names.push(s.name());
        }
        assert_eq!(
            names,
            ["planned", "streaming", "draining", "cutover", "retired"]
        );
        assert!(!MigrationStage::Draining.dest_authoritative());
        assert!(MigrationStage::CutOver.dest_authoritative());
    }

    #[test]
    fn faultless_run_applies_every_op_once() {
        let mut m = MigrationModel::new();
        for k in 0..8 {
            m.seed(k);
        }
        m.issue(1, true);
        m.issue(2, false);
        m.advance(moving); // Streaming
        m.issue(3, true);
        m.advance(moving); // Draining
        m.issue(5, true); // parks
        m.issue(4, false);
        m.advance(moving); // CutOver: delta + flip + replay
        m.issue(7, true); // lands on dest
        m.advance(moving); // Retired
        m.check(moving).unwrap();
    }

    #[test]
    fn crash_before_cutover_aborts_to_source() {
        let mut m = MigrationModel::new();
        m.issue(1, true);
        m.advance(moving);
        m.advance(moving); // Draining
        m.issue(3, true); // parks
        let out = m.crash(MigrationActor::DestHead);
        assert_eq!(out, CrashOutcome::AbortToSource);
        m.issue(5, true); // post-abort ops stay on source
        m.check(moving).unwrap();
    }

    #[test]
    fn crash_after_cutover_stays_committed() {
        let mut m = MigrationModel::new();
        m.issue(1, true);
        m.advance(moving);
        m.advance(moving);
        m.advance(moving); // CutOver
        let out = m.crash(MigrationActor::SourceHead);
        assert_eq!(out, CrashOutcome::CommittedToDest);
        m.issue(3, true);
        m.check(moving).unwrap();
    }
}
