pub fn leaf_time() -> u64 {
    // Startup banner only, never on the datapath (fixture rationale).
    // hl-lint: allow(wall-clock)
    Instant::now().elapsed().as_nanos() as u64
}
