pub fn leaf_time() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
