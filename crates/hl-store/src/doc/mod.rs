//! doclite — the MongoDB-like replicated document store (paper §5.2).

mod document;
pub mod native;
mod store;

pub use document::Document;
pub use store::{DocLayout, DocStore};
