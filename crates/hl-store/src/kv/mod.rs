//! kvlite — the RocksDB-like replicated key-value store (paper §5.1).

mod db;
mod memtable;
mod syncer;

pub use db::{decode_kv_op, decode_snapshot, encode_kv_op, KvConfig, KvDb, OP_DELETE, OP_PUT};
pub use memtable::Memtable;
pub use syncer::{KvShared, KvSyncer};
