// Layout fixture: B (4..12) overlaps A (0..8).
pub const DESC_SIZE: u64 = 16;
pub const A: u64 = 0;
pub const B: u64 = 4;
