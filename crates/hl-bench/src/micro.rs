//! Microbenchmark runner: group-primitive latency / throughput / CPU
//! (paper §6.1 — Figures 8, 9, 10 and Table 2).
//!
//! A zero-CPU driver on the client host keeps `pipeline` operations
//! outstanding until `ops` completions are recorded, against either the
//! HyperLoop client or a Naïve-RDMA baseline, with `stress-ng`-style
//! hogs co-located on the replica hosts (the multi-tenant environment).

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Attribution, Engine, Histogram, SimDuration, SimTime, Summary};
use hyperloop::api::GroupClient;
use hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

/// Which implementation runs the primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// NIC-offloaded chain (the paper's contribution).
    HyperLoop,
    /// CPU replicas woken by completion interrupts.
    NaiveEvent,
    /// CPU replicas busy-polling. `pinned` gives each a dedicated core
    /// (the paper's best-case microbenchmark configuration).
    NaivePolling {
        /// Pin each replica to core 0 of its host.
        pinned: bool,
    },
}

impl Backend {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::HyperLoop => "HyperLoop",
            Backend::NaiveEvent => "Naive-Event",
            Backend::NaivePolling { pinned: true } => "Naive-Polling(pinned)",
            Backend::NaivePolling { pinned: false } => "Naive-Polling",
        }
    }
}

/// The operation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// gWRITE of `size` bytes (durability flush optional).
    GWrite {
        /// Message size.
        size: usize,
        /// Interleave gFLUSH.
        flush: bool,
    },
    /// gMEMCPY of `size` bytes.
    GMemcpy {
        /// Copy size.
        size: usize,
        /// Interleave local flush.
        flush: bool,
    },
    /// gCAS over the full group.
    GCas,
}

/// One microbenchmark configuration.
#[derive(Debug, Clone)]
pub struct MicroCfg {
    /// Implementation.
    pub backend: Backend,
    /// Group size (member nodes incl. the client) — paper default 3.
    pub group_size: usize,
    /// Operation.
    pub op: MicroOp,
    /// Recorded operations.
    pub ops: usize,
    /// Unrecorded warmup operations.
    pub warmup: usize,
    /// Outstanding operations (the latency tool pipelines lightly; the
    /// throughput tool deeply).
    pub pipeline: usize,
    /// `stress-ng` hogs per replica host.
    pub stress_per_host: usize,
    /// Pre-posted ring depth.
    pub ring_slots: u32,
    /// Seed.
    pub seed: u64,
    /// Collect causal spans, per-hop attribution, labelled metrics and
    /// a Chrome trace (see [`MicroResult::telemetry`]).
    pub telemetry: bool,
}

impl Default for MicroCfg {
    fn default() -> Self {
        MicroCfg {
            backend: Backend::HyperLoop,
            group_size: 3,
            op: MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
            ops: 10_000,
            warmup: 200,
            pipeline: 1,
            stress_per_host: 32,
            ring_slots: 256,
            seed: 42,
            telemetry: false,
        }
    }
}

/// Observability artifacts of a telemetry-enabled run.
#[derive(Debug, Clone)]
pub struct MicroTelemetry {
    /// Per-hop latency attribution over all completed spans.
    pub attribution: Attribution,
    /// Chrome trace-event JSON (Perfetto-loadable).
    pub chrome_trace: String,
    /// Deterministic text dump of the labelled metrics registry.
    pub metrics: String,
    /// Windowed time-series JSON snapshot of the measured run.
    pub timeseries: String,
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Operation latency.
    pub latency: Summary,
    /// Sustained throughput over the measured window (Kops/s).
    pub kops: f64,
    /// Simulated wall time of the measured window (seconds).
    pub sim_secs: f64,
    /// Replica-host CPU consumed by the *replication datapath* over the
    /// measured window, in cores (max across replica hosts). Hog time is
    /// excluded; this is the paper's "CPU consumed in the critical path".
    pub datapath_cores: f64,
    /// Observability artifacts (`Some` iff [`MicroCfg::telemetry`]).
    pub telemetry: Option<MicroTelemetry>,
}

struct Pump {
    issued: usize,
    recorded: usize,
    hist: Histogram,
    cfg: MicroCfg,
}

/// A background tenant that alternates CPU bursts with short sleeps —
/// its sleeper-fairness-credited wakeups contend with the replica's.
struct BurstyHog {
    rng: hl_sim::RngStream,
}

impl hl_cluster::Process for BurstyHog {
    fn on_event(&mut self, ev: hl_cluster::ProcEvent, ctx: &mut hl_cluster::Ctx<'_>) {
        use hl_cluster::ProcEvent;
        match ev {
            ProcEvent::Started | ProcEvent::Timer { .. } => {
                let burst = self.rng.range_u64(2_000_000, 10_000_000);
                ctx.submit_work(SimDuration::from_nanos(burst), 1);
            }
            ProcEvent::WorkDone { .. } => {
                let nap = self.rng.range_u64(500_000, 3_000_000);
                ctx.set_timer(
                    SimDuration::from_nanos(nap),
                    1,
                    SimDuration::from_nanos(500),
                );
            }
            _ => {}
        }
    }
}

/// Run one microbenchmark.
pub fn run_micro(cfg: &MicroCfg) -> MicroResult {
    let n = cfg.group_size - 1;
    let (mut w, mut eng) = ClusterBuilder::new(cfg.group_size)
        .arena_size(sized_arena(cfg))
        .seed(cfg.seed)
        .build();
    if cfg.telemetry {
        w.enable_timeseries(hl_sim::timeseries::DEFAULT_WINDOW);
    }
    // Stagger hog start times so their slices do not expire in lockstep.
    // One third of the background load is bursty (sleep/wake tenants):
    // their sleeper-credited wakeups compete with the replica's and are
    // what drives the heavy tail of the CPU-bound baselines.
    let mut hog_rng = w.rng.stream("hog-stagger");
    for h in 1..cfg.group_size {
        let bursty = cfg.stress_per_host / 3;
        for k in 0..cfg.stress_per_host - bursty {
            let delay = SimDuration::from_nanos(hog_rng.range_u64(0, 1_000_000));
            eng.schedule(delay, move |w: &mut World, eng| {
                w.spawn_hog(HostId(h), &format!("stress-{h}-{k}"), eng);
            });
        }
        for k in 0..bursty {
            let delay = SimDuration::from_nanos(hog_rng.range_u64(0, 3_000_000));
            let seed = hog_rng.u64();
            eng.schedule(delay, move |w: &mut World, eng| {
                let rng = w.rng.stream_idx("bursty", seed);
                let addr = w.start_process(
                    HostId(h),
                    &format!("stress-bursty-{h}-{k}"),
                    None,
                    Box::new(BurstyHog { rng }),
                    SimDuration::from_micros(1),
                    eng,
                );
                let _ = addr;
            });
        }
    }
    let replicas: Vec<HostId> = (1..=n).map(HostId).collect();
    let rep_bytes = rep_bytes(cfg);

    let client: Rc<dyn GroupClient> = match cfg.backend {
        Backend::HyperLoop => {
            let group = GroupBuilder::new(GroupConfig {
                client: HostId(0),
                replicas,
                rep_bytes,
                ring_slots: cfg.ring_slots,
                replenish_period: SimDuration::from_micros(50),
                transport_timeout: None,
            })
            .build(&mut w);
            replica::start_replenishers(&group, &mut w, &mut eng);
            Rc::new(HyperLoopClient::new(group, &mut w))
        }
        Backend::NaiveEvent => Rc::new(
            NaiveBuilder::new(NaiveConfig {
                client: HostId(0),
                replicas,
                rep_bytes,
                ring_slots: cfg.ring_slots,
                mode: Mode::Event,
                ..Default::default()
            })
            .build(&mut w, &mut eng),
        ),
        Backend::NaivePolling { pinned } => Rc::new(
            NaiveBuilder::new(NaiveConfig {
                client: HostId(0),
                replicas,
                rep_bytes,
                ring_slots: cfg.ring_slots,
                mode: Mode::Polling,
                pin_replicas: pinned,
                ..Default::default()
            })
            .build(&mut w, &mut eng),
        ),
    };

    let pump = Rc::new(RefCell::new(Pump {
        issued: 0,
        recorded: 0,
        hist: Histogram::new(),
        cfg: cfg.clone(),
    }));

    // Prime: let stress hogs and pollers start, then reset CPU metrics so
    // utilization reflects the measured window only.
    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    let measure_from = eng.now();
    let hog_busy_at_start_ns: Vec<u64> = (1..cfg.group_size)
        .map(|h| total_hog_busy(&w, h, cfg.stress_per_host))
        .collect();
    let host_busy_at_start: Vec<f64> = (1..cfg.group_size)
        .map(|h| w.hosts[h].cpu.host_utilization(measure_from) * elapsed_cores(&w, h, measure_from))
        .collect();

    for _ in 0..cfg.pipeline {
        issue_next(&client, &pump, &mut w, &mut eng);
    }
    let p2 = pump.clone();
    let total = cfg.ops + cfg.warmup;
    eng.run_while(&mut w, move |_| p2.borrow().recorded < total);

    let now = eng.now();
    let window = now.duration_since(measure_from).as_secs_f64();
    let p = pump.borrow();
    assert_eq!(p.recorded, total, "benchmark did not complete");

    // Datapath CPU = replica host busy time minus hog busy time, over
    // the window, in cores.
    let mut datapath_cores: f64 = 0.0;
    for (i, h) in (1..cfg.group_size).enumerate() {
        let total_busy = w.hosts[h].cpu.host_utilization(now) * elapsed_cores(&w, h, now)
            - host_busy_at_start[i];
        let hog_busy =
            (total_hog_busy(&w, h, cfg.stress_per_host) - hog_busy_at_start_ns[i]) as f64 / 1e9;
        let cores = ((total_busy - hog_busy) / window).max(0.0);
        datapath_cores = datapath_cores.max(cores);
    }

    let telemetry = cfg.telemetry.then(|| {
        w.collect_metrics(now);
        MicroTelemetry {
            attribution: w.attribution(),
            chrome_trace: w.telemetry.chrome_trace(),
            metrics: w.telemetry.metrics.render(),
            timeseries: w.telemetry.timeseries_json(),
        }
    });

    MicroResult {
        latency: p.hist.summary(),
        kops: p.recorded as f64 / window / 1e3,
        sim_secs: window,
        datapath_cores,
        telemetry,
    }
}

fn elapsed_cores(w: &World, h: usize, now: SimTime) -> f64 {
    w.hosts[h].cpu.cores() as f64 * now.as_secs_f64()
}

fn total_hog_busy(w: &World, host: usize, _hogs: usize) -> u64 {
    w.hosts[host].cpu.busy_ns_by_prefix("stress-")
}

fn sized_arena(cfg: &MicroCfg) -> usize {
    (rep_bytes(cfg) as usize + (4 << 20)).next_power_of_two()
}

fn rep_bytes(cfg: &MicroCfg) -> u64 {
    let per_op = match cfg.op {
        MicroOp::GWrite { size, .. } => size.max(64),
        MicroOp::GMemcpy { size, .. } => 2 * size.max(64),
        MicroOp::GCas => 64,
    } as u64;
    (128 * per_op + (64 << 10)).next_power_of_two()
}

fn issue_next(
    client: &Rc<dyn GroupClient>,
    pump: &Rc<RefCell<Pump>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let (idx, op, total) = {
        let p = pump.borrow();
        if p.issued >= p.cfg.ops + p.cfg.warmup {
            return;
        }
        (p.issued as u64, p.cfg.op, p.cfg.ops + p.cfg.warmup)
    };
    let _ = total;
    pump.borrow_mut().issued += 1;

    let c2 = client.clone();
    let p2 = pump.clone();
    let done: hyperloop::OnDone = Box::new(move |w, eng, r| {
        {
            let mut p = p2.borrow_mut();
            if p.recorded >= p.cfg.warmup {
                p.hist.record(r.latency.as_nanos());
            }
            p.recorded += 1;
        }
        issue_next(&c2, &p2, w, eng);
    });

    // Rotate over 128 disjoint offsets so pipelined ops do not overlap.
    let slot = idx % 128;
    let res = match op {
        MicroOp::GWrite { size, flush } => {
            let data = vec![(idx & 0xff) as u8; size];
            client.gwrite(w, eng, slot * size.max(64) as u64, &data, flush, done)
        }
        MicroOp::GMemcpy { size, flush } => {
            let base = 128 * size.max(64) as u64; // db area after the "log"
            client.gmemcpy(
                w,
                eng,
                slot * size.max(64) as u64,
                base + slot * size.max(64) as u64,
                size as u32,
                flush,
                done,
            )
        }
        MicroOp::GCas => {
            let g = client.group_size();
            let all = (1u32 << g) - 1;
            // Alternate acquire/release on a per-slot lock word so every
            // CAS succeeds.
            let word = slot * 64;
            let acquire = (idx / 128) % 2 == 0;
            let (cmp, swp) = if acquire {
                (0, idx | 1)
            } else {
                ((idx - 128) | 1, 0)
            };
            client.gcas(w, eng, word, cmp, swp, all, done)
        }
    };
    if res.is_err() {
        // Ring credits exhausted: retry shortly (counted as queueing
        // delay by the completion timestamps of later ops, as in a real
        // client).
        pump.borrow_mut().issued -= 1;
        let c3 = client.clone();
        let p3 = pump.clone();
        eng.schedule(SimDuration::from_micros(20), move |w, eng| {
            issue_next(&c3, &p3, w, eng);
        });
    }
}
