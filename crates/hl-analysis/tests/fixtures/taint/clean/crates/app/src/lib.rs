// Negative fixture: the entry only reaches deterministic helpers.
pub fn on_packet(x: u64) -> u64 {
    mid::mix(x)
}
