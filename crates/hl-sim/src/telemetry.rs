//! Structured, causal telemetry: op spans, per-hop latency attribution
//! and a labelled metrics registry.
//!
//! The free-form [`crate::Tracer`] answers "what happened"; this module
//! answers "where did the latency go". Every group primitive (and every
//! naive-baseline op) allocates an **OpId** at issue time. The id rides
//! inside WQE descriptors, fabric packets and CQEs, so each layer can
//! stamp a typed [`Stage`] event onto the op without knowing anything
//! about the layers above it. The resulting per-op event list is a
//! causal span: sorting the events by time and taking consecutive
//! deltas decomposes the end-to-end latency into named hop segments
//! (client post, wire, WAIT block, DMA, replica CPU, …) whose durations
//! telescope to the measured latency *exactly* — integer nanoseconds,
//! no residue.
//!
//! Three consumers sit on top:
//!
//! * [`Telemetry::attribution`] — per-kind latency breakdown ranking
//!   segments by their contribution to the mean/p50/p99 (the paper's
//!   Fig 2/9 "where does the tail come from" analysis);
//! * [`Metrics`] — counters/gauges/histograms keyed by
//!   `(name, labels)` in `BTreeMap`s so iteration (and any render) is
//!   deterministic by name;
//! * [`Telemetry::chrome_trace`] — a hand-rolled Chrome trace-event
//!   JSON export (fixed field order, integer-derived timestamps) that
//!   loads in Perfetto / `chrome://tracing`.

use crate::stats::Histogram;
use crate::time::{SimDuration, SimTime};
use crate::timeseries::TimeSeries;
use std::collections::{BTreeMap, VecDeque};

/// What kind of operation a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// HyperLoop gWRITE (optionally with interleaved gFLUSH).
    GWrite,
    /// HyperLoop standalone gFLUSH (rides the gWRITE ring).
    GFlush,
    /// HyperLoop gMEMCPY.
    GMemcpy,
    /// HyperLoop gCAS.
    GCas,
    /// Naive-baseline replicated write.
    NaiveWrite,
    /// Naive-baseline flush.
    NaiveFlush,
    /// Naive-baseline memcpy (log apply).
    NaiveMemcpy,
    /// Naive-baseline CAS.
    NaiveCas,
}

impl OpKind {
    /// Short label used in exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::GWrite => "gWRITE",
            OpKind::GFlush => "gFLUSH",
            OpKind::GMemcpy => "gMEMCPY",
            OpKind::GCas => "gCAS",
            OpKind::NaiveWrite => "naive-WRITE",
            OpKind::NaiveFlush => "naive-FLUSH",
            OpKind::NaiveMemcpy => "naive-MEMCPY",
            OpKind::NaiveCas => "naive-CAS",
        }
    }

    /// True for the naive (CPU-involved) baseline kinds.
    pub fn is_naive(self) -> bool {
        matches!(
            self,
            OpKind::NaiveWrite | OpKind::NaiveFlush | OpKind::NaiveMemcpy | OpKind::NaiveCas
        )
    }
}

/// A typed point on an op's causal timeline.
///
/// Each stage *ends* a named segment: the time between the previous
/// event and this one is attributed to [`Stage::segment`]. `OpBegin`
/// opens the span and ends nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Span opened (op issued by the client library).
    OpBegin,
    /// Client finished building descriptors and rang the doorbell.
    ClientPost,
    /// A NIC fetched one of the op's WQEs from host memory.
    NicFetch,
    /// A WAIT WQE for this op parked (its CQ condition not yet met).
    WaitPark,
    /// A parked WAIT unblocked and granted the op's WQEs to the NIC.
    WaitFire,
    /// A packet belonging to the op left a NIC onto the wire.
    TxWire,
    /// A packet belonging to the op arrived at a NIC.
    RxWire,
    /// A NIC-local DMA (copy/CAS/flush) for the op finished.
    DmaDone,
    /// A CQE for the op was delivered to a completion queue.
    CqeDeliver,
    /// A replica CPU picked the op off its run queue (naive only).
    CpuWake,
    /// A replica CPU finished processing the op (naive only).
    CpuDone,
    /// Span closed (group ACK reached the issuing client).
    OpEnd,
}

impl Stage {
    /// Name of the segment this stage ends, if any.
    pub fn segment(self) -> Option<&'static str> {
        match self {
            Stage::OpBegin => None,
            Stage::ClientPost => Some("client-post"),
            Stage::NicFetch => Some("nic-queue"),
            Stage::WaitPark => Some("nic-queue"),
            Stage::WaitFire => Some("wait-block"),
            Stage::TxWire => Some("wqe-exec"),
            Stage::RxWire => Some("wire"),
            Stage::DmaDone => Some("dma"),
            Stage::CqeDeliver => Some("cqe-deliver"),
            Stage::CpuWake => Some("cpu-queue"),
            Stage::CpuDone => Some("replica-cpu"),
            Stage::OpEnd => Some("ack-deliver"),
        }
    }
}

/// One stamped event on an op's timeline.
#[derive(Debug, Clone, Copy)]
pub struct OpEvent {
    /// When the stage was reached.
    pub at: SimTime,
    /// The stage.
    pub stage: Stage,
    /// Host on which the stage happened.
    pub host: usize,
    /// Stage-specific detail (QP or CQ number; 0 when not meaningful).
    pub detail: u32,
}

/// The full causal record of one operation.
#[derive(Debug, Clone)]
pub struct OpSpan {
    /// Op id (non-zero; 0 is the "untracked" sentinel in descriptors).
    pub id: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Issue time.
    pub begin: SimTime,
    /// Completion time; `None` while in flight (or lost).
    pub end: Option<SimTime>,
    /// Stamped events, in stamping order (not necessarily time order).
    pub events: Vec<OpEvent>,
}

impl OpSpan {
    /// Indices into [`OpSpan::events`] in time order (stable: stamping
    /// order breaks ties). The export paths iterate through this
    /// instead of cloning and sorting the event vector itself.
    pub fn sorted_idx(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.events.len() as u32).collect();
        idx.sort_by_key(|&i| self.events[i as usize].at);
        idx
    }

    /// Events sorted by time (stable: stamping order breaks ties).
    pub fn sorted_events(&self) -> Vec<OpEvent> {
        self.sorted_idx()
            .into_iter()
            .map(|i| self.events[i as usize])
            .collect()
    }

    /// Decompose the span into named segment durations (ns).
    ///
    /// Deltas between consecutive time-sorted events are attributed to
    /// the segment the *later* event ends; the values telescope, so
    /// they sum to `end - begin` exactly when the span is complete.
    /// Events stamped after `end` (chain-internal ACKs can trail the
    /// tail's WRITE_IMM) are off the critical path and excluded; they
    /// remain visible in [`OpSpan::events`] and the Chrome trace.
    pub fn segments(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut prev: Option<&OpEvent> = None;
        for i in self.sorted_idx() {
            let e = &self.events[i as usize];
            if self.end.is_some_and(|end| e.at > end) {
                // Sorted by time, so everything from here on trails `end`.
                break;
            }
            if let Some(p) = prev {
                let d = e.at.as_nanos() - p.at.as_nanos();
                let label = e.stage.segment().unwrap_or("other");
                *out.entry(label).or_insert(0) += d;
            }
            prev = Some(e);
        }
        out
    }

    /// End-to-end latency in ns (None while in flight).
    pub fn e2e_ns(&self) -> Option<u64> {
        self.end.map(|e| e.as_nanos() - self.begin.as_nanos())
    }
}

/// An instant annotation on the global timeline (fault injected, link
/// healed, recovery started, …).
#[derive(Debug, Clone)]
pub struct Mark {
    /// When.
    pub at: SimTime,
    /// What (short label).
    pub name: String,
    /// Host it concerns (0 when global).
    pub host: usize,
}

/// One entry in the flight-recorder ring: a completed span or a mark.
#[derive(Debug, Clone)]
pub enum FlightEvent {
    /// A span that completed (recorded at `end_op` time).
    Span(OpSpan),
    /// An instant annotation.
    Mark(Mark),
}

impl FlightEvent {
    /// Time the entry was recorded at.
    pub fn at(&self) -> SimTime {
        match self {
            FlightEvent::Span(s) => s.end.unwrap_or(s.begin),
            FlightEvent::Mark(m) => m.at,
        }
    }
}

/// A snapshot taken by [`Telemetry::flight_dump`]: the recent-history
/// ring plus every span still in flight at dump time — the sim
/// equivalent of a black-box recorder read-out after an incident.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// When the dump was taken.
    pub at: SimTime,
    /// Why (e.g. `fault:link-down`, `cqe:error`, `probe:nic-stall`).
    pub reason: String,
    /// The last-N completed spans and marks, oldest first.
    pub recent: Vec<FlightEvent>,
    /// Spans open (issued, not completed) at dump time, op-id order.
    pub open_spans: Vec<OpSpan>,
}

impl FlightDump {
    /// Does the dump mention op `id` (open or recently completed)?
    pub fn contains_op(&self, id: u32) -> bool {
        self.open_spans.iter().any(|s| s.id == id)
            || self
                .recent
                .iter()
                .any(|e| matches!(e, FlightEvent::Span(s) if s.id == id))
    }

    /// Deterministic text rendering for postmortem artifacts.
    pub fn render(&self) -> String {
        let mut out = format!(
            "flight dump @{}ns reason={} open={} recent={}\n",
            self.at.as_nanos(),
            self.reason,
            self.open_spans.len(),
            self.recent.len()
        );
        for s in &self.open_spans {
            out.push_str(&format!(
                "  open op {} {} begin={}ns events={}\n",
                s.id,
                s.kind.label(),
                s.begin.as_nanos(),
                s.events.len()
            ));
        }
        for e in &self.recent {
            match e {
                FlightEvent::Span(s) => out.push_str(&format!(
                    "  span op {} {} [{}..{}]ns e2e={}ns\n",
                    s.id,
                    s.kind.label(),
                    s.begin.as_nanos(),
                    s.end.map(|e| e.as_nanos()).unwrap_or(0),
                    s.e2e_ns().unwrap_or(0)
                )),
                FlightEvent::Mark(m) => out.push_str(&format!(
                    "  mark @{}ns {} host={}\n",
                    m.at.as_nanos(),
                    m.name,
                    m.host
                )),
            }
        }
        out
    }
}

/// Ring buffer of the last N completed spans and marks, plus the dumps
/// taken from it. Fed automatically by [`Telemetry::end_op`] /
/// [`Telemetry::mark`] while telemetry is enabled; dumped by
/// [`Telemetry::flight_dump`] on invariant failures, error CQEs and
/// chaos faults.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    max_dumps: usize,
    ring: VecDeque<FlightEvent>,
    dumps: Vec<FlightDump>,
    requested: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder {
            cap: 64,
            max_dumps: 8,
            ring: VecDeque::new(),
            dumps: Vec::new(),
            requested: 0,
        }
    }
}

impl FlightRecorder {
    /// Resize the history ring (drops oldest entries if shrinking).
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        while self.ring.len() > cap {
            self.ring.pop_front();
        }
    }

    /// Cap the number of *stored* dumps (later triggers still count in
    /// [`FlightRecorder::requested`] but keep no snapshot).
    pub fn set_max_dumps(&mut self, n: usize) {
        self.max_dumps = n;
    }

    fn push(&mut self, e: FlightEvent) {
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(e);
    }

    /// Stored dumps, oldest first.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Total dump triggers seen (including ones past the storage cap).
    pub fn requested(&self) -> u64 {
        self.requested
    }
}

/// Labelled metrics registry: counters, gauges and histograms keyed by
/// `(name, labels)`. Both maps and label strings are ordered, so
/// iteration and [`Metrics::render`] are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), f64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

impl Metrics {
    /// Add `delta` to counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: &str, delta: u64) {
        *self
            .counters
            .entry((name.to_string(), labels.to_string()))
            .or_insert(0) += delta;
    }

    /// Set counter `name{labels}` to an absolute value (for snapshots
    /// of monotonic sources: re-collecting overwrites, never
    /// double-counts).
    pub fn counter_set(&mut self, name: &str, labels: &str, v: u64) {
        self.counters
            .insert((name.to_string(), labels.to_string()), v);
    }

    /// Read a counter (0 if absent).
    pub fn counter(&self, name: &str, labels: &str) -> u64 {
        self.counters
            .get(&(name.to_string(), labels.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Set gauge `name{labels}` to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &str, v: f64) {
        self.gauges
            .insert((name.to_string(), labels.to_string()), v);
    }

    /// Read a gauge (0.0 if absent).
    pub fn gauge(&self, name: &str, labels: &str) -> f64 {
        self.gauges
            .get(&(name.to_string(), labels.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Record `v` into histogram `name{labels}`.
    pub fn histogram_record(&mut self, name: &str, labels: &str, v: u64) {
        self.histograms
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .record(v);
    }

    /// Merge a whole histogram into `name{labels}`.
    pub fn histogram_merge(&mut self, name: &str, labels: &str, h: &Histogram) {
        self.histograms
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .merge(h);
    }

    /// Replace histogram `name{labels}` with a snapshot (the overwrite
    /// counterpart of [`Metrics::histogram_merge`], for sources that
    /// accumulate since boot).
    pub fn histogram_set(&mut self, name: &str, labels: &str, h: Histogram) {
        self.histograms
            .insert((name.to_string(), labels.to_string()), h);
    }

    /// Look up a histogram.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&Histogram> {
        self.histograms.get(&(name.to_string(), labels.to_string()))
    }

    /// Iterate counters in `(name, labels)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((n, l), v)| (n.as_str(), l.as_str(), *v))
    }

    /// Iterate gauges in `(name, labels)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges
            .iter()
            .map(|((n, l), v)| (n.as_str(), l.as_str(), *v))
    }

    /// Deterministic text dump (one line per metric, name order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((n, l), v) in &self.counters {
            out.push_str(&format!("counter {n}{{{l}}} {v}\n"));
        }
        for ((n, l), v) in &self.gauges {
            out.push_str(&format!("gauge {n}{{{l}}} {v:.3}\n"));
        }
        for ((n, l), h) in &self.histograms {
            out.push_str(&format!(
                "histogram {n}{{{l}}} n={} p50={} p99={} max={}\n",
                h.count(),
                h.p50(),
                h.p99(),
                h.max()
            ));
        }
        out
    }

    /// Valid Prometheus text exposition (format 0.0.4).
    ///
    /// The internal free-form `k=v,k2=v2` label strings become quoted
    /// `{k="v",k2="v2"}` label sets, metric/label names are sanitized to
    /// the Prometheus charset, each family gets a `# TYPE` line, and
    /// histograms are exported as summaries (quantile samples plus
    /// `_sum`/`_count`). [`Metrics::render`] keeps the legacy free-form
    /// layout for the byte-identity tests that pin it.
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        let mut last: Option<String> = None;
        for ((n, l), v) in &self.counters {
            let name = prom_name(n);
            if last.as_deref() != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} counter\n"));
                last = Some(name.clone());
            }
            out.push_str(&format!("{name}{} {v}\n", prom_labels(l, None)));
        }
        last = None;
        for ((n, l), v) in &self.gauges {
            let name = prom_name(n);
            if last.as_deref() != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                last = Some(name.clone());
            }
            out.push_str(&format!("{name}{} {v}\n", prom_labels(l, None)));
        }
        last = None;
        for ((n, l), h) in &self.histograms {
            let name = prom_name(n);
            if last.as_deref() != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} summary\n"));
                last = Some(name.clone());
            }
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                out.push_str(&format!(
                    "{name}{} {v}\n",
                    prom_labels(l, Some(&format!("quantile=\"{q}\"")))
                ));
            }
            out.push_str(&format!("{name}_sum{} {}\n", prom_labels(l, None), h.sum()));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                prom_labels(l, None),
                h.count()
            ));
        }
        out
    }
}

/// Sanitize a metric name to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(n: &str) -> String {
    let mut out: String = n
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Sanitize a label name to `[a-zA-Z_][a-zA-Z0-9_]*`.
fn prom_label_name(n: &str) -> String {
    let mut out: String = n
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value per the exposition format.
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Convert an internal `k=v,k2=v2` label string (plus an optional
/// pre-formatted extra pair) into a `{k="v",...}` label set. Empty
/// input with no extra yields an empty string (no braces).
fn prom_labels(l: &str, extra: Option<&str>) -> String {
    let mut pairs: Vec<String> = Vec::new();
    for part in l.split(',') {
        if part.is_empty() {
            continue;
        }
        let (k, v) = part.split_once('=').unwrap_or((part, ""));
        pairs.push(format!(
            "{}=\"{}\"",
            prom_label_name(k),
            prom_label_value(v)
        ));
    }
    if let Some(e) = extra {
        pairs.push(e.to_string());
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Promtool-style syntax check for Prometheus text exposition, strict
/// enough to catch exporter bugs: every sample must parse (name, label
/// set, float value), every sample's family must have a preceding
/// `# TYPE` declaration (stricter than promtool, which allows untyped),
/// `_sum`/`_count`/`_bucket` suffixes must match a summary/histogram
/// family, and no family may be declared twice. Returns the number of
/// samples on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {ln}: TYPE missing name"))?;
                let ty = it
                    .next()
                    .ok_or_else(|| format!("line {ln}: TYPE missing type"))?;
                if it.next().is_some() {
                    return Err(format!("line {ln}: TYPE has trailing tokens"));
                }
                if !valid_name(name, true) {
                    return Err(format!("line {ln}: invalid metric name {name:?}"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {ln}: invalid type {ty:?}"));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(format!("line {ln}: duplicate TYPE for {name}"));
                }
            }
            // HELP and free comments pass through.
            continue;
        }
        // Sample: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_name(name, true) {
            return Err(format!("line {ln}: invalid sample name {name:?}"));
        }
        let mut rest = &line[name_end..];
        if let Some(inner) = rest.strip_prefix('{') {
            let close = find_brace_close(inner)
                .ok_or_else(|| format!("line {ln}: unterminated label set"))?;
            validate_labels(&inner[..close]).map_err(|e| format!("line {ln}: {e}"))?;
            rest = &inner[close + 1..];
        }
        let value = rest.trim();
        if value.is_empty() {
            return Err(format!("line {ln}: missing value"));
        }
        let ok_value = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !ok_value {
            return Err(format!("line {ln}: unparseable value {value:?}"));
        }
        // Family check: the sample name, or base_sum/base_count (summary,
        // histogram) / base_bucket (histogram), must be declared.
        let declared = types.contains_key(name)
            || [
                ("_sum", &["summary", "histogram"][..]),
                ("_count", &["summary", "histogram"][..]),
                ("_bucket", &["histogram"][..]),
            ]
            .iter()
            .any(|(suf, tys)| {
                name.strip_suffix(suf)
                    .is_some_and(|base| types.get(base).is_some_and(|t| tys.contains(&t.as_str())))
            });
        if !declared {
            return Err(format!("line {ln}: sample {name} has no TYPE declaration"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Metric (`colons = true`) or label (`colons = false`) name check.
fn valid_name(n: &str, colons: bool) -> bool {
    let mut chars = n.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || (colons && first == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (colons && c == ':'))
}

/// Index of the closing `}` of a label set, honoring quoted values.
fn find_brace_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validate the inside of a `{...}` label set: `name="value"` pairs,
/// comma-separated, values with `\\`/`\"`/`\n` escapes only.
fn validate_labels(s: &str) -> Result<(), String> {
    let mut rest = s;
    loop {
        if rest.is_empty() {
            return Ok(());
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair missing '=' in {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_name(name, false) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        let inner = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("label value not quoted after {name}"))?;
        // Scan to the closing quote, honoring escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in inner.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape \\{c} in label {name}"));
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label {name}"))?;
        rest = &inner[end + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => return Ok(()),
            None => return Err(format!("junk after label {name}: {rest:?}")),
        }
    }
}

/// One segment's contribution to a kind's latency profile.
#[derive(Debug, Clone)]
pub struct SegmentStat {
    /// Segment name (see [`Stage::segment`]).
    pub label: &'static str,
    /// Per-op time spent in this segment (ns values).
    pub hist: Histogram,
    /// Total ns across all ops (ranking key).
    pub total_ns: u64,
    /// Segment mean as a share of the end-to-end mean.
    pub share_mean: f64,
    /// Segment p50 over end-to-end p50.
    pub share_p50: f64,
    /// Segment p99 over end-to-end p99.
    pub share_p99: f64,
}

/// Latency breakdown for one op kind.
#[derive(Debug, Clone)]
pub struct KindBreakdown {
    /// The op kind.
    pub kind: OpKind,
    /// Completed ops of this kind.
    pub ops: u64,
    /// End-to-end latency histogram (ns).
    pub e2e: Histogram,
    /// Segments, ranked by `total_ns` descending (then by name).
    pub segments: Vec<SegmentStat>,
}

impl KindBreakdown {
    /// Total ns this kind spent in `label` (0 if the segment never ran).
    pub fn segment_ns(&self, label: &str) -> u64 {
        self.segments
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.total_ns)
            .unwrap_or(0)
    }
}

/// The full attribution report (see [`Telemetry::attribution`]).
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Per-kind breakdowns, in kind order.
    pub kinds: Vec<KindBreakdown>,
}

impl Attribution {
    /// Look up one kind's breakdown.
    pub fn kind(&self, k: OpKind) -> Option<&KindBreakdown> {
        self.kinds.iter().find(|b| b.kind == k)
    }
}

impl std::fmt::Display for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.kinds {
            writeln!(
                f,
                "{}: n={} e2e p50={}ns p99={}ns",
                b.kind.label(),
                b.ops,
                b.e2e.p50(),
                b.e2e.p99()
            )?;
            for s in &b.segments {
                writeln!(
                    f,
                    "  {:<12} p50={:>8}ns p99={:>8}ns share(mean)={:>5.1}% share(p99)={:>5.1}%",
                    s.label,
                    s.hist.p50(),
                    s.hist.p99(),
                    100.0 * s.share_mean,
                    100.0 * s.share_p99,
                )?;
            }
        }
        Ok(())
    }
}

/// The telemetry hub owned by the cluster (`World.telemetry`).
///
/// Disabled by default: every stamping entry point is a cheap branch
/// when off, and op id 0 means "untracked" throughout the stack.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    next_op: u32,
    spans: BTreeMap<u32, OpSpan>,
    marks: Vec<Mark>,
    /// The labelled metrics registry.
    pub metrics: Metrics,
    /// Windowed time-series store (off unless
    /// [`Telemetry::enable_timeseries`] is called).
    pub series: TimeSeries,
    /// Flight recorder fed by `end_op`/`mark` while enabled.
    pub flight: FlightRecorder,
}

impl Telemetry {
    /// Turn span collection on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turn on span collection *and* windowed time-series collection
    /// with the given window width.
    pub fn enable_timeseries(&mut self, window: SimDuration) {
        self.enable();
        self.series.enable(window);
    }

    /// Is span collection on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span; returns its op id (0 when telemetry is disabled).
    pub fn begin_op(&mut self, at: SimTime, kind: OpKind, host: usize) -> u32 {
        if !self.enabled {
            return 0;
        }
        self.next_op += 1;
        let id = self.next_op;
        self.spans.insert(
            id,
            OpSpan {
                id,
                kind,
                begin: at,
                end: None,
                events: vec![OpEvent {
                    at,
                    stage: Stage::OpBegin,
                    host,
                    detail: 0,
                }],
            },
        );
        id
    }

    /// Stamp a stage onto op `op`. No-op for id 0 or unknown ids.
    pub fn stage(&mut self, at: SimTime, op: u32, stage: Stage, host: usize, detail: u32) {
        if op == 0 {
            return;
        }
        if let Some(s) = self.spans.get_mut(&op) {
            s.events.push(OpEvent {
                at,
                stage,
                host,
                detail,
            });
        }
    }

    /// Close op `op` (records the `OpEnd` stage too). The completed
    /// span is also pushed into the flight-recorder ring.
    pub fn end_op(&mut self, at: SimTime, op: u32, host: usize) {
        if op == 0 {
            return;
        }
        if let Some(s) = self.spans.get_mut(&op) {
            s.events.push(OpEvent {
                at,
                stage: Stage::OpEnd,
                host,
                detail: 0,
            });
            s.end = Some(at);
            let done = s.clone();
            self.flight.push(FlightEvent::Span(done));
        }
    }

    /// Record an instant annotation (fault injected, recovery, …).
    pub fn mark(&mut self, at: SimTime, name: impl Into<String>, host: usize) {
        if !self.enabled {
            return;
        }
        let m = Mark {
            at,
            name: name.into(),
            host,
        };
        self.flight.push(FlightEvent::Mark(m.clone()));
        self.marks.push(m);
    }

    /// Take a flight-recorder dump: snapshot the recent-history ring and
    /// every span still open at `at`. Called automatically on error CQEs
    /// and chaos-fault injection; call it directly on invariant
    /// failures. Each trigger bumps the `flight_dumps` counter; at most
    /// [`FlightRecorder::set_max_dumps`] snapshots are stored.
    pub fn flight_dump(&mut self, at: SimTime, reason: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.flight.requested += 1;
        self.metrics.counter_add("flight_dumps", "", 1);
        if self.flight.dumps.len() >= self.flight.max_dumps {
            return;
        }
        let mut open: Vec<OpSpan> = self
            .spans
            .values()
            .filter(|s| s.end.is_none())
            .cloned()
            .collect();
        // BTreeMap order = op-id order; cap so a saturated pipeline
        // doesn't make dumps unboundedly large.
        open.truncate(64);
        let dump = FlightDump {
            at,
            reason: reason.into(),
            recent: self.flight.ring.iter().cloned().collect(),
            open_spans: open,
        };
        self.flight.dumps.push(dump);
    }

    /// JSON snapshot of the time-series store with this run's marks
    /// attached (see [`TimeSeries::to_json`]).
    pub fn timeseries_json(&self) -> String {
        self.series.to_json(&self.marks)
    }

    /// CSV snapshot of the time-series store ([`TimeSeries::to_csv`]).
    pub fn timeseries_csv(&self) -> String {
        self.series.to_csv()
    }

    /// ASCII timeline of sketch metric `metric` with this run's marks
    /// overlaid (see [`TimeSeries::render_timeline`]).
    pub fn timeline(&self, metric: &str) -> String {
        self.series.render_timeline(&self.marks, metric)
    }

    /// Record a named state-machine transition: an instant mark
    /// (`transition:{what}:{from}->{to}`) plus a labelled counter
    /// (`state_transitions{what=…,to=…}`), so campaigns can count
    /// degrade / re-promote / rejoin edges without parsing mark names.
    /// Like [`Telemetry::mark`], a no-op while telemetry is disabled.
    pub fn transition(&mut self, at: SimTime, what: &str, from: &str, to: &str, host: usize) {
        if !self.enabled {
            return;
        }
        self.mark(at, format!("transition:{what}:{from}->{to}"), host);
        self.metrics
            .counter_add("state_transitions", &format!("what={what},to={to}"), 1);
    }

    /// All spans, by op id.
    pub fn spans(&self) -> impl Iterator<Item = &OpSpan> {
        self.spans.values()
    }

    /// One span.
    pub fn span(&self, op: u32) -> Option<&OpSpan> {
        self.spans.get(&op)
    }

    /// Recorded instant marks, in stamping order.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Build the per-hop latency attribution report over all *completed*
    /// spans. Segments are ranked by total time descending, i.e. by how
    /// much of the kind's aggregate latency they explain.
    pub fn attribution(&self) -> Attribution {
        // kind -> (e2e hist, ops, label -> (hist, total))
        type PerKind = (Histogram, u64, BTreeMap<&'static str, (Histogram, u64)>);
        let mut by_kind: BTreeMap<OpKind, PerKind> = BTreeMap::new();
        for s in self.spans.values() {
            let Some(e2e) = s.e2e_ns() else { continue };
            let entry = by_kind
                .entry(s.kind)
                .or_insert_with(|| (Histogram::new(), 0, BTreeMap::new()));
            entry.0.record(e2e);
            entry.1 += 1;
            for (label, ns) in s.segments() {
                let seg = entry
                    .2
                    .entry(label)
                    .or_insert_with(|| (Histogram::new(), 0));
                seg.0.record(ns);
                seg.1 += ns;
            }
        }
        let mut kinds = Vec::new();
        for (kind, (e2e, ops, segs)) in by_kind {
            let e2e_mean = e2e.mean().max(1.0);
            let e2e_p50 = e2e.p50().max(1) as f64;
            let e2e_p99 = e2e.p99().max(1) as f64;
            let mut segments: Vec<SegmentStat> = segs
                .into_iter()
                .map(|(label, (hist, total_ns))| SegmentStat {
                    label,
                    share_mean: hist.mean() / e2e_mean,
                    share_p50: hist.p50() as f64 / e2e_p50,
                    share_p99: hist.p99() as f64 / e2e_p99,
                    hist,
                    total_ns,
                })
                .collect();
            segments.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(b.label)));
            kinds.push(KindBreakdown {
                kind,
                ops,
                e2e,
                segments,
            });
        }
        Attribution { kinds }
    }

    /// Export everything as Chrome trace-event JSON (Perfetto-loadable).
    ///
    /// Serialization is hand-rolled with a fixed field order and
    /// integer-derived microsecond timestamps, so the same sim run
    /// always produces byte-identical output. Layout: one process per
    /// host, one thread per op id; each hop segment is a complete
    /// (`"X"`) event on the host where it ended, and marks are instant
    /// (`"i"`) events.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let mut max_host = 0usize;
        for s in self.spans.values() {
            for e in &s.events {
                max_host = max_host.max(e.host);
            }
        }
        for m in &self.marks {
            max_host = max_host.max(m.host);
        }
        for h in 0..=max_host {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{h},\"tid\":0,\
                 \"args\":{{\"name\":\"host{h}\"}}}}"
            ));
        }
        for s in self.spans.values() {
            // Sort indices, not events: spans can hold thousands of
            // stamped events and export runs per span, so cloning the
            // event vector here was the hottest allocation in the
            // exporter.
            let idx = s.sorted_idx();
            let end_ns = s.end.map(|e| e.as_nanos());
            if let Some(end_ns) = end_ns {
                // Whole-op span on the issuing host.
                let begin_ns = s.begin.as_nanos();
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"op\":{}}}}}",
                    s.kind.label(),
                    ts_us(begin_ns),
                    ts_us(end_ns - begin_ns),
                    idx.first().map(|&i| s.events[i as usize].host).unwrap_or(0),
                    s.id,
                    s.id
                ));
            }
            for pair in idx.windows(2) {
                let (a, b) = (&s.events[pair[0] as usize], &s.events[pair[1] as usize]);
                let Some(label) = b.stage.segment() else {
                    continue;
                };
                let start = a.at.as_nanos();
                let dur = b.at.as_nanos() - start;
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"op\":{},\"detail\":{}}}}}",
                    label,
                    s.kind.label(),
                    ts_us(start),
                    ts_us(dur),
                    b.host,
                    s.id,
                    s.id,
                    b.detail
                ));
            }
        }
        for m in &self.marks {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mark\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\
                 \"tid\":0,\"s\":\"g\"}}",
                m.name,
                ts_us(m.at.as_nanos()),
                m.host
            ));
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("]}");
        out
    }
}

/// Nanoseconds rendered as a decimal microsecond timestamp without ever
/// constructing a float (keeps the export bit-stable everywhere).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_telemetry_allocates_no_ops() {
        let mut tel = Telemetry::default();
        assert_eq!(tel.begin_op(t(0), OpKind::GWrite, 0), 0);
        tel.stage(t(5), 0, Stage::TxWire, 0, 0);
        tel.end_op(t(9), 0, 0);
        assert_eq!(tel.spans().count(), 0);
    }

    #[test]
    fn segments_telescope_to_e2e() {
        let mut tel = Telemetry::default();
        tel.enable();
        let op = tel.begin_op(t(100), OpKind::GWrite, 0);
        assert_eq!(op, 1);
        // Stamp out of order: sorting must still telescope.
        tel.stage(t(400), op, Stage::RxWire, 1, 0);
        tel.stage(t(150), op, Stage::ClientPost, 0, 3);
        tel.stage(t(300), op, Stage::TxWire, 0, 3);
        tel.end_op(t(1000), op, 0);
        let s = tel.span(op).unwrap();
        let segs = s.segments();
        let total: u64 = segs.values().sum();
        assert_eq!(total, s.e2e_ns().unwrap());
        assert_eq!(segs["client-post"], 50);
        assert_eq!(segs["wqe-exec"], 150);
        assert_eq!(segs["wire"], 100);
        assert_eq!(segs["ack-deliver"], 600);
    }

    #[test]
    fn late_events_do_not_break_telescoping() {
        let mut tel = Telemetry::default();
        tel.enable();
        let op = tel.begin_op(t(0), OpKind::GWrite, 0);
        tel.stage(t(100), op, Stage::TxWire, 0, 0);
        tel.end_op(t(500), op, 0);
        // A chain-internal ACK trailing the client-visible completion.
        tel.stage(t(700), op, Stage::RxWire, 1, 0);
        let s = tel.span(op).unwrap();
        let total: u64 = s.segments().values().sum();
        assert_eq!(total, s.e2e_ns().unwrap());
        // The raw event list still holds the late arrival.
        assert_eq!(s.events.len(), 4);
    }

    #[test]
    fn attribution_ranks_by_total() {
        let mut tel = Telemetry::default();
        tel.enable();
        for _ in 0..10 {
            let op = tel.begin_op(t(0), OpKind::NaiveWrite, 0);
            tel.stage(t(10), op, Stage::ClientPost, 0, 0);
            tel.stage(t(20), op, Stage::CpuWake, 1, 0);
            tel.stage(t(920), op, Stage::CpuDone, 1, 0);
            tel.end_op(t(1000), op, 0);
        }
        let a = tel.attribution();
        let b = a.kind(OpKind::NaiveWrite).unwrap();
        assert_eq!(b.ops, 10);
        assert_eq!(b.segments[0].label, "replica-cpu");
        assert!(b.segments[0].share_mean > 0.8);
        assert_eq!(b.segment_ns("replica-cpu"), 9000);
    }

    #[test]
    fn chrome_trace_shape_and_determinism() {
        let build = || {
            let mut tel = Telemetry::default();
            tel.enable();
            let op = tel.begin_op(t(1500), OpKind::GCas, 0);
            tel.stage(t(2000), op, Stage::TxWire, 0, 7);
            tel.end_op(t(3001), op, 0);
            tel.mark(t(2500), "fault:drop", 1);
            tel.chrome_trace()
        };
        let j1 = build();
        let j2 = build();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"traceEvents\":["));
        assert!(j1.ends_with("]}"));
        assert!(j1.contains("\"ph\":\"X\""));
        assert!(j1.contains("\"ph\":\"M\""));
        assert!(j1.contains("\"ph\":\"i\""));
        assert!(j1.contains("\"ts\":1.500"));
        assert!(j1.contains("\"name\":\"gCAS\""));
        // No floats were involved: fractional digits are exact.
        assert!(j1.contains("\"dur\":1.501"));
    }

    #[test]
    fn metrics_registry_is_name_ordered() {
        let mut m = Metrics::default();
        m.counter_add("z.last", "host=0", 1);
        m.counter_add("a.first", "host=1", 2);
        m.counter_add("a.first", "host=0", 3);
        m.gauge_set("occ", "qp=4", 0.5);
        m.histogram_record("lat", "host=0", 100);
        let names: Vec<_> = m.counters().map(|(n, l, _)| format!("{n}|{l}")).collect();
        assert_eq!(names, ["a.first|host=0", "a.first|host=1", "z.last|host=0"]);
        assert_eq!(m.counter("a.first", "host=0"), 3);
        assert_eq!(m.counter_total("a.first"), 5);
        assert_eq!(m.gauge("occ", "qp=4"), 0.5);
        assert_eq!(m.histogram("lat", "host=0").unwrap().count(), 1);
        let r = m.render();
        assert!(r.contains("counter a.first{host=0} 3"));
        assert!(r.contains("histogram lat{host=0} n=1"));
    }

    #[test]
    fn render_prom_is_valid_exposition() {
        let mut m = Metrics::default();
        m.counter_add("ops_total", "shard=1,backend=hyper", 42);
        m.counter_add("ops_total", "shard=2,backend=hyper", 7);
        m.gauge_set("health_score", "layer=health", 3.0);
        m.gauge_set("occupancy", "", 0.5);
        m.histogram_record("op_latency_ns", "prim=gWRITE-ring", 150_000);
        m.histogram_record("op_latency_ns", "prim=gWRITE-ring", 90_000);
        let prom = m.render_prom();
        let n = validate_exposition(&prom).expect("render_prom must validate");
        // 2 counters + 2 gauges + (3 quantiles + sum + count).
        assert_eq!(n, 9);
        assert!(prom.contains("# TYPE ops_total counter\n"));
        assert!(prom.contains("ops_total{shard=\"1\",backend=\"hyper\"} 42\n"));
        assert!(prom.contains("health_score{layer=\"health\"} 3\n"));
        assert!(prom.contains("occupancy 0.5\n"));
        // Dashes in label values survive; the quantile label is appended.
        assert!(prom.contains("op_latency_ns{prim=\"gWRITE-ring\",quantile=\"0.5\"}"));
        assert!(prom.contains("op_latency_ns_sum{prim=\"gWRITE-ring\"} 240000\n"));
        assert!(prom.contains("op_latency_ns_count{prim=\"gWRITE-ring\"} 2\n"));
        // Legacy render is untouched.
        assert!(m
            .render()
            .contains("counter ops_total{shard=1,backend=hyper} 42"));
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        assert!(validate_exposition("# TYPE a counter\na 1\n").is_ok());
        // Sample without a TYPE declaration.
        assert!(validate_exposition("orphan 1\n").is_err());
        // Duplicate TYPE.
        assert!(validate_exposition("# TYPE a counter\n# TYPE a gauge\na 1\n").is_err());
        // Unquoted label value (the old render() format).
        assert!(validate_exposition("# TYPE a counter\na{layer=health} 3\n").is_err());
        // Bad value.
        assert!(validate_exposition("# TYPE a counter\na nope\n").is_err());
        // Unterminated label set.
        assert!(validate_exposition("# TYPE a counter\na{x=\"1\" 3\n").is_err());
        // _sum/_count ride a summary family; _bucket needs histogram.
        assert!(validate_exposition("# TYPE s summary\ns_sum 4\ns_count 2\n").is_ok());
        assert!(validate_exposition("# TYPE s summary\ns_bucket 4\n").is_err());
        // Inf/NaN values are legal.
        assert!(validate_exposition("# TYPE g gauge\ng +Inf\n").is_ok());
    }

    #[test]
    fn flight_recorder_rings_and_dumps() {
        let mut tel = Telemetry::default();
        tel.enable();
        tel.flight.set_capacity(4);
        // 6 completed ops: ring keeps the last 4.
        for i in 0..6u64 {
            let op = tel.begin_op(t(i * 100), OpKind::GWrite, 0);
            tel.end_op(t(i * 100 + 50), op, 0);
        }
        // One op left open — the "victim".
        let victim = tel.begin_op(t(700), OpKind::GCas, 0);
        tel.mark(t(710), "fault:link-down", 1);
        tel.flight_dump(t(720), "fault:link-down");
        let dumps = tel.flight.dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.reason, "fault:link-down");
        assert!(d.contains_op(victim), "open victim span must be captured");
        assert!(!d.contains_op(1), "op 1 rolled off the 4-entry ring");
        assert!(d.contains_op(6));
        assert!(d
            .recent
            .iter()
            .any(|e| matches!(e, FlightEvent::Mark(m) if m.name == "fault:link-down")));
        assert_eq!(tel.metrics.counter("flight_dumps", ""), 1);
        let r = d.render();
        assert!(r.contains("reason=fault:link-down"));
        assert!(r.contains("open op 7 gCAS"));
    }

    #[test]
    fn flight_dump_storage_is_capped_but_counted() {
        let mut tel = Telemetry::default();
        tel.enable();
        tel.flight.set_max_dumps(2);
        for i in 0..5u64 {
            tel.flight_dump(t(i), "invariant");
        }
        assert_eq!(tel.flight.dumps().len(), 2);
        assert_eq!(tel.flight.requested(), 5);
        assert_eq!(tel.metrics.counter("flight_dumps", ""), 5);
    }

    #[test]
    fn disabled_telemetry_takes_no_dumps() {
        let mut tel = Telemetry::default();
        tel.flight_dump(t(0), "nope");
        assert_eq!(tel.flight.dumps().len(), 0);
        assert_eq!(tel.flight.requested(), 0);
        assert_eq!(tel.metrics.counter("flight_dumps", ""), 0);
    }

    #[test]
    fn telemetry_timeseries_roundtrip() {
        let mut tel = Telemetry::default();
        tel.enable_timeseries(crate::SimDuration::from_micros(1000));
        assert!(tel.enabled());
        assert!(tel.series.enabled());
        tel.series
            .record(t(500_000), "op_latency_ns", "shard=0", 120_000);
        tel.mark(t(600_000), "fault:jitter", 0);
        let json = tel.timeseries_json();
        assert!(json.contains("\"name\":\"op_latency_ns\""));
        assert!(json.contains("\"name\":\"fault:jitter\""));
        let tl = tel.timeline("op_latency_ns");
        assert!(tl.contains("== op_latency_ns{shard=0}"));
        assert!(tl.contains("<- fault:jitter"));
        assert!(tel
            .timeseries_csv()
            .contains("histogram,op_latency_ns,shard=0,0,1"));
    }
}
