//! Chaos campaigns: seeded fault schedules against the replicated chain.
//!
//! Each campaign builds a 4-host cluster (client `h0`, chain `h1`-`h2`,
//! standby `h3`), drives a stream of durable gWRITEs through a
//! deadline-supervised [`RetryClient`], and replays the deterministic
//! fault schedule [`FaultSchedule::generate`] derives from the seed —
//! packet-loss windows, one-way partitions, link failures, NIC and
//! WAIT-engine stalls, CPU hogs, and sometimes a permanent host crash.
//! Two detection paths — heartbeat misses and transport-error CQEs on
//! the client's reliable outbound QPs — funnel into one rebuild per
//! chain generation, and every rebuilt chain is re-armed, so campaigns
//! survive cascaded and spurious failures until the standby pool runs
//! out.
//!
//! Invariants checked at quiescence, for every seed:
//!
//! 1. **Never hangs** — every supervised op settled (ACK or typed error).
//! 2. **No acked-write loss** — every ACKed record is present and
//!    byte-identical on the client copy and every member of the final
//!    chain.
//! 3. **Reconvergence** — an append issued after the fault window
//!    completes successfully.
//! 4. **Reproducibility** — the same seed yields a byte-identical trace
//!    (checked by `same_seed_reproduces_identical_trace`).
//!
//! A failing campaign prints its seed; re-run `run_campaign(seed)` to
//! reproduce the exact event sequence.

use hyperloop_repro::cluster::chaos::FaultSchedule;
use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::GroupClient;
use hyperloop_repro::hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop_repro::hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupRef, HyperLoopClient, RetryClient,
};
use hyperloop_repro::sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const N_RECORDS: usize = 24;
const REC_BYTES: usize = 64;
const STANDBY: HostId = HostId(3);

fn record(k: usize) -> Vec<u8> {
    let mut v = format!("chaos-record-{k:04}-").into_bytes();
    while v.len() < REC_BYTES {
        v.push(b'a' + (k % 26) as u8);
    }
    v
}

/// Rebuild `group`'s chain without `failed`, drawing a replacement from
/// the standby pool if one is left, and re-arm detection on the rebuilt
/// chain. The per-group latch makes each chain generation rebuild at
/// most once, however many detection paths fire.
#[allow(clippy::too_many_arguments)]
fn trigger_rebuild(
    latch: &Rc<RefCell<bool>>,
    group: &GroupRef,
    retry: &RetryClient,
    members: &[HostId],
    standbys: &Rc<RefCell<Vec<HostId>>>,
    failed: HostId,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    if std::mem::replace(&mut *latch.borrow_mut(), true) {
        return;
    }
    group.borrow_mut().paused = true;
    let survivors: Vec<HostId> = members.iter().copied().filter(|&h| h != failed).collect();
    let new_member = standbys.borrow_mut().pop();
    if survivors.is_empty() && new_member.is_none() {
        return;
    }
    let mut final_members = survivors.clone();
    if let Some(nm) = new_member {
        final_members.push(nm);
    }
    let retry = retry.clone();
    let standbys = standbys.clone();
    recovery::rebuild_chain(
        w,
        eng,
        group,
        survivors,
        new_member,
        64,
        Box::new(move |w, eng, new_client| {
            retry.swap(new_client.clone());
            arm_recovery(new_client.group(), &retry, final_members, standbys, w, eng);
        }),
    );
}

/// Arm both detection paths on `group` — heartbeat misses and
/// transport-error CQEs on the client's reliable outbound QPs — and
/// funnel them into one rebuild per chain generation. Rebuilt chains
/// are re-armed, so campaigns survive cascaded and spurious failures
/// until the standby pool (and then the chain itself) runs out.
fn arm_recovery(
    group: &GroupRef,
    retry: &RetryClient,
    members: Vec<HostId>,
    standbys: Rc<RefCell<Vec<HostId>>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let latch = Rc::new(RefCell::new(false));
    {
        let latch = latch.clone();
        let g = group.clone();
        let retry = retry.clone();
        let members = members.clone();
        let standbys = standbys.clone();
        recovery::start_heartbeats(
            group,
            HeartbeatConfig {
                period: SimDuration::from_millis(2),
                miss_threshold: 3,
            },
            Box::new(move |w, eng, idx| {
                let failed = members[idx];
                trigger_rebuild(&latch, &g, &retry, &members, &standbys, failed, w, eng);
            }),
            w,
            eng,
        );
    }
    {
        let g = group.clone();
        let retry = retry.clone();
        recovery::watch_transport_errors(
            group,
            w,
            Box::new(move |w, eng, _cqe| {
                // Transport errors surface on the hop to the head.
                let failed = members[0];
                trigger_rebuild(&latch, &g, &retry, &members, &standbys, failed, w, eng);
            }),
        );
    }
}

struct CampaignResult {
    w: World,
    retry: RetryClient,
    acked: Vec<bool>,
    failed_ops: u32,
    final_ok: Option<bool>,
    trace: String,
    chrome_trace: String,
}

fn run_campaign(seed: u64) -> CampaignResult {
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    w.tracer.enable(&["chaos", "recovery", "fault"]);
    w.enable_telemetry();

    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 64,
        // The retry budget (8 x 3ms) outlasts any transient fault window
        // the schedule can generate, so only a permanent head failure
        // exhausts it and escalates to a transport-error rebuild.
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    let retry = RetryClient::with_policy(
        client,
        DeadlinePolicy {
            deadline: SimDuration::from_millis(2),
            max_attempts: 20,
            backoff: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(4),
        },
    );

    arm_recovery(
        &group,
        &retry,
        vec![HostId(1), HostId(2)],
        Rc::new(RefCell::new(vec![STANDBY])),
        &mut w,
        &mut eng,
    );

    // Workload: one durable record every 2ms, spanning the fault window.
    let acked = Rc::new(RefCell::new(vec![false; N_RECORDS]));
    let failed_ops = Rc::new(RefCell::new(0u32));
    for k in 0..N_RECORDS {
        let retry = retry.clone();
        let acked = acked.clone();
        let failed_ops = failed_ops.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 2_000_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry.gwrite(
                w,
                eng,
                (k * REC_BYTES) as u64,
                &record(k),
                true,
                Box::new(move |_w, _e, r| match r {
                    Ok(_) => acked.borrow_mut()[k] = true,
                    Err(_) => *failed_ops.borrow_mut() += 1,
                }),
            );
        });
    }

    let sched = FaultSchedule::generate(
        seed,
        &[HostId(1), HostId(2)],
        HostId(0),
        SimTime::from_nanos(2_000_000),
        SimTime::from_nanos(50_000_000),
    );
    sched.apply(&mut eng);

    // Quiesce: all transients heal by ~63ms, supervision settles every
    // op well before 200ms.
    eng.run_until(&mut w, SimTime::from_nanos(200_000_000));

    // Reconvergence: a fresh append on the (possibly rebuilt) chain.
    let final_ok = Rc::new(RefCell::new(None::<bool>));
    {
        let final_ok = final_ok.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            (N_RECORDS * REC_BYTES) as u64,
            &record(N_RECORDS),
            true,
            Box::new(move |_w, _e, r| *final_ok.borrow_mut() = Some(r.is_ok())),
        );
    }
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));

    let trace = w
        .tracer
        .entries()
        .iter()
        .map(|e| format!("{} {} {}\n", e.at.as_nanos(), e.sys, e.msg))
        .collect();
    let now = eng.now();
    w.collect_metrics(now);
    let chrome_trace = w.telemetry.chrome_trace();
    let acked = acked.borrow().clone();
    let failed_ops = *failed_ops.borrow();
    let final_ok = *final_ok.borrow();
    CampaignResult {
        w,
        retry,
        acked,
        failed_ops,
        final_ok,
        trace,
        chrome_trace,
    }
}

fn assert_invariants(r: &CampaignResult, seed: u64) {
    // 1. Never hangs: every supervised op settled one way or the other.
    assert_eq!(
        r.retry.outstanding(),
        0,
        "seed {seed}: supervised ops left unsettled"
    );
    let n_acked = r.acked.iter().filter(|&&a| a).count();
    assert_eq!(
        n_acked + r.failed_ops as usize,
        N_RECORDS,
        "seed {seed}: op settled neither ACK nor typed error"
    );
    // 3. Reconvergence: the post-heal append completed.
    assert_eq!(
        r.final_ok,
        Some(true),
        "seed {seed}: append after the fault window did not complete"
    );
    // 5. Race-freedom (feature `check-ownership`): the WQE-ownership &
    // DMA race detector saw nothing across the whole campaign.
    #[cfg(feature = "check-ownership")]
    {
        let report = r.w.race_report();
        assert!(
            report.is_empty(),
            "seed {seed}: race detector flagged:\n{}",
            report.join("\n")
        );
    }
    // 2. No acked-write loss: every ACKed record is byte-identical on
    // the client copy and every member of the final chain.
    let c = r.retry.client();
    for k in 0..N_RECORDS {
        if !r.acked[k] {
            continue;
        }
        let want = record(k);
        for m in 0..c.group_size() {
            let host = c.member_host(m);
            let addr = c.member_addr(m, (k * REC_BYTES) as u64);
            let got = r.w.hosts[host.0].mem.read_vec(addr, REC_BYTES).unwrap();
            assert_eq!(
                got, want,
                "seed {seed}: acked record {k} diverges on member {m} ({host})"
            );
        }
    }
}

macro_rules! chaos_campaigns {
    ($($name:ident: $seed:expr,)*) => {$(
        #[test]
        fn $name() {
            let r = run_campaign($seed);
            assert_invariants(&r, $seed);
        }
    )*}
}

chaos_campaigns! {
    chaos_seed_101: 101,
    chaos_seed_102: 102,
    chaos_seed_103: 103,
    chaos_seed_104: 104,
    chaos_seed_105: 105,
    chaos_seed_106: 106,
    chaos_seed_107: 107,
    chaos_seed_108: 108,
    chaos_seed_109: 109,
    chaos_seed_110: 110,
    chaos_seed_111: 111,
    chaos_seed_112: 112,
    chaos_seed_113: 113,
    chaos_seed_114: 114,
    chaos_seed_115: 115,
    chaos_seed_116: 116,
    chaos_seed_117: 117,
    chaos_seed_118: 118,
    chaos_seed_119: 119,
    chaos_seed_120: 120,
    chaos_seed_121: 121,
    chaos_seed_122: 122,
}

/// Satellite invariant: one campaign, run twice with the same seed,
/// produces byte-identical trace streams.
#[test]
fn same_seed_reproduces_identical_trace() {
    let a = run_campaign(107);
    let b = run_campaign(107);
    assert!(
        !a.trace.is_empty(),
        "campaign produced no trace entries; determinism check is vacuous"
    );
    assert_eq!(
        a.trace, b.trace,
        "same seed produced diverging event traces"
    );
}

/// Telemetry determinism: for several chaos seeds, the same seed yields
/// a byte-identical Chrome trace-event export — causal spans, per-hop
/// segments, fault marks and all. Any nondeterminism in op-id
/// allocation, event stamping order, or the hand-rolled serializer
/// would show up here.
#[test]
fn same_seed_reproduces_identical_chrome_trace() {
    for seed in [103, 107, 111] {
        let a = run_campaign(seed);
        let b = run_campaign(seed);
        assert!(
            a.chrome_trace.starts_with("{\"traceEvents\":["),
            "seed {seed}: export is not Chrome trace-event JSON"
        );
        assert!(
            a.chrome_trace.contains("\"name\":\"gWRITE\""),
            "seed {seed}: no gWRITE spans in the export; determinism check is vacuous"
        );
        assert!(
            a.chrome_trace.contains("\"cat\":\"mark\""),
            "seed {seed}: no fault/heal marks in the export"
        );
        assert_eq!(
            a.chrome_trace, b.chrome_trace,
            "seed {seed}: same seed produced diverging Chrome traces"
        );
    }
}

#[test]
#[ignore]
fn debug_campaign() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .expect("set CHAOS_SEED=<u64> to pick the campaign to replay")
        .parse()
        .expect("CHAOS_SEED must be an unsigned integer seed");
    let sched = FaultSchedule::generate(
        seed,
        &[HostId(1), HostId(2)],
        HostId(0),
        SimTime::from_nanos(2_000_000),
        SimTime::from_nanos(50_000_000),
    );
    for e in &sched.events {
        println!(
            "event at {}us dur {:?}us kind {}",
            e.at.as_nanos() / 1000,
            e.duration.map(|d| d.as_nanos() / 1000),
            e.kind
        );
    }
    let r = run_campaign(seed);
    println!("acked: {:?}", r.acked);
    println!("failed_ops: {}", r.failed_ops);
    println!("final_ok: {:?}", r.final_ok);
    println!("outstanding: {}", r.retry.outstanding());
    println!("trace:\n{}", r.trace);
}
