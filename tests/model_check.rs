//! Property-based model checking of the full stack: random operation
//! sequences against a HyperLoop group must leave every member's
//! replicated region byte-identical to a simple shadow model.

use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::{Engine, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const REP_BYTES: u64 = 64 << 10;
const SLOT: u64 = 256;
const N_SLOTS: u64 = 32;

/// A model operation.
#[derive(Debug, Clone)]
enum MOp {
    Write {
        slot: u64,
        byte: u8,
        len: u16,
        flush: bool,
    },
    Memcpy {
        src: u64,
        dst: u64,
        len: u16,
    },
    Cas {
        slot: u64,
        cmp_cur: bool,
        swp: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        (0..N_SLOTS, any::<u8>(), 1..200u16, any::<bool>()).prop_map(|(slot, byte, len, flush)| {
            MOp::Write {
                slot,
                byte,
                len,
                flush,
            }
        }),
        (0..N_SLOTS, 0..N_SLOTS, 1..200u16).prop_map(|(src, dst, len)| MOp::Memcpy {
            src,
            dst,
            len
        }),
        (0..N_SLOTS, any::<bool>(), 1..1000u64).prop_map(|(slot, cmp_cur, swp)| MOp::Cas {
            slot,
            cmp_cur,
            swp
        }),
    ]
}

fn run_ops(ops: &[MOp]) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(1 << 20).seed(99).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: REP_BYTES,
        ring_slots: 32,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));

    // Shadow model: a flat byte image.
    let mut model = vec![0u8; REP_BYTES as usize];
    let completed = Rc::new(RefCell::new(0usize));

    for (i, op) in ops.iter().enumerate() {
        let c = completed.clone();
        let done: hyperloop::OnDone =
            Box::new(move |_w: &mut World, _e: &mut Engine<World>, _r| {
                *c.borrow_mut() += 1;
            });
        match op {
            MOp::Write {
                slot,
                byte,
                len,
                flush,
            } => {
                let off = slot * SLOT;
                let data = vec![*byte; *len as usize];
                model[off as usize..off as usize + *len as usize].copy_from_slice(&data);
                client
                    .gwrite(&mut w, &mut eng, off, &data, *flush, done)
                    .unwrap();
            }
            MOp::Memcpy { src, dst, len } => {
                let (s, d) = (src * SLOT, dst * SLOT);
                let bytes: Vec<u8> = model[s as usize..s as usize + *len as usize].to_vec();
                model[d as usize..d as usize + *len as usize].copy_from_slice(&bytes);
                client
                    .gmemcpy(&mut w, &mut eng, s, d, *len as u32, true, done)
                    .unwrap();
            }
            MOp::Cas { slot, cmp_cur, swp } => {
                let off = (slot * SLOT + N_SLOTS * SLOT) & !7; // CAS area, aligned
                let cur =
                    u64::from_le_bytes(model[off as usize..off as usize + 8].try_into().unwrap());
                let cmp = if *cmp_cur { cur } else { cur.wrapping_add(1) };
                if cur == cmp {
                    model[off as usize..off as usize + 8].copy_from_slice(&swp.to_le_bytes());
                }
                client
                    .gcas(&mut w, &mut eng, off, cmp, *swp, 0b111, done)
                    .unwrap();
            }
        }
        // Drain each op before the next: the model is sequential; the
        // implementation may pipeline but here we check final-state
        // equivalence op-by-op (strongest form).
        let c2 = completed.clone();
        let want = i + 1;
        eng.run_while(&mut w, move |_| *c2.borrow() < want);
    }
    eng.run_until(
        &mut w,
        SimTime::from_nanos(eng.now().as_nanos() + 1_000_000),
    );

    // Every member's region equals the model.
    use hyperloop_repro::hyperloop::api::GroupClient;
    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let base = client.member_addr(m, 0);
        let image = w.hosts[host]
            .mem
            .read_vec(base, REP_BYTES as usize)
            .unwrap();
        assert_eq!(image, model, "member {m} diverged from the model");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn group_ops_match_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        run_ops(&ops);
    }
}

/// Historic proptest-shrunk failure (formerly persisted in
/// `model_check.proptest-regressions`), pinned as an explicit
/// deterministic case: a memcpy whose destination is then overwritten,
/// followed by a CAS and an unflushed write.
#[test]
fn regression_memcpy_overwrite_cas_write() {
    run_ops(&[
        MOp::Memcpy {
            src: 0,
            dst: 11,
            len: 52,
        },
        MOp::Write {
            slot: 11,
            byte: 206,
            len: 188,
            flush: true,
        },
        MOp::Cas {
            slot: 4,
            cmp_cur: true,
            swp: 453,
        },
        MOp::Write {
            slot: 8,
            byte: 125,
            len: 129,
            flush: false,
        },
    ]);
}

/// Pipelined variant: ops are issued in batches without draining between
/// individual operations, so several slots of the chain are in flight at
/// once. Operations of the *same* primitive share one pre-posted QP chain
/// (WAIT-linked WQEs), so the group must serialize them in issue order and
/// the final state has to match the sequential shadow model — even for
/// overlapping writes.
///
/// Note: *cross*-primitive ordering is deliberately NOT asserted here.
/// gWRITE, gMEMCPY and gCAS ride separate per-primitive chains (as in the
/// paper), so a pipelined gMEMCPY and an overlapping gWRITE are unordered;
/// applications serialize such dependencies with completion waits or group
/// locks (see `GroupLock`). The sequential checker above covers the mixed
/// case.
fn run_ops_pipelined(ops: &[MOp], batch: usize) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(1 << 20).seed(7).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: REP_BYTES,
        ring_slots: 32,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));

    let mut model = vec![0u8; REP_BYTES as usize];
    let completed = Rc::new(RefCell::new(0usize));
    let mut issued = 0usize;

    for chunk in ops.chunks(batch) {
        for op in chunk {
            let c = completed.clone();
            let done: hyperloop::OnDone =
                Box::new(move |_w: &mut World, _e: &mut Engine<World>, _r| {
                    *c.borrow_mut() += 1;
                });
            match op {
                MOp::Write {
                    slot,
                    byte,
                    len,
                    flush,
                } => {
                    let off = slot * SLOT;
                    let data = vec![*byte; *len as usize];
                    model[off as usize..off as usize + *len as usize].copy_from_slice(&data);
                    client
                        .gwrite(&mut w, &mut eng, off, &data, *flush, done)
                        .unwrap();
                }
                MOp::Memcpy { src, dst, len } => {
                    let (s, d) = (src * SLOT, dst * SLOT);
                    let bytes: Vec<u8> = model[s as usize..s as usize + *len as usize].to_vec();
                    model[d as usize..d as usize + *len as usize].copy_from_slice(&bytes);
                    client
                        .gmemcpy(&mut w, &mut eng, s, d, *len as u32, true, done)
                        .unwrap();
                }
                MOp::Cas { slot, cmp_cur, swp } => {
                    let off = (slot * SLOT + N_SLOTS * SLOT) & !7;
                    let cur = u64::from_le_bytes(
                        model[off as usize..off as usize + 8].try_into().unwrap(),
                    );
                    let cmp = if *cmp_cur { cur } else { cur.wrapping_add(1) };
                    if cur == cmp {
                        model[off as usize..off as usize + 8].copy_from_slice(&swp.to_le_bytes());
                    }
                    client
                        .gcas(&mut w, &mut eng, off, cmp, *swp, 0b111, done)
                        .unwrap();
                }
            }
            issued += 1;
        }
        // Drain the whole batch, not each op.
        let c2 = completed.clone();
        let want = issued;
        eng.run_while(&mut w, move |_| *c2.borrow() < want);
    }
    eng.run_until(
        &mut w,
        SimTime::from_nanos(eng.now().as_nanos() + 1_000_000),
    );

    use hyperloop_repro::hyperloop::api::GroupClient;
    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let base = client.member_addr(m, 0);
        let image = w.hosts[host]
            .mem
            .read_vec(base, REP_BYTES as usize)
            .unwrap();
        assert_eq!(image, model, "member {m} diverged from the model");
    }
}

fn write_op_strategy() -> impl Strategy<Value = MOp> {
    (0..N_SLOTS, any::<u8>(), 1..200u16, any::<bool>()).prop_map(|(slot, byte, len, flush)| {
        MOp::Write {
            slot,
            byte,
            len,
            flush,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn pipelined_writes_match_shadow_model(
        ops in proptest::collection::vec(write_op_strategy(), 4..32)
    ) {
        run_ops_pipelined(&ops, 4);
    }
}

/// Pipelined gMEMCPYs (single primitive, shared chain) over a region
/// preloaded with distinct patterns: copies that overlap earlier copies'
/// destinations must still apply in issue order.
#[test]
fn pipelined_memcpys_match_shadow_model() {
    // Preload slots 0..8 with distinct bytes via drained writes, then
    // pipeline a chain of overlapping copies.
    let mut ops: Vec<MOp> = (0..8)
        .map(|i| MOp::Write {
            slot: i,
            byte: 0x10 + i as u8,
            len: SLOT as u16,
            flush: false,
        })
        .collect();
    run_ops(&ops); // sanity: the preload itself is model-consistent

    ops.extend((0..16).map(|i| MOp::Memcpy {
        src: i % 8,
        dst: 8 + (i % 5),
        len: 128,
    }));
    // Batch of 1 for the 8 preload writes would re-drain; instead issue the
    // whole thing pipelined — writes are one chain, memcpys another, and
    // the two phases are separated by the batch drain below.
    run_ops_pipelined(&ops[..8], 8);
    run_ops_pipelined(&ops, 8);
}

// ---------------------------------------------------------------------
// Migration fault-point coverage: crash every actor at every stage.
// ---------------------------------------------------------------------

mod migration_faults {
    use hyperloop_repro::cluster::migrate::{
        on_crash, CrashOutcome, MigrationActor, MigrationModel, MigrationStage,
    };

    const KEYS: u64 = 12;

    fn moving(k: u64) -> bool {
        k.is_multiple_of(3)
    }

    /// Build a model mid-migration at exactly `stage`, with traffic
    /// issued before the migration and at every stage boundary crossed
    /// on the way (so parked, dirty and streamed state are all
    /// populated when the crash lands).
    fn model_at(stage: MigrationStage) -> MigrationModel {
        let mut m = MigrationModel::new();
        for k in 0..KEYS {
            m.seed(k);
        }
        for k in 0..KEYS {
            m.issue(k, moving(k));
        }
        while m.stage() != stage {
            m.advance(moving);
            for k in 0..KEYS {
                m.issue(k, moving(k));
            }
        }
        m
    }

    /// Exhaustive enumeration: a crash of the source head, the dest
    /// head or the router at each of the five protocol states never
    /// loses an issued op and never applies one twice, and resolves to
    /// the outcome the commit-point rule dictates (abort-to-source
    /// before cut-over, committed-to-dest from cut-over on).
    #[test]
    fn every_actor_crash_at_every_stage_keeps_history_exact() {
        for &stage in &MigrationStage::ALL {
            for &actor in &MigrationActor::ALL {
                let mut m = model_at(stage);
                let got = m.crash(actor);
                let want = on_crash(stage, actor);
                assert_eq!(
                    got, want,
                    "crash of {actor:?} at {stage:?}: wrong resolution"
                );
                assert_eq!(
                    m.aborted(),
                    want == CrashOutcome::AbortToSource,
                    "crash of {actor:?} at {stage:?}: abort flag disagrees"
                );
                assert_eq!(m.stage(), MigrationStage::Retired);
                // Post-crash traffic must still land exactly once.
                for k in 0..KEYS {
                    m.issue(k, moving(k));
                }
                if let Err(e) = m.check(moving) {
                    panic!("crash of {actor:?} at {stage:?}: {e}");
                }
            }
        }
    }

    /// The commit point itself: the two resolutions partition the five
    /// states exactly at CutOver, whatever the crashing actor.
    #[test]
    fn commit_point_partitions_states_at_cutover() {
        for &stage in &MigrationStage::ALL {
            for &actor in &MigrationActor::ALL {
                let want = if stage.dest_authoritative() {
                    CrashOutcome::CommittedToDest
                } else {
                    CrashOutcome::AbortToSource
                };
                assert_eq!(on_crash(stage, actor), want, "{stage:?}/{actor:?}");
            }
        }
    }
}

/// A fixed long mixed sequence as a plain test (fast path in CI).
#[test]
fn fixed_mixed_sequence_matches_model() {
    let ops: Vec<MOp> = (0..40)
        .map(|i| match i % 3 {
            0 => MOp::Write {
                slot: i % N_SLOTS,
                byte: i as u8,
                len: 64 + (i as u16 % 100),
                flush: i % 2 == 0,
            },
            1 => MOp::Memcpy {
                src: i % N_SLOTS,
                dst: (i + 3) % N_SLOTS,
                len: 32,
            },
            _ => MOp::Cas {
                slot: i % N_SLOTS,
                cmp_cur: i % 4 != 3,
                swp: i,
            },
        })
        .collect();
    run_ops(&ops);
}
