//! Memory regions and access control.
//!
//! Every byte a NIC touches must fall inside a registered memory region
//! whose access flags permit the operation — the paper's §7 security
//! discussion relies on exactly these checks when replicas expose their
//! WQE rings and metadata staging areas to remote writes.

/// Access permission bits for a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access(pub u8);

impl Access {
    /// Local read/write by the owning NIC.
    pub const LOCAL: Access = Access(1);
    /// Remote RDMA WRITE permitted.
    pub const REMOTE_WRITE: Access = Access(2);
    /// Remote RDMA READ permitted.
    pub const REMOTE_READ: Access = Access(4);
    /// Remote atomics (CAS) permitted.
    pub const REMOTE_ATOMIC: Access = Access(8);

    /// Union of permissions.
    pub fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    /// Does this set include all bits of `req`?
    pub fn allows(self, req: Access) -> bool {
        self.0 & req.0 == req.0
    }
}

impl std::ops::BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        self.union(rhs)
    }
}

/// A registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Local key (used by the owning NIC).
    pub lkey: u32,
    /// Remote key (quoted by peers).
    pub rkey: u32,
    /// Start address in the host arena.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Permitted operations.
    pub access: Access,
}

impl MemoryRegion {
    /// Does `[addr, addr+len)` fall inside this region?
    pub fn covers(&self, addr: u64, len: u64) -> bool {
        addr >= self.addr
            && addr
                .checked_add(len)
                .is_some_and(|e| e <= self.addr + self.len)
    }
}

/// Why an access was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrError {
    /// No region with that key.
    BadKey,
    /// Range escapes the region.
    OutOfRange,
    /// Region lacks the required permission.
    Permission,
}

/// Registration table for one NIC.
#[derive(Debug, Default)]
pub struct MrTable {
    regions: Vec<MemoryRegion>,
}

impl MrTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `[addr, addr+len)` with the given permissions. Keys are
    /// assigned by the NIC; lkey and rkey differ (as on real hardware).
    pub fn register(&mut self, addr: u64, len: u64, access: Access) -> MemoryRegion {
        let idx = self.regions.len() as u32;
        let mr = MemoryRegion {
            lkey: 0x1000 + idx * 2,
            rkey: 0x1001 + idx * 2,
            addr,
            len,
            access: access.union(Access::LOCAL),
        };
        self.regions.push(mr);
        mr
    }

    /// Deregister the region holding `rkey`. Further accesses quoting
    /// either of its keys fail with [`MrError::BadKey`]. Returns the
    /// removed region, or `None` for an unknown key.
    pub fn deregister(&mut self, rkey: u32) -> Option<MemoryRegion> {
        let idx = self.regions.iter().position(|m| m.rkey == rkey)?;
        Some(self.regions.remove(idx))
    }

    /// Validate a remote access quoted with `rkey`.
    pub fn check_remote(
        &self,
        rkey: u32,
        addr: u64,
        len: u64,
        need: Access,
    ) -> Result<(), MrError> {
        let mr = self
            .regions
            .iter()
            .find(|m| m.rkey == rkey)
            .ok_or(MrError::BadKey)?;
        if !mr.covers(addr, len) {
            return Err(MrError::OutOfRange);
        }
        if !mr.access.allows(need) {
            return Err(MrError::Permission);
        }
        Ok(())
    }

    /// Validate a local access quoted with `lkey`.
    pub fn check_local(&self, lkey: u32, addr: u64, len: u64) -> Result<(), MrError> {
        let mr = self
            .regions
            .iter()
            .find(|m| m.lkey == lkey)
            .ok_or(MrError::BadKey)?;
        if !mr.covers(addr, len) {
            return Err(MrError::OutOfRange);
        }
        Ok(())
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_check() {
        let mut t = MrTable::new();
        let mr = t.register(0x1000, 0x100, Access::REMOTE_WRITE);
        assert!(t
            .check_remote(mr.rkey, 0x1000, 0x100, Access::REMOTE_WRITE)
            .is_ok());
        assert!(t
            .check_remote(mr.rkey, 0x1080, 0x80, Access::REMOTE_WRITE)
            .is_ok());
    }

    #[test]
    fn bad_key_rejected() {
        let mut t = MrTable::new();
        t.register(0, 16, Access::REMOTE_WRITE);
        assert_eq!(
            t.check_remote(0xdead, 0, 8, Access::REMOTE_WRITE),
            Err(MrError::BadKey)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut t = MrTable::new();
        let mr = t.register(0x1000, 0x100, Access::REMOTE_WRITE);
        assert_eq!(
            t.check_remote(mr.rkey, 0x10ff, 2, Access::REMOTE_WRITE),
            Err(MrError::OutOfRange)
        );
        assert_eq!(
            t.check_remote(mr.rkey, 0xfff, 1, Access::REMOTE_WRITE),
            Err(MrError::OutOfRange)
        );
        // Overflowing range must not wrap.
        assert_eq!(
            t.check_remote(mr.rkey, u64::MAX, 2, Access::REMOTE_WRITE),
            Err(MrError::OutOfRange)
        );
    }

    #[test]
    fn permission_enforced() {
        let mut t = MrTable::new();
        let ro = t.register(0, 64, Access::REMOTE_READ);
        assert_eq!(
            t.check_remote(ro.rkey, 0, 8, Access::REMOTE_WRITE),
            Err(MrError::Permission)
        );
        assert!(t.check_remote(ro.rkey, 0, 8, Access::REMOTE_READ).is_ok());
        assert_eq!(
            t.check_remote(ro.rkey, 0, 8, Access::REMOTE_ATOMIC),
            Err(MrError::Permission)
        );
    }

    #[test]
    fn local_check_uses_lkey() {
        let mut t = MrTable::new();
        let mr = t.register(0x100, 64, Access::REMOTE_READ);
        assert!(t.check_local(mr.lkey, 0x100, 64).is_ok());
        assert_eq!(t.check_local(mr.rkey, 0x100, 8), Err(MrError::BadKey));
    }

    #[test]
    fn keys_are_distinct() {
        let mut t = MrTable::new();
        let a = t.register(0, 16, Access::LOCAL);
        let b = t.register(16, 16, Access::LOCAL);
        let keys = [a.lkey, a.rkey, b.lkey, b.rkey];
        for (i, x) in keys.iter().enumerate() {
            for (j, y) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y);
                }
            }
        }
    }

    #[test]
    fn deregister_invalidates_keys() {
        let mut t = MrTable::new();
        let a = t.register(0x1000, 0x100, Access::REMOTE_WRITE);
        let b = t.register(0x2000, 0x100, Access::REMOTE_WRITE);
        assert_eq!(t.deregister(a.rkey), Some(a));
        assert_eq!(
            t.check_remote(a.rkey, 0x1000, 8, Access::REMOTE_WRITE),
            Err(MrError::BadKey)
        );
        assert_eq!(t.check_local(a.lkey, 0x1000, 8), Err(MrError::BadKey));
        // The other region is untouched; double-deregister is None.
        assert!(t
            .check_remote(b.rkey, 0x2000, 8, Access::REMOTE_WRITE)
            .is_ok());
        assert_eq!(t.deregister(a.rkey), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn access_set_operations() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.allows(Access::REMOTE_READ));
        assert!(rw.allows(Access::REMOTE_WRITE));
        assert!(!rw.allows(Access::REMOTE_ATOMIC));
        assert!(rw.allows(Access(0)));
    }
}
