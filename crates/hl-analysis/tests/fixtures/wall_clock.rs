// Fixture: `wall-clock` fires on std::time::Instant.
fn bad() -> std::time::Instant {
    std::time::Instant::now() // hl-lint: allow(wall-clock)
}
