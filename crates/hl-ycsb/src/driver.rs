//! YCSB client drivers: closed-loop processes that run a workload
//! against a store and record per-operation latency histograms.
//!
//! Two drivers exist, matching the paper's two measurement targets:
//!
//! * [`HlDriver`] — runs ops against a [`DocStore`] front-end embedded
//!   in the client (the paper's HyperLoop-modified MongoDB, also usable
//!   with the Naïve-RDMA backend);
//! * [`NativeDriver`] — sends [`ClientOp`] requests to a native replica
//!   set's primary (the conventional MongoDB path).
//!
//! Latency is measured from the moment the op is drawn (before the
//! client software-stack cost) to its completion, like YCSB does.

use crate::workload::{Op, OpGenerator, OpKind, Workload};
use hl_cluster::{deliver, Ctx, ProcAddr, ProcEvent, Process, World};
use hl_sim::{Engine, Histogram, RngStream, SimDuration, SimTime};
use hl_store::doc::native::{client_op_wire_size, ClientOp, ClientReply, DocOp};
use hl_store::doc::{DocStore, Document};
use hyperloop::api::GroupClient;
use std::cell::RefCell;
use std::rc::Rc;

/// Latency statistics shared by all drivers of one experiment.
#[derive(Debug)]
pub struct YcsbStats {
    per_kind: [Histogram; 5],
    /// All operations.
    pub all: Histogram,
    /// Writes only (the paper reports insert/update latency).
    pub writes: Histogram,
    /// Completed operations.
    pub completed: u64,
    /// Drivers that have finished their quota.
    pub drivers_done: usize,
}

fn kind_idx(k: OpKind) -> usize {
    match k {
        OpKind::Read => 0,
        OpKind::Update => 1,
        OpKind::Insert => 2,
        OpKind::Modify => 3,
        OpKind::Scan => 4,
    }
}

impl Default for YcsbStats {
    fn default() -> Self {
        YcsbStats {
            per_kind: std::array::from_fn(|_| Histogram::new()),
            all: Histogram::new(),
            writes: Histogram::new(),
            completed: 0,
            drivers_done: 0,
        }
    }
}

impl YcsbStats {
    /// Shared empty stats.
    pub fn shared() -> Rc<RefCell<YcsbStats>> {
        Rc::new(RefCell::new(YcsbStats::default()))
    }

    /// Record one completed op.
    pub fn record(&mut self, kind: OpKind, latency: SimDuration) {
        let ns = latency.as_nanos();
        self.per_kind[kind_idx(kind)].record(ns);
        self.all.record(ns);
        if kind.is_write() {
            self.writes.record(ns);
        }
        self.completed += 1;
    }

    /// Histogram for one op kind.
    pub fn kind(&self, k: OpKind) -> &Histogram {
        &self.per_kind[kind_idx(k)]
    }

    /// Fold another stats object into this one (deterministic: all
    /// histograms bucket-merge, counters add). Used to aggregate
    /// per-shard driver stats into one campaign report.
    pub fn merge(&mut self, other: &YcsbStats) {
        for (mine, theirs) in self.per_kind.iter_mut().zip(other.per_kind.iter()) {
            mine.merge(theirs);
        }
        self.all.merge(&other.all);
        self.writes.merge(&other.writes);
        self.completed += other.completed;
        self.drivers_done += other.drivers_done;
    }
}

/// Client software-stack CPU costs (query construction, parsing,
/// validation, result decoding — MongoDB's "high overhead inherent to
/// the software stack in the client", paper §6.2).
#[derive(Debug, Clone)]
pub struct FrontEndCosts {
    /// Per-write op.
    pub write: SimDuration,
    /// Per-read op.
    pub read: SimDuration,
    /// Per scanned document.
    pub scan_per_doc: SimDuration,
}

impl Default for FrontEndCosts {
    fn default() -> Self {
        FrontEndCosts {
            write: SimDuration::from_micros(150),
            read: SimDuration::from_micros(60),
            scan_per_doc: SimDuration::from_micros(4),
        }
    }
}

/// Build the YCSB document for a key (10 × ~100 B fields ≈ 1 KB values,
/// the paper's record shape).
pub fn ycsb_document(key: u64, field_bytes: usize) -> Document {
    let mut d = Document::new(key);
    for f in 0..10 {
        d.set(&format!("field{f}"), &vec![(key % 251) as u8; field_bytes]);
    }
    d
}

/// Untimed preload of a [`DocStore`]'s slot area on every member.
pub fn preload_docstore<C: GroupClient + 'static>(
    w: &mut World,
    client: &C,
    layout: &hl_store::doc::DocLayout,
    records: u64,
    field_bytes: usize,
) {
    for id in 0..records {
        let doc = ycsb_document(id, field_bytes);
        let blob = doc.encode_slot(layout.slot_size as usize);
        let off = layout.log.db_off + (id % layout.n_slots) * layout.slot_size;
        for m in 0..client.group_size() {
            let host = client.member_host(m);
            let addr = client.member_addr(m, off);
            w.hosts[host.0].mem.write(addr, &blob).unwrap();
        }
    }
    for m in 0..client.group_size() {
        let host = client.member_host(m);
        w.hosts[host.0].mem.flush_all();
    }
}

const TAG_FE: u64 = 31;

enum Phase {
    Idle,
    AwaitWrite { op: Op, started: SimTime },
}

/// Closed-loop driver for a [`DocStore`] front-end.
pub struct HlDriver<C: GroupClient> {
    store: DocStore<C>,
    gen: OpGenerator,
    rng: RngStream,
    stats: Rc<RefCell<YcsbStats>>,
    ops_left: u64,
    warmup: u64,
    costs: FrontEndCosts,
    field_bytes: usize,
    cur: Option<(Op, SimTime)>,
    phase: Phase,
}

impl<C: GroupClient + 'static> HlDriver<C> {
    /// A driver that will run `ops` operations (after `warmup` unrecorded
    /// ones).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: DocStore<C>,
        workload: Workload,
        records: u64,
        ops: u64,
        warmup: u64,
        rng: RngStream,
        stats: Rc<RefCell<YcsbStats>>,
        costs: FrontEndCosts,
    ) -> Self {
        HlDriver {
            store,
            gen: OpGenerator::new(workload, records),
            rng,
            stats,
            ops_left: ops + warmup,
            warmup,
            costs,
            field_bytes: 100,
            cur: None,
            phase: Phase::Idle,
        }
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.ops_left == 0 {
            self.stats.borrow_mut().drivers_done += 1;
            return;
        }
        self.ops_left -= 1;
        let op = self.gen.next_op(&mut self.rng);
        let cost = match op.kind {
            OpKind::Read => self.costs.read,
            OpKind::Scan => self.costs.read + self.costs.scan_per_doc * op.scan_len as u64,
            OpKind::Modify => self.costs.read + self.costs.write,
            _ => self.costs.write,
        };
        self.cur = Some((op, ctx.now()));
        ctx.submit_work(cost, TAG_FE);
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, op: Op, started: SimTime) {
        if self.warmup > 0 {
            self.warmup -= 1;
        } else {
            let lat = ctx.now().duration_since(started);
            self.stats.borrow_mut().record(op.kind, lat);
        }
        self.start_next(ctx);
    }

    fn issue_write(&mut self, ctx: &mut Ctx<'_>, op: Op, started: SimTime) {
        let doc = ycsb_document(op.key, self.field_bytes);
        let me = ctx.me;
        let res = self.store.upsert(
            ctx.world,
            ctx.eng,
            &doc,
            Box::new(move |w, eng, _r| {
                // Completion interrupt back to the driver (negligible
                // cost: the measurement client is not the bottleneck).
                deliver(
                    me,
                    ProcEvent::Message(Box::new(WriteDone)),
                    SimDuration::from_micros(2),
                    w,
                    eng,
                );
            }),
        );
        match res {
            Ok(()) => self.phase = Phase::AwaitWrite { op, started },
            Err(_) => {
                // Ring backpressure: retry shortly.
                let me = ctx.me;
                ctx.eng
                    .schedule(SimDuration::from_micros(50), move |w, eng| {
                        deliver(
                            me,
                            ProcEvent::Message(Box::new(RetryWrite { op, started })),
                            SimDuration::from_micros(1),
                            w,
                            eng,
                        );
                    });
            }
        }
    }
}

struct WriteDone;
struct RetryWrite {
    op: Op,
    started: SimTime,
}

impl<C: GroupClient + 'static> Process for HlDriver<C> {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => self.start_next(ctx),
            ProcEvent::WorkDone { tag: TAG_FE } => {
                let (op, started) = self.cur.take().expect("op in flight");
                match op.kind {
                    OpKind::Read => {
                        let _ = self.store.read(ctx.world, op.key);
                        self.finish(ctx, op, started);
                    }
                    OpKind::Scan => {
                        let _ = self.store.scan(ctx.world, op.key, op.scan_len);
                        self.finish(ctx, op, started);
                    }
                    OpKind::Modify => {
                        let _ = self.store.read(ctx.world, op.key);
                        self.issue_write(ctx, op, started);
                    }
                    OpKind::Update | OpKind::Insert => {
                        self.issue_write(ctx, op, started);
                    }
                }
            }
            ProcEvent::Message(m) => {
                if m.downcast_ref::<WriteDone>().is_some() {
                    if let Phase::AwaitWrite { op, started } =
                        std::mem::replace(&mut self.phase, Phase::Idle)
                    {
                        self.finish(ctx, op, started);
                    }
                } else if let Ok(r) = m.downcast::<RetryWrite>() {
                    self.issue_write(ctx, r.op, r.started);
                }
            }
            _ => {}
        }
    }
}

/// Closed-loop driver for a native replica set.
pub struct NativeDriver {
    primary: ProcAddr,
    write_recv_cost: SimDuration,
    read_recv_cost: SimDuration,
    gen: OpGenerator,
    rng: RngStream,
    stats: Rc<RefCell<YcsbStats>>,
    ops_left: u64,
    warmup: u64,
    costs: FrontEndCosts,
    field_bytes: usize,
    cur: Option<(Op, SimTime)>,
    next_op_id: u64,
}

impl NativeDriver {
    /// A driver bound to a native set's primary.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        primary: ProcAddr,
        write_recv_cost: SimDuration,
        read_recv_cost: SimDuration,
        workload: Workload,
        records: u64,
        ops: u64,
        warmup: u64,
        rng: RngStream,
        stats: Rc<RefCell<YcsbStats>>,
        costs: FrontEndCosts,
    ) -> Self {
        let mut rng = rng;
        // Op ids must be unique across every driver sharing a primary.
        let next_op_id = rng.u64() << 20;
        NativeDriver {
            primary,
            write_recv_cost,
            read_recv_cost,
            gen: OpGenerator::new(workload, records),
            rng,
            stats,
            ops_left: ops + warmup,
            warmup,
            costs,
            field_bytes: 100,
            cur: None,
            next_op_id,
        }
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.ops_left == 0 {
            self.stats.borrow_mut().drivers_done += 1;
            return;
        }
        self.ops_left -= 1;
        let op = self.gen.next_op(&mut self.rng);
        let cost = match op.kind {
            OpKind::Read => self.costs.read,
            OpKind::Scan => self.costs.read + self.costs.scan_per_doc * op.scan_len as u64,
            OpKind::Modify => self.costs.read + self.costs.write,
            _ => self.costs.write,
        };
        self.cur = Some((op, ctx.now()));
        ctx.submit_work(cost, TAG_FE);
    }

    fn send_op(&mut self, ctx: &mut Ctx<'_>, op: Op) {
        let doc_op = match op.kind {
            OpKind::Read => DocOp::Read { id: op.key },
            OpKind::Scan => DocOp::Scan {
                id: op.key,
                n: op.scan_len,
            },
            // Modify = read (free ride on the reply) + upsert; model the
            // write part, the read happened in the FE phase.
            _ => DocOp::Upsert(ycsb_document(op.key, self.field_bytes)),
        };
        let recv_cost = match op.kind {
            OpKind::Read | OpKind::Scan => self.read_recv_cost,
            _ => self.write_recv_cost,
        };
        let op_id = self.next_op_id;
        self.next_op_id += 1;
        let size = client_op_wire_size(&doc_op);
        ctx.send_msg(
            self.primary,
            Box::new(ClientOp {
                op_id,
                reply_to: ctx.me,
                op: doc_op,
            }),
            size,
            recv_cost,
        );
    }
}

impl Process for NativeDriver {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => self.start_next(ctx),
            ProcEvent::WorkDone { tag: TAG_FE } => {
                let (op, _started) = *self.cur.as_ref().expect("op in flight");
                self.send_op(ctx, op);
            }
            ProcEvent::Message(m) if m.downcast_ref::<ClientReply>().is_some() => {
                let (op, started) = self.cur.take().expect("op in flight");
                if self.warmup > 0 {
                    self.warmup -= 1;
                } else {
                    let lat = ctx.now().duration_since(started);
                    self.stats.borrow_mut().record(op.kind, lat);
                }
                self.start_next(ctx);
            }
            _ => {}
        }
    }
}

/// Run the engine until `n` drivers report done (or `deadline` passes).
pub fn run_until_done(
    w: &mut World,
    eng: &mut Engine<World>,
    stats: &Rc<RefCell<YcsbStats>>,
    n: usize,
    deadline: SimTime,
) {
    let s = stats.clone();
    while s.borrow().drivers_done < n && eng.now() < deadline {
        if !eng.step(w) {
            break;
        }
    }
}
