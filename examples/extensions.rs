//! The paper's sketched extensions, working end to end: §7 fan-out
//! replication coordinated by the primary's NIC, and §5 multi-client
//! chains over a shared receive queue.
//!
//! ```sh
//! cargo run --example extensions
//! ```

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::fanout::{self, FanoutBuilder, FanoutClient, FanoutConfig};
use hyperloop_repro::hyperloop::multi::{self, MultiBuilder, MultiClient, MultiConfig};
use hyperloop_repro::sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    fanout_demo();
    multi_client_demo();
}

/// §7: the client offloads FaRM-style primary/backup coordination to
/// the primary's NIC — parallel dispatch to every backup plus ack
/// aggregation by WAIT counting.
fn fanout_demo() {
    println!("== fan-out offload (§7) ==");
    let (mut world, mut engine) = ClusterBuilder::new(5).arena_size(2 << 20).seed(1).build();
    let group = FanoutBuilder::new(FanoutConfig {
        client: HostId(0),
        primary: HostId(1),
        backups: vec![HostId(2), HostId(3), HostId(4)],
        rep_bytes: 256 << 10,
        ring_slots: 32,
        replenish_period: SimDuration::from_micros(100),
    })
    .build(&mut world);
    fanout::start_replenisher(&group, &mut world, &mut engine);
    let client = FanoutClient::new(group, &mut world);

    let latency = Rc::new(RefCell::new(None));
    let l = latency.clone();
    client
        .gwrite(
            &mut world,
            &mut engine,
            0x100,
            b"one-hop-to-three-backups",
            Box::new(move |_w, _e, r| *l.borrow_mut() = Some(r.latency)),
        )
        .unwrap();
    engine.run_until(&mut world, SimTime::from_nanos(2_000_000));
    println!(
        "  group ACK (primary + 3 backups, all NIC-coordinated): {}",
        latency.borrow().unwrap()
    );
    for m in 1..5 {
        let host = client.member_host(m);
        let addr = client.member_addr(m, 0x100);
        assert_eq!(
            world.hosts[host.0].mem.read(addr, 24).unwrap(),
            b"one-hop-to-three-backups"
        );
    }
    println!("  all 4 copies verified; backup CPUs untouched\n");
}

/// §5: two clients share one chain; the first replica's SRQ serializes
/// their writes in NIC arrival order.
fn multi_client_demo() {
    println!("== multi-client chain over SRQ (§5) ==");
    let (mut world, mut engine) = ClusterBuilder::new(5).arena_size(2 << 20).seed(2).build();
    let chain = MultiBuilder::new(MultiConfig {
        clients: vec![HostId(0), HostId(1)],
        replicas: vec![HostId(2), HostId(3), HostId(4)],
        rep_bytes: 256 << 10,
        ring_slots: 32,
        replenish_period: SimDuration::from_micros(100),
    })
    .build(&mut world);
    multi::start_replenisher(&chain, &mut world, &mut engine);
    let clients: Vec<MultiClient> = (0..2)
        .map(|c| MultiClient::new(chain.clone(), c, &mut world))
        .collect();

    let acked = Rc::new(RefCell::new(0u32));
    for k in 0..6u64 {
        let c = (k % 2) as usize;
        let a = acked.clone();
        clients[c]
            .gwrite(
                &mut world,
                &mut engine,
                k * 256,
                format!("op{k}-by-client{c}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
    }
    let probe = acked.clone();
    engine.run_while(&mut world, move |_| *probe.borrow() < 6);
    println!("  6 interleaved writes from 2 clients ACKed");
    // Every replica holds every client's writes, durably.
    for r in 0..3 {
        let host = clients[0].replica_host(r);
        for k in 0..6u64 {
            let c = k % 2;
            let want = format!("op{k}-by-client{c}");
            let addr = clients[0].replica_addr(r, k * 256);
            assert_eq!(
                world.hosts[host.0].mem.read(addr, want.len()).unwrap(),
                want.as_bytes()
            );
        }
    }
    println!("  all replicas consistent; chain slots were shared in arrival order");
}
