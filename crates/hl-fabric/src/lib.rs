//! # hl-fabric — network fabric model
//!
//! A lossless (by default) data-center fabric connecting simulated hosts.
//! The model is message-granular: each message occupies its sender's
//! egress port for `size / bandwidth`, then arrives after a fixed
//! per-path propagation delay. Because egress is FIFO and propagation is
//! constant per path, delivery between any ordered pair of hosts is
//! in-order — the property RDMA reliable-connection transport needs.
//!
//! Fault injection (message drops, host partitions, link-down) is
//! explicit and off by default; benchmarks run lossless like the paper's
//! RoCE testbed, while recovery tests flip faults on.

#![warn(missing_docs)]

use hl_sim::config::NetProfile;
use hl_sim::{SimDuration, SimTime};

/// Identifies a host (index into the cluster's host table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Per-host egress port state.
#[derive(Debug, Clone, Default)]
struct Port {
    /// Time at which the egress link becomes free.
    free_at: SimTime,
    /// Bytes transmitted (for reporting).
    bytes_tx: u64,
    /// Messages transmitted.
    msgs_tx: u64,
}

/// A FIFO-order violation recorded by the delivery auditor (feature
/// `check-ownership`): a message for an ordered host pair was scheduled
/// to arrive *before* an earlier message of the same pair. The RDMA RC
/// transport model assumes this never happens; any occurrence is a
/// fabric-model bug.
#[cfg(feature = "check-ownership")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderViolation {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Latest delivery time previously scheduled for this pair.
    pub prev_delivery: SimTime,
    /// The regressing delivery time.
    pub delivery: SimTime,
}

/// Result of offering a message to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message will arrive at the destination at this instant.
    At(SimTime),
    /// Message was dropped by fault injection.
    Dropped,
}

/// The fabric connecting all hosts.
#[derive(Debug)]
pub struct Fabric {
    profile: NetProfile,
    ports: Vec<Port>,
    /// Propagation hops between host pairs, indexed `[src][dst]`;
    /// 1 = same rack through one switch.
    hops: Vec<Vec<u32>>,
    /// Blocked ordered pairs (partition injection).
    partitions: Vec<(HostId, HostId)>,
    /// Hosts whose link is administratively down.
    down: Vec<bool>,
    /// Probability of dropping any message (fault injection); requires
    /// the caller to pass a uniform draw to keep the fabric RNG-free.
    drop_prob: f64,
    /// Messages dropped for any reason (partition, link-down, random).
    drops: u64,
    /// Latest scheduled delivery per ordered pair, indexed `[src][dst]`.
    #[cfg(feature = "check-ownership")]
    last_delivery: Vec<Vec<SimTime>>,
    /// FIFO-order violations recorded by the auditor.
    #[cfg(feature = "check-ownership")]
    order_violations: Vec<OrderViolation>,
}

impl Fabric {
    /// A fabric over `n` hosts with uniform single-switch paths.
    pub fn new(n: usize, profile: NetProfile) -> Self {
        Fabric {
            profile,
            ports: vec![Port::default(); n],
            hops: vec![vec![1; n]; n],
            partitions: Vec::new(),
            down: vec![false; n],
            drop_prob: 0.0,
            drops: 0,
            #[cfg(feature = "check-ownership")]
            last_delivery: vec![vec![SimTime::ZERO; n]; n],
            #[cfg(feature = "check-ownership")]
            order_violations: Vec::new(),
        }
    }

    /// Record a scheduled delivery with the FIFO auditor.
    #[cfg(feature = "check-ownership")]
    fn audit_delivery(&mut self, src: HostId, dst: HostId, at: SimTime) {
        let prev = self.last_delivery[src.0][dst.0];
        if at < prev {
            self.order_violations.push(OrderViolation {
                src,
                dst,
                prev_delivery: prev,
                delivery: at,
            });
        } else {
            self.last_delivery[src.0][dst.0] = at;
        }
    }

    /// FIFO-order violations recorded so far (feature `check-ownership`).
    #[cfg(feature = "check-ownership")]
    pub fn order_violations(&self) -> &[OrderViolation] {
        &self.order_violations
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True if the fabric has no hosts.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Set the hop count between two hosts (both directions).
    pub fn set_hops(&mut self, a: HostId, b: HostId, hops: u32) {
        self.hops[a.0][b.0] = hops;
        self.hops[b.0][a.0] = hops;
    }

    /// Inject a one-directional partition: messages src→dst are dropped.
    pub fn partition(&mut self, src: HostId, dst: HostId) {
        if !self.partitions.contains(&(src, dst)) {
            self.partitions.push((src, dst));
        }
    }

    /// Heal a previously injected partition.
    pub fn heal(&mut self, src: HostId, dst: HostId) {
        self.partitions.retain(|&p| p != (src, dst));
    }

    /// Take a host's link down (drops everything to/from it).
    pub fn set_link_down(&mut self, host: HostId, is_down: bool) {
        self.down[host.0] = is_down;
    }

    /// Enable random drops with probability `p` (see [`Fabric::send`]).
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
    }

    /// Offer a `size`-byte message from `src` to `dst` at time `now`.
    ///
    /// `uniform_draw` is a caller-supplied uniform sample in `[0,1)` used
    /// for drop decisions (the fabric holds no RNG so that enabling fault
    /// injection never perturbs other random streams). Pass `1.0` when
    /// drops are disabled.
    pub fn send(
        &mut self,
        now: SimTime,
        src: HostId,
        dst: HostId,
        size: usize,
        uniform_draw: f64,
    ) -> Delivery {
        if self.down[src.0] || self.down[dst.0] || self.partitions.contains(&(src, dst)) {
            self.drops += 1;
            return Delivery::Dropped;
        }
        if self.drop_prob > 0.0 && uniform_draw < self.drop_prob {
            self.drops += 1;
            return Delivery::Dropped;
        }
        if src == dst {
            // Loopback never touches the wire; a nominal port-turnaround
            // delay models the NIC-internal path.
            let at = now + SimDuration::from_nanos(100);
            #[cfg(feature = "check-ownership")]
            self.audit_delivery(src, dst, at);
            return Delivery::At(at);
        }
        let port = &mut self.ports[src.0];
        let start = port.free_at.max(now);
        let tx = self.profile.transfer_time(size);
        let done = start + tx;
        port.free_at = done;
        port.bytes_tx += size as u64;
        port.msgs_tx += 1;
        let prop = SimDuration::from_nanos(
            self.profile.propagation.as_nanos() * self.hops[src.0][dst.0] as u64,
        );
        let at = done + prop;
        #[cfg(feature = "check-ownership")]
        self.audit_delivery(src, dst, at);
        Delivery::At(at)
    }

    /// Bytes transmitted by a host.
    pub fn bytes_tx(&self, host: HostId) -> u64 {
        self.ports[host.0].bytes_tx
    }

    /// Messages transmitted by a host.
    pub fn msgs_tx(&self, host: HostId) -> u64 {
        self.ports[host.0].msgs_tx
    }

    /// Messages dropped for any reason (partition, link-down, random
    /// loss) over all time.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, NetProfile::default())
    }

    #[test]
    fn delivery_includes_serialization_and_propagation() {
        let mut f = fabric(2);
        // 7000 bytes at 56 Gbps = 1000 ns; + 700 ns propagation.
        match f.send(SimTime::ZERO, HostId(0), HostId(1), 7000, 1.0) {
            Delivery::At(t) => assert_eq!(t.as_nanos(), 1700),
            _ => panic!("dropped"),
        }
    }

    #[test]
    fn egress_is_fifo_and_serializes() {
        let mut f = fabric(2);
        let d1 = f.send(SimTime::ZERO, HostId(0), HostId(1), 7000, 1.0);
        let d2 = f.send(SimTime::ZERO, HostId(0), HostId(1), 7000, 1.0);
        let (Delivery::At(t1), Delivery::At(t2)) = (d1, d2) else {
            panic!("dropped");
        };
        assert_eq!(t1.as_nanos(), 1700);
        assert_eq!(t2.as_nanos(), 2700); // waits for the first to serialize
        assert!(t2 > t1, "in-order");
    }

    #[test]
    fn different_sources_do_not_contend() {
        let mut f = fabric(3);
        let Delivery::At(t1) = f.send(SimTime::ZERO, HostId(0), HostId(2), 7000, 1.0) else {
            panic!()
        };
        let Delivery::At(t2) = f.send(SimTime::ZERO, HostId(1), HostId(2), 7000, 1.0) else {
            panic!()
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn hops_scale_propagation() {
        let mut f = fabric(2);
        f.set_hops(HostId(0), HostId(1), 3);
        let Delivery::At(t) = f.send(SimTime::ZERO, HostId(0), HostId(1), 0, 1.0) else {
            panic!()
        };
        assert_eq!(t.as_nanos(), 2100); // 3 × 700 ns, zero serialization
    }

    #[test]
    fn partition_drops_one_direction() {
        let mut f = fabric(2);
        f.partition(HostId(0), HostId(1));
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::Dropped
        );
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(1), HostId(0), 10, 1.0),
            Delivery::At(_)
        ));
        f.heal(HostId(0), HostId(1));
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::At(_)
        ));
    }

    #[test]
    fn link_down_blocks_both_ways() {
        let mut f = fabric(2);
        f.set_link_down(HostId(1), true);
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::Dropped
        );
        assert_eq!(
            f.send(SimTime::ZERO, HostId(1), HostId(0), 10, 1.0),
            Delivery::Dropped
        );
        f.set_link_down(HostId(1), false);
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::At(_)
        ));
    }

    #[test]
    fn random_drops_use_caller_draw() {
        let mut f = fabric(2);
        f.set_drop_prob(0.5);
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 0.4),
            Delivery::Dropped
        );
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 0.6),
            Delivery::At(_)
        ));
    }

    #[test]
    fn loopback_is_fast_and_portless() {
        let mut f = fabric(1);
        let Delivery::At(t) = f.send(SimTime::ZERO, HostId(0), HostId(0), 1_000_000, 1.0) else {
            panic!()
        };
        assert_eq!(t.as_nanos(), 100);
        assert_eq!(f.bytes_tx(HostId(0)), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut f = fabric(2);
        f.send(SimTime::ZERO, HostId(0), HostId(1), 100, 1.0);
        f.send(SimTime::ZERO, HostId(0), HostId(1), 200, 1.0);
        assert_eq!(f.bytes_tx(HostId(0)), 300);
        assert_eq!(f.msgs_tx(HostId(0)), 2);
        assert_eq!(f.bytes_tx(HostId(1)), 0);
    }
}
