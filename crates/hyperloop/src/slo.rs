//! Declarative SLO rules with multi-window burn-rate evaluation.
//!
//! A rule is an objective over the windowed time-series layer
//! ([`hl_sim::TimeSeries`]), written the way an operator would state
//! it:
//!
//! ```text
//! p99(op_latency_ns{layer=supervised}) < 200us over 8 windows
//! ```
//!
//! parsed by [`SloRule::parse`]: quantile, metric + label set, latency
//! threshold, and a *long* lookback of complete windows. Evaluation
//! uses the standard two-window burn-rate construction: the rule fires
//! only when the violation fraction over the long lookback **and** over
//! a short lookback (default `long/4`, so a stale excursion cannot keep
//! an alert pending) both exceed their burn thresholds (default 0.5).
//! It resolves once the short window is violation-free. Only *complete*
//! windows are consulted — the window containing `now` is still
//! accumulating and would under-count.
//!
//! [`SloEngine::eval`] drives every rule against a [`Telemetry`] hub:
//! fire/resolve edges emit `slo:fire:{name}` / `slo:resolve:{name}`
//! marks (so they land in trace exports, timeline renders and the
//! flight recorder) plus an `slo_alerts_fired` counter, and the current
//! short-window burn rate is published as the `slo_burn_rate` gauge.
//! [`crate::health::HealthMonitor`] consumes [`SloEngine::any_firing`]
//! as a structured *sick* input beside its counter-delta score, which
//! is what makes the alert fire strictly before the degrade transition
//! it predicts: the transition needs `degrade_after` consecutive sick
//! evaluations, the first of which already saw the alert up.

use hl_sim::{SimTime, Telemetry};

/// One parsed SLO rule. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Rule name used in marks, counters and gauges.
    pub name: String,
    /// Sketch metric the objective reads.
    pub metric: String,
    /// Label set (internal `k=v,k2=v2` form; empty for all-unlabelled).
    pub labels: String,
    /// Objective quantile in `(0, 1]`.
    pub quantile: f64,
    /// Objective: `quantile(metric) < threshold_ns`.
    pub threshold_ns: u64,
    /// Long lookback, in complete windows.
    pub long_windows: u64,
    /// Short lookback, in complete windows (≤ `long_windows`).
    pub short_windows: u64,
    /// Violation fraction over the long lookback required to fire.
    pub long_burn: f64,
    /// Violation fraction over the short lookback required to fire.
    pub short_burn: f64,
}

impl SloRule {
    /// Parse `"p99(metric{labels}) < 200us over 8 windows"`.
    ///
    /// The quantile token is `p<digits>` with an optional decimal part
    /// (`p99.9`); the threshold unit is one of `ns`/`us`/`ms`/`s`.
    /// Defaults: `short_windows = max(1, long/4)`, both burn thresholds
    /// 0.5. `name` labels the rule in marks and metrics.
    pub fn parse(name: &str, expr: &str) -> Result<SloRule, String> {
        let expr = expr.trim();
        let open = expr
            .find('(')
            .ok_or_else(|| format!("{name}: missing '(' in {expr:?}"))?;
        let quantile = parse_quantile(&expr[..open])?;
        let close = expr[open..]
            .find(')')
            .map(|i| i + open)
            .ok_or_else(|| format!("{name}: missing ')'"))?;
        let target = &expr[open + 1..close];
        let (metric, labels) = match target.find('{') {
            Some(b) => {
                let end = target
                    .rfind('}')
                    .ok_or_else(|| format!("{name}: missing '}}' in {target:?}"))?;
                (&target[..b], &target[b + 1..end])
            }
            None => (target, ""),
        };
        if metric.is_empty() {
            return Err(format!("{name}: empty metric"));
        }
        let rest = expr[close + 1..].trim_start();
        let rest = rest
            .strip_prefix('<')
            .ok_or_else(|| format!("{name}: objective must be '< threshold'"))?
            .trim_start();
        let mut it = rest.split_whitespace();
        let threshold = it
            .next()
            .ok_or_else(|| format!("{name}: missing threshold"))?;
        let threshold_ns = parse_duration_ns(threshold)
            .ok_or_else(|| format!("{name}: bad threshold {threshold:?}"))?;
        match (it.next(), it.next(), it.next()) {
            (Some("over"), Some(n), Some("windows")) => {
                let long_windows: u64 = n
                    .parse()
                    .map_err(|_| format!("{name}: bad window count {n:?}"))?;
                if long_windows == 0 {
                    return Err(format!("{name}: window count must be > 0"));
                }
                if it.next().is_some() {
                    return Err(format!("{name}: trailing tokens"));
                }
                Ok(SloRule {
                    name: name.to_string(),
                    metric: metric.to_string(),
                    labels: labels.to_string(),
                    quantile,
                    threshold_ns,
                    long_windows,
                    short_windows: (long_windows / 4).max(1),
                    long_burn: 0.5,
                    short_burn: 0.5,
                })
            }
            _ => Err(format!("{name}: expected 'over N windows'")),
        }
    }

    /// Override the short lookback.
    pub fn with_short_windows(mut self, n: u64) -> Self {
        self.short_windows = n.clamp(1, self.long_windows);
        self
    }

    /// Override both burn-rate thresholds.
    pub fn with_burn(mut self, long: f64, short: f64) -> Self {
        self.long_burn = long;
        self.short_burn = short;
        self
    }
}

/// `"p99"` → 0.99, `"p99.9"` → 0.999, `"p50"` → 0.5.
fn parse_quantile(tok: &str) -> Result<f64, String> {
    let tok = tok.trim();
    let digits = tok
        .strip_prefix('p')
        .ok_or_else(|| format!("quantile must be pNN, got {tok:?}"))?;
    let v: f64 = digits
        .parse()
        .map_err(|_| format!("bad quantile {tok:?}"))?;
    if v <= 0.0 || v > 100.0 {
        return Err(format!("quantile {tok:?} out of (0, 100]"));
    }
    Ok(v / 100.0)
}

/// `"200us"` → 200_000, `"4ms"` → 4_000_000, bare numbers are ns.
fn parse_duration_ns(tok: &str) -> Option<u64> {
    let (num, mult) = if let Some(n) = tok.strip_suffix("ns") {
        (n, 1)
    } else if let Some(n) = tok.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = tok.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = tok.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (tok, 1)
    };
    num.parse::<u64>().ok().map(|v| v * mult)
}

/// Per-rule evaluation state.
#[derive(Debug, Clone)]
struct RuleState {
    firing: bool,
    fired: u64,
    resolved: u64,
}

/// Evaluates a set of [`SloRule`]s against the time-series store.
#[derive(Debug, Default)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    state: Vec<RuleState>,
}

impl SloEngine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn add_rule(&mut self, rule: SloRule) {
        self.rules.push(rule);
        self.state.push(RuleState {
            firing: false,
            fired: 0,
            resolved: 0,
        });
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Is any rule currently firing?
    pub fn any_firing(&self) -> bool {
        self.state.iter().any(|s| s.firing)
    }

    /// Is the named rule currently firing?
    pub fn is_firing(&self, name: &str) -> bool {
        self.rules
            .iter()
            .zip(&self.state)
            .any(|(r, s)| r.name == name && s.firing)
    }

    /// Total fire edges for the named rule.
    pub fn fired(&self, name: &str) -> u64 {
        self.rules
            .iter()
            .zip(&self.state)
            .find(|(r, _)| r.name == name)
            .map(|(_, s)| s.fired)
            .unwrap_or(0)
    }

    /// Evaluate every rule over the complete windows before `now`,
    /// emitting fire/resolve marks and metrics into `tel`. Returns
    /// [`SloEngine::any_firing`] after the pass. No-op (and `false`)
    /// while the time-series layer is disabled.
    pub fn eval(&mut self, now: SimTime, tel: &mut Telemetry) -> bool {
        if !tel.series.enabled() {
            return false;
        }
        let cur = tel.series.window_of(now);
        // Read phase: (burn_short, fire, resolve) per rule, no
        // Telemetry mutation yet.
        let mut decisions: Vec<(f64, bool, bool)> = Vec::with_capacity(self.rules.len());
        for (rule, st) in self.rules.iter().zip(&self.state) {
            let (v_long, s_long) = violations(tel, rule, cur, rule.long_windows);
            let (v_short, s_short) = violations(tel, rule, cur, rule.short_windows);
            let burn_long = if s_long > 0 {
                v_long as f64 / s_long as f64
            } else {
                0.0
            };
            let burn_short = if s_short > 0 {
                v_short as f64 / s_short as f64
            } else {
                0.0
            };
            let fire = !st.firing
                && s_short >= 1
                && burn_short >= rule.short_burn
                && burn_long >= rule.long_burn;
            // Resolve when the short lookback shows no violating window
            // at all — including when it carries no samples: a service
            // receiving no traffic burns no error budget, and a firing
            // alert must not pin the health monitor degraded after the
            // workload drains.
            let resolve = st.firing && v_short == 0;
            decisions.push((burn_short, fire, resolve));
        }
        // Write phase: apply edges and publish gauges.
        for (i, &(burn_short, fire, resolve)) in decisions.iter().enumerate() {
            let name = self.rules[i].name.clone();
            tel.metrics
                .gauge_set("slo_burn_rate", &format!("rule={name}"), burn_short);
            if fire {
                self.state[i].firing = true;
                self.state[i].fired += 1;
                tel.mark(now, format!("slo:fire:{name}"), 0);
                tel.metrics
                    .counter_add("slo_alerts_fired", &format!("rule={name}"), 1);
            } else if resolve {
                self.state[i].firing = false;
                self.state[i].resolved += 1;
                tel.mark(now, format!("slo:resolve:{name}"), 0);
            }
        }
        self.any_firing()
    }
}

/// `(violating, sampled)` complete windows among the last `lookback`
/// before (not including) `cur`. Windows with no samples don't count
/// either way.
fn violations(tel: &Telemetry, rule: &SloRule, cur: u64, lookback: u64) -> (u64, u64) {
    let lo = cur.saturating_sub(lookback);
    let mut violating = 0u64;
    let mut sampled = 0u64;
    for w in lo..cur {
        if let Some(s) = tel.series.sketch_in(&rule.metric, &rule.labels, w) {
            sampled += 1;
            if s.value_at_quantile(rule.quantile) >= rule.threshold_ns {
                violating += 1;
            }
        }
    }
    (violating, sampled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    const WIN: u64 = 1_000_000; // 1ms windows

    fn tel_with_series() -> Telemetry {
        let mut tel = Telemetry::default();
        tel.enable_timeseries(SimDuration::from_micros(1000));
        tel
    }

    #[test]
    fn parse_full_rule() {
        let r = SloRule::parse(
            "lat",
            "p99(op_latency_ns{layer=supervised}) < 200us over 8 windows",
        )
        .unwrap();
        assert_eq!(r.metric, "op_latency_ns");
        assert_eq!(r.labels, "layer=supervised");
        assert_eq!(r.quantile, 0.99);
        assert_eq!(r.threshold_ns, 200_000);
        assert_eq!(r.long_windows, 8);
        assert_eq!(r.short_windows, 2);
        let r2 = SloRule::parse("s3", "p50(op_latency{shard=3}) < 4ms over 5 windows").unwrap();
        assert_eq!(r2.labels, "shard=3");
        assert_eq!(r2.threshold_ns, 4_000_000);
        assert_eq!(r2.short_windows, 1);
        let r3 = SloRule::parse("t", "p99.9(m) < 1s over 4 windows").unwrap();
        assert!((r3.quantile - 0.999).abs() < 1e-9);
        assert_eq!(r3.threshold_ns, 1_000_000_000);
        assert_eq!(r3.labels, "");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "p99 op_latency < 200us over 8 windows",
            "p99(m) > 200us over 8 windows",
            "p99(m) < 200us",
            "p99(m) < 200us over 0 windows",
            "p99(m) < lots over 8 windows",
            "q99(m) < 200us over 8 windows",
            "p99(m) < 200us over 8 windows extra",
        ] {
            assert!(SloRule::parse("bad", bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn fires_on_sustained_excursion_and_resolves() {
        let mut tel = tel_with_series();
        let mut slo = SloEngine::new();
        slo.add_rule(
            SloRule::parse("lat", "p99(lat) < 200us over 4 windows")
                .unwrap()
                .with_short_windows(2),
        );
        // Windows 0..4: healthy (p99 = 100us).
        for w in 0..4u64 {
            for i in 0..20u64 {
                tel.series.record(t(w * WIN + i), "lat", "", 100_000);
            }
        }
        assert!(!slo.eval(t(4 * WIN), &mut tel));
        // Windows 4..8: excursion (p99 = 900us).
        for w in 4..8u64 {
            for i in 0..20u64 {
                tel.series.record(t(w * WIN + i), "lat", "", 900_000);
            }
        }
        // After window 5 completes: short burn 1.0 (w4, w5 bad), long
        // burn 0.5 (w2..w5: 2 of 4 bad) → fire.
        assert!(slo.eval(t(6 * WIN), &mut tel));
        assert!(slo.is_firing("lat"));
        assert_eq!(slo.fired("lat"), 1);
        assert_eq!(tel.metrics.counter("slo_alerts_fired", "rule=lat"), 1);
        assert!(tel.marks().iter().any(|m| m.name == "slo:fire:lat"));
        // Still firing mid-excursion; no double fire.
        assert!(slo.eval(t(8 * WIN), &mut tel));
        assert_eq!(slo.fired("lat"), 1);
        // Windows 8..10: healed.
        for w in 8..10u64 {
            for i in 0..20u64 {
                tel.series.record(t(w * WIN + i), "lat", "", 90_000);
            }
        }
        assert!(!slo.eval(t(10 * WIN), &mut tel));
        assert!(!slo.is_firing("lat"));
        assert!(tel.marks().iter().any(|m| m.name == "slo:resolve:lat"));
    }

    #[test]
    fn single_window_blip_does_not_fire() {
        let mut tel = tel_with_series();
        let mut slo = SloEngine::new();
        slo.add_rule(
            SloRule::parse("lat", "p99(lat) < 200us over 8 windows")
                .unwrap()
                .with_short_windows(2),
        );
        for w in 0..8u64 {
            let lat = if w == 3 { 900_000 } else { 100_000 };
            for i in 0..20u64 {
                tel.series.record(t(w * WIN + i), "lat", "", lat);
            }
        }
        // One bad window in eight: long burn 1/8, short burn 0 → quiet.
        assert!(!slo.eval(t(8 * WIN), &mut tel));
        assert_eq!(slo.fired("lat"), 0);
    }

    #[test]
    fn current_window_is_not_consulted() {
        let mut tel = tel_with_series();
        let mut slo = SloEngine::new();
        slo.add_rule(SloRule::parse("lat", "p99(lat) < 200us over 2 windows").unwrap());
        // Only the *current* (incomplete) window is bad.
        for i in 0..20u64 {
            tel.series.record(t(i), "lat", "", 900_000);
        }
        assert!(!slo.eval(t(10), &mut tel));
        // Once that window completes, it counts.
        assert!(slo.eval(t(WIN + 10), &mut tel));
    }

    #[test]
    fn disabled_series_is_inert() {
        let mut tel = Telemetry::default();
        tel.enable();
        let mut slo = SloEngine::new();
        slo.add_rule(SloRule::parse("lat", "p99(lat) < 200us over 2 windows").unwrap());
        assert!(!slo.eval(t(5 * WIN), &mut tel));
        assert_eq!(tel.marks().len(), 0);
    }
}
