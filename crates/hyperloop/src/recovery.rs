//! Failure detection and chain recovery (paper §5, "RocksDB Recovery" /
//! "MongoDB Recovery").
//!
//! HyperLoop accelerates only the data path; the control path stays
//! conventional. A configurable number of consecutive missed heartbeats
//! is a data-path failure [paper citing Aguilera et al.]; on detection
//! the coordinator pauses writes, rebuilds the chain from the survivors
//! (fresh QPs and pre-posted rings), catches a new or stale member up by
//! copying the replicated region with chunked RDMA READs, and resumes.

use crate::group::{GroupBuilder, GroupConfig, GroupRef};
use crate::metadata::Primitive;
use crate::HyperLoopClient;
use hl_cluster::{deliver, Ctx, ProcAddr, ProcEvent, Process, World};
use hl_fabric::HostId;
use hl_rnic::{Access, Cqe, CqeStatus, Opcode, Wqe, WQE_SIZE};
use hl_sim::{Engine, SimDuration};

/// One-shot continuation used by the recovery helpers.
pub type OnRecovered = Box<dyn FnOnce(&mut World, &mut Engine<World>)>;
/// Continuation receiving the rebuilt chain's client.
pub type OnRebuilt = Box<dyn FnOnce(&mut World, &mut Engine<World>, HyperLoopClient)>;

/// Heartbeat parameters.
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// Ping period.
    pub period: SimDuration,
    /// Consecutive missed pongs before declaring failure.
    pub miss_threshold: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: SimDuration::from_millis(10),
            miss_threshold: 3,
        }
    }
}

/// Heartbeat ping (client → replica agent).
pub struct Ping {
    /// Sequence number.
    pub seq: u64,
    /// Where to send the pong.
    pub reply_to: ProcAddr,
    /// Which replica is being probed.
    pub idx: usize,
}

/// Heartbeat pong (replica agent → detector).
pub struct Pong {
    /// Echoed sequence.
    pub seq: u64,
    /// Responding replica index.
    pub idx: usize,
}

/// A tiny process on each replica that answers heartbeats. Its CPU cost
/// is a few microseconds every period — control path only.
pub struct ReplicaAgent;

impl Process for ReplicaAgent {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        if let ProcEvent::Message(m) = ev {
            if let Ok(ping) = m.downcast::<Ping>() {
                ctx.send_msg(
                    ping.reply_to,
                    Box::new(Pong {
                        seq: ping.seq,
                        idx: ping.idx,
                    }),
                    64,
                    SimDuration::from_micros(1),
                );
            }
        }
    }
}

/// Invoked (once per replica) when a replica is declared failed.
pub type OnFailure = Box<dyn FnMut(&mut World, &mut Engine<World>, usize)>;

/// The client-side failure detector.
pub struct FailureDetector {
    agents: Vec<ProcAddr>,
    cfg: HeartbeatConfig,
    seq: u64,
    pong_seen: Vec<bool>,
    misses: Vec<u32>,
    failed: Vec<bool>,
    on_failure: OnFailure,
}

impl FailureDetector {
    /// Monitor the given replica agents.
    pub fn new(agents: Vec<ProcAddr>, cfg: HeartbeatConfig, on_failure: OnFailure) -> Self {
        let n = agents.len();
        FailureDetector {
            agents,
            cfg,
            seq: 0,
            pong_seen: vec![true; n],
            misses: vec![0; n],
            failed: vec![false; n],
            on_failure,
        }
    }
}

const TAG_HB: u64 = 7;

impl Process for FailureDetector {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => {
                ctx.set_timer(self.cfg.period, TAG_HB, SimDuration::from_micros(1));
            }
            ProcEvent::Timer { tag: TAG_HB } => {
                // Evaluate the previous round.
                for i in 0..self.agents.len() {
                    if self.failed[i] {
                        continue;
                    }
                    if self.pong_seen[i] {
                        self.misses[i] = 0;
                    } else {
                        self.misses[i] += 1;
                        if self.misses[i] >= self.cfg.miss_threshold {
                            self.failed[i] = true;
                            let now = ctx.eng.now();
                            ctx.world.telemetry.mark(now, "hb:replica-failed", i);
                            ctx.world.telemetry.metrics.counter_add(
                                "recovery_failures_detected",
                                "layer=heartbeat",
                                1,
                            );
                            (self.on_failure)(ctx.world, ctx.eng, i);
                        }
                    }
                    self.pong_seen[i] = false;
                }
                // Next round.
                self.seq += 1;
                let me = ctx.me;
                for (i, &agent) in self.agents.clone().iter().enumerate() {
                    if self.failed[i] {
                        continue;
                    }
                    ctx.send_msg(
                        agent,
                        Box::new(Ping {
                            seq: self.seq,
                            reply_to: me,
                            idx: i,
                        }),
                        64,
                        SimDuration::from_micros(1),
                    );
                }
                ctx.set_timer(self.cfg.period, TAG_HB, SimDuration::from_micros(1));
            }
            ProcEvent::Message(m) => {
                if let Ok(pong) = m.downcast::<Pong>() {
                    if pong.idx < self.pong_seen.len() {
                        self.pong_seen[pong.idx] = true;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Start heartbeat agents on every replica plus the detector on the
/// client. Returns the detector's address.
pub fn start_heartbeats(
    group: &GroupRef,
    cfg: HeartbeatConfig,
    on_failure: OnFailure,
    w: &mut World,
    eng: &mut Engine<World>,
) -> ProcAddr {
    let (client, replicas) = {
        let g = group.borrow();
        (g.cfg.client, g.cfg.replicas.clone())
    };
    let agents: Vec<ProcAddr> = replicas
        .iter()
        .enumerate()
        .map(|(i, &rh)| {
            w.start_process(
                rh,
                &format!("hb-agent-{i}"),
                None,
                Box::new(ReplicaAgent),
                SimDuration::from_micros(1),
                eng,
            )
        })
        .collect();
    w.start_process(
        client,
        "hb-detector",
        None,
        Box::new(FailureDetector::new(agents, cfg, on_failure)),
        SimDuration::from_micros(1),
        eng,
    )
}

/// Copy `[src_addr, +len)` on `src` into `[dst_addr, +len)` on `dst`
/// with chunked RDMA READs issued from `dst` — the catch-up phase a new
/// chain member runs before joining. Calls `done` when the copy is
/// complete. The source range must be covered by an MR with
/// `REMOTE_READ` whose rkey is `src_rkey`.
#[allow(clippy::too_many_arguments)]
pub fn catch_up(
    w: &mut World,
    eng: &mut Engine<World>,
    src: HostId,
    src_rkey: u32,
    src_addr: u64,
    dst: HostId,
    dst_addr: u64,
    len: u64,
    chunk: u32,
    done: OnRecovered,
) {
    // A throwaway QP pair for the copy.
    static CUP: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let uid = CUP.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let sq_d = w
        .host(dst)
        .layout
        .alloc(&format!("catchup{uid}.sq"), 8 * WQE_SIZE, 64);
    let sq_s = w
        .host(src)
        .layout
        .alloc(&format!("catchup{uid}.sq"), 8 * WQE_SIZE, 64);
    let scq_d = w.host(dst).nic.create_cq();
    let rcq_d = w.host(dst).nic.create_cq();
    let qp_d = w.host(dst).nic.create_qp(scq_d, rcq_d, sq_d.addr, 8);
    let scq_s = w.host(src).nic.create_cq();
    let rcq_s = w.host(src).nic.create_cq();
    let qp_s = w.host(src).nic.create_qp(scq_s, rcq_s, sq_s.addr, 8);
    w.connect_qps(dst, qp_d, src, qp_s);
    // Catch-up often runs while the fabric is still unhealthy (that is
    // why the chain is being rebuilt); a lost READ on a fire-and-forget
    // QP would stall the copy forever, so the copy QP is reliable with
    // a budget generous enough to ride out transient faults.
    w.host(dst)
        .nic
        .set_qp_timeout(qp_d, SimDuration::from_millis(2), 20);

    struct CopyState {
        offset: u64,
        len: u64,
        chunk: u32,
        src_rkey: u32,
        src_addr: u64,
        dst_addr: u64,
        dst: HostId,
        qp_d: u32,
        done: Option<OnRecovered>,
    }

    let state = std::rc::Rc::new(std::cell::RefCell::new(CopyState {
        offset: 0,
        len,
        chunk,
        src_rkey,
        src_addr,
        dst_addr,
        dst,
        qp_d,
        done: Some(done),
    }));

    fn issue_next(
        state: &std::rc::Rc<std::cell::RefCell<CopyState>>,
        w: &mut World,
        eng: &mut Engine<World>,
    ) {
        let mut s = state.borrow_mut();
        if s.offset >= s.len {
            let done = s.done.take();
            let dst = s.dst;
            drop(s);
            let _ = dst;
            if let Some(done) = done {
                done(w, eng);
            }
            return;
        }
        let n = s.chunk.min((s.len - s.offset) as u32);
        let wqe = Wqe {
            opcode: Opcode::Read,
            flags: hl_rnic::flags::SIGNALED,
            len: n,
            laddr: s.dst_addr + s.offset,
            raddr: s.src_addr + s.offset,
            rkey: s.src_rkey,
            wr_id: s.offset,
            ..Default::default()
        };
        s.offset += n as u64;
        let dst = s.dst;
        let qp = s.qp_d;
        drop(s);
        w.host(dst).post_send(qp, wqe, false).expect("catchup SQ");
        w.ring_doorbell(dst, qp, eng);
    }

    let st = state.clone();
    w.subscribe_cq_callback(dst, scq_d, move |cqe, w, eng| {
        if cqe.status == hl_rnic::CqeStatus::Ok {
            issue_next(&st, w, eng);
        }
    });
    issue_next(&state, w, eng);
}

/// Rebuild a chain after a failure: pause the old group, construct a
/// fresh group over `survivors` (+ optionally a `new_member` that is
/// caught up from the client's copy first), and hand back the new
/// client. The old group's rings are simply abandoned, as the paper's
/// recovery hands control back to the application's protocol.
#[allow(clippy::too_many_arguments)]
pub fn rebuild_chain(
    w: &mut World,
    eng: &mut Engine<World>,
    old: &GroupRef,
    survivors: Vec<HostId>,
    new_member: Option<HostId>,
    ring_slots: u32,
    done: OnRebuilt,
) {
    old.borrow_mut().paused = true;
    let (client_host, rep_bytes, client_rep) = {
        let g = old.borrow();
        (g.cfg.client, g.cfg.rep_bytes, g.client_rep.clone())
    };
    let now = eng.now();
    w.telemetry
        .mark(now, "recovery:rebuild-chain", client_host.0);
    w.telemetry
        .metrics
        .counter_add("recovery_chain_rebuilds", "layer=recovery", 1);
    let mut replicas = survivors;
    if let Some(nm) = new_member {
        replicas.push(nm);
    }
    let (replenish_period, transport_timeout) = {
        let g = old.borrow();
        (g.cfg.replenish_period, g.cfg.transport_timeout)
    };
    let cfg = GroupConfig {
        client: client_host,
        replicas: replicas.clone(),
        rep_bytes,
        ring_slots,
        replenish_period,
        transport_timeout,
    };
    let new_group = GroupBuilder::new(cfg).build(w);

    // Bring every member of the new group to the client's state. The
    // client's copy is authoritative (it holds everything it ever
    // ACKed). The new group's own client region is a fresh allocation,
    // so seed it with a local copy first; replicas copy over the
    // fabric.
    {
        let new_rep_addr = new_group.borrow().client_rep.addr;
        let h = w.host(client_host);
        let bytes = h.mem.read_vec(client_rep.addr, rep_bytes as usize).unwrap();
        h.mem.write(new_rep_addr, &bytes).unwrap();
    }
    let targets: Vec<(HostId, u64)> = {
        let g = new_group.borrow();
        (0..g.n_replicas())
            .map(|i| (g.cfg.replicas[i], g.replica_rep[i].addr))
            .collect()
    };
    // Register the client's rep region for remote reads.
    let src_mr = {
        let h = w.host(client_host);
        h.nic
            .register_mr(client_rep.addr, client_rep.len, Access::REMOTE_READ)
    };

    let total = targets.len();
    let finished = std::rc::Rc::new(std::cell::RefCell::new(0usize));
    let done_cell = std::rc::Rc::new(std::cell::RefCell::new(Some(done)));
    let ng = new_group.clone();
    for (th, taddr) in targets {
        let finished = finished.clone();
        let done_cell = done_cell.clone();
        let ng = ng.clone();
        catch_up(
            w,
            eng,
            client_host,
            src_mr.rkey,
            client_rep.addr,
            th,
            taddr,
            rep_bytes,
            64 * 1024,
            Box::new(move |w, eng| {
                *finished.borrow_mut() += 1;
                if *finished.borrow() == total {
                    crate::replica::start_replenishers(&ng, w, eng);
                    let client = HyperLoopClient::new(ng.clone(), w);
                    if let Some(done) = done_cell.borrow_mut().take() {
                        done(w, eng, client);
                    }
                }
            }),
        );
    }
}

/// Callback invoked with each transport-error CQE on the client's
/// outbound rings.
pub type OnTransportError = Box<dyn FnMut(&mut World, &mut Engine<World>, Cqe)>;

/// Subscribe to error completions on the client's per-primitive
/// outbound send CQs. With [`crate::GroupConfig::transport_timeout`]
/// set, a head-hop data-path failure (dead or stalled replica-0 NIC)
/// surfaces here as `RetryExceeded` followed by `FlushedInError`
/// completions; without it, only remote NAKs (`RemoteAccess`,
/// `ReceiverNotReady`) appear.
pub fn watch_transport_errors(group: &GroupRef, w: &mut World, on_error: OnTransportError) {
    let (ch, scqs) = {
        let g = group.borrow();
        (
            g.cfg.client,
            Primitive::ALL.map(|p| g.client_rings[p.idx()].out_scq),
        )
    };
    let cb = std::rc::Rc::new(std::cell::RefCell::new(on_error));
    for scq in scqs {
        let cb = cb.clone();
        w.subscribe_cq_callback(ch, scq, move |cqe, w, eng| {
            if cqe.status != CqeStatus::Ok {
                (cb.borrow_mut())(w, eng, cqe);
            }
        });
    }
}

/// Arm one-shot data-path-error recovery: on the first transport-error
/// CQE the group is paused, the chain is rebuilt over `survivors`
/// (+ `new_member`, caught up from the client's copy) and `done`
/// receives the new client — the same pause → rebuild → catch-up →
/// resume path the heartbeat detector drives, but triggered by the
/// NIC's own error machinery (no detection period).
pub fn rebuild_on_cq_error(
    group: &GroupRef,
    w: &mut World,
    survivors: Vec<HostId>,
    new_member: Option<HostId>,
    ring_slots: u32,
    done: OnRebuilt,
) {
    let latch = std::rc::Rc::new(std::cell::RefCell::new(false));
    let done = std::rc::Rc::new(std::cell::RefCell::new(Some(done)));
    let g = group.clone();
    watch_transport_errors(
        group,
        w,
        Box::new(move |w, eng, cqe| {
            if std::mem::replace(&mut *latch.borrow_mut(), true) {
                return;
            }
            g.borrow_mut().paused = true;
            hl_sim::trace!(
                w.tracer,
                eng.now(),
                "recovery",
                "transport error {:?} on client qp{}: rebuilding chain",
                cqe.status,
                cqe.qpn
            );
            if let Some(done) = done.borrow_mut().take() {
                rebuild_chain(w, eng, &g, survivors.clone(), new_member, ring_slots, done);
            }
        }),
    );
}

/// Continuation receiving the degraded (Naïve-CPU) client.
pub type OnDegraded = Box<dyn FnOnce(&mut World, &mut Engine<World>, crate::naive::NaiveClient)>;

/// Graceful degradation: pause the HyperLoop group and bring up a
/// CPU-driven Naïve chain over the *same members*, seeded from the
/// client's authoritative copy. This is the fallback for a replica
/// whose CORE-Direct WAIT engine malfunctions (NIC still moves packets
/// but parked WQE chains never fire — `set_nic_wait_stalled`): Naïve
/// forwarding posts WQEs from the CPU and uses no WAITs, so it keeps
/// making progress on the very NIC whose offload path is wedged.
pub fn degrade_to_naive(
    group: &GroupRef,
    w: &mut World,
    eng: &mut Engine<World>,
    mode: crate::naive::Mode,
    done: OnDegraded,
) {
    group.borrow_mut().paused = true;
    let (client_host, replicas, rep_bytes, ring_slots, client_rep) = {
        let g = group.borrow();
        (
            g.cfg.client,
            g.cfg.replicas.clone(),
            g.cfg.rep_bytes,
            g.cfg.ring_slots,
            g.client_rep.clone(),
        )
    };
    hl_sim::trace!(
        w.tracer,
        eng.now(),
        "recovery",
        "degrading to naive-CPU forwarding over {} replicas",
        replicas.len()
    );
    let now = eng.now();
    w.telemetry
        .mark(now, "recovery:degrade-naive", client_host.0);
    w.telemetry
        .metrics
        .counter_add("recovery_degrades_to_naive", "layer=recovery", 1);
    let naive = crate::naive::NaiveBuilder::new(crate::naive::NaiveConfig {
        client: client_host,
        replicas: replicas.clone(),
        rep_bytes,
        ring_slots,
        mode,
        ..Default::default()
    })
    .build(w, eng);

    // Seed every member of the naive chain from the client's copy: its
    // local region with a CPU copy, the replicas with chunked RDMA
    // READs (the catch-up path — CPU-posted READs, no WAITs involved).
    let local_src = client_rep.addr;
    let local_dst = naive.group().borrow().member_addr(0, 0);
    let bytes = w
        .host(client_host)
        .mem
        .read_vec(local_src, rep_bytes as usize)
        .unwrap();
    w.host(client_host).mem.write(local_dst, &bytes).unwrap();

    let src_mr =
        w.host(client_host)
            .nic
            .register_mr(client_rep.addr, client_rep.len, Access::REMOTE_READ);
    let targets: Vec<(HostId, u64)> = {
        let ni = naive.group().borrow();
        (1..=replicas.len())
            .map(|m| (replicas[m - 1], ni.member_addr(m, 0)))
            .collect()
    };
    let total = targets.len();
    let finished = std::rc::Rc::new(std::cell::RefCell::new(0usize));
    let done_cell = std::rc::Rc::new(std::cell::RefCell::new(Some(done)));
    for (th, taddr) in targets {
        let finished = finished.clone();
        let done_cell = done_cell.clone();
        let naive = naive.clone();
        catch_up(
            w,
            eng,
            client_host,
            src_mr.rkey,
            client_rep.addr,
            th,
            taddr,
            rep_bytes,
            64 * 1024,
            Box::new(move |w, eng| {
                *finished.borrow_mut() += 1;
                if *finished.borrow() == total {
                    if let Some(done) = done_cell.borrow_mut().take() {
                        done(w, eng, naive);
                    }
                }
            }),
        );
    }
}

/// Re-deliver a message to a process directly (test helper for control
/// messages originating outside any process).
pub fn inject_message(
    to: ProcAddr,
    msg: Box<dyn std::any::Any>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    deliver(
        to,
        ProcEvent::Message(msg),
        SimDuration::from_micros(1),
        w,
        eng,
    );
}
