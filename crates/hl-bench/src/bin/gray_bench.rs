//! Gray-failure campaign harness.
//!
//! Runs the impairment matrix (baseline, jitter, lossy link, rate cap,
//! straggler NIC) against three backends (offloaded HyperLoop, Naïve
//! CPU forwarding, HyperLoop + health-driven degrade), then the
//! crashed-host live-rejoin case with its fault-free control, and
//! writes:
//!
//! * `results/gray_chaos.txt` — the latency table plus per-point report
//!   lines (the deterministic artifact CI checks).
//! * `BENCH_6.json` — machine-readable summary (p50/p99 per class per
//!   backend, degrade counts, rejoin verdicts) for the CI job summary.
//!
//! `HL_GRAY_OPS` overrides ops per point (CI uses a small value).

use hl_bench::gray::{
    impairment_classes, run_excursion_case, run_gray_point, run_rejoin_case, GrayBackend, GrayCfg,
    GrayPoint,
};
use hl_bench::table::Table;

fn main() {
    let ops: usize = std::env::var("HL_GRAY_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let cfg = GrayCfg {
        ops,
        ..Default::default()
    };
    let backends = [GrayBackend::Hyper, GrayBackend::Naive, GrayBackend::Degrade];
    let classes = impairment_classes();

    let mut points: Vec<GrayPoint> = Vec::new();
    for (class, faults) in &classes {
        for b in backends {
            points.push(run_gray_point(class, faults, b, &cfg));
        }
    }

    let mut table = Table::new(&[
        "class", "backend", "p50 us", "p99 us", "failed", "degr", "prom",
    ]);
    for p in &points {
        table.row(&[
            p.class.to_string(),
            p.backend.label().to_string(),
            format!("{:.1}", p.latency.p50_ns as f64 / 1e3),
            format!("{:.1}", p.latency.p99_ns as f64 / 1e3),
            format!("{}", p.failed_ops),
            format!("{}", p.degrades),
            format!("{}", p.promotes),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");

    // Crashed-host live-rejoin vs its fault-free control.
    let rejoin = run_rejoin_case(cfg.seed, 200.min(ops.max(50)), true);
    let control = run_rejoin_case(cfg.seed, 200.min(ops.max(50)), false);
    let bystander_identical = rejoin.bystander_latencies == control.bystander_latencies;
    println!(
        "rejoin: victim acked={} failed={} members={:?} rejoined={} bystander_identical={}",
        rejoin.victim_acked,
        rejoin.victim_failed,
        rejoin.victim_members,
        rejoin.rejoined,
        bystander_identical
    );

    // SLO-excursion round trip, run twice: the snapshot must be
    // byte-identical across same-seed re-runs, and the causal chain
    // (p99 excursion window → slo:fire: → Degrading) must hold.
    let exc_ops = ops.max(500);
    let exc = run_excursion_case(cfg.seed, exc_ops);
    let exc2 = run_excursion_case(cfg.seed, exc_ops);
    println!("{}", exc.report);
    let snapshot_identical = exc.snapshot_json == exc2.snapshot_json;

    let mut txt = String::new();
    txt.push_str("# Gray-failure campaign: end-to-end supervised latency per impairment class\n");
    txt.push_str(&format!(
        "# cfg: ops={} pipeline={} write={}B seed={}\n",
        cfg.ops, cfg.pipeline, cfg.write_size, cfg.seed
    ));
    txt.push_str(&rendered);
    txt.push('\n');
    for p in &points {
        txt.push_str(&format!("{}\n", p.report));
    }
    txt.push_str(&format!(
        "\nrejoin victim_acked={} victim_failed={} rejoined={} bystander_identical={}\n",
        rejoin.victim_acked, rejoin.victim_failed, rejoin.rejoined, bystander_identical
    ));
    txt.push_str(&format!(
        "\n{}\nsnapshot_identical={snapshot_identical}\n",
        exc.report
    ));
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/gray_chaos.txt", &txt).expect("write results/gray_chaos.txt");
    std::fs::write("results/timeseries_excursion.json", &exc.snapshot_json)
        .expect("write results/timeseries_excursion.json");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"ops\": {},\n", cfg.ops));
    json.push_str(&format!(
        "  \"classes\": [{}],\n",
        classes
            .iter()
            .map(|(c, _)| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"backends\": [{}],\n",
        backends
            .iter()
            .map(|b| format!("\"{}\"", b.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (key, pick) in [("p50_us", true), ("p99_us", false)] {
        json.push_str(&format!("  \"{key}\": {{\n"));
        let rows: Vec<String> = classes
            .iter()
            .map(|(class, _)| {
                let cells: Vec<String> = backends
                    .iter()
                    .map(|b| {
                        let p = points
                            .iter()
                            .find(|p| p.class == *class && p.backend == *b)
                            .expect("point ran");
                        let ns = if pick {
                            p.latency.p50_ns
                        } else {
                            p.latency.p99_ns
                        };
                        format!("\"{}\": {:.1}", b.label(), ns as f64 / 1e3)
                    })
                    .collect();
                format!("    \"{class}\": {{{}}}", cells.join(", "))
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  },\n");
    }
    json.push_str(&format!(
        "  \"degrades\": {{{}}},\n",
        classes
            .iter()
            .map(|(class, _)| {
                let p = points
                    .iter()
                    .find(|p| p.class == *class && p.backend == GrayBackend::Degrade)
                    .expect("point ran");
                format!("\"{class}\": {}", p.degrades)
            })
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        concat!(
            "  \"rejoin\": {{\n",
            "    \"victim_acked\": {},\n",
            "    \"victim_failed\": {},\n",
            "    \"rejoined\": {},\n",
            "    \"bystander_byte_identical\": {}\n",
            "  }},\n",
        ),
        rejoin.victim_acked, rejoin.victim_failed, rejoin.rejoined, bystander_identical
    ));
    json.push_str(&format!(
        concat!(
            "  \"excursion\": {{\n",
            "    \"ops\": {},\n",
            "    \"excursion_window\": {},\n",
            "    \"excursion_end_ns\": {},\n",
            "    \"slo_fire_ns\": {},\n",
            "    \"degrading_ns\": {},\n",
            "    \"degrades\": {},\n",
            "    \"promotes\": {},\n",
            "    \"snapshot_byte_identical\": {}\n",
            "  }}\n",
        ),
        exc_ops,
        exc.excursion_window,
        exc.excursion_end_ns,
        exc.slo_fire_ns.map_or(-1, |v| v as i64),
        exc.degrading_ns.map_or(-1, |v| v as i64),
        exc.degrades,
        exc.promotes,
        snapshot_identical
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_6.json", json).expect("write BENCH_6.json");
    println!("wrote results/gray_chaos.txt and BENCH_6.json");

    // The campaign's own floor: every op settles, the rejoin really
    // happens, and the victim's churn never leaks into the bystander.
    for p in &points {
        assert_eq!(p.failed_ops, 0, "{}: ops failed", p.report);
    }
    assert!(rejoin.rejoined, "crashed host did not rejoin the chain");
    assert_eq!(rejoin.victim_failed, 0, "victim ops failed across rejoin");
    assert_eq!(rejoin.bystander_failed, 0);
    assert!(
        bystander_identical,
        "bystander latencies perturbed by the victim's crash/rejoin"
    );

    // The excursion's own floor: the snapshot is replay-identical and
    // the causal chain (p99 excursion window ends before the alert
    // fires, which precedes the Degrading transition) holds, with the
    // round trip completing.
    assert!(
        snapshot_identical,
        "excursion time-series snapshot differs across same-seed re-runs"
    );
    let fire = exc.slo_fire_ns.expect("SLO alert fired");
    let degrading = exc.degrading_ns.expect("monitor degraded");
    assert!(
        exc.excursion_end_ns > 0 && exc.excursion_end_ns <= fire,
        "p99 excursion window (ends {}) must close before the alert fires ({fire})",
        exc.excursion_end_ns
    );
    assert!(
        fire < degrading,
        "SLO alert ({fire}) must precede the Degrading transition ({degrading})"
    );
    assert!(exc.degrades >= 1 && exc.promotes >= 1, "no round trip");
    assert_eq!(exc.ops_failed, 0, "excursion ops failed");
}
