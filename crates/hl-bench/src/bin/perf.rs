//! Simulator-self performance harness (ISSUE 9 "parallel simulation
//! that scales").
//!
//! Measures the hot-path engine against the engine it replaced and the
//! threaded campaign runners against their sequential baselines, and
//! emits `BENCH_9.json`:
//!
//! 1. **Event-queue microbench** (`datapath_timer_pattern`, the
//!    headline) — the access pattern the NIC datapath actually
//!    generates: every op schedules its completion, arms a retransmit
//!    timeout, and the completion cancels it. The pre-change engine
//!    (`BinaryHeap` + per-event `Box<dyn FnOnce>`, embedded below
//!    verbatim so the baseline runs on the same machine in the same
//!    process) cannot cancel, so ~30k dead timers stay resident and
//!    deepen every heap operation until they fire as stale no-ops.
//! 2. **Uniform rotation** — 1024 lanes each rescheduling themselves
//!    at a fixed delay, no timers. This is `BinaryHeap`'s best case
//!    (every push lands at a leaf, every pop sifts a max key from the
//!    root) and measures the arena engine's bookkeeping tax when the
//!    cancel machinery goes unused — the closure lane is the historical
//!    regression this file watches.
//! 3. **End-to-end gWRITE** — wall-clock ops/sec of the full simulated
//!    stack (NIC, fabric, NVM, telemetry) via the Figure-9 throughput
//!    configuration.
//! 4. **Campaign wall-clock** — the chaos campaign fanned across OS
//!    threads vs run sequentially, with a byte-identity check on the
//!    merged artifacts.
//! 5. **Threaded shard campaign** — 64 disjoint shard worlds, ≥1M ops
//!    total, each shard's event loop on its own thread via
//!    [`ShardExecutor`]-backed [`run_shard_campaign_threaded`], vs the
//!    same jobs run sequentially; merged reports must be
//!    byte-identical.
//!
//! **Noise discipline**: this host is shared and single-digit-core; a
//! one-shot timing can swing 2-3x between minutes. Every ratio here is
//! therefore taken from *interleaved* rounds — one warmup round per
//! variant, then `ROUNDS` measurement rounds cycling through the
//! variants (A,B,C, A,B,C, ...) so slow minutes hit all variants
//! alike — and the reported wall time is the per-variant **median**.
//! `host_parallelism` is recorded so CI can gate thread-scaling
//! assertions on hosts that actually have cores.
//!
//! Timing uses `std::time::Instant`, which is legal here: hl-bench is
//! host-side tooling, deliberately outside the determinism-linted
//! simulation crates.
//!
//! [`ShardExecutor`]: hl_cluster::exec::ShardExecutor
//! [`run_shard_campaign_threaded`]: hl_bench::shard::run_shard_campaign_threaded

use hl_bench::campaign::{run_campaigns_parallel, run_campaigns_sequential};
use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_bench::shard::{run_shard_campaign_threaded, ShardCampaignCfg};
use hl_cluster::exec::host_parallelism;
use hl_sim::{Engine, EventCtx, EventToken, SimDuration};
use std::time::Instant;

/// The engine this repo replaced, embedded as the measurement baseline:
/// a `BinaryHeap` of `(time, seq)`-ordered events, each one a separate
/// `Box<dyn FnOnce>` allocation, with no cancellation support.
mod legacy {
    use hl_sim::{SimDuration, SimTime};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    pub type Handler<C> = Box<dyn FnOnce(&mut C, &mut Engine<C>)>;

    struct Scheduled<C> {
        at: SimTime,
        seq: u64,
        run: Handler<C>,
    }

    impl<C> PartialEq for Scheduled<C> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<C> Eq for Scheduled<C> {}
    impl<C> PartialOrd for Scheduled<C> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<C> Ord for Scheduled<C> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap; invert so the earliest (time, seq) pops first.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct Engine<C> {
        queue: BinaryHeap<Scheduled<C>>,
        now: SimTime,
        seq: u64,
        executed: u64,
    }

    impl<C> Engine<C> {
        pub fn new() -> Self {
            Engine {
                queue: BinaryHeap::new(),
                now: SimTime::ZERO,
                seq: 0,
                executed: 0,
            }
        }

        pub fn events_executed(&self) -> u64 {
            self.executed
        }

        pub fn pending(&self) -> usize {
            self.queue.len()
        }

        pub fn schedule<F>(&mut self, delay: SimDuration, f: F)
        where
            F: FnOnce(&mut C, &mut Engine<C>) + 'static,
        {
            let at = (self.now + delay).max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled {
                at,
                seq,
                run: Box::new(f),
            });
        }

        pub fn step(&mut self, ctx: &mut C) -> bool {
            match self.queue.pop() {
                Some(ev) => {
                    self.now = ev.at;
                    self.executed += 1;
                    (ev.run)(ctx, self);
                    true
                }
                None => false,
            }
        }

        pub fn run(&mut self, ctx: &mut C) {
            while self.step(ctx) {}
        }
    }
}

const LANES: usize = 1024;
const EVENTS: u64 = 2_000_000;
const TIMER_OPS: u64 = 300_000;
const CAMPAIGN_SEEDS: [u64; 8] = [101, 102, 103, 104, 105, 106, 107, 108];
/// Interleaved measurement rounds per variant (the median is reported).
const ROUNDS: usize = 3;
/// Threaded shard campaign geometry: 64 shards x 16k ops > 1M ops.
const SHARDS: usize = 64;
const OPS_PER_SHARD: usize = 16_000;

/// Shared lane state for the engine microbenches. `remaining` gates the
/// total event count; `acc` consumes the payload so the work per event
/// is identical (and non-optimizable-away) across all variants.
struct Lanes {
    acc: Vec<u64>,
    remaining: u64,
}

impl Lanes {
    fn new(budget: u64) -> Self {
        Lanes {
            acc: vec![0; LANES],
            remaining: budget,
        }
    }
}

/// Typed event: what the hl-cluster datapath schedules instead of a
/// boxed closure. The `[u64; 4]` payload mirrors the captured state the
/// closure variants carry, so all variants move the same bytes.
struct LaneEvent {
    lane: u32,
    payload: [u64; 4],
}

impl EventCtx for Lanes {
    type Event = LaneEvent;
    fn run_event(&mut self, eng: &mut Engine<Self>, ev: LaneEvent) {
        self.acc[ev.lane as usize] =
            self.acc[ev.lane as usize].wrapping_add(ev.payload[0] ^ ev.payload[3]);
        if self.remaining > 0 {
            self.remaining -= 1;
            eng.schedule_event(
                lane_delay(ev.lane),
                LaneEvent {
                    lane: ev.lane,
                    payload: ev.payload,
                },
            );
        }
    }
}

fn lane_delay(lane: u32) -> SimDuration {
    SimDuration::from_nanos(100 + (lane as u64 % 7) * 10)
}

fn lane_payload(lane: u32) -> [u64; 4] {
    [lane as u64 + 1, 2, 3, lane as u64]
}

fn lane_step_arena(w: &mut Lanes, eng: &mut Engine<Lanes>, lane: u32, payload: [u64; 4]) {
    w.acc[lane as usize] = w.acc[lane as usize].wrapping_add(payload[0] ^ payload[3]);
    if w.remaining > 0 {
        w.remaining -= 1;
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_arena(w, eng, lane, payload)
        });
    }
}

fn lane_step_legacy(w: &mut Lanes, eng: &mut legacy::Engine<Lanes>, lane: u32, payload: [u64; 4]) {
    w.acc[lane as usize] = w.acc[lane as usize].wrapping_add(payload[0] ^ payload[3]);
    if w.remaining > 0 {
        w.remaining -= 1;
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_legacy(w, eng, lane, payload)
        });
    }
}

#[derive(Clone, Copy)]
struct EngineSample {
    wall_ms: f64,
    events_per_sec: f64,
    executed: u64,
    checksum: u64,
}

fn sample(wall: std::time::Duration, executed: u64, w: &Lanes) -> EngineSample {
    let secs = wall.as_secs_f64();
    EngineSample {
        wall_ms: secs * 1e3,
        events_per_sec: executed as f64 / secs,
        executed,
        checksum: w.acc.iter().fold(0u64, |a, &b| a.wrapping_add(b)),
    }
}

/// Median-by-wall-time of one variant's measurement rounds. Throughput
/// and wall time come from the same (median) round, so the reported
/// numbers are mutually consistent rather than a mix of rounds.
fn median_by_wall<S: Clone>(rounds: &[S], wall_of: impl Fn(&S) -> f64) -> S {
    assert!(!rounds.is_empty());
    let mut order: Vec<usize> = (0..rounds.len()).collect();
    order.sort_by(|&a, &b| {
        wall_of(&rounds[a])
            .partial_cmp(&wall_of(&rounds[b]))
            .expect("wall times are finite")
    });
    rounds[order[order.len() / 2]].clone()
}

fn bench_legacy_closures() -> EngineSample {
    let mut w = Lanes::new(EVENTS - LANES as u64);
    let mut eng = legacy::Engine::new();
    let t0 = Instant::now();
    for lane in 0..LANES as u32 {
        let payload = lane_payload(lane);
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_legacy(w, eng, lane, payload)
        });
    }
    eng.run(&mut w);
    sample(t0.elapsed(), eng.events_executed(), &w)
}

fn bench_arena_closures() -> EngineSample {
    let mut w = Lanes::new(EVENTS - LANES as u64);
    let mut eng: Engine<Lanes> = Engine::new();
    let t0 = Instant::now();
    for lane in 0..LANES as u32 {
        let payload = lane_payload(lane);
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_arena(w, eng, lane, payload)
        });
    }
    eng.run(&mut w);
    sample(t0.elapsed(), eng.events_executed(), &w)
}

fn bench_arena_typed() -> EngineSample {
    let mut w = Lanes::new(EVENTS - LANES as u64);
    let mut eng: Engine<Lanes> = Engine::new();
    let t0 = Instant::now();
    for lane in 0..LANES as u32 {
        eng.schedule_event(
            lane_delay(lane),
            LaneEvent {
                lane,
                payload: lane_payload(lane),
            },
        );
    }
    eng.run(&mut w);
    sample(t0.elapsed(), eng.events_executed(), &w)
}

#[derive(Clone, Copy)]
struct TimerSample {
    wall_ms: f64,
    events_per_sec: f64,
    ops_per_sec: f64,
    executed: u64,
    max_pending: usize,
}

/// The datapath pattern on the old engine: ops arrive every 100ns, each
/// arms a 3ms retransmit timeout (the chain's `transport_timeout`) it
/// cannot cancel, completion fires 200ns later, and the dead timer
/// fires as a stale no-op three milliseconds on — so ~30k dead entries
/// are resident at steady state, deepening every heap operation, and a
/// third of all executed events are pure waste.
fn bench_timers_legacy() -> TimerSample {
    struct W {
        live: u64,
        completed: u64,
        stale_fired: u64,
    }
    fn op(w: &mut W, eng: &mut legacy::Engine<W>, remaining: u64) {
        w.live += 1;
        // The timeout: by firing time the op is long gone.
        eng.schedule(SimDuration::from_micros(3000), move |w: &mut W, _| {
            w.stale_fired += 1;
        });
        // The completion.
        eng.schedule(SimDuration::from_nanos(200), move |w: &mut W, _| {
            w.live -= 1;
            w.completed += 1;
        });
        if remaining > 0 {
            eng.schedule(SimDuration::from_nanos(100), move |w: &mut W, eng| {
                op(w, eng, remaining - 1)
            });
        }
    }
    let mut w = W {
        live: 0,
        completed: 0,
        stale_fired: 0,
    };
    let mut eng = legacy::Engine::new();
    let mut max_pending = 0usize;
    let t0 = Instant::now();
    eng.schedule(SimDuration::ZERO, move |w: &mut W, eng| {
        op(w, eng, TIMER_OPS - 1)
    });
    while eng.step(&mut w) {
        max_pending = max_pending.max(eng.pending());
    }
    let wall = t0.elapsed();
    assert_eq!(w.completed, TIMER_OPS);
    assert_eq!(w.stale_fired, TIMER_OPS);
    TimerSample {
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: eng.events_executed() as f64 / wall.as_secs_f64(),
        ops_per_sec: TIMER_OPS as f64 / wall.as_secs_f64(),
        executed: eng.events_executed(),
        max_pending,
    }
}

/// Same pattern on the new engine: completion cancels the timer token,
/// so the heap stays shallow and dead timers never execute.
fn bench_timers_cancel() -> TimerSample {
    struct W {
        live: u64,
        completed: u64,
        stale_fired: u64,
    }
    hl_sim::inert_event_ctx!(W);
    fn op(w: &mut W, eng: &mut Engine<W>, remaining: u64) {
        w.live += 1;
        let timer: EventToken =
            eng.schedule(SimDuration::from_micros(3000), move |w: &mut W, _| {
                w.stale_fired += 1;
            });
        eng.schedule(SimDuration::from_nanos(200), move |w: &mut W, eng| {
            w.live -= 1;
            w.completed += 1;
            eng.cancel(timer);
        });
        if remaining > 0 {
            eng.schedule(SimDuration::from_nanos(100), move |w: &mut W, eng| {
                op(w, eng, remaining - 1)
            });
        }
    }
    let mut w = W {
        live: 0,
        completed: 0,
        stale_fired: 0,
    };
    let mut eng: Engine<W> = Engine::new();
    let mut max_pending = 0usize;
    let t0 = Instant::now();
    eng.schedule(SimDuration::ZERO, move |w: &mut W, eng| {
        op(w, eng, TIMER_OPS - 1)
    });
    while eng.step(&mut w) {
        max_pending = max_pending.max(eng.pending());
    }
    let wall = t0.elapsed();
    assert_eq!(w.completed, TIMER_OPS);
    assert_eq!(w.stale_fired, 0, "cancelled timers must never fire");
    TimerSample {
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: eng.events_executed() as f64 / wall.as_secs_f64(),
        ops_per_sec: TIMER_OPS as f64 / wall.as_secs_f64(),
        executed: eng.events_executed(),
        max_pending,
    }
}

fn f(v: f64) -> String {
    format!("{v:.1}")
}

fn main() {
    let cores = host_parallelism();
    eprintln!("perf: host_parallelism={cores}, {ROUNDS} interleaved rounds per variant");

    eprintln!("perf: event-queue microbench, datapath timer pattern ({TIMER_OPS} ops)...");
    // Warmup round per variant, then interleaved measurement rounds.
    let _ = bench_timers_legacy();
    let _ = bench_timers_cancel();
    let mut t_legacy = Vec::with_capacity(ROUNDS);
    let mut t_cancel = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        t_legacy.push(bench_timers_legacy());
        t_cancel.push(bench_timers_cancel());
    }
    let timers_legacy = median_by_wall(&t_legacy, |s| s.wall_ms);
    let timers_cancel = median_by_wall(&t_cancel, |s| s.wall_ms);
    let timers_ev_speedup = timers_cancel.events_per_sec / timers_legacy.events_per_sec;
    let timers_op_speedup = timers_cancel.ops_per_sec / timers_legacy.ops_per_sec;

    eprintln!("perf: uniform rotation ({LANES} lanes, {EVENTS} events per variant)...");
    let _ = bench_legacy_closures();
    let _ = bench_arena_closures();
    let _ = bench_arena_typed();
    let mut r_legacy = Vec::with_capacity(ROUNDS);
    let mut r_cl = Vec::with_capacity(ROUNDS);
    let mut r_ty = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        r_legacy.push(bench_legacy_closures());
        r_cl.push(bench_arena_closures());
        r_ty.push(bench_arena_typed());
    }
    for (a, b) in r_legacy.iter().zip(&r_cl) {
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.checksum, b.checksum, "engine variants diverged");
    }
    for (a, b) in r_legacy.iter().zip(&r_ty) {
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.checksum, b.checksum, "engine variants diverged");
    }
    let legacy_ev = median_by_wall(&r_legacy, |s| s.wall_ms);
    let arena_cl = median_by_wall(&r_cl, |s| s.wall_ms);
    let arena_ty = median_by_wall(&r_ty, |s| s.wall_ms);
    let uniform_typed_speedup = arena_ty.events_per_sec / legacy_ev.events_per_sec;
    let uniform_closures_speedup = arena_cl.events_per_sec / legacy_ev.events_per_sec;

    eprintln!("perf: end-to-end gWRITE throughput...");
    let cfg = MicroCfg {
        backend: Backend::HyperLoop,
        op: MicroOp::GWrite {
            size: 1024,
            flush: false,
        },
        ops: 20_000,
        pipeline: 16,
        ..Default::default()
    };
    let _ = run_micro(&cfg);
    let mut g_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        let micro = run_micro(&cfg);
        g_rounds.push((t0.elapsed().as_secs_f64(), micro.kops));
    }
    let (gwrite_wall_s, gwrite_kops) = median_by_wall(&g_rounds, |s| s.0);
    let gwrite_wall_ops = cfg.ops as f64 / gwrite_wall_s;

    // Floor at 2 so the fan-out/merge machinery is always exercised;
    // with a single hardware thread the two timings are honestly
    // reported as roughly equal (host_parallelism tells CI which).
    let threads = cores.clamp(2, CAMPAIGN_SEEDS.len());
    eprintln!(
        "perf: chaos campaign x{} sequential vs {threads} threads...",
        CAMPAIGN_SEEDS.len()
    );
    let mut c_seq = Vec::with_capacity(ROUNDS);
    let mut c_par = Vec::with_capacity(ROUNDS);
    let mut byte_identical = true;
    for round in 0..ROUNDS {
        let t0 = Instant::now();
        let seq = run_campaigns_sequential(&CAMPAIGN_SEEDS);
        c_seq.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let par = run_campaigns_parallel(&CAMPAIGN_SEEDS, threads);
        c_par.push(t0.elapsed().as_secs_f64());
        if round == 0 {
            byte_identical = seq == par;
            assert!(byte_identical, "parallel campaign output diverged");
        }
    }
    let seq_wall = median_by_wall(&c_seq, |&s| s);
    let par_wall = median_by_wall(&c_par, |&s| s);
    let campaign_speedup = seq_wall / par_wall;

    let shard_threads = cores.clamp(2, SHARDS);
    eprintln!(
        "perf: threaded shard campaign, {SHARDS} shards x {OPS_PER_SHARD} ops, \
         sequential vs {shard_threads} threads..."
    );
    let shard_cfg = ShardCampaignCfg {
        n_shards: SHARDS,
        ops_per_shard: OPS_PER_SHARD,
        warmup_per_shard: 200,
        ..Default::default()
    };
    let t0 = Instant::now();
    let shard_seq = run_shard_campaign_threaded(&shard_cfg, 1);
    let shard_seq_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let shard_par = run_shard_campaign_threaded(&shard_cfg, shard_threads);
    let shard_par_s = t0.elapsed().as_secs_f64();
    let shard_identical = shard_seq.report == shard_par.report;
    assert!(shard_identical, "threaded shard campaign output diverged");
    assert!(
        shard_seq.total_ops >= 1_000_000,
        "campaign must cover >= 1M ops, got {}",
        shard_seq.total_ops
    );
    let shard_speedup = shard_seq_s / shard_par_s;

    let engine_sample = |s: &EngineSample| {
        format!(
            "{{\"wall_ms\": {}, \"events_per_sec\": {}, \"events\": {}}}",
            f(s.wall_ms),
            f(s.events_per_sec),
            s.executed
        )
    };
    let timer_sample = |s: &TimerSample| {
        format!(
            "{{\"wall_ms\": {}, \"events_per_sec\": {}, \"ops_per_sec\": {}, \
             \"events\": {}, \"max_pending\": {}}}",
            f(s.wall_ms),
            f(s.events_per_sec),
            f(s.ops_per_sec),
            s.executed,
            s.max_pending
        )
    };
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"BENCH_9\",\n\
         \x20 \"host_parallelism\": {cores},\n\
         \x20 \"measurement\": {{\"warmup_rounds\": 1, \"rounds\": {ROUNDS}, \
         \"interleaved\": true, \"aggregate\": \"median\"}},\n\
         \x20 \"engine_microbench\": {{\n\
         \x20   \"headline\": \"datapath_timer_pattern\",\n\
         \x20   \"datapath_timer_pattern\": {{\n\
         \x20     \"ops\": {TIMER_OPS},\n\
         \x20     \"baseline_legacy_dead_timers\": {},\n\
         \x20     \"arena_cancel_tokens\": {},\n\
         \x20     \"events_per_sec_speedup\": {},\n\
         \x20     \"ops_per_sec_speedup\": {}\n\
         \x20   }},\n\
         \x20   \"uniform_rotation\": {{\n\
         \x20     \"lanes\": {LANES},\n\
         \x20     \"events\": {},\n\
         \x20     \"baseline_legacy_boxed_closures\": {},\n\
         \x20     \"arena_closures\": {},\n\
         \x20     \"arena_typed\": {},\n\
         \x20     \"speedup_typed_vs_baseline\": {},\n\
         \x20     \"speedup_closures_vs_baseline\": {}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"gwrite_e2e\": {{\n\
         \x20   \"backend\": \"HyperLoop\",\n\
         \x20   \"size_bytes\": 1024,\n\
         \x20   \"ops\": {},\n\
         \x20   \"sim_kops\": {},\n\
         \x20   \"wall_ms\": {},\n\
         \x20   \"wall_ops_per_sec\": {}\n\
         \x20 }},\n\
         \x20 \"campaign\": {{\n\
         \x20   \"seeds\": {:?},\n\
         \x20   \"threads\": {threads},\n\
         \x20   \"sequential_ms\": {},\n\
         \x20   \"parallel_ms\": {},\n\
         \x20   \"speedup\": {},\n\
         \x20   \"byte_identical\": {byte_identical}\n\
         \x20 }},\n\
         \x20 \"threaded_shard_campaign\": {{\n\
         \x20   \"shards\": {SHARDS},\n\
         \x20   \"ops\": {},\n\
         \x20   \"threads\": {shard_threads},\n\
         \x20   \"agg_sim_kops\": {},\n\
         \x20   \"sequential_s\": {},\n\
         \x20   \"threaded_s\": {},\n\
         \x20   \"speedup\": {},\n\
         \x20   \"byte_identical\": {shard_identical}\n\
         \x20 }}\n\
         }}\n",
        timer_sample(&timers_legacy),
        timer_sample(&timers_cancel),
        f(timers_ev_speedup),
        f(timers_op_speedup),
        legacy_ev.executed,
        engine_sample(&legacy_ev),
        engine_sample(&arena_cl),
        engine_sample(&arena_ty),
        f(uniform_typed_speedup),
        f(uniform_closures_speedup),
        cfg.ops,
        f(gwrite_kops),
        f(gwrite_wall_s * 1e3),
        f(gwrite_wall_ops),
        CAMPAIGN_SEEDS,
        f(seq_wall * 1e3),
        f(par_wall * 1e3),
        f(campaign_speedup),
        shard_seq.total_ops,
        f(shard_seq.agg_kops),
        format_args!("{shard_seq_s:.2}"),
        format_args!("{shard_par_s:.2}"),
        f(shard_speedup),
    );
    std::fs::write("BENCH_9.json", &json).expect("write BENCH_9.json");

    println!(
        "event-queue microbench (datapath timer pattern): {} -> {} events/sec ({}x), \
         {} -> {} ops/sec ({}x), max pending {} -> {}",
        f(timers_legacy.events_per_sec),
        f(timers_cancel.events_per_sec),
        f(timers_ev_speedup),
        f(timers_legacy.ops_per_sec),
        f(timers_cancel.ops_per_sec),
        f(timers_op_speedup),
        timers_legacy.max_pending,
        timers_cancel.max_pending
    );
    println!(
        "uniform rotation: baseline {} / arena-closures {} ({}x) / arena-typed {} ({}x) events/sec",
        f(legacy_ev.events_per_sec),
        f(arena_cl.events_per_sec),
        f(uniform_closures_speedup),
        f(arena_ty.events_per_sec),
        f(uniform_typed_speedup)
    );
    println!(
        "gWRITE e2e: {} sim-Kops/s, {} wall ops/sec",
        f(gwrite_kops),
        f(gwrite_wall_ops)
    );
    println!(
        "campaign: {} seeds, sequential {} ms, parallel({} threads) {} ms, speedup {}x, byte_identical {}",
        CAMPAIGN_SEEDS.len(),
        f(seq_wall * 1e3),
        threads,
        f(par_wall * 1e3),
        f(campaign_speedup),
        byte_identical
    );
    println!(
        "threaded shard campaign: {} shards, {} ops, sequential {:.2}s, \
         threaded({} threads) {:.2}s, speedup {}x, byte_identical {}",
        SHARDS,
        shard_seq.total_ops,
        shard_seq_s,
        shard_threads,
        shard_par_s,
        f(shard_speedup),
        shard_identical
    );
    println!("wrote BENCH_9.json (host_parallelism {cores})");
}
