//! Native doclite replication — the conventional MongoDB-style path the
//! paper measures in Figures 2 and 12.
//!
//! One *primary* process and N *secondary* processes per replica set,
//! all CPU-driven: the client's query is parsed by the primary, written
//! to its journal (with a persist), applied to its database slots, and
//! shipped as an oplog message to every secondary, which applies and
//! acknowledges before the primary replies. Every hop rides the kernel
//! network stack (modelled as per-message CPU cost) and the multi-tenant
//! scheduler — this is where the paper's context-switch-driven tails
//! come from.

use super::document::Document;
use hl_cluster::{Ctx, ProcAddr, ProcEvent, Process, World};
use hl_fabric::HostId;
use hl_nvm::Region;
use hl_sim::{Engine, SimDuration};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// CPU cost knobs for the native path.
#[derive(Debug, Clone)]
pub struct NativeDocCosts {
    /// Kernel TCP receive + socket wakeup per message.
    pub tcp_rx: SimDuration,
    /// Query parse / validation on the primary.
    pub parse: SimDuration,
    /// Journal write + persist.
    pub journal: SimDuration,
    /// Apply one document to the slot area.
    pub apply: SimDuration,
    /// Building + sending one oplog or reply message.
    pub send: SimDuration,
}

impl Default for NativeDocCosts {
    fn default() -> Self {
        NativeDocCosts {
            tcp_rx: SimDuration::from_micros(3),
            parse: SimDuration::from_micros(4),
            journal: SimDuration::from_micros(2),
            apply: SimDuration::from_micros(2),
            send: SimDuration::from_micros(2),
        }
    }
}

/// Client request kinds (YCSB surface).
#[derive(Debug, Clone)]
pub enum DocOp {
    /// Insert or update a whole document.
    Upsert(Document),
    /// Point read.
    Read {
        /// Document id.
        id: u64,
    },
    /// Range scan of consecutive ids.
    Scan {
        /// First id.
        id: u64,
        /// Number of documents.
        n: usize,
    },
}

/// Client → primary request.
pub struct ClientOp {
    /// Correlation id (chosen by the driver).
    pub op_id: u64,
    /// Where the reply goes.
    pub reply_to: ProcAddr,
    /// The operation.
    pub op: DocOp,
}

/// Primary → client reply.
pub struct ClientReply {
    /// Echoed correlation id.
    pub op_id: u64,
    /// Read/scan payload.
    pub docs: Vec<Document>,
}

/// Primary → secondary oplog shipment.
pub struct Oplog {
    /// Correlation id.
    pub op_id: u64,
    /// The document to apply.
    pub doc: Document,
    /// Ack target (the primary).
    pub reply_to: ProcAddr,
}

/// Secondary → primary acknowledgement.
pub struct OplogAck {
    /// Correlation id.
    pub op_id: u64,
}

/// Fixed wire sizing (headers + encoded doc).
fn op_wire_size(op: &DocOp) -> usize {
    64 + match op {
        DocOp::Upsert(d) => d.encoded_len(),
        _ => 0,
    }
}

struct PendingWrite {
    reply_to: ProcAddr,
    acks_needed: usize,
}

/// Storage area of one native replica (journal + slots in its arena).
pub struct NativeArea {
    journal: Region,
    slots: Region,
    slot_size: u64,
    n_slots: u64,
    journal_at: u64,
}

impl NativeArea {
    /// Allocate journal + slot regions on `host`.
    pub fn alloc(w: &mut World, host: HostId, tag: &str, slot_size: u64, n_slots: u64) -> Self {
        let journal = w
            .host(host)
            .layout
            .alloc(&format!("{tag}.journal"), 64 << 10, 64);
        let slots = w
            .host(host)
            .layout
            .alloc(&format!("{tag}.slots"), slot_size * n_slots, 64);
        NativeArea {
            journal,
            slots,
            slot_size,
            n_slots,
            journal_at: 0,
        }
    }

    fn slot_addr(&self, id: u64) -> u64 {
        self.slots.at((id % self.n_slots) * self.slot_size)
    }

    /// Journal a blob (ring) + persist; then apply to the slot + persist.
    fn journal_and_apply(&mut self, ctx: &mut Ctx<'_>, doc: &Document) {
        let host = ctx.me.host;
        let blob = doc.encode_slot(self.slot_size as usize);
        let jlen = blob.len().min(512); // journal entry (truncated image)
        let jat = self.journal.at(self.journal_at % (self.journal.len - 1024));
        self.journal_at += jlen as u64;
        let mem = &mut ctx.world.hosts[host.0].mem;
        mem.write(jat, &blob[..jlen]).unwrap();
        mem.flush(jat, jlen).unwrap();
        let sat = self.slot_addr(doc.id);
        mem.write(sat, &blob).unwrap();
        mem.flush(sat, blob.len()).unwrap();
    }

    fn read_doc(&self, ctx: &mut Ctx<'_>, id: u64) -> Option<Document> {
        let host = ctx.me.host;
        let bytes = ctx.world.hosts[host.0]
            .mem
            .read_vec(self.slot_addr(id), self.slot_size as usize)
            .ok()?;
        Document::decode_slot(&bytes)
    }
}

/// One primary worker thread of a native replica set (mongod is
/// thread-per-connection; workers share the storage area).
pub struct NativePrimary {
    area: Rc<RefCell<NativeArea>>,
    secondaries: Vec<ProcAddr>,
    costs: NativeDocCosts,
    pending: BTreeMap<u64, PendingWrite>,
}

impl NativePrimary {
    /// Create with (shared) storage and this worker's secondary peers.
    pub fn new(
        area: Rc<RefCell<NativeArea>>,
        secondaries: Vec<ProcAddr>,
        costs: NativeDocCosts,
    ) -> Self {
        NativePrimary {
            area,
            secondaries,
            costs,
            pending: BTreeMap::new(),
        }
    }
}

impl Process for NativePrimary {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        let ProcEvent::Message(m) = ev else { return };
        if let Some(req) = m.downcast_ref::<ClientOp>() {
            match &req.op {
                DocOp::Upsert(doc) => {
                    // Journal + apply locally (costs were charged at
                    // delivery: tcp_rx + parse + journal + apply).
                    self.area.borrow_mut().journal_and_apply(ctx, doc);
                    if self.secondaries.is_empty() {
                        ctx.send_msg(
                            req.reply_to,
                            Box::new(ClientReply {
                                op_id: req.op_id,
                                docs: vec![],
                            }),
                            96,
                            self.costs.tcp_rx,
                        );
                        return;
                    }
                    self.pending.insert(
                        req.op_id,
                        PendingWrite {
                            reply_to: req.reply_to,
                            acks_needed: self.secondaries.len(),
                        },
                    );
                    // Ship the oplog; each send costs CPU.
                    let me = ctx.me;
                    for &sec in self.secondaries.clone().iter() {
                        ctx.submit_work(self.costs.send, u64::MAX - 1);
                        ctx.send_msg(
                            sec,
                            Box::new(Oplog {
                                op_id: req.op_id,
                                doc: doc.clone(),
                                reply_to: me,
                            }),
                            op_wire_size(&req.op),
                            self.costs.tcp_rx + self.costs.journal + self.costs.apply,
                        );
                    }
                }
                DocOp::Read { id } => {
                    let docs = self.area.borrow().read_doc(ctx, *id).into_iter().collect();
                    ctx.send_msg(
                        req.reply_to,
                        Box::new(ClientReply {
                            op_id: req.op_id,
                            docs,
                        }),
                        64 + self.area.borrow().slot_size as usize,
                        self.costs.tcp_rx,
                    );
                }
                DocOp::Scan { id, n } => {
                    let area = self.area.borrow();
                    let docs: Vec<Document> = (0..*n as u64)
                        .filter_map(|k| area.read_doc(ctx, id + k))
                        .collect();
                    drop(area);
                    // Scans cost extra CPU proportional to width.
                    ctx.submit_work(SimDuration::from_nanos(300 * *n as u64), u64::MAX - 1);
                    ctx.send_msg(
                        req.reply_to,
                        Box::new(ClientReply {
                            op_id: req.op_id,
                            docs,
                        }),
                        64 + *n * self.area.borrow().slot_size as usize,
                        self.costs.tcp_rx,
                    );
                }
            }
        } else if let Some(ack) = m.downcast_ref::<OplogAck>() {
            if let Some(p) = self.pending.get_mut(&ack.op_id) {
                p.acks_needed -= 1;
                if p.acks_needed == 0 {
                    let p = self.pending.remove(&ack.op_id).unwrap();
                    ctx.send_msg(
                        p.reply_to,
                        Box::new(ClientReply {
                            op_id: ack.op_id,
                            docs: vec![],
                        }),
                        96,
                        self.costs.tcp_rx,
                    );
                }
            }
        }
    }
}

/// A secondary (oplog-applier) worker: applies shipped entries and acks.
pub struct NativeSecondary {
    area: Rc<RefCell<NativeArea>>,
    costs: NativeDocCosts,
}

impl NativeSecondary {
    /// Create with (shared) storage.
    pub fn new(area: Rc<RefCell<NativeArea>>, costs: NativeDocCosts) -> Self {
        NativeSecondary { area, costs }
    }
}

impl Process for NativeSecondary {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        let ProcEvent::Message(m) = ev else { return };
        if let Some(op) = m.downcast_ref::<Oplog>() {
            self.area.borrow_mut().journal_and_apply(ctx, &op.doc);
            ctx.send_msg(
                op.reply_to,
                Box::new(OplogAck { op_id: op.op_id }),
                96,
                self.costs.tcp_rx,
            );
        }
    }
}

/// Handle to one spawned native replica set.
pub struct NativeSet {
    /// Primary workers (clients pick one per connection). `primary` is
    /// worker 0 for single-connection callers.
    pub primaries: Vec<ProcAddr>,
    /// The first primary worker (convenience).
    pub primary: ProcAddr,
    /// Secondary workers, `[host][worker]`.
    pub secondaries: Vec<Vec<ProcAddr>>,
    /// Slot regions per member (primary first) for untimed preloading.
    pub areas: Vec<(HostId, Region)>,
    /// CPU charged to the primary per incoming client write
    /// (tcp + parse + journal + apply) — drivers pass this as the
    /// message `recv_cost`.
    pub write_recv_cost: SimDuration,
    /// CPU charged per incoming read.
    pub read_recv_cost: SimDuration,
}

/// Spawn a native replica set: primary workers on `hosts[0]`, secondary
/// workers on the rest. `workers` models mongod's thread-per-connection
/// service model: each worker is an independently schedulable process,
/// all sharing the member's storage area.
#[allow(clippy::too_many_arguments)]
pub fn spawn_native_set_workers(
    w: &mut World,
    eng: &mut Engine<World>,
    tag: &str,
    hosts: &[HostId],
    slot_size: u64,
    n_slots: u64,
    workers: usize,
    costs: NativeDocCosts,
) -> NativeSet {
    assert!(!hosts.is_empty());
    assert!(workers >= 1);
    let mut areas = Vec::new();
    let mut secondaries: Vec<Vec<ProcAddr>> = Vec::new();
    for (i, &h) in hosts[1..].iter().enumerate() {
        let area = Rc::new(RefCell::new(NativeArea::alloc(
            w,
            h,
            &format!("{tag}.sec{i}"),
            slot_size,
            n_slots,
        )));
        areas.push((h, area.borrow().slots.clone()));
        let procs: Vec<ProcAddr> = (0..workers)
            .map(|k| {
                w.start_process(
                    h,
                    &format!("{tag}-sec{i}-w{k}"),
                    None,
                    Box::new(NativeSecondary::new(area.clone(), costs.clone())),
                    SimDuration::from_micros(2),
                    eng,
                )
            })
            .collect();
        secondaries.push(procs);
    }
    let area = Rc::new(RefCell::new(NativeArea::alloc(
        w,
        hosts[0],
        &format!("{tag}.pri"),
        slot_size,
        n_slots,
    )));
    areas.insert(0, (hosts[0], area.borrow().slots.clone()));
    let primaries: Vec<ProcAddr> = (0..workers)
        .map(|k| {
            // Worker k ships oplogs to worker k of every secondary.
            let peers: Vec<ProcAddr> = secondaries.iter().map(|host| host[k]).collect();
            w.start_process(
                hosts[0],
                &format!("{tag}-pri-w{k}"),
                None,
                Box::new(NativePrimary::new(area.clone(), peers, costs.clone())),
                SimDuration::from_micros(2),
                eng,
            )
        })
        .collect();
    NativeSet {
        primary: primaries[0],
        primaries,
        secondaries,
        areas,
        write_recv_cost: costs.tcp_rx + costs.parse + costs.journal + costs.apply,
        read_recv_cost: costs.tcp_rx + costs.parse,
    }
}

/// Single-worker convenience wrapper (see [`spawn_native_set_workers`]).
pub fn spawn_native_set(
    w: &mut World,
    eng: &mut Engine<World>,
    tag: &str,
    hosts: &[HostId],
    slot_size: u64,
    n_slots: u64,
    costs: NativeDocCosts,
) -> NativeSet {
    spawn_native_set_workers(w, eng, tag, hosts, slot_size, n_slots, 1, costs)
}

/// Untimed bulk preload of documents into every member's slot area
/// (the YCSB load phase, which the paper excludes from measurement).
pub fn preload(w: &mut World, set: &NativeSet, slot_size: u64, n_slots: u64, docs: &[Document]) {
    for (host, region) in &set.areas {
        for d in docs {
            let blob = d.encode_slot(slot_size as usize);
            let addr = region.at((d.id % n_slots) * slot_size);
            w.hosts[host.0].mem.write(addr, &blob).unwrap();
        }
        w.hosts[host.0].mem.flush_all();
    }
}

/// Wire size of a client op (drivers use this when sending).
pub fn client_op_wire_size(op: &DocOp) -> usize {
    op_wire_size(op)
}
