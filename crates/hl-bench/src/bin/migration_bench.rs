//! Live-migration campaign harness.
//!
//! Runs the three-shard split-under-traffic campaign and its
//! no-migration control (same seed), then writes:
//!
//! * `results/migration.txt` — the per-shard latency table plus the
//!   disruption / bystander verdict lines (the deterministic artifact
//!   CI checks and EXPERIMENTS.md quotes).
//! * `BENCH_10.json` — machine-readable summary: the migrating shard's
//!   p99-during-migration / steady-state-p99 disruption ratio, and the
//!   bystander ratio (exactly 1.0 — the bystander latency vectors are
//!   byte-identical to the control, and the ratio is computed from the
//!   two vectors).
//!
//! `HL_MIGRATION_OPS` overrides ops per run (CI uses a small value).

use hl_bench::migration::{
    check_oracle, p99_ns, run_migration_campaign, split_window, verdict, MigrationCfg,
};
use hl_bench::table::Table;

fn main() {
    let ops: usize = std::env::var("HL_MIGRATION_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let cfg = MigrationCfg {
        ops,
        ..Default::default()
    };

    let mig = run_migration_campaign(&cfg, true);
    let control = run_migration_campaign(&cfg, false);
    let v = verdict(&mig, &control);

    let mut table = Table::new(&["shard", "phase", "ops", "p99 us"]);
    for (sid, name) in [(0usize, "migrating"), (1, "bystander"), (2, "bystander")] {
        let (during, steady) = split_window(&mig.latencies[sid], mig.t_split_ns, mig.t_retired_ns);
        for (phase, lat) in [("steady", &steady), ("migration", &during)] {
            table.row(&[
                format!("{sid} ({name})"),
                phase.to_string(),
                format!("{}", lat.len()),
                format!("{:.1}", p99_ns(lat) as f64 / 1e3),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");

    let report = format!(
        "migration seed={} ops={} acked={} failed={} epoch={} window_us={} \
         during_ops={} steady_ops={} during_p99_us={:.1} steady_p99_us={:.1} \
         disruption_ratio={:.2} bystander_identical={} bystander_ratio={:.1}",
        cfg.seed,
        cfg.ops,
        mig.acked,
        mig.failed,
        mig.epoch,
        v.window_ns / 1_000,
        v.during_ops,
        v.steady_ops,
        v.during_p99_ns as f64 / 1e3,
        v.steady_p99_ns as f64 / 1e3,
        v.disruption_ratio,
        v.bystander_identical,
        v.bystander_ratio,
    );
    println!("{report}");

    let mut txt = String::new();
    txt.push_str("# Live-migration campaign: shard 0 split under open-loop traffic\n");
    txt.push_str(&format!("# cfg: ops={} seed={}\n", cfg.ops, cfg.seed));
    txt.push_str(&rendered);
    txt.push('\n');
    txt.push_str(&report);
    txt.push('\n');
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/migration.txt", &txt).expect("write results/migration.txt");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"BENCH_10\",\n",
            "  \"ops\": {},\n",
            "  \"seed\": {},\n",
            "  \"migration\": {{\n",
            "    \"completed\": {},\n",
            "    \"epoch\": {},\n",
            "    \"t_split_ns\": {},\n",
            "    \"t_retired_ns\": {},\n",
            "    \"window_us\": {}\n",
            "  }},\n",
            "  \"migrating_shard\": {{\n",
            "    \"during_ops\": {},\n",
            "    \"steady_ops\": {},\n",
            "    \"during_p99_us\": {:.1},\n",
            "    \"steady_p99_us\": {:.1},\n",
            "    \"disruption_ratio\": {:.2}\n",
            "  }},\n",
            "  \"bystanders\": {{\n",
            "    \"byte_identical\": {},\n",
            "    \"p99_us\": {:.1},\n",
            "    \"ratio_vs_control\": {:.1}\n",
            "  }}\n",
            "}}\n",
        ),
        cfg.ops,
        cfg.seed,
        mig.migrated,
        mig.epoch,
        mig.t_split_ns,
        mig.t_retired_ns,
        v.window_ns / 1_000,
        v.during_ops,
        v.steady_ops,
        v.during_p99_ns as f64 / 1e3,
        v.steady_p99_ns as f64 / 1e3,
        v.disruption_ratio,
        v.bystander_identical,
        v.bystander_p99_ns as f64 / 1e3,
        v.bystander_ratio,
    );
    std::fs::write("BENCH_10.json", json).expect("write BENCH_10.json");
    println!("wrote results/migration.txt and BENCH_10.json");

    // The campaign's own floor: the split completes with one flip,
    // every op acks, the oracle holds on both runs, the window really
    // spans paced traffic, and the bystanders are provably untouched.
    assert!(mig.migrated, "split did not complete");
    assert_eq!(mig.epoch, 1, "exactly one router flip");
    assert_eq!(control.epoch, 0, "control must not flip");
    assert_eq!(mig.failed, 0, "migrating run failed ops");
    assert_eq!(control.failed, 0, "control run failed ops");
    assert_eq!(mig.acked, cfg.ops, "migrating run lost acks");
    assert_eq!(control.acked, cfg.ops, "control run lost acks");
    check_oracle(&mig, cfg.ops).expect("migrating run oracle");
    check_oracle(&control, cfg.ops).expect("control run oracle");
    assert!(
        v.during_ops >= 5,
        "migration window caught only {} migrating-shard ops; widen REP_BYTES",
        v.during_ops
    );
    assert!(v.steady_ops > 0 && v.steady_p99_ns > 0);
    assert!(
        v.bystander_identical,
        "bystander latencies perturbed by the neighbour's migration"
    );
    assert_eq!(
        v.bystander_ratio, 1.0,
        "bystander ratio must be exactly 1.0"
    );
}
