// Fixture: `thread-spawn` also fires on std::thread::scope (scoped
// spawns race the event loop exactly like detached ones).
fn bad() {
    std::thread::scope(|s| {
        let _ = s;
    });
    // hl-lint: allow(thread-spawn)
    std::thread::scope(|s| {
        let _ = s;
    });
}
