//! Failure drill in two acts. Act one: writes flow through a HyperLoop
//! chain; a replica's link dies; heartbeats detect it; the chain is
//! rebuilt over the survivor plus a standby host (catch-up over RDMA
//! READ); writes resume. Act two: the rebuilt chain's head NIC hangs
//! mid-gWRITE; the client NIC's own retransmission machinery exhausts
//! its retry budget and reports an error CQE, which triggers a second
//! rebuild with no detection period at all, and the deadline supervisor
//! re-issues the interrupted write on the new chain. The accelerated
//! data path never compromises recoverability (paper §5, "Recovery").
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::GroupClient;
use hyperloop_repro::hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop_repro::hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, HyperLoopClient, RetryClient,
};
use hyperloop_repro::sim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // Host 0: client. Hosts 1-2: the chain. Host 3: standby.
    let (mut world, mut engine) = ClusterBuilder::new(4).arena_size(4 << 20).seed(31).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 512 << 10,
        ring_slots: 32,
        // Reliable transport on the client's outbound QPs: the NIC
        // itself retries lost requests and reports unreachable heads as
        // error CQEs (used in act two; inherited by rebuilt chains).
        transport_timeout: Some((SimDuration::from_micros(200), 5)),
        ..Default::default()
    })
    .build(&mut world);
    replica::start_replenishers(&group, &mut world, &mut engine);
    let client = HyperLoopClient::new(group.clone(), &mut world);

    // Commit some records.
    let acked = Rc::new(RefCell::new(0u32));
    for k in 0..20u64 {
        let a = acked.clone();
        client
            .gwrite(
                &mut world,
                &mut engine,
                k * 256,
                format!("record-{k:03}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
        let a2 = acked.clone();
        let want = k as u32 + 1;
        engine.run_while(&mut world, move |_| *a2.borrow() < want);
    }
    println!("[{}] committed 20 records on chain h1 -> h2", engine.now());

    // Arm failure handling: on detection, rebuild over survivor h1 +
    // standby h3, catching both up from the client's copy.
    let new_client: Rc<RefCell<Option<HyperLoopClient>>> = Rc::new(RefCell::new(None));
    let nc = new_client.clone();
    let g2 = group.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 3,
        },
        Box::new(move |w, eng, idx| {
            println!(
                "[{}] heartbeat detector: replica {idx} FAILED; rebuilding chain",
                eng.now()
            );
            let nc2 = nc.clone();
            recovery::rebuild_chain(
                w,
                eng,
                &g2,
                vec![HostId(1)],
                Some(HostId(3)),
                32,
                Box::new(move |_w, eng, client| {
                    println!(
                        "[{}] chain rebuilt: h1 -> h3 (standby caught up via RDMA READ)",
                        eng.now()
                    );
                    *nc2.borrow_mut() = Some(client);
                }),
            );
        }),
        &mut world,
        &mut engine,
    );

    // Power cut on host 2 after 15 ms.
    engine.schedule(SimDuration::from_millis(15), |w: &mut World, eng| {
        println!("[{}] >> host 2 loses its link <<", eng.now());
        w.fabric.set_link_down(HostId(2), true);
        w.hosts[2].mem.crash();
    });

    let probe = new_client.clone();
    engine.run_while(&mut world, move |_| probe.borrow().is_none());
    let client2 = new_client.borrow().clone().unwrap();

    // The new chain already has the committed data.
    {
        let g = client2.group().borrow();
        let standby_addr = g.replica_rep[g.n_replicas() - 1].at(0);
        let bytes = world.hosts[3].mem.read_vec(standby_addr, 10).unwrap();
        println!(
            "standby h3 after catch-up holds: {:?}",
            String::from_utf8_lossy(&bytes)
        );
    }

    // Writes resume.
    let resumed = Rc::new(RefCell::new(false));
    let r2 = resumed.clone();
    client2
        .gwrite(
            &mut world,
            &mut engine,
            20 * 256,
            b"record-post-recovery",
            true,
            Box::new(move |_w, eng, r| {
                println!(
                    "[{}] first post-recovery write ACKed in {}",
                    eng.now(),
                    r.latency
                );
                *r2.borrow_mut() = true;
            }),
        )
        .unwrap();
    let r3 = resumed.clone();
    engine.run_while(&mut world, move |_| !*r3.borrow());
    println!(
        "act one complete: old chain paused={}, new chain h1 -> h3 live",
        group.borrow().paused
    );

    // -- Act two: transport-level fault tolerance -----------------------
    // Wrap the client in a deadline supervisor and arm NIC-error
    // triggered recovery on the rebuilt chain: if the head dies, the
    // client NIC's retry machinery reports it without any heartbeat
    // round trips.
    let retry = RetryClient::with_policy(
        client2.clone(),
        DeadlinePolicy {
            deadline: SimDuration::from_millis(1),
            max_attempts: 20,
            backoff: SimDuration::from_micros(200),
            backoff_cap: SimDuration::from_millis(2),
        },
    );
    let group2 = client2.group().clone();
    let rebuilt_again = Rc::new(RefCell::new(false));
    {
        let retry = retry.clone();
        let rebuilt_again = rebuilt_again.clone();
        recovery::rebuild_on_cq_error(
            &group2,
            &mut world,
            vec![HostId(3)],
            None,
            32,
            Box::new(move |_w, eng, nc| {
                println!(
                    "[{}] transport-error recovery: chain rebuilt over h3 alone",
                    eng.now()
                );
                retry.swap(nc);
                *rebuilt_again.borrow_mut() = true;
            }),
        );
    }

    println!("[{}] >> head h1's NIC hangs mid-gWRITE <<", engine.now());
    world.set_nic_stalled(HostId(1), true, &mut engine);
    let survived = Rc::new(RefCell::new(false));
    {
        let survived = survived.clone();
        retry.gwrite(
            &mut world,
            &mut engine,
            21 * 256,
            b"record-despite-nic-fault",
            true,
            Box::new(move |_w, eng, r| {
                r.expect("supervised write must survive the NIC fault");
                println!(
                    "[{}] interrupted write re-issued and ACKed on the rebuilt chain",
                    eng.now()
                );
                *survived.borrow_mut() = true;
            }),
        );
    }
    let s2 = survived.clone();
    engine.run_while(&mut world, move |_| !*s2.borrow());
    assert!(*rebuilt_again.borrow(), "CQ-error recovery did not fire");

    // Post-recovery invariant: the record is byte-identical on every
    // member of the final chain (client copy included).
    let final_client = retry.client();
    for m in 0..final_client.group_size() {
        let host = final_client.member_host(m);
        let bytes = world.hosts[host.0]
            .mem
            .read_vec(final_client.member_addr(m, 21 * 256), 24)
            .unwrap();
        assert_eq!(bytes, b"record-despite-nic-fault", "member {m} diverged");
    }
    println!(
        "act two complete: post-recovery invariant holds on all {} members",
        final_client.group_size()
    );
}
