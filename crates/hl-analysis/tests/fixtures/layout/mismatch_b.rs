// Layout fixture: crate B's drifted mirror of the same descriptor —
// op-id at 12 instead of 8.
pub const DESC_SIZE: u64 = 16;
pub const OP_OFF: u64 = 12;
