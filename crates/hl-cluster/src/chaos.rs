//! Seeded chaos-fault schedules.
//!
//! A [`FaultSchedule`] is a deterministic list of fault injections —
//! packet-loss windows, one-way partitions, link failures, NIC stalls,
//! WAIT-engine stalls, CPU hogs, and host crashes — generated from a
//! seed and applied to a [`World`] as engine events. The same seed
//! always produces the same schedule, and (because the whole simulator
//! is deterministic) the same trace, so a failing chaos campaign is
//! reproduced by re-running its seed.

use crate::World;
use hl_fabric::HostId;
use hl_sim::{Engine, RngFactory, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Uniform packet loss on the whole fabric.
    DropWindow {
        /// Per-packet drop probability.
        prob: f64,
    },
    /// Packets from `src` to `dst` are dropped (receive still works).
    OneWayPartition {
        /// Sender whose packets vanish.
        src: HostId,
        /// Unreachable destination.
        dst: HostId,
    },
    /// The host's link drops everything in and out.
    LinkDown {
        /// Affected host.
        host: HostId,
    },
    /// The host's NIC hangs: inbound eaten, send engines halted.
    NicStall {
        /// Affected host.
        host: HostId,
    },
    /// The host's CORE-Direct WAIT engine hangs: packets still move,
    /// parked WQE chains never fire.
    WaitStall {
        /// Affected host.
        host: HostId,
    },
    /// A CPU hog lands on the host (the multi-tenant noisy neighbor).
    SlowReplica {
        /// Affected host.
        host: HostId,
    },
    /// Power loss: NVM drops unflushed data, link and NIC die.
    HostCrash {
        /// Affected host.
        host: HostId,
    },
    /// Gray failure: the directed path `src → dst` gains fixed delay
    /// plus uniform jitter (alive but erratic).
    Jitter {
        /// Sender side of the impaired path.
        src: HostId,
        /// Receiver side.
        dst: HostId,
        /// Fixed extra one-way delay.
        delay: SimDuration,
        /// Uniform extra delay in `[0, jitter]` per message.
        jitter: SimDuration,
    },
    /// Gray failure: the directed path `src → dst` loses packets with
    /// probability `prob` but stays up — the lossy-but-alive link.
    /// Routed through [`hl_fabric::Fabric::set_link_drop_prob`] so no
    /// bystander pair sees a single extra drop.
    LossyLink {
        /// Sender side of the lossy path.
        src: HostId,
        /// Receiver side.
        dst: HostId,
        /// Per-packet loss probability.
        prob: f64,
    },
    /// Gray failure: everything in and out of `host` is token-bucket
    /// rate-limited to `bps` (the capped uplink).
    RateLimit {
        /// Affected host.
        host: HostId,
        /// Rate cap in bits per second.
        bps: u64,
    },
    /// Gray failure: a straggler NIC — every message through `host`
    /// pays a fixed extra delay (firmware pause loops, PCIe backoff).
    StragglerNic {
        /// Affected host.
        host: HostId,
        /// Extra per-message delay.
        delay: SimDuration,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::DropWindow { prob } => write!(f, "drop-window p={prob:.3}"),
            FaultKind::OneWayPartition { src, dst } => write!(f, "partition {src}->{dst}"),
            FaultKind::LinkDown { host } => write!(f, "link-down {host}"),
            FaultKind::NicStall { host } => write!(f, "nic-stall {host}"),
            FaultKind::WaitStall { host } => write!(f, "wait-stall {host}"),
            FaultKind::SlowReplica { host } => write!(f, "slow-replica {host}"),
            FaultKind::HostCrash { host } => write!(f, "host-crash {host}"),
            FaultKind::Jitter {
                src,
                dst,
                delay,
                jitter,
            } => write!(
                f,
                "jitter {src}->{dst} {}us+{}us",
                delay.as_nanos() / 1000,
                jitter.as_nanos() / 1000
            ),
            FaultKind::LossyLink { src, dst, prob } => {
                write!(f, "lossy-link {src}->{dst} p={prob:.3}")
            }
            FaultKind::RateLimit { host, bps } => {
                write!(f, "rate-limit {host} {}Mbps", bps / 1_000_000)
            }
            FaultKind::StragglerNic { host, delay } => {
                write!(f, "straggler-nic {host} +{}us", delay.as_nanos() / 1000)
            }
        }
    }
}

/// A scheduled fault: injected at `at`, healed `duration` later
/// (`None` = permanent).
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Injection time.
    pub at: SimTime,
    /// Time until the automatic heal, if any.
    pub duration: Option<SimDuration>,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    /// Seed it was generated from.
    pub seed: u64,
    /// Events in generation order (not necessarily time order).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generate a schedule from `seed`.
    ///
    /// `victims` are the hosts faults may target (typically the chain
    /// replicas — not the client, which must stay alive to judge
    /// invariants, and not standbys needed for rebuilds). `peer` is the
    /// far end used for one-way partitions (typically the client).
    /// Transient faults are injected inside `[start, end)` and heal
    /// before `end`; with probability ~1/2 one *permanent* crash of a
    /// victim is added, which the cluster must recover from by
    /// reconfiguration.
    pub fn generate(
        seed: u64,
        victims: &[HostId],
        peer: HostId,
        start: SimTime,
        end: SimTime,
    ) -> FaultSchedule {
        assert!(!victims.is_empty() && start < end);
        let mut rng = RngFactory::new(seed).stream("chaos-schedule");
        let span = end.as_nanos() - start.as_nanos();
        let mut events = Vec::new();

        let n_transient = rng.range_u64(2, 6);
        for _ in 0..n_transient {
            let at = SimTime::from_nanos(start.as_nanos() + rng.range_u64(0, span * 3 / 4));
            let dur = SimDuration::from_nanos(rng.range_u64(span / 20, span / 4));
            let victim = victims[rng.range_u64(0, victims.len() as u64) as usize];
            let kind = match rng.range_u64(0, 6) {
                0 => FaultKind::DropWindow {
                    prob: 0.01 + rng.f64() * 0.14,
                },
                1 => FaultKind::OneWayPartition {
                    src: victim,
                    dst: peer,
                },
                2 => FaultKind::OneWayPartition {
                    src: peer,
                    dst: victim,
                },
                3 => FaultKind::LinkDown { host: victim },
                4 => FaultKind::NicStall { host: victim },
                _ => FaultKind::WaitStall { host: victim },
            };
            events.push(FaultEvent {
                at,
                duration: Some(dur),
                kind,
            });
        }
        // A permanent noisy neighbor on one victim, sometimes.
        if rng.f64() < 0.4 {
            let victim = victims[rng.range_u64(0, victims.len() as u64) as usize];
            events.push(FaultEvent {
                at: SimTime::from_nanos(start.as_nanos() + rng.range_u64(0, span / 2)),
                duration: None,
                kind: FaultKind::SlowReplica { host: victim },
            });
        }
        // A permanent crash of one victim, sometimes.
        if rng.f64() < 0.5 {
            let victim = victims[rng.range_u64(0, victims.len() as u64) as usize];
            events.push(FaultEvent {
                at: SimTime::from_nanos(start.as_nanos() + rng.range_u64(span / 4, span * 3 / 4)),
                duration: None,
                kind: FaultKind::HostCrash { host: victim },
            });
        }
        FaultSchedule { seed, events }
    }

    /// Generate a schedule scoped to one shard's chain: only link-down
    /// and NIC-WAIT-engine faults, targeting only `victims` — no
    /// whole-fabric drop windows, so co-scheduled shards on other hosts
    /// are untouched by construction. These are the two per-host kinds
    /// the recovery paths fully cover: a link-down starves heartbeats
    /// and is detected and rebuilt around, while a WAIT stall leaves
    /// packets flowing and the parked chains resume on heal. (A NIC
    /// stall on a *mid-chain* hop is deliberately excluded: the
    /// replica-to-replica hops are fire-and-forget, so eaten packets
    /// desync the pre-posted rings with nothing for either detector to
    /// observe.) Used by the shard-isolation chaos regressions: the
    /// victim shard must recover while every other shard's timing stays
    /// identical to a fault-free run.
    pub fn generate_link_wait(
        seed: u64,
        victims: &[HostId],
        start: SimTime,
        end: SimTime,
    ) -> FaultSchedule {
        assert!(!victims.is_empty() && start < end);
        let mut rng = RngFactory::new(seed).stream("chaos-shard-schedule");
        let span = end.as_nanos() - start.as_nanos();
        let mut events = Vec::new();
        let n = rng.range_u64(2, 5);
        for _ in 0..n {
            let at = SimTime::from_nanos(start.as_nanos() + rng.range_u64(0, span * 2 / 3));
            let dur = SimDuration::from_nanos(rng.range_u64(span / 8, span / 3));
            let victim = victims[rng.range_u64(0, victims.len() as u64) as usize];
            let kind = if rng.range_u64(0, 2) == 0 {
                FaultKind::LinkDown { host: victim }
            } else {
                FaultKind::WaitStall { host: victim }
            };
            events.push(FaultEvent {
                at,
                duration: Some(dur),
                kind,
            });
        }
        FaultSchedule { seed, events }
    }

    /// Generate a shard-scoped schedule that *includes* NIC stalls:
    /// link-down, WAIT-stall, and NIC-stall faults targeting only
    /// `victims`. Historically NIC stalls were excluded from
    /// shard-scoped schedules because a stalled *mid-chain* NIC eats
    /// fire-and-forget packets with nothing for either detector to
    /// observe; the client-side end-to-end deadline probe
    /// (`hyperloop::deadline::RetryClient::arm_nic_stall_probe`) closes
    /// that gap — consecutive attempt timeouts with no transport-error
    /// CQE surface as a `nic_stall_suspected` detection, so the kind is
    /// re-admitted here.
    pub fn generate_shard_faults(
        seed: u64,
        victims: &[HostId],
        start: SimTime,
        end: SimTime,
    ) -> FaultSchedule {
        assert!(!victims.is_empty() && start < end);
        let mut rng = RngFactory::new(seed).stream("chaos-shard-gray-schedule");
        let span = end.as_nanos() - start.as_nanos();
        let mut events = Vec::new();
        let n = rng.range_u64(2, 5);
        for _ in 0..n {
            let at = SimTime::from_nanos(start.as_nanos() + rng.range_u64(0, span * 2 / 3));
            let dur = SimDuration::from_nanos(rng.range_u64(span / 8, span / 3));
            let victim = victims[rng.range_u64(0, victims.len() as u64) as usize];
            let kind = match rng.range_u64(0, 3) {
                0 => FaultKind::LinkDown { host: victim },
                1 => FaultKind::WaitStall { host: victim },
                _ => FaultKind::NicStall { host: victim },
            };
            events.push(FaultEvent {
                at,
                duration: Some(dur),
                kind,
            });
        }
        FaultSchedule { seed, events }
    }

    /// Generate a gray-failure schedule: only impairment kinds (jitter,
    /// lossy link, rate limit, straggler NIC), every one transient. The
    /// paths impaired are the directed pairs between a victim and
    /// `peer` (both directions drawn independently), so co-hosted
    /// bystander traffic is untouched by construction. These are the
    /// faults the health monitor must *ride out or degrade through* —
    /// none of them kills a host, so binary failure detectors stay
    /// silent and only end-to-end health signals move.
    pub fn generate_gray(
        seed: u64,
        victims: &[HostId],
        peer: HostId,
        start: SimTime,
        end: SimTime,
    ) -> FaultSchedule {
        assert!(!victims.is_empty() && start < end);
        let mut rng = RngFactory::new(seed).stream("chaos-gray-schedule");
        let span = end.as_nanos() - start.as_nanos();
        let mut events = Vec::new();
        let n = rng.range_u64(2, 6);
        for _ in 0..n {
            let at = SimTime::from_nanos(start.as_nanos() + rng.range_u64(0, span * 2 / 3));
            let dur = SimDuration::from_nanos(rng.range_u64(span / 8, span / 3));
            let victim = victims[rng.range_u64(0, victims.len() as u64) as usize];
            let toward_victim = rng.range_u64(0, 2) == 0;
            let (src, dst) = if toward_victim {
                (peer, victim)
            } else {
                (victim, peer)
            };
            let kind = match rng.range_u64(0, 4) {
                0 => FaultKind::Jitter {
                    src,
                    dst,
                    delay: SimDuration::from_micros(rng.range_u64(5, 50)),
                    jitter: SimDuration::from_micros(rng.range_u64(10, 100)),
                },
                1 => FaultKind::LossyLink {
                    src,
                    dst,
                    prob: 0.05 + rng.f64() * 0.25,
                },
                2 => FaultKind::RateLimit {
                    host: victim,
                    bps: rng.range_u64(50, 500) * 1_000_000,
                },
                _ => FaultKind::StragglerNic {
                    host: victim,
                    delay: SimDuration::from_micros(rng.range_u64(10, 80)),
                },
            };
            events.push(FaultEvent {
                at,
                duration: Some(dur),
                kind,
            });
        }
        FaultSchedule { seed, events }
    }

    /// Hosts permanently crashed by this schedule.
    pub fn crashed_hosts(&self) -> Vec<HostId> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::HostCrash { host } => Some(host),
                _ => None,
            })
            .collect()
    }

    /// Schedule every injection (and heal) on the engine.
    pub fn apply(&self, eng: &mut Engine<World>) {
        for ev in &self.events {
            let kind = ev.kind;
            eng.schedule_at(ev.at, move |w: &mut World, eng| {
                inject(kind, w, eng);
            });
            if let Some(dur) = ev.duration {
                let at = SimTime::from_nanos(ev.at.as_nanos() + dur.as_nanos());
                eng.schedule_at(at, move |w: &mut World, eng| {
                    heal(kind, w, eng);
                });
            }
        }
    }
}

fn inject(kind: FaultKind, w: &mut World, eng: &mut Engine<World>) {
    hl_sim::trace!(w.tracer, eng.now(), "chaos", "inject {kind}");
    let now = eng.now();
    w.telemetry.mark(now, format!("fault:{kind}"), 0);
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("chaos_faults_injected", "layer=chaos", 1);
        // Snapshot what was in flight when the fault landed.
        w.telemetry.flight_dump(now, format!("fault:{kind}"));
    }
    match kind {
        FaultKind::DropWindow { prob } => w.fabric.set_drop_prob(prob),
        FaultKind::OneWayPartition { src, dst } => w.fabric.partition(src, dst),
        FaultKind::LinkDown { host } => w.fabric.set_link_down(host, true),
        FaultKind::NicStall { host } => w.set_nic_stalled(host, true, eng),
        FaultKind::WaitStall { host } => w.set_nic_wait_stalled(host, true, eng),
        FaultKind::SlowReplica { host } => w.spawn_hog(host, "chaos-hog", eng),
        FaultKind::HostCrash { host } => {
            w.hosts[host.0].mem.crash();
            w.fabric.set_link_down(host, true);
            w.set_nic_stalled(host, true, eng);
        }
        FaultKind::Jitter {
            src,
            dst,
            delay,
            jitter,
        } => w
            .fabric
            .set_impairment(src, dst, hl_fabric::Impairment::delay(delay, jitter)),
        FaultKind::LossyLink { src, dst, prob } => w.fabric.set_link_drop_prob(src, dst, prob),
        FaultKind::RateLimit { host, bps } => w
            .fabric
            .set_host_impairment(host, hl_fabric::Impairment::rate(bps, 16 * 1024)),
        FaultKind::StragglerNic { host, delay } => w.fabric.set_host_impairment(
            host,
            hl_fabric::Impairment::delay(delay, hl_sim::SimDuration::ZERO),
        ),
    }
}

fn heal(kind: FaultKind, w: &mut World, eng: &mut Engine<World>) {
    hl_sim::trace!(w.tracer, eng.now(), "chaos", "heal {kind}");
    let now = eng.now();
    w.telemetry.mark(now, format!("heal:{kind}"), 0);
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("chaos_faults_healed", "layer=chaos", 1);
    }
    match kind {
        FaultKind::DropWindow { .. } => w.fabric.set_drop_prob(0.0),
        FaultKind::OneWayPartition { src, dst } => w.fabric.heal(src, dst),
        FaultKind::LinkDown { host } => w.fabric.set_link_down(host, false),
        FaultKind::NicStall { host } => w.set_nic_stalled(host, false, eng),
        FaultKind::WaitStall { host } => w.set_nic_wait_stalled(host, false, eng),
        FaultKind::Jitter { src, dst, .. } => w.fabric.clear_impairment(src, dst),
        FaultKind::LossyLink { src, dst, .. } => w.fabric.set_link_drop_prob(src, dst, 0.0),
        FaultKind::RateLimit { host, .. } | FaultKind::StragglerNic { host, .. } => {
            w.fabric.clear_host_impairment(host)
        }
        // Permanent kinds never get heal events scheduled.
        FaultKind::SlowReplica { .. } | FaultKind::HostCrash { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// Bystander byte-identity harness
// ---------------------------------------------------------------------------

/// Shared recorder for the bystander byte-identity invariant.
///
/// The chaos, gray-chaos and migration suites all prove the same thing:
/// a shard that is *not* the victim of a fault (or the subject of a
/// migration) must see an experience byte-identical to a control run
/// with no fault at all — same per-op latency vector, same failure
/// count, nanosecond for nanosecond. This probe is the one shared
/// implementation of that recorder; campaigns clone it into their
/// completion callbacks and compare outcomes with
/// [`BystanderProbe::assert_identical_to`].
#[derive(Clone, Default)]
pub struct BystanderProbe {
    inner: Rc<RefCell<ProbeInner>>,
}

#[derive(Default)]
struct ProbeInner {
    latencies: Vec<(usize, u64)>,
    failed: usize,
}

impl BystanderProbe {
    /// An empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the completion of op `idx` after `latency_ns`.
    pub fn record(&self, idx: usize, latency_ns: u64) {
        self.inner.borrow_mut().latencies.push((idx, latency_ns));
    }

    /// Record a failed op.
    pub fn record_failure(&self) {
        self.inner.borrow_mut().failed += 1;
    }

    /// The `(op index, latency ns)` vector in completion order.
    pub fn latencies(&self) -> Vec<(usize, u64)> {
        self.inner.borrow().latencies.clone()
    }

    /// Number of failed ops recorded.
    pub fn failed(&self) -> usize {
        self.inner.borrow().failed
    }

    /// Number of completions recorded.
    pub fn len(&self) -> usize {
        self.inner.borrow().latencies.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().latencies.is_empty()
    }

    /// Assert this probe recorded the byte-identical experience of
    /// `control`: same completion order, same per-op latencies to the
    /// nanosecond, same failure count. `what` names the campaign in the
    /// panic message.
    pub fn assert_identical_to(&self, control: &BystanderProbe, what: &str) {
        let (a, b) = (self.inner.borrow(), control.inner.borrow());
        assert_eq!(
            a.failed, b.failed,
            "{what}: bystander failure count diverged from control"
        );
        assert_eq!(
            a.latencies.len(),
            b.latencies.len(),
            "{what}: bystander completion count diverged from control"
        );
        for (i, (x, y)) in a.latencies.iter().zip(b.latencies.iter()).enumerate() {
            assert_eq!(
                x, y,
                "{what}: bystander op #{i} diverged (got {x:?}, control {y:?})"
            );
        }
    }
}

/// Snapshot `len` bytes of a member's replicated region (the byte-level
/// half of the bystander invariant — campaigns compare these snapshots
/// across runs and members).
pub fn member_snapshot(w: &World, host: HostId, addr: u64, len: usize) -> Vec<u8> {
    w.hosts[host.0]
        .mem
        .read_vec(addr, len)
        .expect("member region readable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bystander_probe_detects_divergence() {
        let a = BystanderProbe::new();
        let b = BystanderProbe::new();
        a.record(0, 100);
        b.record(0, 100);
        a.assert_identical_to(&b, "unit");
        a.record(1, 200);
        b.record(1, 201);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.assert_identical_to(&b, "unit")
        }));
        assert!(r.is_err(), "divergent latency vectors must panic");
        assert_eq!(a.latencies(), vec![(0, 100), (1, 200)]);
        assert_eq!(a.failed(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let v = [HostId(1), HostId(2)];
        let a = FaultSchedule::generate(
            9,
            &v,
            HostId(0),
            SimTime::from_nanos(1_000_000),
            SimTime::from_nanos(100_000_000),
        );
        let b = FaultSchedule::generate(
            9,
            &v,
            HostId(0),
            SimTime::from_nanos(1_000_000),
            SimTime::from_nanos(100_000_000),
        );
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.duration, y.duration);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn shard_scoped_schedule_targets_only_victims_and_heals() {
        let v = [HostId(4), HostId(5)];
        for seed in 0..32u64 {
            let s = FaultSchedule::generate_link_wait(
                seed,
                &v,
                SimTime::from_nanos(1_000_000),
                SimTime::from_nanos(50_000_000),
            );
            assert!(!s.events.is_empty());
            for e in &s.events {
                assert!(e.duration.is_some(), "shard-scoped faults must heal");
                match e.kind {
                    FaultKind::LinkDown { host } | FaultKind::WaitStall { host } => {
                        assert!(v.contains(&host), "fault targeted non-victim {host}")
                    }
                    other => panic!("disallowed fault kind {other}"),
                }
            }
        }
    }

    #[test]
    fn gray_schedule_is_gray_only_and_heals() {
        let v = [HostId(1), HostId(2)];
        for seed in 0..32u64 {
            let s = FaultSchedule::generate_gray(
                seed,
                &v,
                HostId(0),
                SimTime::from_nanos(1_000_000),
                SimTime::from_nanos(50_000_000),
            );
            assert!(!s.events.is_empty());
            for e in &s.events {
                assert!(e.duration.is_some(), "gray faults must heal");
                match e.kind {
                    FaultKind::Jitter { src, dst, .. } | FaultKind::LossyLink { src, dst, .. } => {
                        assert!(
                            (v.contains(&src) && dst == HostId(0))
                                || (src == HostId(0) && v.contains(&dst)),
                            "impaired pair {src}->{dst} touches a bystander"
                        );
                    }
                    FaultKind::RateLimit { host, .. } | FaultKind::StragglerNic { host, .. } => {
                        assert!(v.contains(&host));
                    }
                    other => panic!("non-gray fault kind {other}"),
                }
            }
        }
    }

    #[test]
    fn shard_faults_readmit_nic_stall() {
        let v = [HostId(4), HostId(5)];
        let mut seen_stall = false;
        for seed in 0..32u64 {
            let s = FaultSchedule::generate_shard_faults(
                seed,
                &v,
                SimTime::from_nanos(1_000_000),
                SimTime::from_nanos(50_000_000),
            );
            for e in &s.events {
                assert!(e.duration.is_some());
                match e.kind {
                    FaultKind::LinkDown { host }
                    | FaultKind::WaitStall { host }
                    | FaultKind::NicStall { host } => assert!(v.contains(&host)),
                    other => panic!("disallowed fault kind {other}"),
                }
                if matches!(e.kind, FaultKind::NicStall { .. }) {
                    seen_stall = true;
                }
            }
        }
        assert!(seen_stall, "NicStall must appear across 32 seeds");
    }

    #[test]
    fn different_seeds_differ() {
        let v = [HostId(1), HostId(2)];
        let mk = |s| {
            FaultSchedule::generate(
                s,
                &v,
                HostId(0),
                SimTime::ZERO,
                SimTime::from_nanos(50_000_000),
            )
        };
        let a = mk(1);
        let b = mk(2);
        let same = a.events.len() == b.events.len()
            && a.events
                .iter()
                .zip(&b.events)
                .all(|(x, y)| x.at == y.at && x.kind == y.kind);
        assert!(!same, "seeds 1 and 2 produced identical schedules");
    }
}
