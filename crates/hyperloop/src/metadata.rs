//! Group-operation metadata layout.
//!
//! For every group operation the client builds one metadata message that
//! is SENT down the chain unchanged. Each replica's pre-posted RECV
//! scatters *its own record* of the message straight into the
//! descriptor fields of its pre-posted WQEs (remote work request
//! manipulation) and the whole message into a staging buffer from which
//! the forwarding SEND gathers.
//!
//! ```text
//! offset 0           4     8            8+8g                end
//!        ┌───────────┬─────┬────────────┬────────────────────┐
//!        │ imm (u32) │ op  │ results[g] │ records[n] (48 B)  │
//!        └───────────┴─────┴────────────┴────────────────────┘
//! ```
//!
//! * `imm` — the operation sequence number, scattered into the tail's
//!   WRITE_WITH_IMM so the client can correlate the group ACK.
//! * `results` — one u64 per group member; gCAS replicas CAS their
//!   original value into their own slot *of the staged copy*, so the
//!   forwarded message accumulates the result map (paper §4.2).
//! * `records` — one 48-byte record per replica with the absolute
//!   addresses/lengths that replica's WQEs must execute. The paper
//!   quotes ≤ 32 B per node for its three primitives; ours is 48 B
//!   because the interleaved-flush descriptor travels in the same
//!   record.

use hl_rnic::Opcode;

/// Record size per replica.
pub const REC: u64 = 48;
/// Header (imm + pad) size.
pub const HDR: u64 = 8;
/// Offset of the telemetry op id (u32) in the header's pad bytes: each
/// replica's RECV scatters it straight into the `op` field of every
/// pre-posted WQE it arms, so causal spans propagate down the chain
/// with zero replica CPU.
pub const OP_OFF: u64 = 4;

/// The three pre-posted ring kinds (gFLUSH rides on the gWRITE ring as
/// an interleaved or write-of-zero-bytes operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// gWRITE (+ optional interleaved gFLUSH).
    GWrite,
    /// gMEMCPY (+ optional interleaved local flush).
    GMemcpy,
    /// gCAS with execute/result maps.
    GCas,
}

impl Primitive {
    /// All primitives, in ring order.
    pub const ALL: [Primitive; 3] = [Primitive::GWrite, Primitive::GMemcpy, Primitive::GCas];

    /// Index used for per-primitive arrays.
    pub fn idx(self) -> usize {
        match self {
            Primitive::GWrite => 0,
            Primitive::GMemcpy => 1,
            Primitive::GCas => 2,
        }
    }
}

/// Offset of the results array (size `8 * group_size`).
pub fn results_off() -> u64 {
    HDR
}

/// Offset of replica `i`'s record (0-based among replicas).
pub fn rec_off(group_size: usize, i: usize) -> u64 {
    HDR + 8 * group_size as u64 + i as u64 * REC
}

/// Total metadata message length for a group of `group_size` members
/// (`group_size - 1` replicas).
pub fn msg_len(group_size: usize) -> u64 {
    rec_off(group_size, group_size - 1)
}

/// Field offsets within a gWRITE / gMEMCPY record.
pub mod wrec {
    /// Transfer length (u32).
    pub const LEN: u64 = 0;
    /// Source address (u64): the replica's own copy (WRITE) or local
    /// copy source (gMEMCPY).
    pub const SRC: u64 = 4;
    /// Destination address (u64): next replica's region (WRITE) or
    /// local copy destination (gMEMCPY).
    pub const DST: u64 = 12;
    /// Flush opcode byte: `Flush`/`LocalFlush` to flush, `Nop` to skip.
    pub const FOP: u64 = 20;
    /// Flush range start (u64).
    pub const FADDR: u64 = 21;
    /// Flush range length (u32).
    pub const FLEN: u64 = 29;
}

/// Extra gWRITE-record fields used by the multi-client chain (within
/// the same 48-byte record).
pub mod mrec {
    /// Tail ACK destination address (u64) — the issuing client's ack
    /// buffer slot.
    pub const ACK_ADDR: u64 = 33;
    /// Tail ACK rkey (u32).
    pub const ACK_RKEY: u64 = 41;
}

/// Field offsets within a gCAS record.
pub mod crec {
    /// CAS opcode byte: `LocalCas` to execute, `Nop` to skip (execute map).
    pub const COP: u64 = 0;
    /// Target address (u64).
    pub const TARGET: u64 = 1;
    /// Compare value (u64).
    pub const CMP: u64 = 9;
    /// Swap value (u64).
    pub const SWP: u64 = 17;
    /// Result destination (u64): this replica's slot in the staged
    /// results array.
    pub const RESULT: u64 = 25;
}

/// Builder for one metadata message.
#[derive(Debug, Clone)]
pub struct MetaMsg {
    buf: Vec<u8>,
    group_size: usize,
}

impl MetaMsg {
    /// Zeroed message for a group.
    pub fn new(group_size: usize, seq: u32) -> Self {
        let mut buf = vec![0u8; msg_len(group_size) as usize];
        buf[..4].copy_from_slice(&seq.to_le_bytes());
        MetaMsg { buf, group_size }
    }

    /// Stamp the telemetry op id into the header pad (0 = untraced).
    pub fn set_op(&mut self, op: u32) {
        let off = OP_OFF as usize;
        self.buf[off..off + 4].copy_from_slice(&op.to_le_bytes());
    }

    /// Set a member's result-map slot (the client pre-fills its own).
    pub fn set_result(&mut self, member: usize, v: u64) {
        let off = (results_off() + member as u64 * 8) as usize;
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn rec(&mut self, i: usize) -> &mut [u8] {
        let off = rec_off(self.group_size, i) as usize;
        &mut self.buf[off..off + REC as usize]
    }

    /// Fill replica `i`'s record for gWRITE/gMEMCPY.
    #[allow(clippy::too_many_arguments)]
    pub fn set_wrec(
        &mut self,
        i: usize,
        len: u32,
        src: u64,
        dst: u64,
        flush_op: Opcode,
        flush_addr: u64,
        flush_len: u32,
    ) {
        let r = self.rec(i);
        r[wrec::LEN as usize..wrec::LEN as usize + 4].copy_from_slice(&len.to_le_bytes());
        r[wrec::SRC as usize..wrec::SRC as usize + 8].copy_from_slice(&src.to_le_bytes());
        r[wrec::DST as usize..wrec::DST as usize + 8].copy_from_slice(&dst.to_le_bytes());
        r[wrec::FOP as usize] = flush_op as u8;
        r[wrec::FADDR as usize..wrec::FADDR as usize + 8]
            .copy_from_slice(&flush_addr.to_le_bytes());
        r[wrec::FLEN as usize..wrec::FLEN as usize + 4].copy_from_slice(&flush_len.to_le_bytes());
    }

    /// Fill replica `i`'s record for gCAS.
    pub fn set_crec(
        &mut self,
        i: usize,
        execute: bool,
        target: u64,
        cmp: u64,
        swp: u64,
        result: u64,
    ) {
        let r = self.rec(i);
        r[crec::COP as usize] = if execute {
            Opcode::LocalCas as u8
        } else {
            Opcode::Nop as u8
        };
        r[crec::TARGET as usize..crec::TARGET as usize + 8].copy_from_slice(&target.to_le_bytes());
        r[crec::CMP as usize..crec::CMP as usize + 8].copy_from_slice(&cmp.to_le_bytes());
        r[crec::SWP as usize..crec::SWP as usize + 8].copy_from_slice(&swp.to_le_bytes());
        r[crec::RESULT as usize..crec::RESULT as usize + 8].copy_from_slice(&result.to_le_bytes());
    }

    /// The serialized message.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Parse the results array out of an ACK payload.
pub fn parse_results(ack: &[u8], group_size: usize) -> Vec<u64> {
    (0..group_size)
        .map(|i| {
            let off = i * 8;
            u64::from_le_bytes(ack[off..off + 8].try_into().unwrap())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous() {
        let g = 3;
        assert_eq!(results_off(), 8);
        assert_eq!(rec_off(g, 0), 8 + 24);
        assert_eq!(rec_off(g, 1), 8 + 24 + 48);
        assert_eq!(msg_len(g), 8 + 24 + 2 * 48);
    }

    #[test]
    fn seq_in_header() {
        let m = MetaMsg::new(3, 0xdead_beef);
        assert_eq!(&m.bytes()[..4], &0xdead_beefu32.to_le_bytes());
    }

    #[test]
    fn wrec_fields_land_at_offsets() {
        let g = 4;
        let mut m = MetaMsg::new(g, 1);
        m.set_wrec(2, 4096, 0x1000, 0x2000, Opcode::Flush, 0x2000, 4096);
        let base = rec_off(g, 2) as usize;
        let b = m.bytes();
        assert_eq!(
            u32::from_le_bytes(b[base..base + 4].try_into().unwrap()),
            4096
        );
        assert_eq!(
            u64::from_le_bytes(b[base + 4..base + 12].try_into().unwrap()),
            0x1000
        );
        assert_eq!(
            u64::from_le_bytes(b[base + 12..base + 20].try_into().unwrap()),
            0x2000
        );
        assert_eq!(b[base + 20], Opcode::Flush as u8);
    }

    #[test]
    fn crec_execute_map_controls_opcode() {
        let g = 3;
        let mut m = MetaMsg::new(g, 1);
        m.set_crec(0, true, 0x100, 1, 2, 0x8);
        m.set_crec(1, false, 0x100, 1, 2, 0x10);
        let b = m.bytes();
        assert_eq!(b[rec_off(g, 0) as usize], Opcode::LocalCas as u8);
        assert_eq!(b[rec_off(g, 1) as usize], Opcode::Nop as u8);
    }

    #[test]
    fn mrec_fields_fit_in_record() {
        // The multi-client ACK descriptor shares the 48-byte record,
        // checked at compile time.
        const {
            assert!(mrec::ACK_ADDR + 8 <= REC);
            assert!(mrec::ACK_RKEY + 4 <= REC);
            // And does not overlap the gWRITE forwarding fields.
            assert!(mrec::ACK_ADDR >= wrec::FLEN + 4);
        }
    }

    #[test]
    fn results_roundtrip() {
        let g = 3;
        let mut m = MetaMsg::new(g, 1);
        m.set_result(0, 11);
        m.set_result(2, 33);
        let res = parse_results(&m.bytes()[results_off() as usize..], g);
        assert_eq!(res, vec![11, 0, 33]);
    }
}
