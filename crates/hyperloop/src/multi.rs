//! Multi-client chains over shared receive queues (paper §5, "Multiple
//! clients can be supported in the future using shared receive queues
//! on the first replica").
//!
//! Several clients issue gWRITEs into **one** replica chain. The first
//! replica attaches one QP per client to a single SRQ, so operations
//! from any client consume the pre-posted slot ring in arrival order —
//! the NICs serialize the multi-writer log with no CPU. Two twists vs
//! the single-client chain:
//!
//! * every slot's forwarding program is client-agnostic (the metadata
//!   records carry absolute addresses, so whichever client's operation
//!   lands in slot *k* programs slot *k*'s WQEs);
//! * the tail pre-posts one WRITE_IMM *per client* per slot, and the
//!   issuing client's metadata selects its own (opcode byte stays
//!   `WriteImm`) while turning the others into NOPs — the same
//!   execute-map trick gCAS uses. The tail WAITs use threshold mode so
//!   all per-client queues trigger off the shared upstream recv CQ.

use crate::group::{OnDone, OpResult};
use crate::metadata::{self, MetaMsg};
use crate::Backpressure;
use hl_cluster::World;
use hl_fabric::HostId;
use hl_nvm::Region;
use hl_rnic::{
    field_offset, flags, Access, CqeKind, CqeStatus, Opcode, RecvWqe, ScatterEntry, Wqe, WQE_SIZE,
};
use hl_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Multi-client chain configuration.
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// The clients (each on its own host).
    pub clients: Vec<HostId>,
    /// Replicas in chain order.
    pub replicas: Vec<HostId>,
    /// Replicated-region size.
    pub rep_bytes: u64,
    /// Pre-posted slots.
    pub ring_slots: u32,
    /// Replenisher period.
    pub replenish_period: SimDuration,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            clients: Vec::new(),
            replicas: Vec::new(),
            rep_bytes: 1 << 20,
            ring_slots: 64,
            replenish_period: SimDuration::from_micros(200),
        }
    }
}

struct ClientState {
    host: HostId,
    /// Out QP toward replica 0.
    qp_out: u32,
    /// ACK receive QP (from the tail).
    ack_qp: u32,
    ack_rcq: u32,
    /// Metadata staging ring.
    staging: Region,
    /// ACK landing buffer + rkey.
    ack_buf: Region,
    ack_rkey: u32,
    /// This client's copy of the data (it is a chain member too).
    rep: Region,
    pending: BTreeMap<u32, (SimTime, Option<OnDone>)>,
    next_seq: u32,
    /// Tail-side ACK queue for this client.
    tail_ack_qp: u32,
}

struct ReplicaState {
    host: HostId,
    /// Receive CQ fed by the upstream (SRQ-backed on replica 0).
    prev_rcq: u32,
    /// SRQ id on replica 0 (None elsewhere).
    srq: Option<u32>,
    /// Per-client inbound QPs on replica 0; single QP elsewhere.
    qp_prev: Vec<u32>,
    /// Downstream QP (forwarding), unused on the tail.
    qp_next: u32,
    /// Metadata staging ring.
    staging: Region,
    rep: Region,
    rep_rkey: u32,
    slots_posted: u64,
}

/// Shared state of a multi-client chain.
pub struct MultiInner {
    cfg: MultiConfig,
    /// Chain group size (replicas + 1 — the issuing client is the head).
    g: usize,
    /// Base metadata length; the select section of `m` bytes follows.
    base_msg_len: u64,
    msg_len: u64,
    clients: Vec<ClientState>,
    replicas: Vec<ReplicaState>,
    /// Total operations issued across all clients (slot consumption).
    issued_total: u64,
    /// Credit: slots the replicas have reported as posted.
    posted_seen: u64,
    /// Completed operations (all clients).
    pub acked: u64,
}

/// Shared handle to the chain.
pub type MultiRef = Rc<RefCell<MultiInner>>;

/// Builds the multi-client chain.
pub struct MultiBuilder {
    cfg: MultiConfig,
    gid: u32,
}

fn next_gid() -> u32 {
    use std::sync::atomic::{AtomicU32, Ordering};
    static GID: AtomicU32 = AtomicU32::new(0);
    GID.fetch_add(1, Ordering::Relaxed)
}

impl MultiBuilder {
    /// Start from a config.
    pub fn new(cfg: MultiConfig) -> Self {
        assert!(!cfg.clients.is_empty() && !cfg.replicas.is_empty());
        assert!(
            cfg.clients.len() <= 16,
            "select section sized for <= 16 clients"
        );
        MultiBuilder {
            cfg,
            gid: next_gid(),
        }
    }

    /// Allocate, wire and pre-post.
    pub fn build(self, w: &mut World) -> MultiRef {
        let cfg = self.cfg;
        let gid = self.gid;
        let slots = cfg.ring_slots;
        let m = cfg.clients.len();
        let n = cfg.replicas.len();
        let g = n + 1;
        let base_msg_len = metadata::msg_len(g);
        let msg_len = base_msg_len + m as u64;

        // --- clients ------------------------------------------------------
        let mut clients = Vec::new();
        for (c, &chh) in cfg.clients.iter().enumerate() {
            let rep = w
                .host(chh)
                .layout
                .alloc(&format!("mc{gid}.c{c}.rep"), cfg.rep_bytes, 64);
            let staging =
                w.host(chh)
                    .layout
                    .alloc(&format!("mc{gid}.c{c}.tx"), slots as u64 * msg_len, 64);
            let ack_buf =
                w.host(chh)
                    .layout
                    .alloc(&format!("mc{gid}.c{c}.ack"), slots as u64 * 8, 64);
            let ack_mr =
                w.host(chh)
                    .nic
                    .register_mr(ack_buf.addr, ack_buf.len, Access::REMOTE_WRITE);
            let out_sq = w.host(chh).layout.alloc(
                &format!("mc{gid}.c{c}.out_sq"),
                3 * slots as u64 * WQE_SIZE,
                64,
            );
            let oscq = w.host(chh).nic.create_cq();
            let orcq = w.host(chh).nic.create_cq();
            let qp_out = w
                .host(chh)
                .nic
                .create_qp(oscq, orcq, out_sq.addr, 3 * slots);
            let ack_sq =
                w.host(chh)
                    .layout
                    .alloc(&format!("mc{gid}.c{c}.ack_sq"), 4 * WQE_SIZE, 64);
            let ascq = w.host(chh).nic.create_cq();
            let arcq = w.host(chh).nic.create_cq();
            let ack_qp = w.host(chh).nic.create_qp(ascq, arcq, ack_sq.addr, 4);
            for k in 0..slots as u64 {
                w.host(chh).post_recv(
                    ack_qp,
                    RecvWqe {
                        wr_id: k,
                        scatter: vec![],
                    },
                );
            }
            clients.push(ClientState {
                host: chh,
                qp_out,
                ack_qp,
                ack_rcq: arcq,
                staging,
                ack_buf,
                ack_rkey: ack_mr.rkey,
                rep,
                pending: BTreeMap::new(),
                next_seq: 0,
                tail_ack_qp: u32::MAX, // wired below
            });
        }

        // --- replicas -------------------------------------------------------
        let mut replicas: Vec<ReplicaState> = Vec::new();
        for (i, &rh) in cfg.replicas.iter().enumerate() {
            let is_head = i == 0;
            let is_tail = i == n - 1;
            let rep = w
                .host(rh)
                .layout
                .alloc(&format!("mc{gid}.r{i}.rep"), cfg.rep_bytes, 64);
            let mr = w.host(rh).nic.register_mr(
                rep.addr,
                rep.len,
                Access::REMOTE_WRITE | Access::REMOTE_READ,
            );
            let staging = w.host(rh).layout.alloc(
                &format!("mc{gid}.r{i}.staging"),
                slots as u64 * msg_len,
                64,
            );
            let prev_scq = w.host(rh).nic.create_cq();
            let prev_rcq = w.host(rh).nic.create_cq();

            // Inbound side: replica 0 gets one SRQ-attached QP per
            // client; the rest get a single QP from upstream.
            let (srq, qp_prev) = if is_head {
                let srq = w.host(rh).nic.create_srq();
                let mut qps = Vec::new();
                for (c, cl) in clients.iter().enumerate() {
                    let sqr = w.host(rh).layout.alloc(
                        &format!("mc{gid}.r{i}.in{c}_sq"),
                        4 * WQE_SIZE,
                        64,
                    );
                    let qp = w.host(rh).nic.create_qp(prev_scq, prev_rcq, sqr.addr, 4);
                    w.host(rh).nic.attach_srq(qp, srq);
                    w.connect_qps(cl.host, cl.qp_out, rh, qp);
                    qps.push(qp);
                }
                (Some(srq), qps)
            } else {
                let sqr = w
                    .host(rh)
                    .layout
                    .alloc(&format!("mc{gid}.r{i}.in_sq"), 4 * WQE_SIZE, 64);
                let qp = w.host(rh).nic.create_qp(prev_scq, prev_rcq, sqr.addr, 4);
                // Upstream wiring: previous replica's qp_next -> this qp.
                let prev = &replicas[i - 1];
                w.connect_qps(prev.host, prev.qp_next, rh, qp);
                (None, vec![qp])
            };

            // Downstream side: forwarding qp_next (non-tail) — the tail
            // instead gets per-client ack QPs, wired after this loop.
            let next_sq = w.host(rh).layout.alloc(
                &format!("mc{gid}.r{i}.next_sq"),
                4 * slots as u64 * WQE_SIZE,
                64,
            );
            let nscq = w.host(rh).nic.create_cq();
            let nrcq = w.host(rh).nic.create_cq();
            let qp_next = w
                .host(rh)
                .nic
                .create_qp(nscq, nrcq, next_sq.addr, 4 * slots);
            let _ = is_tail;
            replicas.push(ReplicaState {
                host: rh,
                prev_rcq,
                srq,
                qp_prev,
                qp_next,
                staging,
                rep,
                rep_rkey: mr.rkey,
                slots_posted: 0,
            });
        }

        // Tail: per-client ACK queues.
        let tail = n - 1;
        let th = cfg.replicas[tail];
        for (c, cl) in clients.iter_mut().enumerate() {
            let sqr = w.host(th).layout.alloc(
                &format!("mc{gid}.tail.ack{c}_sq"),
                2 * slots as u64 * WQE_SIZE,
                64,
            );
            let scq = w.host(th).nic.create_cq();
            let rcq = w.host(th).nic.create_cq();
            let qp = w.host(th).nic.create_qp(scq, rcq, sqr.addr, 2 * slots);
            w.connect_qps(th, qp, cl.host, cl.ack_qp);
            cl.tail_ack_qp = qp;
        }

        let inner = MultiInner {
            g,
            base_msg_len,
            msg_len,
            clients,
            replicas,
            issued_total: 0,
            posted_seen: slots as u64,
            acked: 0,
            cfg,
        };
        let rc: MultiRef = Rc::new(RefCell::new(inner));
        {
            let mut inner = rc.borrow_mut();
            for _ in 0..slots {
                for r in 0..n {
                    post_multi_slot(&mut inner, w, r);
                }
            }
            // Arm all WAIT queues.
            let kicks: Vec<(HostId, u32)> = {
                let mut v: Vec<(HostId, u32)> = inner
                    .replicas
                    .iter()
                    .take(n - 1)
                    .map(|r| (r.host, r.qp_next))
                    .collect();
                v.extend(inner.clients.iter().map(|c| (th, c.tail_ack_qp)));
                v
            };
            for (h, qp) in kicks {
                let host = &mut w.hosts[h.0];
                let outs = host.nic.ring_doorbell(SimTime::ZERO, qp, &mut host.mem);
                debug_assert!(outs.is_empty());
            }
        }
        rc
    }
}

/// Pre-post one slot on replica `r`.
fn post_multi_slot(inner: &mut MultiInner, w: &mut World, r: usize) {
    let n = inner.cfg.replicas.len();
    let m = inner.cfg.clients.len();
    let g = inner.g;
    let is_tail = r == n - 1;
    let slots = inner.cfg.ring_slots as u64;
    let slot = inner.replicas[r].slots_posted;
    let rh = inner.replicas[r].host;
    let msg_len = inner.msg_len;
    let staging_slot = inner.replicas[r].staging.at((slot % slots) * msg_len);
    let rec = metadata::rec_off(g, r);
    let prev_rcq = inner.replicas[r].prev_rcq;
    let select_off = inner.base_msg_len;

    let se = |msg_off: u64, len: u64, addr: u64| ScatterEntry {
        msg_off: msg_off as u32,
        len: len as u32,
        addr,
    };
    let mut scatter: Vec<ScatterEntry> = vec![ScatterEntry {
        msg_off: 0,
        len: msg_len as u32,
        addr: staging_slot,
    }];

    if !is_tail {
        // Forwarding slot (consume-mode WAIT: single waiter per rcq).
        let next_rkey = inner.replicas[r + 1].rep_rkey;
        let qp_next = inner.replicas[r].qp_next;
        let host = &mut w.hosts[rh.0];
        let wait = Wqe {
            opcode: Opcode::Wait,
            flags: flags::HW_OWNED,
            raddr: Wqe::wait_params(prev_rcq, 1),
            activate_n: 3,
            wr_id: slot,
            ..Default::default()
        };
        host.post_send(qp_next, wait, false).unwrap();
        let write = Wqe {
            opcode: Opcode::Write,
            rkey: next_rkey,
            wr_id: slot,
            ..Default::default()
        };
        let widx = host.post_send(qp_next, write, true).unwrap();
        let flush = Wqe {
            opcode: Opcode::Flush,
            rkey: next_rkey,
            wr_id: slot,
            ..Default::default()
        };
        let fidx = host.post_send(qp_next, flush, true).unwrap();
        let send = Wqe {
            opcode: Opcode::Send,
            len: msg_len as u32,
            laddr: staging_slot,
            wr_id: slot,
            ..Default::default()
        };
        host.post_send(qp_next, send, true).unwrap();
        let waddr = host.nic.sq_slot_addr(qp_next, widx);
        let faddr = host.nic.sq_slot_addr(qp_next, fidx);
        scatter.extend([
            se(rec + metadata::wrec::LEN, 4, waddr + field_offset::LEN),
            se(rec + metadata::wrec::SRC, 8, waddr + field_offset::LADDR),
            se(rec + metadata::wrec::DST, 8, waddr + field_offset::RADDR),
            se(rec + metadata::wrec::FOP, 1, faddr + field_offset::OPCODE),
            se(rec + metadata::wrec::FADDR, 8, faddr + field_offset::RADDR),
            se(rec + metadata::wrec::FLEN, 4, faddr + field_offset::LEN),
        ]);
    } else {
        // Tail slot: one (WAIT, WRITE_IMM) pair per client; threshold
        // WAITs let every per-client queue trigger off the shared
        // upstream CQ, and the select byte picks exactly one WRITE_IMM.
        for c in 0..m {
            let (qp, ack_addr, ack_rkey) = {
                let cl = &inner.clients[c];
                (
                    cl.tail_ack_qp,
                    cl.ack_buf.at((slot % slots) * 8),
                    cl.ack_rkey,
                )
            };
            let host = &mut w.hosts[rh.0];
            let wait = Wqe {
                opcode: Opcode::Wait,
                flags: flags::HW_OWNED | flags::WAIT_THRESHOLD,
                raddr: Wqe::wait_params(prev_rcq, (slot + 1) as u32),
                activate_n: 1,
                wr_id: slot,
                ..Default::default()
            };
            host.post_send(qp, wait, false).unwrap();
            let wimm = Wqe {
                opcode: Opcode::WriteImm,
                len: 0,
                raddr: ack_addr,
                rkey: ack_rkey,
                wr_id: slot,
                ..Default::default()
            };
            let idx = host.post_send(qp, wimm, true).unwrap();
            let waddr = host.nic.sq_slot_addr(qp, idx);
            scatter.push(se(0, 4, waddr + field_offset::IMM));
            scatter.push(se(select_off + c as u64, 1, waddr + field_offset::OPCODE));
        }
    }

    // Receive side: SRQ on the head, plain RQ elsewhere.
    let srq = inner.replicas[r].srq;
    let qp0 = inner.replicas[r].qp_prev[0];
    let host = &mut w.hosts[rh.0];
    match srq {
        Some(s) => host.nic.post_srq_recv(
            s,
            RecvWqe {
                wr_id: slot,
                scatter,
            },
        ),
        None => host.post_recv(
            qp0,
            RecvWqe {
                wr_id: slot,
                scatter,
            },
        ),
    }
    inner.replicas[r].slots_posted += 1;
}

/// A handle for one of the chain's clients.
#[derive(Clone)]
pub struct MultiClient {
    inner: MultiRef,
    /// This client's index.
    pub idx: usize,
}

impl MultiClient {
    /// Wrap client `idx` of a built chain and subscribe its ACK
    /// dispatcher.
    pub fn new(inner: MultiRef, idx: usize, w: &mut World) -> Self {
        let (host, ack_rcq) = {
            let i = inner.borrow();
            (i.clients[idx].host, i.clients[idx].ack_rcq)
        };
        let rc = inner.clone();
        w.subscribe_cq_callback(host, ack_rcq, move |cqe, w, eng| {
            if cqe.kind != CqeKind::RecvImm || cqe.status != CqeStatus::Ok {
                return;
            }
            let mut i = rc.borrow_mut();
            let Some((issued_at, done)) = i.clients[idx].pending.remove(&cqe.imm) else {
                return;
            };
            i.acked += 1;
            let ack_qp = i.clients[idx].ack_qp;
            let host = i.clients[idx].host;
            w.hosts[host.0].post_recv(
                ack_qp,
                RecvWqe {
                    wr_id: cqe.imm as u64,
                    scatter: vec![],
                },
            );
            let latency = eng.now().duration_since(issued_at);
            drop(i);
            if let Some(done) = done {
                done(
                    w,
                    eng,
                    OpResult {
                        seq: cqe.imm,
                        results: vec![],
                        latency,
                    },
                );
            }
        });
        MultiClient { inner, idx }
    }

    /// The shared chain state.
    pub fn chain(&self) -> &MultiRef {
        &self.inner
    }

    /// Address of `offset` in replica `r`'s copy.
    pub fn replica_addr(&self, r: usize, offset: u64) -> u64 {
        self.inner.borrow().replicas[r].rep.at(offset)
    }

    /// Host of replica `r`.
    pub fn replica_host(&self, r: usize) -> HostId {
        self.inner.borrow().replicas[r].host
    }

    /// Multi-client gWRITE: this client's data lands durably on every
    /// replica; all clients' operations serialize through the shared
    /// slot ring in NIC arrival order.
    pub fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let mut i = self.inner.borrow_mut();
        if i.issued_total >= i.posted_seen {
            return Err(Backpressure);
        }
        i.issued_total += 1;
        let m = i.cfg.clients.len();
        let n = i.cfg.replicas.len();
        let g = i.g;
        let msg_len = i.msg_len;
        let base_msg_len = i.base_msg_len;
        let slots = i.cfg.ring_slots as u64;
        let seq = i.clients[self.idx].next_seq;
        i.clients[self.idx].next_seq = i.clients[self.idx].next_seq.wrapping_add(1);
        let ch = i.clients[self.idx].host;

        // Local apply on this client's own copy.
        let local = i.clients[self.idx].rep.at(offset);
        w.host(ch).mem.write(local, data).unwrap();
        if flush {
            w.host(ch).mem.flush(local, data.len()).unwrap();
        }

        // Metadata: forwarding records for replicas 0..n-1 (replica j
        // writes from its copy into replica j+1's), then the select
        // section picking this client's tail WRITE_IMM.
        let mut msg = MetaMsg::new(g, seq);
        for j in 0..n.saturating_sub(1) {
            let src = i.replicas[j].rep.at(offset);
            let dst = i.replicas[j + 1].rep.at(offset);
            let fop = if flush { Opcode::Flush } else { Opcode::Nop };
            msg.set_wrec(j, data.len() as u32, src, dst, fop, dst, data.len() as u32);
        }
        let mut bytes = msg.bytes().to_vec();
        bytes.resize(msg_len as usize, 0);
        for c in 0..m {
            bytes[(base_msg_len + c as u64) as usize] = if c == self.idx {
                Opcode::WriteImm as u8
            } else {
                Opcode::Nop as u8
            };
        }
        let staging = i.clients[self.idx]
            .staging
            .at((seq as u64 % slots) * msg_len);
        w.host(ch).mem.write(staging, &bytes).unwrap();

        // Post WRITE [FLUSH] SEND toward replica 0.
        let qp_out = i.clients[self.idx].qp_out;
        let r0 = i.replicas[0].rep.at(offset);
        let rkey0 = i.replicas[0].rep_rkey;
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Write,
                    len: data.len() as u32,
                    laddr: local,
                    raddr: r0,
                    rkey: rkey0,
                    wr_id: seq as u64,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        if flush {
            w.hosts[ch.0]
                .post_send(
                    qp_out,
                    Wqe {
                        opcode: Opcode::Flush,
                        len: data.len() as u32,
                        raddr: r0,
                        rkey: rkey0,
                        wr_id: seq as u64,
                        ..Default::default()
                    },
                    false,
                )
                .expect("client SQ sized");
        }
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Send,
                    len: msg_len as u32,
                    laddr: staging,
                    wr_id: seq as u64,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        i.clients[self.idx]
            .pending
            .insert(seq, (eng.now(), Some(done)));
        drop(i);
        w.ring_doorbell(ch, qp_out, eng);
        Ok(seq)
    }
}

/// Replenisher for the multi-client chain (runs on replica 0's host;
/// reposts every replica's slots and reports credit to the clients).
pub struct MultiReplenisher {
    inner: MultiRef,
}

impl MultiReplenisher {
    /// Create.
    pub fn new(inner: MultiRef) -> Self {
        MultiReplenisher { inner }
    }
}

impl hl_cluster::Process for MultiReplenisher {
    fn on_event(&mut self, ev: hl_cluster::ProcEvent, ctx: &mut hl_cluster::Ctx<'_>) {
        use hl_cluster::ProcEvent;
        let period = self.inner.borrow().cfg.replenish_period;
        match ev {
            ProcEvent::Started | ProcEvent::WorkDone { .. } => {
                ctx.set_timer(period, 1, SimDuration::from_nanos(500));
            }
            ProcEvent::Timer { .. } => {
                let deficit = {
                    let inner = self.inner.borrow();
                    let n = inner.cfg.replicas.len();
                    let m = inner.cfg.clients.len();
                    let slots = inner.cfg.ring_slots as u64;
                    // Consumption: min over every ring's execution head.
                    let mut consumed = u64::MAX;
                    for (r, rep) in inner.replicas.iter().enumerate() {
                        let nic = &ctx.world.hosts[rep.host.0].nic;
                        if r < n - 1 {
                            let (h, _, _) = nic.sq_state(rep.qp_next);
                            consumed = consumed.min(h / 4);
                        }
                    }
                    let tail_host = inner.replicas[n - 1].host;
                    for cl in &inner.clients {
                        let (h, _, _) = ctx.world.hosts[tail_host.0].nic.sq_state(cl.tail_ack_qp);
                        consumed = consumed.min(h / 2);
                    }
                    let _ = m;
                    (consumed + slots).saturating_sub(inner.replicas[0].slots_posted)
                };
                if deficit > 0 {
                    {
                        let mut inner = self.inner.borrow_mut();
                        let n = inner.cfg.replicas.len();
                        for _ in 0..deficit {
                            for r in 0..n {
                                post_multi_slot(&mut inner, ctx.world, r);
                            }
                        }
                    }
                    // Kick queues and report credit.
                    let (kicks, posted) = {
                        let inner = self.inner.borrow();
                        let n = inner.cfg.replicas.len();
                        let tail_host = inner.replicas[n - 1].host;
                        let mut v: Vec<(HostId, u32)> = inner
                            .replicas
                            .iter()
                            .take(n - 1)
                            .map(|r| (r.host, r.qp_next))
                            .collect();
                        v.extend(inner.clients.iter().map(|c| (tail_host, c.tail_ack_qp)));
                        (v, inner.replicas[0].slots_posted)
                    };
                    for (h, qp) in kicks {
                        let now = ctx.now();
                        let host = &mut ctx.world.hosts[h.0];
                        let outs = host.nic.ring_doorbell(now, qp, &mut host.mem);
                        hl_cluster::route_nic(h, outs, ctx.world, ctx.eng);
                    }
                    let rc = self.inner.clone();
                    ctx.eng
                        .schedule(SimDuration::from_micros(2), move |_w, _e| {
                            rc.borrow_mut().posted_seen = posted;
                        });
                }
                ctx.set_timer(period, 1, SimDuration::from_nanos(500));
            }
            _ => {}
        }
    }
}

/// Start the replenisher on replica 0's host.
pub fn start_replenisher(
    inner: &MultiRef,
    w: &mut World,
    eng: &mut Engine<World>,
) -> hl_cluster::ProcAddr {
    let host = inner.borrow().replicas[0].host;
    w.start_process(
        host,
        "multi-replenish",
        None,
        Box::new(MultiReplenisher::new(inner.clone())),
        SimDuration::from_micros(1),
        eng,
    )
}
