//! The Naïve-RDMA baseline (paper §6, "Naïve-RDMA").
//!
//! Performs the same group operations as HyperLoop over the same chain
//! topology and the same verbs, but **replica CPUs sit on the critical
//! path**: each hop's NIC delivers the operation to a replica process
//! that must be scheduled to receive, parse, apply (flush / memcpy /
//! CAS) and re-post the forwarding work requests — exactly the
//! traditional design the paper measures against. Two replica modes:
//!
//! * [`Mode::Event`] — completion interrupts wake the replica process
//!   (cheap when idle, slow under scheduler contention);
//! * [`Mode::Polling`] — the replica burns a core busy-polling its CQ
//!   (the paper's "best case" for microbenchmarks, and its surprising
//!   multi-tenant loser in Figure 11).

use crate::group::{Backpressure, OnDone, OpResult};
use hl_cluster::{Ctx, ProcAddr, ProcEvent, Process, World};
use hl_fabric::HostId;
use hl_nvm::Region;
use hl_rnic::{Access, CqeKind, CqeStatus, Opcode, RecvWqe, ScatterEntry, Wqe, WQE_SIZE};
use hl_sim::telemetry::Stage;
use hl_sim::{Engine, OpKind, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Replica scheduling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Interrupt-driven: sleep until a completion event.
    Event,
    /// Busy-polling: burn a core checking the CQ.
    Polling,
}

/// CPU cost knobs for the baseline replica datapath.
#[derive(Debug, Clone)]
pub struct NaiveCosts {
    /// Receive-event dispatch (poll CQ + read descriptor).
    pub dispatch: SimDuration,
    /// Parse one descriptor.
    pub parse: SimDuration,
    /// Persist (CLWB + fence) per operation.
    pub persist: SimDuration,
    /// Build + post + doorbell for the forwarding WQEs.
    pub post: SimDuration,
    /// Memcpy throughput for gMEMCPY apply (bytes/sec).
    pub memcpy_bps: u64,
    /// Poll quantum for [`Mode::Polling`].
    pub poll_quantum: SimDuration,
}

impl Default for NaiveCosts {
    fn default() -> Self {
        NaiveCosts {
            dispatch: SimDuration::from_nanos(1_500),
            parse: SimDuration::from_nanos(600),
            persist: SimDuration::from_nanos(400),
            post: SimDuration::from_nanos(900),
            memcpy_bps: 10_000_000_000,
            poll_quantum: SimDuration::from_micros(2),
        }
    }
}

/// Naïve group configuration.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Chain head (client).
    pub client: HostId,
    /// Replicas in chain order.
    pub replicas: Vec<HostId>,
    /// Replicated region size.
    pub rep_bytes: u64,
    /// Receive-ring depth.
    pub ring_slots: u32,
    /// Replica scheduling mode.
    pub mode: Mode,
    /// CPU cost knobs.
    pub costs: NaiveCosts,
    /// Pin each replica process to a core (dedicated-core best case).
    pub pin_replicas: bool,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            client: HostId(0),
            replicas: Vec::new(),
            rep_bytes: 1 << 20,
            ring_slots: 128,
            mode: Mode::Event,
            costs: NaiveCosts::default(),
            pin_replicas: false,
        }
    }
}

// Descriptor layout (fixed header + result map), parsed by replica CPUs.
const D_PRIM: u64 = 0;
const D_FLUSH: u64 = 1;
const D_SEQ: u64 = 4;
const D_OFFSET: u64 = 8;
const D_AUX: u64 = 16; // memcpy src / CAS cmp
const D_SWP: u64 = 24;
const D_LEN: u64 = 32;
const D_EXEC: u64 = 36;
const D_OP: u64 = 40; // telemetry op id (0 = untraced)
const D_RESULTS: u64 = 48;

fn desc_len(g: usize) -> u64 {
    D_RESULTS + 8 * g as u64
}

struct RepSide {
    host: HostId,
    qp_prev: u32,
    prev_rcq: u32,
    qp_next: u32,
    /// Inbound descriptor buffer (`slots × desc_len`).
    rxbuf: Region,
    /// Outbound staging for the forwarded descriptor.
    txbuf: Region,
    next_rkey: u32,
    recvs_posted: u64,
}

struct PendingOp {
    issued_at: SimTime,
    op: u32,
    done: Option<OnDone>,
}

/// Shared state of a naïve group.
pub struct NaiveInner {
    /// Configuration.
    pub cfg: NaiveConfig,
    g: usize,
    dlen: u64,
    /// Client's copy of the replicated region.
    pub client_rep: Region,
    /// Replica copies.
    pub replica_rep: Vec<Region>,
    rep_rkeys: Vec<u32>,
    qp_out: u32,
    ack_qp: u32,
    ack_rcq: u32,
    tx_staging: Region,
    ack_buf: Region,
    reps: Vec<RepSide>,
    pending: BTreeMap<u32, PendingOp>,
    next_seq: u32,
    inflight: u32,
    max_inflight: u32,
    /// Refuse new issues (during a cutover back to an offloaded chain);
    /// in-flight descriptors still drain and ACK.
    pub paused: bool,
    /// Issue/ack counters.
    pub stats: crate::group::GroupStats,
}

/// Shared handle.
pub type NaiveRef = Rc<RefCell<NaiveInner>>;

impl NaiveInner {
    /// Member address (0 = client).
    pub fn member_addr(&self, m: usize, offset: u64) -> u64 {
        if m == 0 {
            self.client_rep.at(offset)
        } else {
            self.replica_rep[m - 1].at(offset)
        }
    }
}

/// Builds the naïve chain and starts replica processes.
pub struct NaiveBuilder {
    cfg: NaiveConfig,
    gid: u32,
}

fn next_gid() -> u32 {
    use std::sync::atomic::{AtomicU32, Ordering};
    static GID: AtomicU32 = AtomicU32::new(0);
    GID.fetch_add(1, Ordering::Relaxed)
}

impl NaiveBuilder {
    /// Start from a config.
    pub fn new(cfg: NaiveConfig) -> Self {
        assert!(!cfg.replicas.is_empty());
        NaiveBuilder {
            cfg,
            gid: next_gid(),
        }
    }

    /// Allocate, wire, pre-post, and start the replica processes.
    pub fn build(self, w: &mut World, eng: &mut Engine<World>) -> NaiveClient {
        let cfg = self.cfg;
        let gid = self.gid;
        let n = cfg.replicas.len();
        let g = n + 1;
        let dlen = desc_len(g);
        let slots = cfg.ring_slots;
        let ch = cfg.client;

        let client_rep = w
            .host(ch)
            .layout
            .alloc(&format!("nv{gid}.rep"), cfg.rep_bytes, 64);
        w.host(ch)
            .nic
            .register_mr(client_rep.addr, client_rep.len, Access::REMOTE_READ);

        let mut replica_rep = Vec::new();
        let mut rep_rkeys = Vec::new();
        for &rh in &cfg.replicas {
            let r = w
                .host(rh)
                .layout
                .alloc(&format!("nv{gid}.rep"), cfg.rep_bytes, 64);
            let mr = w.host(rh).nic.register_mr(
                r.addr,
                r.len,
                Access::REMOTE_WRITE | Access::REMOTE_READ | Access::REMOTE_ATOMIC,
            );
            replica_rep.push(r);
            rep_rkeys.push(mr.rkey);
        }

        // Client side.
        let out_sq =
            w.host(ch)
                .layout
                .alloc(&format!("nv{gid}.out_sq"), 4 * slots as u64 * WQE_SIZE, 64);
        let tx_staging = w
            .host(ch)
            .layout
            .alloc(&format!("nv{gid}.tx"), slots as u64 * dlen, 64);
        let ack_buf =
            w.host(ch)
                .layout
                .alloc(&format!("nv{gid}.ack"), slots as u64 * 8 * g as u64, 64);
        let ack_mr = w
            .host(ch)
            .nic
            .register_mr(ack_buf.addr, ack_buf.len, Access::REMOTE_WRITE);
        let out_scq = w.host(ch).nic.create_cq();
        let out_rcq = w.host(ch).nic.create_cq();
        let qp_out = w
            .host(ch)
            .nic
            .create_qp(out_scq, out_rcq, out_sq.addr, 4 * slots);
        let ack_sq = w
            .host(ch)
            .layout
            .alloc(&format!("nv{gid}.ack_sq"), 4 * WQE_SIZE, 64);
        let ack_scq = w.host(ch).nic.create_cq();
        let ack_rcq = w.host(ch).nic.create_cq();
        let ack_qp = w.host(ch).nic.create_qp(ack_scq, ack_rcq, ack_sq.addr, 4);
        for k in 0..slots as u64 {
            w.host(ch).post_recv(
                ack_qp,
                RecvWqe {
                    wr_id: k,
                    scatter: vec![],
                },
            );
        }

        // Replicas.
        let mut reps = Vec::new();
        let mut prev_qp = qp_out;
        let mut prev_host = ch;
        for (i, &rh) in cfg.replicas.iter().enumerate() {
            let is_tail = i == n - 1;
            let prev_sq = w
                .host(rh)
                .layout
                .alloc(&format!("nv{gid}.prev_sq"), 4 * WQE_SIZE, 64);
            let next_sq = w.host(rh).layout.alloc(
                &format!("nv{gid}.next_sq"),
                4 * slots as u64 * WQE_SIZE,
                64,
            );
            let rxbuf = w
                .host(rh)
                .layout
                .alloc(&format!("nv{gid}.rx"), slots as u64 * dlen, 64);
            let txbuf = w
                .host(rh)
                .layout
                .alloc(&format!("nv{gid}.txf"), slots as u64 * dlen, 64);
            let prev_scq = w.host(rh).nic.create_cq();
            let prev_rcq = w.host(rh).nic.create_cq();
            let qp_prev = w
                .host(rh)
                .nic
                .create_qp(prev_scq, prev_rcq, prev_sq.addr, 4);
            let next_scq = w.host(rh).nic.create_cq();
            let next_rcq = w.host(rh).nic.create_cq();
            let qp_next = w
                .host(rh)
                .nic
                .create_qp(next_scq, next_rcq, next_sq.addr, 4 * slots);
            w.connect_qps(prev_host, prev_qp, rh, qp_prev);
            // Pre-post receives into the rx buffer.
            for k in 0..slots as u64 {
                let addr = rxbuf.at((k % slots as u64) * dlen);
                w.host(rh).post_recv(
                    qp_prev,
                    RecvWqe {
                        wr_id: k,
                        scatter: vec![ScatterEntry {
                            msg_off: 0,
                            len: dlen as u32,
                            addr,
                        }],
                    },
                );
            }
            reps.push(RepSide {
                host: rh,
                qp_prev,
                prev_rcq,
                qp_next,
                rxbuf,
                txbuf,
                next_rkey: if is_tail {
                    ack_mr.rkey
                } else {
                    rep_rkeys[i + 1]
                },
                recvs_posted: slots as u64,
            });
            prev_qp = qp_next;
            prev_host = rh;
        }
        w.connect_qps(prev_host, prev_qp, ch, ack_qp);

        let inner: NaiveRef = Rc::new(RefCell::new(NaiveInner {
            g,
            dlen,
            client_rep,
            replica_rep,
            rep_rkeys,
            qp_out,
            ack_qp,
            ack_rcq,
            tx_staging,
            ack_buf,
            reps,
            pending: BTreeMap::new(),
            next_seq: 0,
            inflight: 0,
            max_inflight: slots / 2,
            paused: false,
            stats: Default::default(),
            cfg,
        }));

        // Start replica processes.
        let mode = inner.borrow().cfg.mode;
        let pin = inner.borrow().cfg.pin_replicas;
        let replicas = inner.borrow().cfg.replicas.clone();
        for (i, &rh) in replicas.iter().enumerate() {
            if pin {
                // Dedicated core: reserve core 0 for the replica.
                w.hosts[rh.0].cpu.set_exclusive(0, true);
            }
            let proc_addr = w.start_process(
                rh,
                &format!("naive-replica-{i}"),
                if pin { Some(0) } else { None },
                Box::new(NaiveReplica {
                    inner: inner.clone(),
                    idx: i,
                    queue: VecDeque::new(),
                    me: None,
                }),
                SimDuration::from_micros(2),
                eng,
            );
            if mode == Mode::Event {
                let rcq = inner.borrow().reps[i].prev_rcq;
                let cost = inner.borrow().cfg.costs.dispatch;
                w.subscribe_cq_interrupt(rh, rcq, proc_addr.pid, cost);
            }
        }

        // Client ACK dispatcher (zero-CPU driver, as with HyperLoop — the
        // client machine is dedicated in the paper's microbenchmarks).
        let rc = inner.clone();
        let ack_rcq_c = inner.borrow().ack_rcq;
        w.subscribe_cq_callback(ch, ack_rcq_c, move |cqe, w, eng| {
            ack_dispatch(&rc, cqe, w, eng);
        });

        NaiveClient { inner }
    }
}

fn ack_dispatch(rc: &NaiveRef, cqe: hl_rnic::Cqe, w: &mut World, eng: &mut Engine<World>) {
    if cqe.kind != CqeKind::RecvImm || cqe.status != CqeStatus::Ok {
        return;
    }
    let mut inner = rc.borrow_mut();
    let Some(p) = inner.pending.remove(&cqe.imm) else {
        return;
    };
    inner.inflight -= 1;
    inner.stats.acked += 1;
    let g = inner.g;
    let ch = inner.cfg.client;
    let slots = inner.cfg.ring_slots as u64;
    let ack_addr = inner.ack_buf.at((cqe.imm as u64 % slots) * 8 * g as u64);
    let ack_qp = inner.ack_qp;
    let bytes = w.host(ch).mem.read_vec(ack_addr, 8 * g).unwrap();
    let results = crate::metadata::parse_results(&bytes, g);
    w.host(ch).post_recv(
        ack_qp,
        RecvWqe {
            wr_id: cqe.imm as u64,
            scatter: vec![],
        },
    );
    let latency = eng.now().duration_since(p.issued_at);
    let mode = inner.cfg.mode;
    drop(inner);
    let op = if cqe.op != 0 { cqe.op } else { p.op };
    w.telemetry.end_op(eng.now(), op, ch.0);
    if w.telemetry.enabled() {
        let label = match mode {
            Mode::Event => "mode=event",
            Mode::Polling => "mode=polling",
        };
        w.telemetry
            .metrics
            .histogram_record("naive_op_latency_ns", label, latency.as_nanos());
        let now = eng.now();
        w.telemetry
            .series
            .record(now, "naive_op_latency_ns", label, latency.as_nanos());
    }
    if let Some(done) = p.done {
        done(
            w,
            eng,
            OpResult {
                seq: cqe.imm,
                results,
                latency,
            },
        );
    }
}

/// The baseline client: same surface as [`crate::HyperLoopClient`].
#[derive(Clone)]
pub struct NaiveClient {
    inner: NaiveRef,
}

impl NaiveClient {
    /// The shared group state.
    pub fn group(&self) -> &NaiveRef {
        &self.inner
    }

    fn issue(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        kind: OpKind,
        desc: Vec<u8>,
        data: Option<(u64, u32)>, // (offset, len): client WRITE of rep data
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let mut inner = self.inner.borrow_mut();
        if inner.paused || inner.inflight >= inner.max_inflight {
            inner.stats.backpressured += 1;
            return Err(Backpressure);
        }
        inner.inflight += 1;
        inner.stats.issued += 1;
        let seq = inner.next_seq;
        inner.next_seq = inner.next_seq.wrapping_add(1);
        let ch = inner.cfg.client;
        let slots = inner.cfg.ring_slots as u64;
        let dlen = inner.dlen;
        let staging = inner.tx_staging.at((seq as u64 % slots) * dlen);

        // The op id travels inside the descriptor so every replica CPU
        // along the chain can stamp its own wake/handle stages on it.
        let op = w.telemetry.begin_op(eng.now(), kind, ch.0);
        let mut desc = desc;
        desc[D_SEQ as usize..D_SEQ as usize + 4].copy_from_slice(&seq.to_le_bytes());
        desc[D_OP as usize..D_OP as usize + 4].copy_from_slice(&op.to_le_bytes());
        w.host(ch).mem.write(staging, &desc).unwrap();

        let qp_out = inner.qp_out;
        if let Some((offset, len)) = data {
            let laddr = inner.client_rep.at(offset);
            let raddr = inner.replica_rep[0].at(offset);
            let rkey = inner.rep_rkeys[0];
            w.hosts[ch.0]
                .post_send(
                    qp_out,
                    Wqe {
                        opcode: Opcode::Write,
                        len,
                        laddr,
                        raddr,
                        rkey,
                        wr_id: seq as u64,
                        op,
                        ..Default::default()
                    },
                    false,
                )
                .expect("client SQ sized");
        }
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Send,
                    len: dlen as u32,
                    laddr: staging,
                    wr_id: seq as u64,
                    op,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        inner.pending.insert(
            seq,
            PendingOp {
                issued_at: eng.now(),
                op,
                done: Some(done),
            },
        );
        drop(inner);
        w.telemetry
            .stage(eng.now(), op, Stage::ClientPost, ch.0, qp_out);
        w.ring_doorbell(ch, qp_out, eng);
        Ok(seq)
    }

    /// gWRITE equivalent.
    pub fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        {
            let inner = self.inner.borrow();
            let local = inner.client_rep.at(offset);
            let ch = inner.cfg.client;
            drop(inner);
            w.host(ch).mem.write(local, data).unwrap();
            if flush {
                w.host(ch).mem.flush(local, data.len()).unwrap();
            }
        }
        let g = self.inner.borrow().g;
        let mut d = vec![0u8; desc_len(g) as usize];
        d[D_PRIM as usize] = 0;
        d[D_FLUSH as usize] = flush as u8;
        d[D_OFFSET as usize..D_OFFSET as usize + 8].copy_from_slice(&offset.to_le_bytes());
        d[D_LEN as usize..D_LEN as usize + 4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        self.issue(
            w,
            eng,
            OpKind::NaiveWrite,
            d,
            Some((offset, data.len() as u32)),
            done,
        )
    }

    /// gMEMCPY equivalent.
    #[allow(clippy::too_many_arguments)]
    pub fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        {
            let inner = self.inner.borrow();
            let ch = inner.cfg.client;
            let src = inner.client_rep.at(src_off);
            let dst = inner.client_rep.at(dst_off);
            drop(inner);
            let bytes = w.host(ch).mem.read_vec(src, len as usize).unwrap();
            w.host(ch).mem.write(dst, &bytes).unwrap();
            if flush {
                w.host(ch).mem.flush(dst, len as usize).unwrap();
            }
        }
        let g = self.inner.borrow().g;
        let mut d = vec![0u8; desc_len(g) as usize];
        d[D_PRIM as usize] = 1;
        d[D_FLUSH as usize] = flush as u8;
        d[D_OFFSET as usize..D_OFFSET as usize + 8].copy_from_slice(&dst_off.to_le_bytes());
        d[D_AUX as usize..D_AUX as usize + 8].copy_from_slice(&src_off.to_le_bytes());
        d[D_LEN as usize..D_LEN as usize + 4].copy_from_slice(&len.to_le_bytes());
        self.issue(w, eng, OpKind::NaiveMemcpy, d, None, done)
    }

    /// gCAS equivalent.
    #[allow(clippy::too_many_arguments)]
    pub fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let g = self.inner.borrow().g;
        let mut d = vec![0u8; desc_len(g) as usize];
        if exec_map & 1 != 0 {
            let inner = self.inner.borrow();
            let ch = inner.cfg.client;
            let addr = inner.client_rep.at(offset);
            drop(inner);
            let orig = w.host(ch).mem.compare_and_swap_u64(addr, cmp, swp).unwrap();
            d[D_RESULTS as usize..D_RESULTS as usize + 8].copy_from_slice(&orig.to_le_bytes());
        }
        d[D_PRIM as usize] = 2;
        d[D_OFFSET as usize..D_OFFSET as usize + 8].copy_from_slice(&offset.to_le_bytes());
        d[D_AUX as usize..D_AUX as usize + 8].copy_from_slice(&cmp.to_le_bytes());
        d[D_SWP as usize..D_SWP as usize + 8].copy_from_slice(&swp.to_le_bytes());
        d[D_EXEC as usize..D_EXEC as usize + 4].copy_from_slice(&exec_map.to_le_bytes());
        self.issue(w, eng, OpKind::NaiveCas, d, None, done)
    }

    /// Standalone gFLUSH equivalent (flush-only descriptor).
    pub fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        {
            let inner = self.inner.borrow();
            let ch = inner.cfg.client;
            let local = inner.client_rep.at(offset);
            drop(inner);
            w.host(ch).mem.flush(local, len as usize).unwrap();
        }
        let g = self.inner.borrow().g;
        let mut d = vec![0u8; desc_len(g) as usize];
        d[D_PRIM as usize] = 0;
        d[D_FLUSH as usize] = 1;
        d[D_OFFSET as usize..D_OFFSET as usize + 8].copy_from_slice(&offset.to_le_bytes());
        d[D_LEN as usize..D_LEN as usize + 4].copy_from_slice(&len.to_le_bytes());
        self.issue(w, eng, OpKind::NaiveFlush, d, None, done)
    }
}

const TAG_POLL: u64 = 100;
const TAG_HANDLE: u64 = 101;

/// The replica process: receive, parse, apply, forward — all on CPU.
struct NaiveReplica {
    inner: NaiveRef,
    idx: usize,
    /// Descriptor slots polled but not yet handled.
    queue: VecDeque<u64>,
    me: Option<ProcAddr>,
}

impl NaiveReplica {
    /// Poll the recv CQ, queueing message slots and charging handle work.
    fn drain_cq(&mut self, ctx: &mut Ctx<'_>) {
        let (rcq, costs) = {
            let inner = self.inner.borrow();
            (inner.reps[self.idx].prev_rcq, inner.cfg.costs.clone())
        };
        let cqes = ctx.poll_cq(rcq, 64);
        for cqe in cqes {
            if cqe.kind != CqeKind::Recv || cqe.status != CqeStatus::Ok {
                continue;
            }
            self.queue.push_back(cqe.wr_id);
            // Charge a realistic amount of work, memcpy-sized for gMEMCPY.
            let (cost, op, host) = {
                let inner = self.inner.borrow();
                let rep = &inner.reps[self.idx];
                let slots = inner.cfg.ring_slots as u64;
                let addr = rep.rxbuf.at((cqe.wr_id % slots) * inner.dlen);
                let mem = &ctx.world.hosts[rep.host.0].mem;
                let prim = mem.read(addr, 1).unwrap()[0];
                let len = mem.read_u32(addr + D_LEN).unwrap();
                let op = mem.read_u32(addr + D_OP).unwrap_or(0);
                let mut c = costs.parse + costs.persist + costs.post;
                if prim == 1 {
                    c += SimDuration::from_nanos(
                        (len as u128 * 1_000_000_000 / costs.memcpy_bps as u128) as u64,
                    );
                }
                (c, op, rep.host.0)
            };
            let now = ctx.now();
            ctx.world.telemetry.stage(now, op, Stage::CpuWake, host, 0);
            ctx.submit_work(cost, TAG_HANDLE);
        }
    }

    /// Apply + forward one queued descriptor (CPU already charged).
    fn handle_one(&mut self, ctx: &mut Ctx<'_>) {
        let Some(slot) = self.queue.pop_front() else {
            return;
        };
        let mut inner = self.inner.borrow_mut();
        let i = self.idx;
        let g = inner.g;
        let dlen = inner.dlen;
        let slots = inner.cfg.ring_slots as u64;
        let is_tail = i == inner.reps.len() - 1;
        let rh = inner.reps[i].host;
        let rx_addr = inner.reps[i].rxbuf.at((slot % slots) * dlen);
        let mem = &mut ctx.world.hosts[rh.0].mem;
        let desc = mem.read_vec(rx_addr, dlen as usize).unwrap();
        let prim = desc[D_PRIM as usize];
        let flush = desc[D_FLUSH as usize] != 0;
        let seq = u32::from_le_bytes(desc[D_SEQ as usize..D_SEQ as usize + 4].try_into().unwrap());
        let offset = u64::from_le_bytes(
            desc[D_OFFSET as usize..D_OFFSET as usize + 8]
                .try_into()
                .unwrap(),
        );
        let aux = u64::from_le_bytes(desc[D_AUX as usize..D_AUX as usize + 8].try_into().unwrap());
        let swp = u64::from_le_bytes(desc[D_SWP as usize..D_SWP as usize + 8].try_into().unwrap());
        let len = u32::from_le_bytes(desc[D_LEN as usize..D_LEN as usize + 4].try_into().unwrap());
        let exec = u32::from_le_bytes(
            desc[D_EXEC as usize..D_EXEC as usize + 4]
                .try_into()
                .unwrap(),
        );
        let op = u32::from_le_bytes(desc[D_OP as usize..D_OP as usize + 4].try_into().unwrap());

        let my_rep = inner.replica_rep[i].clone();
        let mut desc_out = desc.clone();
        match prim {
            0
                // gWRITE: data already landed via the upstream one-sided
                // WRITE; persist it if requested.
                if flush => {
                    mem.flush(my_rep.at(offset), (len as usize).max(1)).unwrap();
                }
            1 => {
                // gMEMCPY: CPU memcpy + persist.
                let bytes = mem.read_vec(my_rep.at(aux), len as usize).unwrap();
                mem.write(my_rep.at(offset), &bytes).unwrap();
                if flush {
                    mem.flush(my_rep.at(offset), len as usize).unwrap();
                }
            }
            2 => {
                // gCAS.
                let member = i + 1;
                if exec & (1 << member) != 0 {
                    let orig = mem
                        .compare_and_swap_u64(my_rep.at(offset), aux, swp)
                        .unwrap();
                    let roff = (D_RESULTS + member as u64 * 8) as usize;
                    desc_out[roff..roff + 8].copy_from_slice(&orig.to_le_bytes());
                }
            }
            _ => {}
        }

        // Forward (or ACK if tail).
        let tx_addr = inner.reps[i].txbuf.at((slot % slots) * dlen);
        mem.write(tx_addr, &desc_out).unwrap();
        let qp_next = inner.reps[i].qp_next;
        let next_rkey = inner.reps[i].next_rkey;
        let qp_prev = inner.reps[i].qp_prev;
        let rxbuf = inner.reps[i].rxbuf.clone();
        if is_tail {
            let ack_slot = inner.ack_buf.at((seq as u64 % slots) * 8 * g as u64);
            ctx.world.hosts[rh.0]
                .post_send(
                    qp_next,
                    Wqe {
                        opcode: Opcode::WriteImm,
                        len: 8 * g as u32,
                        laddr: tx_addr + D_RESULTS,
                        raddr: ack_slot,
                        rkey: next_rkey,
                        imm: seq,
                        wr_id: seq as u64,
                        op,
                        ..Default::default()
                    },
                    false,
                )
                .expect("tail SQ sized");
        } else {
            if prim == 0 && len > 0 {
                let next_rep = inner.replica_rep[i + 1].clone();
                ctx.world.hosts[rh.0]
                    .post_send(
                        qp_next,
                        Wqe {
                            opcode: Opcode::Write,
                            len,
                            laddr: my_rep.at(offset),
                            raddr: next_rep.at(offset),
                            rkey: next_rkey,
                            wr_id: seq as u64,
                            op,
                            ..Default::default()
                        },
                        false,
                    )
                    .expect("SQ sized");
            }
            ctx.world.hosts[rh.0]
                .post_send(
                    qp_next,
                    Wqe {
                        opcode: Opcode::Send,
                        len: dlen as u32,
                        laddr: tx_addr,
                        wr_id: seq as u64,
                        op,
                        ..Default::default()
                    },
                    false,
                )
                .expect("SQ sized");
        }
        // Re-post the consumed RECV.
        let new_slot = inner.reps[i].recvs_posted;
        inner.reps[i].recvs_posted += 1;
        ctx.world.hosts[rh.0].post_recv(
            qp_prev,
            RecvWqe {
                wr_id: new_slot,
                scatter: vec![ScatterEntry {
                    msg_off: 0,
                    len: dlen as u32,
                    addr: rxbuf.at((new_slot % slots) * dlen),
                }],
            },
        );
        drop(inner);
        let now = ctx.now();
        ctx.world
            .telemetry
            .stage(now, op, Stage::CpuDone, rh.0, qp_next);
        ctx.ring_doorbell(qp_next);
    }
}

impl Process for NaiveReplica {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        let mode = self.inner.borrow().cfg.mode;
        if self.me.is_none() {
            self.me = Some(ctx.me);
        }
        match ev {
            ProcEvent::Started if mode == Mode::Polling => {
                let q = self.inner.borrow().cfg.costs.poll_quantum;
                ctx.submit_work(q, TAG_POLL);
            }
            ProcEvent::CqEvent { .. } => {
                // Event mode: drain, handle, re-arm.
                self.drain_cq(ctx);
                let rcq = self.inner.borrow().reps[self.idx].prev_rcq;
                ctx.arm_cq(rcq);
            }
            ProcEvent::WorkDone { tag: TAG_POLL } => {
                self.drain_cq(ctx);
                let q = self.inner.borrow().cfg.costs.poll_quantum;
                ctx.submit_work(q, TAG_POLL);
            }
            ProcEvent::WorkDone { tag: TAG_HANDLE } => {
                self.handle_one(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CPU-parsed descriptor layout round-trips every field.
    #[test]
    fn descriptor_layout_roundtrips() {
        let g = 4;
        let mut d = vec![0u8; desc_len(g) as usize];
        d[D_PRIM as usize] = 2;
        d[D_FLUSH as usize] = 1;
        d[D_SEQ as usize..D_SEQ as usize + 4].copy_from_slice(&0xab12u32.to_le_bytes());
        d[D_OFFSET as usize..D_OFFSET as usize + 8].copy_from_slice(&0x4000u64.to_le_bytes());
        d[D_AUX as usize..D_AUX as usize + 8].copy_from_slice(&7u64.to_le_bytes());
        d[D_SWP as usize..D_SWP as usize + 8].copy_from_slice(&9u64.to_le_bytes());
        d[D_LEN as usize..D_LEN as usize + 4].copy_from_slice(&1024u32.to_le_bytes());
        d[D_EXEC as usize..D_EXEC as usize + 4].copy_from_slice(&0b101u32.to_le_bytes());

        assert_eq!(d[D_PRIM as usize], 2);
        assert_eq!(d[D_FLUSH as usize], 1);
        assert_eq!(
            u32::from_le_bytes(d[D_SEQ as usize..D_SEQ as usize + 4].try_into().unwrap()),
            0xab12
        );
        assert_eq!(
            u64::from_le_bytes(
                d[D_OFFSET as usize..D_OFFSET as usize + 8]
                    .try_into()
                    .unwrap()
            ),
            0x4000
        );
        assert_eq!(
            u32::from_le_bytes(d[D_EXEC as usize..D_EXEC as usize + 4].try_into().unwrap()),
            0b101
        );
        // The result map section holds one u64 per member.
        assert_eq!(desc_len(g), D_RESULTS + 8 * g as u64);
    }

    #[test]
    fn default_costs_are_sane() {
        let c = NaiveCosts::default();
        assert!(c.parse < SimDuration::from_millis(1));
        assert!(c.poll_quantum >= SimDuration::from_micros(1));
        assert!(c.memcpy_bps > 1_000_000_000);
    }
}
