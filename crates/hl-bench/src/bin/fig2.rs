//! Figure 2: the motivation experiment — native (CPU) replication under
//! multi-tenancy. (a) latency & context switches grow with the number of
//! replica sets; (b) latency & context switches fall as cores increase.
//!
//! Usage: `fig2 [a|b|both] [--ops N]`

use hl_bench::apps::{run_fig2, Fig2Cfg};
use hl_bench::table::{ms, Table};

fn part_a(ops: u64) {
    println!("\n== Figure 2a: vary replica sets (16 cores/server), YCSB-A ==");
    let mut t = Table::new(&[
        "sets",
        "avg(ms)",
        "p95(ms)",
        "p99(ms)",
        "ctx-total",
        "ctx-norm",
        "util",
    ]);
    let mut rows = Vec::new();
    for sets in [9usize, 12, 15, 18, 21, 24, 27] {
        let r = run_fig2(&Fig2Cfg {
            sets,
            cores: 16,
            ops_per_set: ops,
            ..Default::default()
        });
        rows.push((sets, r));
    }
    let max_ctx = rows.iter().map(|r| r.1.ctx_total).max().unwrap_or(1) as f64;
    for (sets, r) in &rows {
        t.row(&[
            sets.to_string(),
            format!("{:.2}", r.writes.mean_ms()),
            ms(r.writes.p95_ns),
            ms(r.writes.p99_ns),
            r.ctx_total.to_string(),
            format!("{:.2}", r.ctx_total as f64 / max_ctx),
            format!("{:.2}", r.server_util),
        ]);
    }
    t.print();
    println!("paper: latency and context switches grow with sets; p99 reaches ~100ms+ at 27 sets.");
}

fn part_b(ops: u64) {
    println!("\n== Figure 2b: vary cores per server (18 replica sets), YCSB-A ==");
    let mut t = Table::new(&[
        "cores",
        "avg(ms)",
        "p95(ms)",
        "p99(ms)",
        "ctx-total",
        "ctx-norm",
        "util",
    ]);
    let mut rows = Vec::new();
    for cores in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let r = run_fig2(&Fig2Cfg {
            sets: 18,
            cores,
            ops_per_set: ops,
            ..Default::default()
        });
        rows.push((cores, r));
    }
    let max_ctx = rows.iter().map(|r| r.1.ctx_total).max().unwrap_or(1) as f64;
    for (cores, r) in &rows {
        t.row(&[
            cores.to_string(),
            format!("{:.2}", r.writes.mean_ms()),
            ms(r.writes.p95_ns),
            ms(r.writes.p99_ns),
            r.ctx_total.to_string(),
            format!("{:.2}", r.ctx_total as f64 / max_ctx),
            format!("{:.2}", r.server_util),
        ]);
    }
    t.print();
    println!("paper: more cores => lower latency and fewer context switches at fixed load.");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("both");
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    match which {
        "a" => part_a(ops),
        "b" => part_b(ops),
        _ => {
            part_a(ops);
            part_b(ops);
        }
    }
}
