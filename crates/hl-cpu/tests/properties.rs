//! Property-based tests of scheduler invariants.

use hl_cpu::{CpuOutput, HostCpu, ProcId};
use hl_sim::config::CpuProfile;
use hl_sim::{Engine, SimTime};
use proptest::prelude::*;

/// Drives a HostCpu under the engine, recording completions.
struct Sim {
    cpu: HostCpu,
    done: Vec<(SimTime, ProcId, u64)>,
}
hl_sim::inert_event_ctx!(Sim);

fn route(out: Vec<CpuOutput>, sim: &mut Sim, eng: &mut Engine<Sim>) {
    for o in out {
        match o {
            CpuOutput::Timer { core, gen, at } => {
                eng.schedule_at(at, move |sim: &mut Sim, eng| {
                    let out = sim.cpu.on_timer(eng.now(), core, gen);
                    route(out, sim, eng);
                });
            }
            CpuOutput::WorkDone { pid, tag } => {
                let now = eng.now();
                sim.done.push((now, pid, tag));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Work conservation: every finite submitted work item completes,
    /// each process's busy time equals the sum of its submissions, and
    /// total busy time never exceeds cores × elapsed.
    #[test]
    fn all_work_completes_and_time_is_conserved(
        cores in 1usize..5,
        jobs in proptest::collection::vec(
            // (process, work_us 1..500, submit_at_us 0..2000)
            (0usize..6, 1u64..500, 0u64..2000),
            1..40,
        ),
    ) {
        let profile = CpuProfile { cores, ..CpuProfile::default() };
        let mut sim = Sim { cpu: HostCpu::new(profile), done: Vec::new() };
        let mut eng: Engine<Sim> = Engine::new();
        let nprocs = 6;
        let pids: Vec<ProcId> = (0..nprocs).map(|i| sim.cpu.spawn(&format!("p{i}"), None)).collect();

        let mut expected_busy = vec![0u64; nprocs];
        for (i, &(p, work_us, at_us)) in jobs.iter().enumerate() {
            let pid = pids[p];
            expected_busy[p] += work_us * 1000;
            let tag = i as u64;
            let work = work_us * 1000;
            eng.schedule_at(SimTime::from_nanos(at_us * 1000), move |sim: &mut Sim, eng| {
                let out = sim.cpu.submit(eng.now(), pid, work, tag);
                route(out, sim, eng);
            });
        }
        eng.run(&mut sim);

        // Every job completed exactly once.
        prop_assert_eq!(sim.done.len(), jobs.len());
        let mut tags: Vec<u64> = sim.done.iter().map(|d| d.2).collect();
        tags.sort_unstable();
        prop_assert!(tags.windows(2).all(|w| w[0] != w[1]), "duplicate completion");

        // Per-process accounting matches submissions exactly.
        for (i, &pid) in pids.iter().enumerate() {
            prop_assert_eq!(sim.cpu.busy_ns(pid), expected_busy[i], "proc {}", i);
            prop_assert!(sim.cpu.is_idle(pid));
        }

        // The host can not have done more work than cores × elapsed.
        let elapsed = eng.now().as_nanos();
        let total: u64 = expected_busy.iter().sum();
        prop_assert!(total <= elapsed * cores as u64 + 1,
            "{} busy ns > {} cores x {} ns", total, cores, elapsed);
    }

    /// Completions per process respect FIFO submission order.
    #[test]
    fn per_process_fifo(
        works in proptest::collection::vec(1u64..100, 2..20),
    ) {
        let profile = CpuProfile { cores: 2, ..CpuProfile::default() };
        let mut sim = Sim { cpu: HostCpu::new(profile), done: Vec::new() };
        let mut eng: Engine<Sim> = Engine::new();
        let pid = sim.cpu.spawn("fifo", None);
        for (i, w) in works.iter().enumerate() {
            let out = sim.cpu.submit(SimTime::ZERO, pid, w * 1000, i as u64);
            route(out, &mut sim, &mut eng);
        }
        eng.run(&mut sim);
        let tags: Vec<u64> = sim.done.iter().map(|d| d.2).collect();
        let want: Vec<u64> = (0..works.len() as u64).collect();
        prop_assert_eq!(tags, want);
    }
}

/// Hogs on every core never block a pinned process's exclusive core.
#[test]
fn exclusive_core_shields_pinned_process() {
    let profile = CpuProfile {
        cores: 2,
        ..CpuProfile::default()
    };
    let mut sim = Sim {
        cpu: HostCpu::new(profile),
        done: Vec::new(),
    };
    let mut eng: Engine<Sim> = Engine::new();
    sim.cpu.set_exclusive(0, true);
    for i in 0..4 {
        let (_pid, out) = sim.cpu.spawn_hog(SimTime::ZERO, &format!("hog{i}"));
        route(out, &mut sim, &mut eng);
    }
    let pinned = sim.cpu.spawn("pinned", Some(0));
    // Submit at t=5ms: core 0 must be free for the pinned proc at once.
    eng.schedule_at(SimTime::from_nanos(5_000_000), move |sim: &mut Sim, eng| {
        let out = sim.cpu.submit(eng.now(), pinned, 10_000, 9);
        route(out, sim, eng);
    });
    eng.run_until(&mut sim, SimTime::from_nanos(10_000_000));
    assert_eq!(sim.done.len(), 1);
    let (t, _, _) = sim.done[0];
    // Wakeup + ctx + work only: well under one slice.
    assert!(t.as_nanos() < 5_100_000, "pinned proc was delayed: {t}");
}
