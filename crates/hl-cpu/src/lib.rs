//! # hl-cpu — multi-tenant host CPU model
//!
//! Models the CPUs of a storage server shared by hundreds of tenant
//! processes — the environment in which the paper shows that replica
//! CPUs on the critical path cause millisecond tails (Figure 2). The
//! scheduler is a simplified CFS with time slices, sleeper fairness,
//! wakeup preemption, context-switch costs and full accounting; see
//! [`HostCpu`].

#![warn(missing_docs)]

mod scheduler;

pub use scheduler::{CpuOutput, HostCpu, ProcId, WorkTag};
