//! Per-hop latency attribution soundness (DESIGN.md §10).
//!
//! Two properties of the causal-span telemetry:
//!
//! 1. **Telescoping** — for every completed op (HyperLoop chain and
//!    Naïve baseline alike), the named segment durations sum to the
//!    end-to-end latency *exactly*, in integer nanoseconds. The
//!    decomposition is a partition of the span, not an approximation.
//! 2. **The paper's headline, recovered from traces** — under
//!    `stress-ng`-style CPU contention the Naïve baseline's tail is
//!    dominated by replica-CPU segments (scheduling + handling), while
//!    the NIC-offloaded chain records *zero* replica-CPU time.

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::telemetry::OpKind;
use std::cell::RefCell;
use std::rc::Rc;

const OPS: usize = 40;
const PIPELINE: usize = 4;

/// Drive `OPS` gWRITEs through `client`, `PIPELINE` outstanding, each
/// completion issuing the next (stays well inside the ring credits).
fn drive_gwrites<C>(w: &mut hyperloop_repro::cluster::World, eng: &mut Eng, client: C)
where
    C: Fn(&mut hyperloop_repro::cluster::World, &mut Eng, u64, hyperloop_repro::hyperloop::OnDone)
        + Clone
        + 'static,
{
    let issued = Rc::new(RefCell::new(0usize));
    let acked = Rc::new(RefCell::new(0usize));
    fn next<C>(
        client: &C,
        issued: &Rc<RefCell<usize>>,
        acked: &Rc<RefCell<usize>>,
        w: &mut hyperloop_repro::cluster::World,
        eng: &mut Eng,
    ) where
        C: Fn(
                &mut hyperloop_repro::cluster::World,
                &mut Eng,
                u64,
                hyperloop_repro::hyperloop::OnDone,
            ) + Clone
            + 'static,
    {
        let k = *issued.borrow();
        if k >= OPS {
            return;
        }
        *issued.borrow_mut() += 1;
        let (c2, i2, a2) = (client.clone(), issued.clone(), acked.clone());
        client(
            w,
            eng,
            (k * 64) as u64,
            Box::new(move |w, eng, _r| {
                *a2.borrow_mut() += 1;
                next(&c2, &i2, &a2, w, eng);
            }),
        );
    }
    for _ in 0..PIPELINE {
        next(&client, &issued, &acked, w, eng);
    }
    let probe = acked.clone();
    eng.run_while(w, move |_| *probe.borrow() < OPS);
}

type Eng = hyperloop_repro::sim::Engine<hyperloop_repro::cluster::World>;

/// Every completed span's segments must telescope to its e2e latency.
fn assert_spans_sound(tel: &hyperloop_repro::sim::Telemetry, want_kind: OpKind, min_ops: usize) {
    let mut completed = 0;
    for s in tel.spans() {
        let Some(e2e) = s.e2e_ns() else { continue };
        completed += 1;
        assert_eq!(s.kind, want_kind);
        let sum: u64 = s.segments().values().sum();
        assert_eq!(
            sum,
            e2e,
            "op {} ({}): segments sum {} != e2e {}",
            s.id,
            s.kind.label(),
            sum,
            e2e
        );
    }
    assert!(
        completed >= min_ops,
        "only {completed} completed spans; expected at least {min_ops}"
    );
}

#[test]
fn gwrite_segments_sum_to_e2e_exactly() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(7).build();
    w.enable_telemetry();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group, &mut w);

    drive_gwrites(&mut w, &mut eng, move |w, eng, off, done| {
        client
            .gwrite(w, eng, off, &[0xabu8; 64], true, done)
            .unwrap();
    });

    assert_spans_sound(&w.telemetry, OpKind::GWrite, OPS);
}

#[test]
fn naive_segments_sum_to_e2e_exactly() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(8).build();
    w.enable_telemetry();
    let client = NaiveBuilder::new(NaiveConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 64,
        mode: Mode::Event,
        ..Default::default()
    })
    .build(&mut w, &mut eng);

    drive_gwrites(&mut w, &mut eng, move |w, eng, off, done| {
        client
            .gwrite(w, eng, off, &[0xcdu8; 64], true, done)
            .unwrap();
    });

    assert_spans_sound(&w.telemetry, OpKind::NaiveWrite, OPS);
    // The CPU-driven baseline must actually record replica-CPU segments.
    let attr = w.telemetry.attribution();
    let b = attr.kind(OpKind::NaiveWrite).unwrap();
    assert!(
        b.segment_ns("replica-cpu") > 0,
        "naive baseline recorded no replica-cpu time"
    );
}

/// The Fig 2/9 analysis, read off the attribution report: with CPU hogs
/// on the replica hosts, the Naïve tail is replica-CPU time; the
/// HyperLoop chain spends none.
#[test]
fn replica_cpu_dominates_naive_tail_but_not_hyperloop() {
    let base = MicroCfg {
        ops: 400,
        warmup: 40,
        op: MicroOp::GWrite {
            size: 1024,
            flush: false,
        },
        telemetry: true,
        ..Default::default()
    };

    let hl = run_micro(&MicroCfg {
        backend: Backend::HyperLoop,
        ..base.clone()
    });
    let nv = run_micro(&MicroCfg {
        backend: Backend::NaiveEvent,
        ..base
    });
    let hl_tel = hl.telemetry.expect("telemetry enabled");
    let nv_tel = nv.telemetry.expect("telemetry enabled");

    let hl_b = hl_tel.attribution.kind(OpKind::GWrite).unwrap();
    assert_eq!(
        hl_b.segment_ns("replica-cpu") + hl_b.segment_ns("cpu-queue"),
        0,
        "NIC-offloaded chain spent CPU time on the critical path"
    );

    let nv_b = nv_tel.attribution.kind(OpKind::NaiveWrite).unwrap();
    let cpu_p99_share: f64 = nv_b
        .segments
        .iter()
        .filter(|s| s.label == "replica-cpu" || s.label == "cpu-queue")
        .map(|s| s.share_p99)
        .sum();
    assert!(
        cpu_p99_share > 0.5,
        "expected replica-CPU segments to dominate the naive p99; share = {cpu_p99_share:.2}"
    );

    // The exports are non-trivial Chrome trace-event JSON.
    for (tel, kind) in [(&hl_tel, "gWRITE"), (&nv_tel, "naive-WRITE")] {
        assert!(tel.chrome_trace.starts_with("{\"traceEvents\":["));
        assert!(tel.chrome_trace.ends_with("]}"));
        assert!(tel.chrome_trace.contains(&format!("\"name\":\"{kind}\"")));
        assert!(tel.chrome_trace.contains("\"ph\":\"X\""));
        assert!(tel.metrics.contains("counter nic_wqes_executed"));
    }
    // The offloaded chain parked WAIT WQEs; the baseline never posts any.
    assert!(hl_tel.metrics.contains("counter nic_wait_fires"));
}
