//! kvlite: a RocksDB-like replicated key-value store (paper §5.1).
//!
//! All critical-path work of a write is one durable `Append` to the
//! replicated write-ahead log; the in-memory table is updated on the
//! client, and each replica's [`super::syncer::KvSyncer`] periodically
//! (off the critical path) replays the log from its *own NVM copy* into
//! its memtable — giving eventually-consistent reads at replicas exactly
//! as the paper's modified RocksDB does. Truncation advances the log
//! head only past what every syncer has applied.

use super::memtable::Memtable;
use super::syncer::{KvShared, KvSyncer};
use hl_cluster::World;
use hl_sim::{Engine, SimDuration};
use hyperloop::api::{GroupClient, LogLayout, LogRecord, RedoEntry, ReplicatedLog};
use hyperloop::{Backpressure, OnDone};
use std::cell::RefCell;
use std::rc::Rc;

/// Tag carried in `RedoEntry::db_offset` for kvlite WAL records (kvlite
/// applies in memory; the offset field is repurposed as an op tag).
pub const OP_PUT: u64 = 1;
/// Delete-op tag.
pub const OP_DELETE: u64 = 2;

/// Encode a put/delete as WAL record bytes.
pub fn encode_kv_op(put: bool, key: &[u8], value: &[u8]) -> LogRecord {
    let mut data = Vec::with_capacity(8 + key.len() + value.len());
    data.extend_from_slice(&(key.len() as u32).to_le_bytes());
    data.extend_from_slice(&(value.len() as u32).to_le_bytes());
    data.extend_from_slice(key);
    data.extend_from_slice(value);
    LogRecord {
        entries: vec![RedoEntry {
            db_offset: if put { OP_PUT } else { OP_DELETE },
            data,
        }],
    }
}

/// Decode a kvlite WAL record back into `(is_put, key, value)`.
pub fn decode_kv_op(rec: &LogRecord) -> Option<(bool, Vec<u8>, Vec<u8>)> {
    let e = rec.entries.first()?;
    let klen = u32::from_le_bytes(e.data.get(..4)?.try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(e.data.get(4..8)?.try_into().ok()?) as usize;
    let key = e.data.get(8..8 + klen)?.to_vec();
    let value = e.data.get(8 + klen..8 + klen + vlen)?.to_vec();
    Some((e.db_offset == OP_PUT, key, value))
}

/// Configuration for opening a [`KvDb`].
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Log layout within the replicated region. `db_off` is where
    /// checkpoints (memtable snapshots) are written.
    pub layout: LogLayout,
    /// Replica syncer wake period (off-critical-path apply cadence).
    pub sync_period: SimDuration,
    /// Truncate when the log is this full (fraction).
    pub truncate_at: f64,
    /// Capacity of the checkpoint area at `db_off`.
    pub checkpoint_cap: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            layout: LogLayout {
                log_off: 0,
                log_cap: 256 << 10,
                db_off: 512 << 10,
            },
            sync_period: SimDuration::from_millis(2),
            truncate_at: 0.5,
            checkpoint_cap: 1 << 20,
        }
    }
}

/// Serialize a memtable snapshot: `[u32 count][klen,vlen,key,value]*`.
fn encode_snapshot(m: &Memtable) -> Vec<u8> {
    let mut out = Vec::with_capacity(m.approx_bytes() as usize + 8 * m.len() + 4);
    out.extend_from_slice(&(m.len() as u32).to_le_bytes());
    for (k, v) in m.iter() {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(k);
        out.extend_from_slice(v);
    }
    out
}

/// Decode a snapshot back into a memtable (recovery path).
pub fn decode_snapshot(b: &[u8]) -> Option<Memtable> {
    let mut m = Memtable::new();
    let n = u32::from_le_bytes(b.get(..4)?.try_into().ok()?) as usize;
    let mut at = 4usize;
    for _ in 0..n {
        let klen = u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(b.get(at + 4..at + 8)?.try_into().ok()?) as usize;
        at += 8;
        let key = b.get(at..at + klen)?.to_vec();
        at += klen;
        let value = b.get(at..at + vlen)?.to_vec();
        at += vlen;
        m.put(&key, &value);
    }
    Some(m)
}

/// The replicated KV store handle (client side).
pub struct KvDb<C: GroupClient> {
    client: Rc<C>,
    log: ReplicatedLog<C>,
    memtable: Memtable,
    shared: Rc<RefCell<KvShared>>,
    cfg: KvConfig,
    /// Writes issued / completed (for reporting).
    pub puts: u64,
}

impl<C: GroupClient + 'static> KvDb<C> {
    /// Open the store: binds the log layout and starts one syncer
    /// process per replica.
    pub fn open(client: Rc<C>, cfg: KvConfig, w: &mut World, eng: &mut Engine<World>) -> Self {
        let mut log = ReplicatedLog::new(client.clone(), cfg.layout.clone());
        log.set_tracking(false); // replicas apply via syncers
        let n = client.group_size() - 1;
        let shared = Rc::new(RefCell::new(KvShared::new(n)));
        for i in 0..n {
            let host = client.member_host(i + 1);
            let base = client.member_addr(i + 1, 0);
            w.start_process(
                host,
                &format!("kv-syncer-{i}"),
                None,
                Box::new(KvSyncer::new(
                    shared.clone(),
                    i,
                    base,
                    cfg.layout.clone(),
                    cfg.sync_period,
                )),
                SimDuration::from_micros(2),
                eng,
            );
        }
        KvDb {
            client,
            log,
            memtable: Memtable::new(),
            shared,
            cfg,
            puts: 0,
        }
    }

    /// Durable replicated write. `done` fires when the record is durable
    /// on every member (the paper's accelerated RocksDB `Put`).
    pub fn put(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        value: &[u8],
        done: OnDone,
    ) -> Result<(), Backpressure> {
        self.maybe_truncate(w, eng);
        let rec = encode_kv_op(true, key, value);
        self.log.append(w, eng, &rec, done)?;
        self.memtable.put(key, value);
        self.puts += 1;
        Ok(())
    }

    /// Durable replicated delete.
    pub fn delete(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        done: OnDone,
    ) -> Result<(), Backpressure> {
        self.maybe_truncate(w, eng);
        let rec = encode_kv_op(false, key, b"");
        self.log.append(w, eng, &rec, done)?;
        self.memtable.delete(key);
        Ok(())
    }

    /// Read from the client's memtable (strongly consistent: the client
    /// is the chain head).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.memtable.get(key)
    }

    /// Ordered scan from the client's memtable.
    pub fn scan(&self, from: &[u8], limit: usize) -> Vec<(&[u8], &[u8])> {
        self.memtable.scan(from, limit)
    }

    /// Eventually-consistent read served from a replica's synced
    /// memtable (paper: "reads from other replicas ... are eventually
    /// consistent").
    pub fn get_at_replica(&self, replica: usize, key: &[u8]) -> Option<Vec<u8>> {
        self.shared.borrow().tables[replica]
            .get(key)
            .map(|v| v.to_vec())
    }

    /// How far each replica syncer has applied (absolute log cursor).
    pub fn replica_applied(&self) -> Vec<u64> {
        self.shared.borrow().applied.clone()
    }

    /// Number of keys in the client memtable.
    pub fn len(&self) -> usize {
        self.memtable.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.memtable.is_empty()
    }

    /// Log cursors (head, tail).
    pub fn log_cursors(&self) -> (u64, u64) {
        self.log.cursors()
    }

    /// Checkpoint (paper §5.1: "periodically dumps the in-memory data to
    /// persistent storage and truncates the write-ahead log"): replicate
    /// a snapshot of the memtable into the checkpoint area at `db_off`
    /// (chunked gWRITE + gFLUSH), then truncate the whole log. `done`
    /// fires when the snapshot is durable group-wide and the log is
    /// empty. Runs off the write critical path.
    pub fn checkpoint(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let snap = encode_snapshot(&self.memtable);
        assert!(
            4 + snap.len() as u64 <= self.cfg.checkpoint_cap,
            "snapshot exceeds checkpoint area"
        );
        let base = self.cfg.layout.db_off;
        // Header (length) goes last so a torn checkpoint is detectable.
        let chunk = 8 << 10;
        let total_chunks = snap.len().div_ceil(chunk).max(1);
        let remaining = Rc::new(RefCell::new(total_chunks));
        let done_cell: Rc<RefCell<Option<OnDone>>> = Rc::new(RefCell::new(Some(done)));
        let client = self.client.clone();
        let snap_len = snap.len() as u32;
        let (_, tail) = self.log.cursors();
        for (i, piece) in snap.chunks(chunk).enumerate() {
            let off = base + 4 + (i * chunk) as u64;
            let remaining = remaining.clone();
            let done_cell = done_cell.clone();
            let client2 = client.clone();
            let cb: OnDone = Box::new(move |w, eng, _r| {
                let mut left = remaining.borrow_mut();
                *left -= 1;
                if *left == 0 {
                    drop(left);
                    // Commit the header; its ACK is the checkpoint.
                    let done = done_cell.borrow_mut().take().unwrap();
                    let _ = client2.gwrite(w, eng, base, &snap_len.to_le_bytes(), true, done);
                }
            });
            self.client.gwrite(w, eng, off, piece, true, cb)?;
        }
        // Truncate everything appended so far: the snapshot supersedes it.
        self.log.truncate_to(w, eng, tail, Box::new(|_, _, _| {}))?;
        Ok(())
    }

    /// Read a member's durable checkpoint (recovery path).
    pub fn read_checkpoint(&self, w: &World, member: usize) -> Option<Memtable> {
        let base = self.client.member_addr(member, self.cfg.layout.db_off);
        let host = self.client.member_host(member);
        let len = w.hosts[host.0].mem.read_u32(base).ok()? as usize;
        if len == 0 {
            return None;
        }
        let bytes = w.hosts[host.0].mem.read_vec(base + 4, len).ok()?;
        decode_snapshot(&bytes)
    }

    /// Truncate the WAL up to the slowest syncer when it is filling up
    /// (off the critical path; piggybacked on writes).
    fn maybe_truncate(&mut self, w: &mut World, eng: &mut Engine<World>) {
        let used = self.log.used() as f64;
        if used < self.cfg.layout.log_cap as f64 * self.cfg.truncate_at {
            return;
        }
        let min_applied = self
            .shared
            .borrow()
            .applied
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        let (head, _) = self.log.cursors();
        if min_applied > head {
            let _ = self
                .log
                .truncate_to(w, eng, min_applied, Box::new(|_, _, _| {}));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_op_roundtrip() {
        let rec = encode_kv_op(true, b"key-1", b"value-1");
        let (put, k, v) = decode_kv_op(&rec).unwrap();
        assert!(put);
        assert_eq!(k, b"key-1");
        assert_eq!(v, b"value-1");

        let rec = encode_kv_op(false, b"gone", b"");
        let (put, k, v) = decode_kv_op(&rec).unwrap();
        assert!(!put);
        assert_eq!(k, b"gone");
        assert!(v.is_empty());
    }

    #[test]
    fn kv_op_survives_wal_encoding() {
        let rec = encode_kv_op(true, b"k", &[7u8; 300]);
        let bytes = rec.encode();
        let back = LogRecord::decode(&bytes).unwrap();
        let (put, k, v) = decode_kv_op(&back).unwrap();
        assert!(put);
        assert_eq!(k, b"k");
        assert_eq!(v, [7u8; 300]);
    }
}
