//! Umbrella integration tests for the time-series telemetry pipeline:
//! snapshot determinism, JSON schema sanity, Prometheus exposition
//! validity, the timeline render, and the disabled-telemetry contract
//! (no counters, no series, no flight dumps — and no panics).

use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, HyperLoopClient, RetryClient,
};
use hyperloop_repro::sim::{validate_exposition, Engine, SimDuration, SimTime};

const REP_BYTES: u64 = 64 << 10;
const REC: usize = 64;

fn record(k: usize) -> Vec<u8> {
    let mut v = format!("ts-rec-{k:04}-").into_bytes();
    while v.len() < REC {
        v.push(b'a' + (k % 26) as u8);
    }
    v
}

/// One small offloaded-group run: 60 open-loop supervised writes, one
/// every 100µs. With `timeseries` the windowed store (1ms windows) is
/// on; otherwise telemetry stays fully disabled.
fn run_scenario(seed: u64, timeseries: bool) -> (World, Engine<World>) {
    let (mut w, mut eng) = ClusterBuilder::new(3)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    if timeseries {
        w.enable_timeseries(SimDuration::from_millis(1));
    }
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: REP_BYTES,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group, &mut w);
    let retry = RetryClient::with_policy(client, DeadlinePolicy::default());

    for k in 0..60usize {
        let retry2 = retry.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 100_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry2.gwrite(
                w,
                eng,
                (k * REC) as u64,
                &record(k),
                true,
                Box::new(|_w, _e, r| {
                    r.expect("fault-free write failed");
                }),
            );
        });
    }
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    assert_eq!(retry.outstanding(), 0, "ops unsettled");
    let now = eng.now();
    w.collect_metrics(now);
    (w, eng)
}

/// Same seed → byte-identical JSON and CSV snapshots and Prometheus
/// render; a different seed still produces the same *shape* (the
/// workload is fault-free) but the check here is strict byte identity
/// on re-runs, the repo-wide replay contract.
#[test]
fn snapshots_are_byte_identical_across_reruns() {
    let (wa, _) = run_scenario(31, true);
    let (wb, _) = run_scenario(31, true);
    assert_eq!(
        wa.telemetry.timeseries_json(),
        wb.telemetry.timeseries_json()
    );
    assert_eq!(wa.telemetry.timeseries_csv(), wb.telemetry.timeseries_csv());
    assert_eq!(
        wa.telemetry.metrics.render_prom(),
        wb.telemetry.metrics.render_prom()
    );
    assert_eq!(
        wa.telemetry.timeline("op_latency_ns"),
        wb.telemetry.timeline("op_latency_ns")
    );
}

/// The JSON snapshot carries the documented schema: version header,
/// window width, the four sections, and the supervised latency series
/// with per-window quantiles — and it is structurally balanced.
#[test]
fn snapshot_json_schema_sanity() {
    let (w, _) = run_scenario(32, true);
    let json = w.telemetry.timeseries_json();
    assert!(json.starts_with("{\"version\":1,\"window_ns\":1000000,"));
    for key in [
        "\"counters\":[",
        "\"gauges\":[",
        "\"histograms\":[",
        "\"marks\":[",
    ] {
        assert!(json.contains(key), "snapshot missing {key}");
    }
    assert!(
        json.contains("\"name\":\"op_latency_ns\"")
            && json.contains("\"labels\":\"layer=supervised\""),
        "supervised latency series missing"
    );
    for key in ["\"count\":", "\"p50\":", "\"p99\":", "\"buckets\":["] {
        assert!(json.contains(key), "histogram windows missing {key}");
    }
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes, "unbalanced JSON snapshot");
    assert!(json.ends_with('}'));
}

/// The CSV flattening and the timeline render agree with the store:
/// header row present, one `histogram` row per sampled window, and the
/// timeline table carries the p50/p99 columns the report renders.
#[test]
fn csv_and_timeline_render_sanity() {
    let (w, _) = run_scenario(33, true);
    let csv = w.telemetry.timeseries_csv();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("kind,name,labels,window,count,value,p50_ns,p99_ns,max_ns")
    );
    let hist_rows = csv
        .lines()
        .filter(|l| l.starts_with("histogram,op_latency_ns,layer=supervised,"))
        .count();
    let windows = w
        .telemetry
        .series
        .sketch_windows("op_latency_ns", "layer=supervised")
        .len();
    assert!(windows >= 3, "60 ops over 6ms must span several windows");
    assert_eq!(hist_rows, windows, "one CSV row per sampled window");

    let timeline = w.telemetry.timeline("op_latency_ns");
    assert!(timeline.contains("op_latency_ns{layer=supervised}"));
    assert!(timeline.contains("p50_us") && timeline.contains("p99_us"));
}

/// `render_prom()` passes the repo's own promtool-style validator and
/// declares types for every family.
#[test]
fn prom_render_is_valid_exposition() {
    let (w, _) = run_scenario(34, true);
    let prom = w.telemetry.metrics.render_prom();
    let samples = validate_exposition(&prom).expect("invalid exposition");
    assert!(samples > 0, "empty exposition");
    assert!(prom.contains("# TYPE"), "no TYPE declarations");
    assert!(
        prom.contains("quantile=\"0.99\""),
        "summary quantiles missing"
    );
}

/// Disabled-telemetry contract: the identical workload with telemetry
/// off records none of the event-driven observability — no supervised
/// counters, no series, no marks, no flight dumps. (The pull-based
/// `collect_metrics` scrape of hardware counters is intentionally
/// ungated; only push-path writes must check `enabled()`.)
#[test]
fn disabled_telemetry_records_nothing() {
    let (w, _) = run_scenario(35, false);
    assert!(!w.telemetry.enabled());
    assert!(!w.telemetry.series.enabled());
    for (name, labels) in [
        ("retry_reissues", "layer=deadline"),
        ("retry_deadline_exceeded", "layer=deadline"),
        ("slo_alerts_fired", "rule=supervised-p99"),
        ("chaos_faults_injected", "layer=chaos"),
    ] {
        assert_eq!(
            w.telemetry.metrics.counter(name, labels),
            0,
            "{name} counted while disabled"
        );
    }
    assert!(w
        .telemetry
        .series
        .sketch_label_sets("op_latency_ns")
        .is_empty());
    assert!(w.telemetry.marks().is_empty());
    assert_eq!(w.telemetry.flight.requested(), 0);
    assert!(w.telemetry.flight.dumps().is_empty());
    let render = w.telemetry.metrics.render();
    for family in ["supervised_ops", "op_latency_ns", "slo_", "router_ops"] {
        assert!(
            !render.contains(family),
            "event-driven family {family} present while disabled"
        );
    }
}
