//! Calibrated hardware timing profile.
//!
//! One place for every latency/bandwidth constant in the simulated
//! testbed, so experiments state their assumptions explicitly and
//! ablations can perturb a single knob. Defaults approximate the paper's
//! testbed: 2×8-core Xeon E5-2650v2 hosts with Mellanox ConnectX-3
//! 56 Gbps NICs and battery-backed DRAM.

use crate::time::SimDuration;

/// Full hardware profile for one simulated cluster.
#[derive(Debug, Clone, Default)]
pub struct HwProfile {
    /// Network link parameters.
    pub net: NetProfile,
    /// NIC datapath parameters.
    pub nic: NicProfile,
    /// CPU/scheduler parameters.
    pub cpu: CpuProfile,
}

/// Link-level parameters.
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Link bandwidth in bits per second (default 56 Gbps FDR).
    pub bandwidth_bps: u64,
    /// One-way propagation + switching delay per hop.
    pub propagation: SimDuration,
}

/// NIC datapath parameters.
#[derive(Debug, Clone)]
pub struct NicProfile {
    /// Fixed cost for the NIC to fetch & parse one WQE.
    pub wqe_process: SimDuration,
    /// Fixed cost to handle one inbound packet (DMA setup etc.).
    pub rx_process: SimDuration,
    /// PCIe DMA bandwidth for local memory copies (bytes/sec).
    pub dma_bw_bytes: u64,
    /// Median of multiplicative log-normal jitter on NIC operations.
    /// Latency is multiplied by `lognormal(1.0, jitter_sigma)`.
    pub jitter_sigma: f64,
    /// Doorbell (MMIO write) latency from CPU to NIC.
    pub doorbell: SimDuration,
    /// Cost of flushing the NIC volatile cache for one region
    /// (the 0-byte READ handling on the responder).
    pub cache_flush: SimDuration,
    /// Probability that a NIC operation hits memory-bus / PCIe
    /// contention (co-located tenants hammer the same memory
    /// controller the NIC DMAs through).
    pub contention_prob: f64,
    /// Mean of the exponential extra delay on a contention hit.
    pub contention_mean: SimDuration,
}

/// CPU and scheduler parameters.
#[derive(Debug, Clone)]
pub struct CpuProfile {
    /// Cores per host.
    pub cores: usize,
    /// Direct context-switch cost (register/TLB/cache disturbance folded in).
    pub ctx_switch: SimDuration,
    /// Scheduler time slice (CFS-like quantum).
    pub time_slice: SimDuration,
    /// Interrupt delivery latency (completion event → wakeup enqueued).
    pub interrupt: SimDuration,
    /// How long a newly woken task may have to wait even on an idle core
    /// (IPI + wakeup path).
    pub wakeup: SimDuration,
    /// Sleeper-fairness credit: a woken task's vruntime is floored at
    /// `min_vruntime - sleeper_bonus`.
    pub sleeper_bonus: SimDuration,
    /// A woken task preempts a running one only when it leads its
    /// vruntime by more than this.
    pub wakeup_granularity: SimDuration,
    /// Per-CPU-runqueue imbalance model: under overload a wakeup
    /// sometimes lands on a busy queue behind already-queued tasks
    /// instead of at the head. Maximum penalty, in slices.
    pub wake_penalty_slices: f64,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile {
            bandwidth_bps: 56_000_000_000,
            propagation: SimDuration::from_nanos(700),
        }
    }
}

impl Default for NicProfile {
    fn default() -> Self {
        NicProfile {
            wqe_process: SimDuration::from_nanos(450),
            rx_process: SimDuration::from_nanos(550),
            dma_bw_bytes: 12_000_000_000, // ~ PCIe gen3 x16 practical
            jitter_sigma: 0.08,
            doorbell: SimDuration::from_nanos(300),
            cache_flush: SimDuration::from_nanos(700),
            contention_prob: 0.005,
            contention_mean: SimDuration::from_micros(2),
        }
    }
}

impl Default for CpuProfile {
    fn default() -> Self {
        CpuProfile {
            cores: 16,
            ctx_switch: SimDuration::from_micros(3),
            time_slice: SimDuration::from_millis(1),
            interrupt: SimDuration::from_micros(4),
            wakeup: SimDuration::from_micros(2),
            sleeper_bonus: SimDuration::from_micros(100),
            // Multi-tenant server tuning: CPU-bound tenants are not
            // preempted by every wakeup (cf. large sched_wakeup_granularity
            // / NO_WAKEUP_PREEMPTION in production fleets).
            wakeup_granularity: SimDuration::from_millis(2),
            wake_penalty_slices: 5.0,
        }
    }
}

impl NetProfile {
    /// Serialization (wire transfer) time for `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000 / self.bandwidth_bps as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// One-way latency for a message of `bytes`: serialization + propagation.
    pub fn one_way(&self, bytes: usize) -> SimDuration {
        self.transfer_time(bytes) + self.propagation
    }
}

impl NicProfile {
    /// DMA time for a local copy of `bytes`.
    pub fn dma_time(&self, bytes: usize) -> SimDuration {
        let ns = bytes as u128 * 1_000_000_000 / self.dma_bw_bytes as u128;
        SimDuration::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_bandwidth() {
        let net = NetProfile::default();
        // 56 Gbps = 7 GB/s → 7 bytes/ns → 7000 bytes in 1000 ns.
        assert_eq!(net.transfer_time(7000).as_nanos(), 1000);
        assert_eq!(net.transfer_time(0).as_nanos(), 0);
    }

    #[test]
    fn one_way_includes_propagation() {
        let net = NetProfile::default();
        assert_eq!(
            net.one_way(7000).as_nanos(),
            1000 + net.propagation.as_nanos()
        );
    }

    #[test]
    fn dma_time_scales() {
        let nic = NicProfile::default();
        assert_eq!(nic.dma_time(12_000).as_nanos(), 1_000);
    }

    #[test]
    fn default_profile_is_consistent() {
        let hw = HwProfile::default();
        assert_eq!(hw.cpu.cores, 16);
        assert!(hw.nic.wqe_process < hw.cpu.ctx_switch);
        assert!(hw.cpu.interrupt < hw.cpu.time_slice);
    }
}
