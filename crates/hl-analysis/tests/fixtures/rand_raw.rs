// Fixture: `rand-raw` fires on raw `rand::` paths outside the
// named-RNG-stream API.
fn bad(factory: &mut RngFactory) {
    let x: u64 = rand::random();
    // Replay harness seed echo, audited: hl-lint: allow(rand-raw)
    let y: u64 = rand::random();
    // The blessed route: a named, seeded stream.
    let z = factory.stream("nic-jitter").next_u64();
    let _ = (x, y, z);
}
