//! Extension bench (paper §5): multi-client chains over a shared
//! receive queue. One replica chain, 1..4 clients pipelining gWRITEs —
//! aggregate throughput and per-op latency as the SRQ serializes the
//! multi-writer log.
//!
//! Usage: `multi_bench [--ops N]` (recorded ops per client)

use hl_bench::table::{us, Table};
use hl_cluster::ClusterBuilder;
use hl_cluster::World;
use hl_fabric::HostId;
use hl_sim::{Engine, Histogram, SimDuration};
use hyperloop::multi::{self, MultiBuilder, MultiClient, MultiConfig};
use std::cell::RefCell;
use std::rc::Rc;

struct Outcome {
    latency: hl_sim::Summary,
    kops: f64,
}

fn run(clients_n: usize, ops_per_client: u32) -> Outcome {
    let (mut w, mut eng) = ClusterBuilder::new(clients_n + 3)
        .arena_size(4 << 20)
        .seed(9)
        .build();
    let chain = MultiBuilder::new(MultiConfig {
        clients: (0..clients_n).map(HostId).collect(),
        replicas: vec![
            HostId(clients_n),
            HostId(clients_n + 1),
            HostId(clients_n + 2),
        ],
        rep_bytes: 1 << 20,
        ring_slots: 256,
        replenish_period: SimDuration::from_micros(50),
    })
    .build(&mut w);
    multi::start_replenisher(&chain, &mut w, &mut eng);
    let clients: Vec<MultiClient> = (0..clients_n)
        .map(|c| MultiClient::new(chain.clone(), c, &mut w))
        .collect();

    let hist = Rc::new(RefCell::new(Histogram::new()));
    let done = Rc::new(RefCell::new(0u32));
    let total = ops_per_client * clients_n as u32;

    // Each client keeps 4 ops outstanding.
    fn pump(
        client: MultiClient,
        hist: Rc<RefCell<Histogram>>,
        done: Rc<RefCell<u32>>,
        issued: u32,
        quota: u32,
        w: &mut World,
        eng: &mut Engine<World>,
    ) {
        if issued >= quota {
            return;
        }
        let h = hist.clone();
        let d = done.clone();
        let c2 = client.clone();
        let h2 = hist.clone();
        let d2 = done.clone();
        let offset = ((issued as u64 * 7 + client.idx as u64) % 512) * 1024;
        match client.gwrite(
            w,
            eng,
            offset,
            &[issued as u8; 1024],
            false,
            Box::new(move |w, eng, r| {
                h.borrow_mut().record(r.latency.as_nanos());
                *d.borrow_mut() += 1;
                pump(c2, h2, d2, issued + 1, quota, w, eng);
            }),
        ) {
            Ok(_) => {}
            Err(_) => {
                let c3 = client.clone();
                eng.schedule(SimDuration::from_micros(50), move |w, eng| {
                    pump(c3, hist, done, issued, quota, w, eng);
                });
            }
        }
    }
    // Four independent lanes per client, each pumping its share
    // sequentially; together they keep 4 ops in flight per client.
    for client in &clients {
        for lane in 0..4u32 {
            let quota = ops_per_client / 4 + u32::from(lane < ops_per_client % 4);
            if quota == 0 {
                continue;
            }
            pump(
                client.clone(),
                hist.clone(),
                done.clone(),
                0,
                quota,
                &mut w,
                &mut eng,
            );
        }
    }
    let probe = done.clone();
    let start = eng.now();
    eng.run_while(&mut w, move |_| *probe.borrow() < total);
    let secs = eng.now().duration_since(start).as_secs_f64().max(1e-9);
    let latency = hist.borrow().summary();
    let completed = *done.borrow();
    Outcome {
        latency,
        kops: completed as f64 / secs / 1e3,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops: u32 = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    println!("== multi-client SRQ chain: 3 replicas, 1KB gWRITEs, 4 lanes/client ==");
    let mut t = Table::new(&["clients", "agg-kops", "avg(us)", "p99(us)"]);
    for n in [1usize, 2, 3, 4] {
        let o = run(n, ops);
        t.row(&[
            n.to_string(),
            format!("{:.0}", o.kops),
            format!("{:.1}", o.latency.mean_us()),
            us(o.latency.p99_ns),
        ]);
    }
    t.print();
    println!("one chain serves several writers; the SRQ serializes slots in NIC");
    println!("arrival order, so aggregate throughput holds while per-op latency");
    println!("reflects the shared ring's queueing.");
}
