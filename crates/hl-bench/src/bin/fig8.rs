//! Figure 8: latency of gWRITE and gMEMCPY vs message size,
//! HyperLoop vs Naïve-RDMA (group size 3, stress-ng background).
//!
//! Usage: `fig8 [gwrite|gmemcpy|both] [--ops N]`

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_bench::table::{us, Table};

fn sweep(prim: &str, ops: usize) {
    let sizes = [128usize, 256, 512, 1024, 2048, 4096, 8192];
    println!(
        "\n== Figure 8{}: {} latency (us), group size 3, stress background ==",
        if prim == "gwrite" { "a" } else { "b" },
        prim
    );
    let mut t = Table::new(&[
        "size",
        "naive-avg",
        "naive-p99",
        "hl-avg",
        "hl-p99",
        "avg-ratio",
        "p99-ratio",
    ]);
    let mut max_p99_ratio: f64 = 0.0;
    for &size in &sizes {
        let op = if prim == "gwrite" {
            MicroOp::GWrite { size, flush: false }
        } else {
            MicroOp::GMemcpy { size, flush: false }
        };
        let naive = run_micro(&MicroCfg {
            backend: Backend::NaiveEvent,
            op,
            ops,
            seed: 42 + size as u64,
            ..Default::default()
        });
        let hl = run_micro(&MicroCfg {
            backend: Backend::HyperLoop,
            op,
            ops,
            seed: 42 + size as u64,
            ..Default::default()
        });
        let avg_ratio = naive.latency.mean_ns / hl.latency.mean_ns;
        let p99_ratio = naive.latency.p99_ns as f64 / hl.latency.p99_ns as f64;
        max_p99_ratio = max_p99_ratio.max(p99_ratio);
        t.row(&[
            size.to_string(),
            format!("{:.1}", naive.latency.mean_us()),
            us(naive.latency.p99_ns),
            format!("{:.1}", hl.latency.mean_us()),
            us(hl.latency.p99_ns),
            format!("{avg_ratio:.0}x"),
            format!("{p99_ratio:.0}x"),
        ]);
    }
    t.print();
    println!("max 99th-percentile improvement: {max_p99_ratio:.0}x  (paper: ~800x gWRITE / ~848x gMEMCPY)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let prim = args.get(1).map(|s| s.as_str()).unwrap_or("both");
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    match prim {
        "gwrite" => sweep("gwrite", ops),
        "gmemcpy" => sweep("gmemcpy", ops),
        _ => {
            sweep("gwrite", ops);
            sweep("gmemcpy", ops);
        }
    }
}
