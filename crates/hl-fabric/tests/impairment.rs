//! The gray-failure impairment engine: per-pair and per-host netem-style
//! specs (delay, jitter, loss, token-bucket rate, reorder, duplication),
//! their stacking rules, determinism, and bystander isolation.

use hl_fabric::{Delivery, Fabric, HostId, Impairment};
use hl_sim::config::NetProfile;
use hl_sim::{RngFactory, SimDuration, SimTime};

fn fabric(n: usize) -> Fabric {
    Fabric::new(n, NetProfile::default())
}

fn at(d: Delivery) -> SimTime {
    match d {
        Delivery::At(t) => t,
        other => panic!("expected At, got {other:?}"),
    }
}

// 64 B at the default profile: serialization is sub-propagation; the
// unimpaired delivery for (0 → 1, 1 hop) lands at a fixed baseline.
fn baseline(f: &mut Fabric) -> SimTime {
    at(f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0))
}

#[test]
fn pair_delay_shifts_delivery_exactly() {
    let mut f = fabric(3);
    let base = baseline(&mut f);
    let mut g = fabric(3);
    g.set_impairment(
        HostId(0),
        HostId(1),
        Impairment::delay(SimDuration::from_micros(50), SimDuration::ZERO),
    );
    let t = at(g.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0));
    assert_eq!(t.as_nanos(), base.as_nanos() + 50_000);
}

#[test]
fn pair_impairment_does_not_touch_bystanders() {
    let mut f = fabric(3);
    let base01 = baseline(&mut f);
    let base02 = at(f.send(SimTime::ZERO, HostId(0), HostId(2), 64, 1.0));
    let mut g = fabric(3);
    g.set_impairment(
        HostId(0),
        HostId(1),
        Impairment::delay(SimDuration::from_micros(50), SimDuration::ZERO),
    );
    let t01 = at(g.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0));
    let t02 = at(g.send(SimTime::ZERO, HostId(0), HostId(2), 64, 1.0));
    assert!(t01 > base01);
    assert_eq!(t02, base02, "bystander pair must be byte-identical");
}

#[test]
fn host_impairment_hits_ingress_and_egress() {
    let mut f = fabric(3);
    f.set_host_impairment(
        HostId(1),
        Impairment::delay(SimDuration::from_micros(10), SimDuration::ZERO),
    );
    let mut clean = fabric(3);
    let b01 = at(clean.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0));
    let b10 = at(clean.send(SimTime::ZERO, HostId(1), HostId(0), 64, 1.0));
    let b02 = at(clean.send(SimTime::ZERO, HostId(0), HostId(2), 64, 1.0));
    let t01 = at(f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0));
    let t10 = at(f.send(SimTime::ZERO, HostId(1), HostId(0), 64, 1.0));
    let t02 = at(f.send(SimTime::ZERO, HostId(0), HostId(2), 64, 1.0));
    assert_eq!(t01.as_nanos(), b01.as_nanos() + 10_000, "ingress delayed");
    assert_eq!(t10.as_nanos(), b10.as_nanos() + 10_000, "egress delayed");
    assert_eq!(t02, b02, "paths avoiding the straggler untouched");
}

#[test]
fn jitter_is_seeded_deterministic_and_fifo_preserving() {
    let run = |seed: u64| -> Vec<u64> {
        let mut f = fabric(2);
        f.set_impairment_rng(RngFactory::new(seed).stream("fabric-impair"));
        f.set_impairment(
            HostId(0),
            HostId(1),
            Impairment::delay(SimDuration::ZERO, SimDuration::from_micros(20)),
        );
        (0..64)
            .map(|i| {
                let now = SimTime::from_nanos(i * 1000);
                at(f.send(now, HostId(0), HostId(1), 64, 1.0)).as_nanos()
            })
            .collect()
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a, b, "same seed, same jitter draws");
    assert_ne!(a, c, "different seed, different jitter");
    // FIFO clamp: deliveries never regress even when a later message
    // drew less jitter.
    for w in a.windows(2) {
        assert!(w[1] >= w[0], "jittered deliveries must stay monotone");
    }
}

#[test]
fn loss_drops_the_configured_fraction_and_counts() {
    let mut f = fabric(2);
    f.set_impairment_rng(RngFactory::new(3).stream("fabric-impair"));
    f.set_impairment(HostId(0), HostId(1), Impairment::loss(0.3));
    let n = 4000;
    let mut dropped = 0;
    for _ in 0..n {
        if f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0) == Delivery::Dropped {
            dropped += 1;
        }
    }
    let rate = dropped as f64 / n as f64;
    assert!(
        (0.26..=0.34).contains(&rate),
        "loss rate {rate} far from configured 0.3"
    );
    assert_eq!(f.impaired_drops(), dropped);
    assert_eq!(f.drops(), dropped);
}

#[test]
fn per_link_drop_prob_is_directed_and_isolated() {
    let mut f = fabric(3);
    f.set_link_drop_prob(HostId(0), HostId(1), 1.0);
    assert_eq!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 0.5),
        Delivery::Dropped
    );
    // Reverse direction and bystander pair unaffected.
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(1), HostId(0), 64, 0.5),
        Delivery::At(_)
    ));
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(2), 64, 0.5),
        Delivery::At(_)
    ));
    f.set_link_drop_prob(HostId(0), HostId(1), 0.0);
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 0.5),
        Delivery::At(_)
    ));
}

#[test]
fn link_drop_combines_with_global_as_independent_events() {
    let mut f = fabric(2);
    f.set_drop_prob(0.5);
    f.set_link_drop_prob(HostId(0), HostId(1), 0.5);
    // Combined p = 1 - 0.5*0.5 = 0.75.
    assert_eq!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 0.74),
        Delivery::Dropped
    );
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 0.76),
        Delivery::At(_)
    ));
}

#[test]
fn rate_limit_serializes_past_the_burst() {
    let mut f = fabric(2);
    // 8 Mbit/s with a 1 KiB bucket: the first 1 KiB flies, after that
    // each 1000-byte message costs 1 ms of token refill.
    f.set_impairment(HostId(0), HostId(1), Impairment::rate(8_000_000, 1024));
    let t1 = at(f.send(SimTime::ZERO, HostId(0), HostId(1), 1000, 1.0));
    let t2 = at(f.send(SimTime::ZERO, HostId(0), HostId(1), 1000, 1.0));
    let t3 = at(f.send(SimTime::ZERO, HostId(0), HostId(1), 1000, 1.0));
    // First message is within the burst: no extra wait beyond the wire.
    let mut clean = fabric(2);
    let base = at(clean.send(SimTime::ZERO, HostId(0), HostId(1), 1000, 1.0));
    assert_eq!(t1, base);
    // Subsequent messages pace at ~1 ms per 1000 B (token-bucket wait).
    assert!(
        t2.as_nanos() >= t1.as_nanos() + 900_000,
        "second message must wait for tokens: {} vs {}",
        t2.as_nanos(),
        t1.as_nanos()
    );
    assert!(t3.as_nanos() >= t2.as_nanos() + 900_000);
}

#[test]
fn reorder_overtakes_and_duplicate_delivers_twice() {
    let mut f = fabric(2);
    f.set_impairment_rng(RngFactory::new(11).stream("fabric-impair"));
    f.set_impairment(
        HostId(0),
        HostId(1),
        Impairment {
            delay: SimDuration::from_micros(100),
            reorder: 0.25,
            ..Default::default()
        },
    );
    let mut times = Vec::new();
    for i in 0..200u64 {
        let now = SimTime::from_nanos(i * 10_000);
        times.push(at(f.send(now, HostId(0), HostId(1), 64, 1.0)));
    }
    let overtakes = times.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(overtakes > 0, "reorder knob must produce overtakes");

    let mut g = fabric(2);
    g.set_impairment_rng(RngFactory::new(11).stream("fabric-impair"));
    g.set_impairment(
        HostId(0),
        HostId(1),
        Impairment {
            duplicate: 1.0,
            ..Default::default()
        },
    );
    match g.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0) {
        Delivery::Duplicated(a, b) => assert!(b > a, "copy arrives strictly later"),
        other => panic!("expected duplication, got {other:?}"),
    }
}

#[test]
fn probabilistic_knobs_are_inert_without_rng() {
    let mut f = fabric(2);
    f.set_impairment(
        HostId(0),
        HostId(1),
        Impairment {
            loss: 1.0,
            duplicate: 1.0,
            reorder: 1.0,
            delay: SimDuration::from_micros(5),
            ..Default::default()
        },
    );
    // No stream installed: loss/duplicate/reorder are off, delay still
    // applies.
    let mut clean = fabric(2);
    let base = at(clean.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0));
    let t = at(f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0));
    assert_eq!(t.as_nanos(), base.as_nanos() + 5_000);
}

#[test]
fn stack_composes_knobs() {
    let a = Impairment {
        delay: SimDuration::from_micros(10),
        jitter: SimDuration::from_micros(2),
        loss: 0.1,
        rate_bps: Some(1_000_000),
        burst_bytes: 2048,
        ..Default::default()
    };
    let b = Impairment {
        delay: SimDuration::from_micros(5),
        loss: 0.2,
        rate_bps: Some(500_000),
        burst_bytes: 4096,
        duplicate: 0.5,
        ..Default::default()
    };
    let s = a.stack(&b);
    assert_eq!(s.delay, SimDuration::from_micros(15));
    assert_eq!(s.jitter, SimDuration::from_micros(2));
    assert!((s.loss - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    assert_eq!(s.rate_bps, Some(500_000));
    assert_eq!(s.burst_bytes, 2048, "smaller burst wins");
    assert_eq!(s.duplicate, 0.5);
}

#[test]
fn clearing_restores_unimpaired_timing() {
    let mut f = fabric(2);
    let base = baseline(&mut f);
    f.set_impairment(
        HostId(0),
        HostId(1),
        Impairment::delay(SimDuration::from_micros(30), SimDuration::ZERO),
    );
    let slow = at(f.send(SimTime::from_nanos(10_000), HostId(0), HostId(1), 64, 1.0));
    assert!(slow.as_nanos() > base.as_nanos() + 10_000);
    f.clear_impairment(HostId(0), HostId(1));
    f.set_host_impairment(HostId(0), Impairment::default());
    assert!(!f.is_impaired(HostId(0), HostId(1)));
    // A send far past the impaired window is purely wire-timed again.
    let now = SimTime::from_nanos(10_000_000);
    let t = at(f.send(now, HostId(0), HostId(1), 64, 1.0));
    assert_eq!(t.as_nanos() - now.as_nanos(), base.as_nanos());
}
