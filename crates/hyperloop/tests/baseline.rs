//! Tests for the Naïve-RDMA baseline: functional parity with HyperLoop
//! plus the CPU-on-critical-path behaviour the paper measures.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimTime};
use hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop::OpResult;
use std::cell::RefCell;
use std::rc::Rc;

fn setup(
    mode: Mode,
    hogs_per_replica: usize,
) -> (World, Engine<World>, hyperloop::naive::NaiveClient) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(4 << 20).seed(11).build();
    for h in 1..3 {
        for k in 0..hogs_per_replica {
            w.spawn_hog(HostId(h), &format!("stress-{h}-{k}"), &mut eng);
        }
    }
    let cfg = NaiveConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        mode,
        ring_slots: 64,
        ..Default::default()
    };
    let client = NaiveBuilder::new(cfg).build(&mut w, &mut eng);
    (w, eng, client)
}

fn sink(log: &Rc<RefCell<Vec<OpResult>>>) -> hyperloop::OnDone {
    let log = log.clone();
    Box::new(move |_w, _eng, r| log.borrow_mut().push(r))
}

#[test]
fn naive_gwrite_replicates_and_acks() {
    let (mut w, mut eng, client) = setup(Mode::Event, 0);
    let log = Rc::new(RefCell::new(Vec::new()));
    client
        .gwrite(&mut w, &mut eng, 0x100, b"naive-data", true, sink(&log))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    assert_eq!(log.borrow().len(), 1);
    for m in 0..3 {
        let addr = client.group().borrow().member_addr(m, 0x100);
        let host = if m == 0 { 0 } else { m };
        assert_eq!(w.hosts[host].mem.read(addr, 10).unwrap(), b"naive-data");
        assert!(w.hosts[host].mem.is_durable(addr, 10), "member {m}");
    }
    // Event-mode latency includes interrupts + scheduling: slower than
    // the pure NIC path but still fast on an idle machine.
    let lat = log.borrow()[0].latency;
    assert!(lat.as_nanos() > 10_000, "{lat}");
}

#[test]
fn naive_polling_mode_works_and_burns_cpu() {
    let (mut w, mut eng, client) = setup(Mode::Polling, 0);
    let log = Rc::new(RefCell::new(Vec::new()));
    client
        .gwrite(&mut w, &mut eng, 0x100, b"polled", true, sink(&log))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    assert_eq!(log.borrow().len(), 1);
    // The polling replicas burned CPU the whole run.
    let now = eng.now();
    for h in 1..3 {
        let util = w.hosts[h].cpu.host_utilization(now);
        assert!(util > 0.04, "poller on host {h} should burn a core: {util}");
    }
}

#[test]
fn naive_gmemcpy_and_gcas() {
    let (mut w, mut eng, client) = setup(Mode::Event, 0);
    let log = Rc::new(RefCell::new(Vec::new()));
    client
        .gwrite(&mut w, &mut eng, 0, b"source-bytes", true, sink(&log))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    client
        .gmemcpy(&mut w, &mut eng, 0, 0x4000, 12, true, sink(&log))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(100_000_000));
    assert_eq!(log.borrow().len(), 2);
    for m in 0..3 {
        let addr = client.group().borrow().member_addr(m, 0x4000);
        let host = if m == 0 { 0 } else { m };
        assert_eq!(w.hosts[host].mem.read(addr, 12).unwrap(), b"source-bytes");
    }

    client
        .gcas(&mut w, &mut eng, 0x5000, 0, 77, 0b111, sink(&log))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(150_000_000));
    assert_eq!(log.borrow().len(), 3);
    assert_eq!(log.borrow()[2].results, vec![0, 0, 0]);
    for m in 0..3 {
        let addr = client.group().borrow().member_addr(m, 0x5000);
        let host = if m == 0 { 0 } else { m };
        assert_eq!(w.hosts[host].mem.read_u64(addr).unwrap(), 77);
    }
}

/// The paper's core comparison: under multi-tenant CPU contention the
/// baseline's latency explodes while HyperLoop's stays flat.
#[test]
fn contention_hurts_naive_but_not_hyperloop() {
    // --- Naïve under contention -----------------------------------------
    let (mut w, mut eng, nclient) = setup(Mode::Event, 24);
    let nlog = Rc::new(RefCell::new(Vec::new()));
    for k in 0..30u64 {
        let l = nlog.clone();
        let _ = nclient.gwrite(
            &mut w,
            &mut eng,
            k * 256,
            &[1u8; 128],
            true,
            Box::new(move |_w, _e, r| l.borrow_mut().push(r)),
        );
        let want = k as usize + 1;
        let l2 = nlog.clone();
        eng.run_while(&mut w, move |_| l2.borrow().len() < want);
    }
    let naive_mean = nlog
        .borrow()
        .iter()
        .map(|r| r.latency.as_nanos())
        .sum::<u64>() as f64
        / nlog.borrow().len() as f64;

    // --- HyperLoop under identical contention ----------------------------
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(4 << 20).seed(11).build();
    for h in 1..3 {
        for k in 0..24 {
            w.spawn_hog(HostId(h), &format!("stress-{h}-{k}"), &mut eng);
        }
    }
    let cfg = hyperloop::GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        ring_slots: 64,
        ..Default::default()
    };
    let group = hyperloop::GroupBuilder::new(cfg).build(&mut w);
    hyperloop::replica::start_replenishers(&group, &mut w, &mut eng);
    let hclient = hyperloop::HyperLoopClient::new(group, &mut w);
    let hlog = Rc::new(RefCell::new(Vec::new()));
    for k in 0..30u64 {
        let l = hlog.clone();
        hclient
            .gwrite(
                &mut w,
                &mut eng,
                k * 256,
                &[1u8; 128],
                true,
                Box::new(move |_w, _e, r| l.borrow_mut().push(r)),
            )
            .unwrap();
        let want = k as usize + 1;
        let l2 = hlog.clone();
        eng.run_while(&mut w, move |_| l2.borrow().len() < want);
    }
    let hl_mean = hlog
        .borrow()
        .iter()
        .map(|r| r.latency.as_nanos())
        .sum::<u64>() as f64
        / hlog.borrow().len() as f64;

    assert_eq!(nlog.borrow().len(), 30);
    assert_eq!(hlog.borrow().len(), 30);
    assert!(
        naive_mean > 8.0 * hl_mean,
        "expected a large gap: naive {naive_mean:.0} ns vs hyperloop {hl_mean:.0} ns"
    );
    assert!(
        naive_mean > 100_000.0,
        "contended naive should be >100us on average: {naive_mean:.0} ns"
    );
    assert!(
        hl_mean < 50_000.0,
        "hyperloop stays microsecond-scale: {hl_mean:.0} ns"
    );
}
