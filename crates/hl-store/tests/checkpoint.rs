//! kvlite checkpoint tests: memtable snapshots replicated to the
//! checkpoint area, log truncation, and snapshot-based recovery.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::Engine;
use hl_store::kv::{decode_snapshot, KvConfig, KvDb};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn setup() -> (World, Engine<World>, Rc<HyperLoopClient>) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(61).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 2 << 20,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));
    (w, eng, client)
}

fn drain(eng: &mut Engine<World>, w: &mut World, flag: &Rc<RefCell<u32>>, want: u32) {
    let f = flag.clone();
    eng.run_while(w, move |_| *f.borrow() < want);
}

#[test]
fn checkpoint_replicates_snapshot_and_truncates() {
    let (mut w, mut eng, client) = setup();
    let mut db = KvDb::open(client.clone(), KvConfig::default(), &mut w, &mut eng);
    let acks = Rc::new(RefCell::new(0u32));
    for k in 0..30u32 {
        let a = acks.clone();
        db.put(
            &mut w,
            &mut eng,
            format!("ck{k:04}").as_bytes(),
            &[k as u8; 64],
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
        drain(&mut eng, &mut w, &acks, k + 1);
    }
    let (_, tail_before) = db.log_cursors();
    assert!(tail_before > 0);

    // Checkpoint.
    let done = Rc::new(RefCell::new(0u32));
    let d = done.clone();
    db.checkpoint(
        &mut w,
        &mut eng,
        Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
    )
    .unwrap();
    drain(&mut eng, &mut w, &done, 1);

    // The log was truncated (head caught up to tail).
    let (head, tail) = db.log_cursors();
    assert_eq!(head, tail);

    // Every member holds the identical durable snapshot.
    for m in 0..3 {
        let snap = db.read_checkpoint(&w, m).expect("checkpoint on member");
        assert_eq!(snap.len(), 30, "member {m}");
        assert_eq!(snap.get(b"ck0011"), Some([11u8; 64].as_slice()));
    }

    // Crash every replica: the snapshot survives and fully rebuilds the
    // table (snapshot + empty log = recovery).
    for h in 1..3usize {
        w.hosts[h].mem.crash();
    }
    for m in 1..3 {
        let base = {
            use hyperloop::api::GroupClient;
            client.member_addr(m, KvConfig::default().layout.db_off)
        };
        let len = w.hosts[m].mem.read_u32(base).unwrap() as usize;
        let bytes = w.hosts[m].mem.read_vec(base + 4, len).unwrap();
        let recovered = decode_snapshot(&bytes).expect("durable snapshot decodes");
        assert_eq!(recovered.len(), 30);
        assert_eq!(recovered.get(b"ck0029"), Some([29u8; 64].as_slice()));
    }
}

#[test]
fn checkpoint_then_more_writes_keeps_log_small() {
    let (mut w, mut eng, client) = setup();
    let mut db = KvDb::open(client.clone(), KvConfig::default(), &mut w, &mut eng);
    let acks = Rc::new(RefCell::new(0u32));
    for k in 0..10u32 {
        let a = acks.clone();
        db.put(
            &mut w,
            &mut eng,
            format!("a{k}").as_bytes(),
            b"1",
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
        drain(&mut eng, &mut w, &acks, k + 1);
    }
    let done = Rc::new(RefCell::new(0u32));
    let d = done.clone();
    db.checkpoint(
        &mut w,
        &mut eng,
        Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
    )
    .unwrap();
    drain(&mut eng, &mut w, &done, 1);
    let (head1, _) = db.log_cursors();

    // Ten more writes append after the truncation point.
    for k in 10..20u32 {
        let a = acks.clone();
        db.put(
            &mut w,
            &mut eng,
            format!("a{k}").as_bytes(),
            b"2",
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
        drain(&mut eng, &mut w, &acks, k + 1);
    }
    let (head2, tail2) = db.log_cursors();
    assert!(head2 >= head1);
    assert!(tail2 > head2, "new records live past the checkpoint");
    // All 20 keys readable.
    for k in 0..20u32 {
        assert!(db.get(format!("a{k}").as_bytes()).is_some(), "a{k}");
    }
}
