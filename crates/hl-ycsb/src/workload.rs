//! YCSB core workload definitions (paper Table 3).
//!
//! | Workload | Read | Update | Insert | Modify (RMW) | Scan |
//! |----------|------|--------|--------|--------------|------|
//! | A        | 50   | 50     | –      | –            | –    |
//! | B        | 95   | 5      | –      | –            | –    |
//! | D        | 95   | –      | 5      | –            | –    |
//! | E        | –    | –      | 5      | –            | 95   |
//! | F        | 50   | –      | –      | 50           | –    |

use crate::distributions::{KeyChooser, Zipfian};
use hl_sim::RngStream;

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Overwrite an existing record.
    Update,
    /// Insert a new record (grows the keyspace).
    Insert,
    /// Read-modify-write.
    Modify,
    /// Range scan.
    Scan,
}

impl OpKind {
    /// Is this a write for latency-accounting purposes (the paper's
    /// "insert/update operations")?
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Update | OpKind::Insert | OpKind::Modify)
    }
}

/// A concrete operation to execute.
#[derive(Debug, Clone, Copy)]
pub struct Op {
    /// Kind.
    pub kind: OpKind,
    /// Target key id.
    pub key: u64,
    /// Scan width (valid for `Scan`).
    pub scan_len: usize,
}

/// The YCSB core workloads used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50/50 read/update.
    A,
    /// 95/5 read/update.
    B,
    /// 95/5 read/insert, latest distribution.
    D,
    /// 95/5 scan/insert.
    E,
    /// 50/50 read/read-modify-write.
    F,
}

impl Workload {
    /// All five, in paper order.
    pub const ALL: [Workload; 5] = [
        Workload::A,
        Workload::B,
        Workload::D,
        Workload::E,
        Workload::F,
    ];

    /// Display letter.
    pub fn letter(self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::D => "D",
            Workload::E => "E",
            Workload::F => "F",
        }
    }

    /// `(read, update, insert, modify, scan)` percentages (Table 3).
    pub fn mix(self) -> (u32, u32, u32, u32, u32) {
        match self {
            Workload::A => (50, 50, 0, 0, 0),
            Workload::B => (95, 5, 0, 0, 0),
            Workload::D => (95, 0, 5, 0, 0),
            Workload::E => (0, 0, 5, 0, 95),
            Workload::F => (50, 0, 0, 50, 0),
        }
    }
}

/// Stateful op generator for one client thread.
#[derive(Debug)]
pub struct OpGenerator {
    workload: Workload,
    chooser: KeyChooser,
    records: u64,
    max_scan: usize,
}

impl OpGenerator {
    /// Generator over an initial keyspace of `records` records.
    pub fn new(workload: Workload, records: u64) -> Self {
        let chooser = match workload {
            Workload::D => KeyChooser::Latest(Zipfian::ycsb(records.max(1))),
            _ => KeyChooser::ScrambledZipfian(Zipfian::ycsb(records.max(1))),
        };
        OpGenerator {
            workload,
            chooser,
            records,
            max_scan: 100,
        }
    }

    /// Current record count (inserts grow it).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Draw the next operation.
    pub fn next_op(&mut self, rng: &mut RngStream) -> Op {
        let (read, update, insert, modify, _scan) = self.workload.mix();
        let roll = rng.range_u64(0, 100) as u32;
        let kind = if roll < read {
            OpKind::Read
        } else if roll < read + update {
            OpKind::Update
        } else if roll < read + update + insert {
            OpKind::Insert
        } else if roll < read + update + insert + modify {
            OpKind::Modify
        } else {
            OpKind::Scan
        };
        match kind {
            OpKind::Insert => {
                let key = self.records;
                self.records += 1;
                Op {
                    kind,
                    key,
                    scan_len: 0,
                }
            }
            OpKind::Scan => Op {
                kind,
                key: self.chooser.next(rng, self.records),
                scan_len: 1 + rng.index(self.max_scan),
            },
            _ => Op {
                kind,
                key: self.chooser.next(rng, self.records),
                scan_len: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sim::RngFactory;
    use std::collections::HashMap;

    fn mix_of(w: Workload) -> HashMap<OpKind, u32> {
        let mut g = OpGenerator::new(w, 1000);
        let mut rng = RngFactory::new(9).stream("mix");
        let mut counts = HashMap::new();
        for _ in 0..20_000 {
            let op = g.next_op(&mut rng);
            *counts.entry(op.kind).or_insert(0) += 1;
        }
        counts
    }

    fn frac(counts: &HashMap<OpKind, u32>, k: OpKind) -> f64 {
        *counts.get(&k).unwrap_or(&0) as f64 / 20_000.0
    }

    /// Table 3: the generated mixes match the paper's percentages.
    #[test]
    fn table3_mixes() {
        let a = mix_of(Workload::A);
        assert!((frac(&a, OpKind::Read) - 0.50).abs() < 0.02);
        assert!((frac(&a, OpKind::Update) - 0.50).abs() < 0.02);

        let b = mix_of(Workload::B);
        assert!((frac(&b, OpKind::Read) - 0.95).abs() < 0.01);
        assert!((frac(&b, OpKind::Update) - 0.05).abs() < 0.01);

        let d = mix_of(Workload::D);
        assert!((frac(&d, OpKind::Read) - 0.95).abs() < 0.01);
        assert!((frac(&d, OpKind::Insert) - 0.05).abs() < 0.01);

        let e = mix_of(Workload::E);
        assert!((frac(&e, OpKind::Scan) - 0.95).abs() < 0.01);
        assert!((frac(&e, OpKind::Insert) - 0.05).abs() < 0.01);

        let f = mix_of(Workload::F);
        assert!((frac(&f, OpKind::Read) - 0.50).abs() < 0.02);
        assert!((frac(&f, OpKind::Modify) - 0.50).abs() < 0.02);
    }

    #[test]
    fn inserts_grow_keyspace_monotonically() {
        let mut g = OpGenerator::new(Workload::D, 100);
        let mut rng = RngFactory::new(10).stream("ins");
        let mut next_expected = 100;
        for _ in 0..2000 {
            let op = g.next_op(&mut rng);
            if op.kind == OpKind::Insert {
                assert_eq!(op.key, next_expected);
                next_expected += 1;
            } else {
                assert!(op.key < g.records());
            }
        }
        assert!(g.records() > 100);
    }

    #[test]
    fn scans_have_bounded_width() {
        let mut g = OpGenerator::new(Workload::E, 1000);
        let mut rng = RngFactory::new(11).stream("scan");
        for _ in 0..1000 {
            let op = g.next_op(&mut rng);
            if op.kind == OpKind::Scan {
                assert!(op.scan_len >= 1 && op.scan_len <= 100);
            }
        }
    }
}
