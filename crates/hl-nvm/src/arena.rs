//! The NVM arena: a host's byte-addressable non-volatile memory.
//!
//! The model keeps two images of memory:
//!
//! * `current` — what any reader (CPU load, NIC DMA) observes *now*;
//! * `durable` — what survives a power failure.
//!
//! Writes arriving through a volatile cache (the RDMA NIC's internal
//! cache, or the CPU's store buffers/caches) update `current` and mark
//! the written range *dirty*. A flush — HyperLoop's gFLUSH (0-byte RDMA
//! READ handled by the NIC firmware) or a CPU `CLWB`+fence — copies the
//! dirty bytes into `durable`. [`NvmArena::crash`] reverts `current` to
//! `durable`, losing exactly the unflushed bytes, which is what the
//! durability tests and the recovery protocol exercise.

use crate::range_set::RangeSet;

/// Error type for arena accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access beyond the end of the arena.
    OutOfBounds {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
        /// Arena size.
        size: usize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len, size } => {
                write!(f, "access [{addr}, +{len}) out of bounds (size {size})")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable non-volatile memory with crash semantics.
///
/// ```
/// use hl_nvm::NvmArena;
/// let mut nvm = NvmArena::new(1024);
/// nvm.write(0, b"committed").unwrap();
/// nvm.flush(0, 9).unwrap();        // gFLUSH / CLWB
/// nvm.write(100, b"in-nic-cache").unwrap();
/// nvm.crash();                     // power failure
/// assert_eq!(nvm.read(0, 9).unwrap(), b"committed");
/// assert_eq!(nvm.read(100, 4).unwrap(), &[0; 4]); // lost
/// ```
#[derive(Debug, Clone)]
pub struct NvmArena {
    current: Vec<u8>,
    durable: Vec<u8>,
    dirty: RangeSet,
    /// Counters for reporting.
    flushes: u64,
    crashes: u64,
}

impl NvmArena {
    /// Allocate an arena of `size` zeroed bytes (zero is durable).
    pub fn new(size: usize) -> Self {
        NvmArena {
            current: vec![0; size],
            durable: vec![0; size],
            dirty: RangeSet::new(),
            flushes: 0,
            crashes: 0,
        }
    }

    /// Arena size in bytes.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True if zero-sized (never in practice).
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), MemError> {
        let end = addr.checked_add(len as u64);
        match end {
            Some(e) if e as usize <= self.current.len() => Ok(()),
            _ => Err(MemError::OutOfBounds {
                addr,
                len,
                size: self.current.len(),
            }),
        }
    }

    /// Read bytes as currently visible.
    pub fn read(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        self.check(addr, len)?;
        Ok(&self.current[addr as usize..addr as usize + len])
    }

    /// Copy bytes out (convenience over [`NvmArena::read`]).
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        self.read(addr, len).map(|s| s.to_vec())
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        let b = self.read(addr, 4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Write through a volatile cache: visible immediately, durable only
    /// after a flush covering the range.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.check(addr, data.len())?;
        self.current[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        self.dirty.insert(addr, addr + data.len() as u64);
        Ok(())
    }

    /// Write a little-endian `u64` (volatile, like [`NvmArena::write`]).
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Write a little-endian `u32` (volatile, like [`NvmArena::write`]).
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Atomically compare-and-swap the u64 at `addr` (NIC atomic or CPU
    /// `lock cmpxchg`). Returns the original value. The write (if it
    /// happens) goes through the volatile cache like any other.
    pub fn compare_and_swap_u64(
        &mut self,
        addr: u64,
        compare: u64,
        swap: u64,
    ) -> Result<u64, MemError> {
        let orig = self.read_u64(addr)?;
        if orig == compare {
            self.write_u64(addr, swap)?;
        }
        Ok(orig)
    }

    /// Atomic fetch-and-add on the u64 at `addr`.
    pub fn fetch_add_u64(&mut self, addr: u64, delta: u64) -> Result<u64, MemError> {
        let orig = self.read_u64(addr)?;
        self.write_u64(addr, orig.wrapping_add(delta))?;
        Ok(orig)
    }

    /// Flush `[addr, addr+len)` to the durable medium. Models gFLUSH /
    /// `CLWB`+`SFENCE`. Returns the number of bytes actually flushed
    /// (i.e. that were dirty in the range).
    pub fn flush(&mut self, addr: u64, len: usize) -> Result<u64, MemError> {
        self.check(addr, len)?;
        let mut flushed = 0;
        for (s, e) in self.dirty.intersection(addr, addr + len as u64) {
            self.durable[s as usize..e as usize]
                .copy_from_slice(&self.current[s as usize..e as usize]);
            flushed += e - s;
        }
        self.dirty.remove(addr, addr + len as u64);
        self.flushes += 1;
        Ok(flushed)
    }

    /// Flush everything (used by orderly shutdown in tests).
    pub fn flush_all(&mut self) {
        let ranges: Vec<_> = self.dirty.iter().collect();
        for (s, e) in ranges {
            self.durable[s as usize..e as usize]
                .copy_from_slice(&self.current[s as usize..e as usize]);
        }
        self.dirty.clear();
        self.flushes += 1;
    }

    /// Is `[addr, addr+len)` fully durable (no dirty bytes)?
    pub fn is_durable(&self, addr: u64, len: usize) -> bool {
        !self.dirty.intersects(addr, addr + len as u64)
    }

    /// Bytes currently dirty (sitting in a volatile cache).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.covered_bytes()
    }

    /// Simulate a power failure: every unflushed write is lost.
    pub fn crash(&mut self) {
        self.current.copy_from_slice(&self.durable);
        self.dirty.clear();
        self.crashes += 1;
    }

    /// Read from the durable image (what a post-crash reader would see).
    pub fn read_durable(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        self.check(addr, len)?;
        Ok(&self.durable[addr as usize..addr as usize + len])
    }

    /// Number of flush operations performed.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Number of simulated crashes.
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_visible_but_not_durable() {
        let mut m = NvmArena::new(1024);
        m.write(100, b"hello").unwrap();
        assert_eq!(m.read(100, 5).unwrap(), b"hello");
        assert!(!m.is_durable(100, 5));
        assert_eq!(m.read_durable(100, 5).unwrap(), &[0; 5]);
    }

    #[test]
    fn flush_makes_durable() {
        let mut m = NvmArena::new(1024);
        m.write(100, b"hello").unwrap();
        let flushed = m.flush(100, 5).unwrap();
        assert_eq!(flushed, 5);
        assert!(m.is_durable(100, 5));
        assert_eq!(m.read_durable(100, 5).unwrap(), b"hello");
        // Flushing clean bytes flushes nothing.
        assert_eq!(m.flush(100, 5).unwrap(), 0);
    }

    #[test]
    fn crash_loses_unflushed() {
        let mut m = NvmArena::new(1024);
        m.write(0, b"durable!").unwrap();
        m.flush(0, 8).unwrap();
        m.write(8, b"volatile").unwrap();
        m.crash();
        assert_eq!(m.read(0, 8).unwrap(), b"durable!");
        assert_eq!(m.read(8, 8).unwrap(), &[0; 8]);
        assert_eq!(m.dirty_bytes(), 0);
        assert_eq!(m.crash_count(), 1);
    }

    #[test]
    fn partial_flush() {
        let mut m = NvmArena::new(64);
        m.write(0, &[1; 32]).unwrap();
        m.flush(0, 16).unwrap();
        m.crash();
        assert_eq!(m.read(0, 16).unwrap(), &[1; 16]);
        assert_eq!(m.read(16, 16).unwrap(), &[0; 16]);
    }

    #[test]
    fn bounds_checked() {
        let mut m = NvmArena::new(16);
        assert!(m.read(8, 9).is_err());
        assert!(m.write(16, b"x").is_err());
        assert!(m.read(u64::MAX, 1).is_err());
        assert!(m.flush(0, 17).is_err());
        // In-bounds edge.
        assert!(m.read(15, 1).is_ok());
        assert!(m.read(16, 0).is_ok());
    }

    #[test]
    fn u64_roundtrip_and_cas() {
        let mut m = NvmArena::new(64);
        m.write_u64(8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(8).unwrap(), 0xdead_beef_cafe_f00d);

        // Successful CAS.
        let orig = m
            .compare_and_swap_u64(8, 0xdead_beef_cafe_f00d, 42)
            .unwrap();
        assert_eq!(orig, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(8).unwrap(), 42);

        // Failed CAS leaves value intact and reports the original.
        let orig = m.compare_and_swap_u64(8, 7, 99).unwrap();
        assert_eq!(orig, 42);
        assert_eq!(m.read_u64(8).unwrap(), 42);
    }

    #[test]
    fn fetch_add() {
        let mut m = NvmArena::new(16);
        assert_eq!(m.fetch_add_u64(0, 5).unwrap(), 0);
        assert_eq!(m.fetch_add_u64(0, 3).unwrap(), 5);
        assert_eq!(m.read_u64(0).unwrap(), 8);
    }

    #[test]
    fn flush_all_and_counters() {
        let mut m = NvmArena::new(128);
        m.write(0, &[9; 64]).unwrap();
        m.write(100, &[7; 8]).unwrap();
        m.flush_all();
        assert_eq!(m.dirty_bytes(), 0);
        m.crash();
        assert_eq!(m.read(0, 64).unwrap(), &[9; 64]);
        assert_eq!(m.read(100, 8).unwrap(), &[7; 8]);
        assert!(m.flush_count() >= 1);
    }

    #[test]
    fn overlapping_writes_coalesce_dirty() {
        let mut m = NvmArena::new(64);
        m.write(0, &[1; 16]).unwrap();
        m.write(8, &[2; 16]).unwrap();
        assert_eq!(m.dirty_bytes(), 24);
        m.flush(0, 64).unwrap();
        assert_eq!(m.dirty_bytes(), 0);
    }
}
