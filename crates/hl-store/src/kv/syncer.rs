//! Replica-side log replay (kvlite).
//!
//! Each replica runs one syncer process that wakes periodically — *off*
//! the write critical path — reads the tail pointer the NICs have been
//! maintaining in its own NVM, decodes any new WAL records from its own
//! log copy, and applies them to its in-memory table. This is the
//! paper's "replicas need to wake up periodically off the critical path
//! to bring the in-memory snapshot in sync with NVM".

use super::db::decode_kv_op;
use super::memtable::Memtable;
use hl_cluster::{Ctx, ProcEvent, Process};
use hl_sim::SimDuration;
use hyperloop::api::{LogLayout, LogRecord, PAD_MARKER};
use std::cell::RefCell;
use std::rc::Rc;

/// State shared between the client handle and the replica syncers:
/// per-replica applied cursors (for truncation) and the synced tables
/// (for eventually-consistent replica reads and tests).
#[derive(Debug)]
pub struct KvShared {
    /// Absolute log cursor each replica has applied through.
    pub applied: Vec<u64>,
    /// Each replica's synced memtable.
    pub tables: Vec<Memtable>,
}

impl KvShared {
    /// For `n` replicas.
    pub fn new(n: usize) -> Self {
        KvShared {
            applied: vec![0; n],
            tables: (0..n).map(|_| Memtable::new()).collect(),
        }
    }
}

const TAG_SYNC: u64 = 11;
const TAG_APPLY: u64 = 12;

/// CPU cost to decode + apply one log byte (~memtable insert amortized).
const APPLY_NS_PER_BYTE: u64 = 1;
/// Fixed CPU cost per sync round.
const SYNC_FIXED: SimDuration = SimDuration::from_nanos(800);

/// The per-replica syncer process.
pub struct KvSyncer {
    shared: Rc<RefCell<KvShared>>,
    idx: usize,
    /// Base address of this replica's replicated region in its arena.
    rep_base: u64,
    layout: LogLayout,
    period: SimDuration,
    /// Local applied cursor (mirrors `shared.applied[idx]`).
    applied: u64,
}

impl KvSyncer {
    /// Create a syncer for replica `idx`.
    pub fn new(
        shared: Rc<RefCell<KvShared>>,
        idx: usize,
        rep_base: u64,
        layout: LogLayout,
        period: SimDuration,
    ) -> Self {
        KvSyncer {
            shared,
            idx,
            rep_base,
            layout,
            period,
            applied: 0,
        }
    }

    /// Read the tail control word from this replica's own NVM.
    fn read_tail(&self, ctx: &mut Ctx<'_>) -> u64 {
        let host = ctx.me.host;
        ctx.world.hosts[host.0]
            .mem
            .read_u64(self.rep_base + self.layout.log_off + 8)
            .unwrap_or(0)
    }

    /// Decode and apply records in `[applied, tail)`.
    fn apply_new(&mut self, ctx: &mut Ctx<'_>) {
        let tail = self.read_tail(ctx);
        let host = ctx.me.host;
        let rec_area = self.rep_base + self.layout.log_off + 64;
        while self.applied < tail {
            let at = self.applied % self.layout.log_cap;
            let room = self.layout.log_cap - at;
            // Wrap-point padding: marker or not enough room for a header.
            if room < 4 {
                self.applied += room;
                continue;
            }
            let hdr = ctx.world.hosts[host.0]
                .mem
                .read_u32(rec_area + at)
                .unwrap_or(0);
            if hdr == PAD_MARKER {
                self.applied += room;
                continue;
            }
            // Read the remaining lap and decode one record.
            let avail = room.min(tail - self.applied) as usize;
            let bytes = ctx.world.hosts[host.0]
                .mem
                .read_vec(rec_area + at, avail)
                .unwrap();
            let Some(rec) = LogRecord::decode(&bytes) else {
                // Torn/foreign bytes should be impossible below tail.
                debug_assert!(false, "undecodable record below tail");
                break;
            };
            let len = rec.encoded_len();
            if let Some((put, key, value)) = decode_kv_op(&rec) {
                let mut sh = self.shared.borrow_mut();
                if put {
                    sh.tables[self.idx].put(&key, &value);
                } else {
                    sh.tables[self.idx].delete(&key);
                }
            }
            self.applied += len;
        }
        self.shared.borrow_mut().applied[self.idx] = self.applied;
    }
}

impl Process for KvSyncer {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => {
                ctx.set_timer(self.period, TAG_SYNC, SimDuration::from_nanos(500));
            }
            ProcEvent::Timer { tag: TAG_SYNC } => {
                let tail = self.read_tail(ctx);
                if tail > self.applied {
                    // Charge CPU proportional to the backlog, then apply.
                    let backlog = tail - self.applied;
                    ctx.submit_work(
                        SYNC_FIXED + SimDuration::from_nanos(backlog * APPLY_NS_PER_BYTE),
                        TAG_APPLY,
                    );
                } else {
                    ctx.set_timer(self.period, TAG_SYNC, SimDuration::from_nanos(500));
                }
            }
            ProcEvent::WorkDone { tag: TAG_APPLY } => {
                self.apply_new(ctx);
                ctx.set_timer(self.period, TAG_SYNC, SimDuration::from_nanos(500));
            }
            _ => {}
        }
    }
}
