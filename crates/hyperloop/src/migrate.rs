//! Live shard split/merge under traffic.
//!
//! Online elasticity for a sharded deployment: stand up (or retire) a
//! replication chain and re-home a key range **while writes keep
//! flowing**, reusing the same machinery as `live_cutover` — the
//! [`RetryClient`] dirty-range log, chunked one-sided `catch_up`
//! streams, and the bounded drain — plus the router's dual window for
//! the flip itself. The protocol walks the five
//! [`MigrationStage`]s; each boundary is stamped as a telemetry
//! transition (`transition:migration:<from>-><to>`) so timelines and
//! SLO rules can see exactly where a latency excursion sits.
//!
//! Correctness rests on the same source-of-truth argument as
//! `live_cutover`: both backends apply every mutation to the *donor
//! head's local region at issue time*, so once the router parks new
//! moving-key operations, the donor region plus the dirty log already
//! contain every issued write — the delta copy needs no donor pause,
//! and the donor chain keeps serving its remaining keys throughout a
//! split.
//!
//! * [`split_live`] — stand up a fresh chain (placed by
//!   `ShardPlan::place`) as shard N, stream the donor's region to every
//!   new member, then flip with `HashRing::split_shard` so only
//!   `parent → N` keys move.
//! * [`merge_live`] — stream the retiring (last) shard's moving slot
//!   ranges into a survivor's chain, flip with `HashRing::merge_shard`,
//!   and tear the victim chain down.

use crate::deadline::{Backend, DeadlinePolicy, RetryClient};
use crate::group::{GroupBuilder, GroupConfig};
use crate::health::{drain_then, DRAIN_POLLS};
use crate::recovery::catch_up;
use crate::router::ShardRouter;
use crate::HyperLoopClient;
use hl_cluster::migrate::MigrationStage;
use hl_cluster::shard::ShardGroup;
use hl_cluster::World;
use hl_fabric::HostId;
use hl_rnic::Access;
use hl_sim::Engine;
use std::cell::RefCell;
use std::rc::Rc;

/// Knobs for one live migration.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// Deadline policy for the destination shard's supervised client
    /// (splits only; merges reuse the survivor's client).
    pub policy: DeadlinePolicy,
    /// Ring slots for the destination group (splits only).
    pub ring_slots: u32,
    /// Chunk size for the streaming catch-up READs.
    pub chunk: u32,
}

impl Default for MigrationSpec {
    fn default() -> Self {
        MigrationSpec {
            policy: DeadlinePolicy::default(),
            ring_slots: 64,
            chunk: 64 * 1024,
        }
    }
}

/// Completion callback: the migration reached `Retired` and the router
/// serves the new topology.
pub type OnMigrated = Box<dyn FnOnce(&mut World, &mut Engine<World>)>;

/// Stamp the `from → to` stage boundary (mark + telemetry transition).
fn stage_transition(
    w: &mut World,
    eng: &mut Engine<World>,
    from: &str,
    to: MigrationStage,
    host: HostId,
) {
    let now = eng.now();
    w.telemetry
        .transition(now, "migration", from, to.name(), host.0);
}

/// Donor-side facts the driver needs, extracted from either backend.
fn head_region(backend: &Backend) -> (HostId, u64, u64, Option<(hl_sim::SimDuration, u8)>) {
    match backend {
        Backend::Hyper(c) => {
            let g = c.group().borrow();
            (
                g.cfg.client,
                g.client_rep.addr,
                g.cfg.rep_bytes,
                g.cfg.transport_timeout,
            )
        }
        Backend::Naive(n) => {
            let g = n.group().borrow();
            (g.cfg.client, g.client_rep.addr, g.cfg.rep_bytes, None)
        }
    }
}

/// Pause a backend's group (merge teardown: the victim chain stops
/// accepting work; anything still in flight drains through retries).
fn pause_backend(backend: &Backend) {
    match backend {
        Backend::Hyper(c) => c.group().borrow_mut().paused = true,
        Backend::Naive(n) => n.group().borrow_mut().paused = true,
    }
}

/// Split shard `parent` online: build a fresh chain over `dest`
/// (disjoint hosts placed by `ShardPlan::place`), stream the donor
/// head's whole region to every new member while the donor keeps
/// serving, park new moving-key traffic for a bounded drain, copy the
/// dirty delta, then flip the router to `ring.split_shard(parent)` —
/// parked ops replay onto the new shard. Only keys moving
/// `parent → new` ever change owner, so every other shard's timing is
/// untouched.
pub fn split_live(
    router: &ShardRouter,
    parent: usize,
    dest: ShardGroup,
    spec: MigrationSpec,
    w: &mut World,
    eng: &mut Engine<World>,
    done: OnMigrated,
) {
    assert!(parent < router.n_shards(), "split of unknown shard");
    let donor = router.client(parent);
    let backend = donor.backend();
    let (src_host, src_addr, rep_bytes, transport_timeout) = head_region(&backend);

    // Planned: arm the dirty log *before* any byte is copied, so every
    // concurrent write is either caught by the bulk stream or replayed
    // by the delta.
    donor.begin_dirty_log();
    stage_transition(w, eng, "idle", MigrationStage::Planned, src_host);
    let now = eng.now();
    w.telemetry
        .mark(now, format!("migrate:split:shard{parent}"), src_host.0);

    let new_ring = router.ring().split_shard(parent);
    let new_group = GroupBuilder::new(GroupConfig {
        client: dest.client,
        replicas: dest.replicas.clone(),
        rep_bytes,
        ring_slots: spec.ring_slots,
        transport_timeout,
        ..Default::default()
    })
    .build(w);

    let src_mr = w
        .host(src_host)
        .nic
        .register_mr(src_addr, rep_bytes, Access::REMOTE_READ);
    // Unlike `live_cutover`, the destination head is a *different*
    // host, so its region is streamed like any replica's.
    let targets: Vec<(HostId, u64)> = {
        let g = new_group.borrow();
        let mut t = vec![(g.cfg.client, g.client_rep.addr)];
        for i in 0..g.n_replicas() {
            t.push((g.cfg.replicas[i], g.replica_rep[i].addr));
        }
        t
    };

    // Streaming: bulk copy to every destination member, donor serving.
    stage_transition(
        w,
        eng,
        MigrationStage::Planned.name(),
        MigrationStage::Streaming,
        src_host,
    );
    let total = targets.len();
    let finished = Rc::new(RefCell::new(0usize));
    let done_cell = Rc::new(RefCell::new(Some(done)));
    let router = router.clone();
    for (th, taddr) in targets.clone() {
        let finished = finished.clone();
        let done_cell = done_cell.clone();
        let router = router.clone();
        let donor = donor.clone();
        let new_ring = new_ring.clone();
        let new_group = new_group.clone();
        let targets = targets.clone();
        let spec = spec.clone();
        let src_rkey = src_mr.rkey;
        catch_up(
            w,
            eng,
            src_host,
            src_rkey,
            src_addr,
            th,
            taddr,
            rep_bytes,
            spec.chunk,
            Box::new(move |w, eng| {
                *finished.borrow_mut() += 1;
                if *finished.borrow() < total {
                    return;
                }
                // Draining: open the dual window — new moving-key ops
                // park; the donor is NOT paused (it still owns every
                // non-moving key) — then wait out in-flight donor ops,
                // bounded.
                stage_transition(
                    w,
                    eng,
                    MigrationStage::Streaming.name(),
                    MigrationStage::Draining,
                    src_host,
                );
                router.open_window(new_ring.clone());
                let donor2 = donor.clone();
                drain_then(
                    donor.clone(),
                    DRAIN_POLLS,
                    eng,
                    Box::new(move |w, eng| {
                        split_cutover(
                            router, donor2, new_ring, new_group, targets, src_host, src_rkey,
                            src_addr, spec, done_cell, w, eng,
                        );
                    }),
                );
            }),
        );
    }
}

/// CutOver + Retired for a split: copy the dirty bounding range to
/// every destination member, build the new shard's supervised client,
/// flip the router (replaying parked ops onto the new owner) and
/// finish.
#[allow(clippy::too_many_arguments)]
fn split_cutover(
    router: ShardRouter,
    donor: RetryClient,
    new_ring: hl_cluster::shard::HashRing,
    new_group: crate::group::GroupRef,
    targets: Vec<(HostId, u64)>,
    src_host: HostId,
    src_rkey: u32,
    src_addr: u64,
    spec: MigrationSpec,
    done_cell: Rc<RefCell<Option<OnMigrated>>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    stage_transition(
        w,
        eng,
        MigrationStage::Draining.name(),
        MigrationStage::CutOver,
        src_host,
    );
    let dirty = donor.take_dirty_log();

    let flip = move |w: &mut World, eng: &mut Engine<World>| {
        crate::replica::start_replenishers(&new_group, w, eng);
        let client = HyperLoopClient::new(new_group.clone(), w);
        let dest_retry = RetryClient::with_policy(client, spec.policy.clone());
        let mut shards: Vec<RetryClient> =
            (0..router.n_shards()).map(|s| router.client(s)).collect();
        shards.push(dest_retry);
        router.install(w, eng, new_ring, shards);
        stage_transition(
            w,
            eng,
            MigrationStage::CutOver.name(),
            MigrationStage::Retired,
            src_host,
        );
        if let Some(done) = done_cell.borrow_mut().take() {
            done(w, eng);
        }
    };

    if dirty.is_empty() {
        flip(w, eng);
        return;
    }
    // Delta: the bounding range of everything written since the log was
    // armed. Ranges belonging to non-moving keys ride along — on the
    // destination they are dead bytes the ring never routes to.
    let lo = dirty.iter().map(|&(o, _)| o).min().unwrap();
    let hi = dirty.iter().map(|&(o, l)| o + l as u64).max().unwrap();
    let len = hi - lo;
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("migrate_delta_bytes", "layer=migrate", len);
    }
    let total = targets.len();
    let finished = Rc::new(RefCell::new(0usize));
    let flip_cell = Rc::new(RefCell::new(Some(flip)));
    for (th, taddr) in targets {
        let finished = finished.clone();
        let flip_cell = flip_cell.clone();
        catch_up(
            w,
            eng,
            src_host,
            src_rkey,
            src_addr + lo,
            th,
            taddr + lo,
            len,
            spec.chunk,
            Box::new(move |w, eng| {
                *finished.borrow_mut() += 1;
                if *finished.borrow() == total {
                    if let Some(flip) = flip_cell.borrow_mut().take() {
                        flip(w, eng);
                    }
                }
            }),
        );
    }
}

/// Merge the **last** shard into survivor `into`, online: stream the
/// victim head's `move_ranges` (the slot ranges holding its keys —
/// range extraction is the store layer's job) into every member of the
/// survivor's chain, park new victim-key traffic, copy the dirty delta
/// (intersected with the move ranges so survivor-owned slots are never
/// clobbered), flip the router to `ring.merge_shard(victim, into)` and
/// tear the victim chain down.
pub fn merge_live(
    router: &ShardRouter,
    into: usize,
    move_ranges: Vec<(u64, u64)>,
    spec: MigrationSpec,
    w: &mut World,
    eng: &mut Engine<World>,
    done: OnMigrated,
) {
    let victim = router.n_shards() - 1;
    assert!(into < victim, "merge target must be a surviving shard");
    assert!(
        !move_ranges.is_empty(),
        "merge needs the moving slot ranges"
    );
    let victim_retry = router.client(victim);
    let victim_backend = victim_retry.backend();
    let (src_host, src_addr, rep_bytes, _) = head_region(&victim_backend);
    for &(off, len) in &move_ranges {
        assert!(off + len <= rep_bytes, "move range outside victim region");
    }

    victim_retry.begin_dirty_log();
    stage_transition(w, eng, "idle", MigrationStage::Planned, src_host);
    let now = eng.now();
    w.telemetry
        .mark(now, format!("migrate:merge:shard{victim}"), src_host.0);

    let new_ring = router.ring().merge_shard(victim, into);
    // Survivor members (host, base addr): victim slots land at the same
    // offsets in the survivor's region.
    let survivor = router.client(into);
    let survivor_backend = survivor.backend();
    let targets: Vec<(HostId, u64)> = (0..crate::api::GroupClient::group_size(&survivor_backend))
        .map(|m| {
            (
                crate::api::GroupClient::member_host(&survivor_backend, m),
                crate::api::GroupClient::member_addr(&survivor_backend, m, 0),
            )
        })
        .collect();

    let src_mr = w
        .host(src_host)
        .nic
        .register_mr(src_addr, rep_bytes, Access::REMOTE_READ);

    // Streaming: every (range × survivor member) pair is one stream.
    stage_transition(
        w,
        eng,
        MigrationStage::Planned.name(),
        MigrationStage::Streaming,
        src_host,
    );
    let total = move_ranges.len() * targets.len();
    let finished = Rc::new(RefCell::new(0usize));
    let done_cell = Rc::new(RefCell::new(Some(done)));
    let router = router.clone();
    for &(off, len) in &move_ranges {
        for &(th, taddr) in &targets {
            let finished = finished.clone();
            let done_cell = done_cell.clone();
            let router = router.clone();
            let victim_retry = victim_retry.clone();
            let victim_backend = victim_backend.clone();
            let new_ring = new_ring.clone();
            let targets = targets.clone();
            let move_ranges = move_ranges.clone();
            let spec = spec.clone();
            let src_rkey = src_mr.rkey;
            catch_up(
                w,
                eng,
                src_host,
                src_rkey,
                src_addr + off,
                th,
                taddr + off,
                len,
                spec.chunk,
                Box::new(move |w, eng| {
                    *finished.borrow_mut() += 1;
                    if *finished.borrow() < total {
                        return;
                    }
                    stage_transition(
                        w,
                        eng,
                        MigrationStage::Streaming.name(),
                        MigrationStage::Draining,
                        src_host,
                    );
                    router.open_window(new_ring.clone());
                    let victim2 = victim_retry.clone();
                    drain_then(
                        victim_retry.clone(),
                        DRAIN_POLLS,
                        eng,
                        Box::new(move |w, eng| {
                            merge_cutover(
                                router,
                                victim2,
                                victim_backend,
                                new_ring,
                                targets,
                                move_ranges,
                                src_host,
                                src_rkey,
                                src_addr,
                                spec,
                                done_cell,
                                w,
                                eng,
                            );
                        }),
                    );
                }),
            );
        }
    }
}

/// CutOver + Retired for a merge: copy the dirty delta (clipped to the
/// move ranges), flip the router to the merged ring with the victim's
/// client dropped, and pause the victim chain.
#[allow(clippy::too_many_arguments)]
fn merge_cutover(
    router: ShardRouter,
    victim_retry: RetryClient,
    victim_backend: Backend,
    new_ring: hl_cluster::shard::HashRing,
    targets: Vec<(HostId, u64)>,
    move_ranges: Vec<(u64, u64)>,
    src_host: HostId,
    src_rkey: u32,
    src_addr: u64,
    spec: MigrationSpec,
    done_cell: Rc<RefCell<Option<OnMigrated>>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    stage_transition(
        w,
        eng,
        MigrationStage::Draining.name(),
        MigrationStage::CutOver,
        src_host,
    );
    let dirty = victim_retry.take_dirty_log();
    // Clip every dirty range to the moving slot ranges: a survivor's
    // region holds *its own* keys at non-moving offsets, and an
    // unclipped copy of victim bytes there would clobber them.
    let mut deltas: Vec<(u64, u64)> = Vec::new();
    for &(doff, dlen) in &dirty {
        let (dlo, dhi) = (doff, doff + dlen as u64);
        for &(moff, mlen) in &move_ranges {
            let lo = dlo.max(moff);
            let hi = dhi.min(moff + mlen);
            if lo < hi {
                deltas.push((lo, hi - lo));
            }
        }
    }

    let flip = move |w: &mut World, eng: &mut Engine<World>| {
        let victim = router.n_shards() - 1;
        let shards: Vec<RetryClient> = (0..victim).map(|s| router.client(s)).collect();
        router.install(w, eng, new_ring, shards);
        // Teardown: the victim chain stops accepting work.
        pause_backend(&victim_backend);
        stage_transition(
            w,
            eng,
            MigrationStage::CutOver.name(),
            MigrationStage::Retired,
            src_host,
        );
        if let Some(done) = done_cell.borrow_mut().take() {
            done(w, eng);
        }
    };

    if deltas.is_empty() {
        flip(w, eng);
        return;
    }
    let delta_bytes: u64 = deltas.iter().map(|&(_, l)| l).sum();
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("migrate_delta_bytes", "layer=migrate", delta_bytes);
    }
    let total = deltas.len() * targets.len();
    let finished = Rc::new(RefCell::new(0usize));
    let flip_cell = Rc::new(RefCell::new(Some(flip)));
    for &(off, len) in &deltas {
        for &(th, taddr) in &targets {
            let finished = finished.clone();
            let flip_cell = flip_cell.clone();
            catch_up(
                w,
                eng,
                src_host,
                src_rkey,
                src_addr + off,
                th,
                taddr + off,
                len,
                spec.chunk,
                Box::new(move |w, eng| {
                    *finished.borrow_mut() += 1;
                    if *finished.borrow() == total {
                        if let Some(flip) = flip_cell.borrow_mut().take() {
                            flip(w, eng);
                        }
                    }
                }),
            );
        }
    }
}
