//! Documents: doclite's unit of storage.
//!
//! A document is an id plus named fields (YCSB uses ten ~100-byte
//! fields). Documents serialize into fixed-size slots of the database
//! area so replicas can apply updates with a single gMEMCPY.

/// A document: id + fields.
///
/// ```
/// use hl_store::doc::Document;
/// let mut d = Document::new(7);
/// d.set("city", b"budapest");
/// let slot = d.encode_slot(256);
/// let back = Document::decode_slot(&slot).unwrap();
/// assert_eq!(back.get("city"), Some(b"budapest".as_slice()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    /// Document id (YCSB key).
    pub id: u64,
    /// Named fields.
    pub fields: Vec<(String, Vec<u8>)>,
}

impl Document {
    /// New empty document.
    pub fn new(id: u64) -> Self {
        Document {
            id,
            fields: Vec::new(),
        }
    }

    /// Set (insert or replace) a field.
    pub fn set(&mut self, name: &str, value: &[u8]) {
        if let Some(f) = self.fields.iter_mut().find(|f| f.0 == name) {
            f.1 = value.to_vec();
        } else {
            self.fields.push((name.to_string(), value.to_vec()));
        }
    }

    /// Get a field.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.fields
            .iter()
            .find(|f| f.0 == name)
            .map(|f| f.1.as_slice())
    }

    /// Serialized size.
    pub fn encoded_len(&self) -> usize {
        let mut n = 8 + 2; // id + field count
        for (name, v) in &self.fields {
            n += 2 + name.len() + 4 + v.len();
        }
        n
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u16).to_le_bytes());
        for (name, v) in &self.fields {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    /// Deserialize; `None` on malformed bytes.
    pub fn decode(b: &[u8]) -> Option<Document> {
        let id = u64::from_le_bytes(b.get(..8)?.try_into().ok()?);
        let nf = u16::from_le_bytes(b.get(8..10)?.try_into().ok()?) as usize;
        let mut at = 10usize;
        let mut doc = Document::new(id);
        for _ in 0..nf {
            let nlen = u16::from_le_bytes(b.get(at..at + 2)?.try_into().ok()?) as usize;
            at += 2;
            let name = std::str::from_utf8(b.get(at..at + nlen)?).ok()?.to_string();
            at += nlen;
            let vlen = u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?) as usize;
            at += 4;
            let v = b.get(at..at + vlen)?.to_vec();
            at += vlen;
            doc.fields.push((name, v));
        }
        Some(doc)
    }

    /// Serialize into a fixed slot: `[u32 len][bytes...]`, zero-padded.
    /// Panics if the document does not fit.
    pub fn encode_slot(&self, slot_size: usize) -> Vec<u8> {
        let body = self.encode();
        assert!(
            body.len() + 4 <= slot_size,
            "document ({}B) exceeds slot ({}B)",
            body.len() + 4,
            slot_size
        );
        let mut out = vec![0u8; slot_size];
        out[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
        out[4..4 + body.len()].copy_from_slice(&body);
        out
    }

    /// Deserialize from a slot; `None` for an empty or corrupt slot.
    pub fn decode_slot(slot: &[u8]) -> Option<Document> {
        let len = u32::from_le_bytes(slot.get(..4)?.try_into().ok()?) as usize;
        if len == 0 || len + 4 > slot.len() {
            return None;
        }
        Document::decode(&slot[4..4 + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ycsb_doc(id: u64) -> Document {
        let mut d = Document::new(id);
        for f in 0..10 {
            d.set(&format!("field{f}"), &[f as u8; 100]);
        }
        d
    }

    #[test]
    fn roundtrip() {
        let d = ycsb_doc(42);
        assert_eq!(Document::decode(&d.encode()), Some(d.clone()));
        assert_eq!(d.encode().len(), d.encoded_len());
    }

    #[test]
    fn slot_roundtrip_and_empty() {
        let d = ycsb_doc(7);
        let slot = d.encode_slot(1536);
        assert_eq!(slot.len(), 1536);
        assert_eq!(Document::decode_slot(&slot), Some(d));
        assert_eq!(Document::decode_slot(&[0u8; 64]), None);
    }

    #[test]
    fn field_update_replaces() {
        let mut d = Document::new(1);
        d.set("a", b"one");
        d.set("a", b"two");
        assert_eq!(d.get("a"), Some(b"two".as_slice()));
        assert_eq!(d.fields.len(), 1);
        assert!(d.get("b").is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn oversized_slot_panics() {
        ycsb_doc(1).encode_slot(64);
    }

    proptest! {
        #[test]
        fn arbitrary_docs_roundtrip(
            id in any::<u64>(),
            fields in proptest::collection::vec(
                ("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..50)),
                0..8
            )
        ) {
            let mut d = Document::new(id);
            for (name, v) in &fields {
                d.set(name, v);
            }
            prop_assert_eq!(Document::decode(&d.encode()), Some(d));
        }
    }
}
