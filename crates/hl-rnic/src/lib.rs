//! # hl-rnic — RDMA NIC simulator
//!
//! A verbs-level model of a commodity RDMA NIC (ConnectX-3-class) with
//! the two capabilities HyperLoop builds on:
//!
//! 1. **RDMA WAIT** (CORE-Direct): a send queue can block on completions
//!    of *another* queue and, when triggered, grant ownership of the
//!    following WQEs to the NIC — enabling NIC-to-NIC forwarding chains
//!    with no CPU involvement.
//! 2. **In-memory WQE rings**: send-queue descriptors are 64-byte
//!    records in host memory, so a peer that has write access to the
//!    ring (granted deliberately by the modified driver) can rewrite
//!    descriptor fields of pre-posted WQEs — *remote work request
//!    manipulation*.
//!
//! Plus the standard verbs: memory regions with rkey permission checks,
//! RC send/write/read/atomics, completion queues with one-shot events,
//! and the durability FLUSH (0-byte READ draining the NIC's volatile
//! cache into NVM) from paper §4.2.

#![warn(missing_docs)]

mod cq;
mod mr;
mod nic;
mod packet;
mod qp;
#[cfg(feature = "check-ownership")]
pub mod track;
mod wqe;

pub use cq::{Cq, Cqe, CqeKind, CqeStatus};
pub use mr::{Access, MemoryRegion, MrError, MrTable};
pub use nic::{Nic, NicCounters, NicEvent, NicEventKind, NicOutput, RingFull};
pub use packet::{NakReason, Packet, PacketKind, HEADER_BYTES};
pub use qp::{PendingTx, Qp, QpState, QpTimeout, RecvWqe, ScatterEntry, SqRing};
pub use wqe::{field_offset, flags, Opcode, Wqe, WQE_SIZE};
