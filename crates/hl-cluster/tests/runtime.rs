//! Process-runtime tests: timers, work items, interrupts, messaging.

use hl_cluster::{ClusterBuilder, Ctx, ProcEvent, Process, World};
use hl_fabric::HostId;
use hl_rnic::{Access, Opcode, RecvWqe, Wqe};
use hl_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

type Log = Rc<RefCell<Vec<(SimTime, String)>>>;

struct Scripted {
    log: Log,
}

impl Process for Scripted {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => {
                self.log.borrow_mut().push((ctx.now(), "start".into()));
                ctx.set_timer(SimDuration::from_micros(50), 1, SimDuration::from_micros(1));
                ctx.set_timer(SimDuration::from_micros(20), 2, SimDuration::from_micros(1));
                ctx.submit_work(SimDuration::from_micros(5), 3);
            }
            ProcEvent::Timer { tag } => {
                self.log
                    .borrow_mut()
                    .push((ctx.now(), format!("timer{tag}")));
            }
            ProcEvent::WorkDone { tag } => {
                self.log
                    .borrow_mut()
                    .push((ctx.now(), format!("work{tag}")));
            }
            _ => {}
        }
    }
}

#[test]
fn timers_and_work_fire_in_time_order() {
    let (mut w, mut eng) = ClusterBuilder::new(1).arena_size(1 << 16).build();
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    w.start_process(
        HostId(0),
        "scripted",
        None,
        Box::new(Scripted { log: log.clone() }),
        SimDuration::from_micros(1),
        &mut eng,
    );
    eng.run(&mut w);
    let names: Vec<String> = log.borrow().iter().map(|e| e.1.clone()).collect();
    assert_eq!(names, vec!["start", "work3", "timer2", "timer1"]);
    // Times are monotonic and reflect the CPU costs.
    let times: Vec<u64> = log.borrow().iter().map(|e| e.0.as_nanos()).collect();
    assert!(times.windows(2).all(|t| t[0] <= t[1]));
    assert!(times[1] >= 5_000, "work charged 5us");
}

/// Event-driven I/O: a process subscribed to CQ interrupts is woken,
/// drains, re-arms, and gets woken again for the next completion.
struct EventIo {
    cq: u32,
    seen: Rc<RefCell<Vec<u64>>>,
}

impl Process for EventIo {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        if let ProcEvent::CqEvent { .. } = ev {
            for cqe in ctx.poll_cq(self.cq, 16) {
                self.seen.borrow_mut().push(cqe.wr_id);
            }
            ctx.arm_cq(self.cq);
        }
    }
}

#[test]
fn cq_interrupts_wake_process_repeatedly() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 18).build();
    // Wire a QP pair: host 0 sends, host 1 receives with interrupts.
    let scq0 = w.hosts[0].nic.create_cq();
    let rcq0 = w.hosts[0].nic.create_cq();
    let scq1 = w.hosts[1].nic.create_cq();
    let rcq1 = w.hosts[1].nic.create_cq();
    let qp0 = w.hosts[0].nic.create_qp(scq0, rcq0, 0x1000, 16);
    let qp1 = w.hosts[1].nic.create_qp(scq1, rcq1, 0x1000, 16);
    w.connect_qps(HostId(0), qp0, HostId(1), qp1);
    let _mr = w.hosts[1]
        .nic
        .register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    let seen = Rc::new(RefCell::new(Vec::new()));
    let addr = w.start_process(
        HostId(1),
        "event-io",
        None,
        Box::new(EventIo {
            cq: rcq1,
            seen: seen.clone(),
        }),
        SimDuration::from_micros(1),
        &mut eng,
    );
    w.subscribe_cq_interrupt(HostId(1), rcq1, addr.pid, SimDuration::from_micros(2));

    // Three SENDs, spaced out so each needs a fresh interrupt.
    for i in 0..3u64 {
        w.hosts[1].post_recv(
            qp1,
            RecvWqe {
                wr_id: 100 + i,
                scatter: vec![],
            },
        );
    }
    for i in 0..3u64 {
        eng.schedule(
            SimDuration::from_micros(i * 200),
            move |w: &mut World, eng| {
                let wqe = Wqe {
                    opcode: Opcode::Send,
                    len: 4,
                    laddr: 0x2000,
                    wr_id: i,
                    ..Default::default()
                };
                w.hosts[0].post_send(qp0, wqe, false).unwrap();
                w.ring_doorbell(HostId(0), qp0, eng);
            },
        );
    }
    eng.run(&mut w);
    assert_eq!(*seen.borrow(), vec![100, 101, 102]);
}

/// Messages across hosts pay wire time; bigger messages arrive later.
struct Recorder {
    log: Log,
}
impl Process for Recorder {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        if let ProcEvent::Message(m) = ev {
            let tag = m.downcast::<&'static str>().map(|b| *b).unwrap_or("?");
            self.log.borrow_mut().push((ctx.now(), tag.to_string()));
        }
    }
}

#[test]
fn message_wire_size_affects_arrival() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 16).build();
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let dst = w.start_process(
        HostId(1),
        "recorder",
        None,
        Box::new(Recorder { log: log.clone() }),
        SimDuration::from_micros(1),
        &mut eng,
    );
    // A 1 MB message sent first still arrives after a tiny one sent
    // second? No — egress is FIFO per host, so the big one serializes
    // first and delays the small one; both arrive in send order.
    w.send_msg_at(
        SimTime::ZERO,
        HostId(0),
        dst,
        Box::new("big"),
        1 << 20,
        SimDuration::from_micros(1),
        &mut eng,
    );
    w.send_msg_at(
        SimTime::ZERO,
        HostId(0),
        dst,
        Box::new("small"),
        64,
        SimDuration::from_micros(1),
        &mut eng,
    );
    eng.run(&mut w);
    let names: Vec<String> = log.borrow().iter().map(|e| e.1.clone()).collect();
    assert_eq!(names, vec!["big", "small"], "per-pair FIFO");
    // 1 MiB at 56 Gbps ≈ 150 us of serialization before the first one.
    assert!(log.borrow()[0].0.as_nanos() > 140_000);
}

/// submit_work keeps a process busy: a second event queues behind the
/// long work item and is handled afterwards (run-to-completion actor).
struct Busy {
    log: Log,
}
impl Process for Busy {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => {
                ctx.submit_work(SimDuration::from_millis(3), 7);
            }
            ProcEvent::WorkDone { tag } => {
                self.log
                    .borrow_mut()
                    .push((ctx.now(), format!("done{tag}")));
            }
            ProcEvent::Message(_) => {
                self.log.borrow_mut().push((ctx.now(), "msg".into()));
            }
            _ => {}
        }
    }
}

#[test]
fn long_work_delays_message_handling() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 16).build();
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let addr = w.start_process(
        HostId(0),
        "busy",
        None,
        Box::new(Busy { log: log.clone() }),
        SimDuration::from_micros(1),
        &mut eng,
    );
    // Message lands at t=100us, squarely inside the 3 ms work item.
    eng.schedule(SimDuration::from_micros(100), move |w: &mut World, eng| {
        let now = eng.now();
        w.send_msg_at(
            now,
            HostId(1),
            addr,
            Box::new(1u8),
            64,
            SimDuration::from_micros(1),
            eng,
        );
    });
    eng.run(&mut w);
    let names: Vec<String> = log.borrow().iter().map(|e| e.1.clone()).collect();
    assert_eq!(names, vec!["done7", "msg"]);
    assert!(log.borrow()[1].0.as_nanos() >= 3_000_000);
}

/// The trace buffer captures fabric and completion events when enabled.
#[test]
fn tracer_captures_datapath_events() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 18).build();
    w.tracer.enable(&["fabric", "rnic"]);
    let scq0 = w.hosts[0].nic.create_cq();
    let rcq0 = w.hosts[0].nic.create_cq();
    let scq1 = w.hosts[1].nic.create_cq();
    let rcq1 = w.hosts[1].nic.create_cq();
    let qp0 = w.hosts[0].nic.create_qp(scq0, rcq0, 0x1000, 16);
    let qp1 = w.hosts[1].nic.create_qp(scq1, rcq1, 0x1000, 16);
    w.connect_qps(HostId(0), qp0, HostId(1), qp1);
    let mr = w.hosts[1]
        .nic
        .register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);
    let wqe = Wqe {
        opcode: Opcode::Write,
        flags: hl_rnic::flags::SIGNALED,
        len: 8,
        laddr: 0x8000,
        raddr: 0x8000,
        rkey: mr.rkey,
        wr_id: 5,
        ..Default::default()
    };
    w.hosts[0].post_send(qp0, wqe, false).unwrap();
    w.ring_doorbell(HostId(0), qp0, &mut eng);
    eng.run(&mut w);
    // One write + one ack crossed the fabric.
    assert!(!w.tracer.grep("h0->h1").is_empty(), "write traced");
    assert!(!w.tracer.grep("h1->h0").is_empty(), "ack traced");
}
