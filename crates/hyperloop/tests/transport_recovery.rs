//! Transport-level fault tolerance: NIC error machinery driving chain
//! recovery, deadline supervision, and graceful degradation.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimDuration, SimTime};
use hyperloop::api::GroupClient;
use hyperloop::recovery::{self};
use hyperloop::{
    naive, replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupRef, HyperLoopClient, OpError,
    RetryClient,
};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(seed: u64) -> (World, Engine<World>, GroupRef, HyperLoopClient) {
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 32,
        transport_timeout: Some((SimDuration::from_micros(100), 3)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    (w, eng, group, client)
}

/// A gWRITE caught mid-flight by a dead head-replica NIC: the client's
/// reliable QP exhausts its retry budget, the error CQE triggers a
/// rebuild onto the standby, and the deadline supervisor re-issues the
/// op on the new chain — the caller sees a plain ACK.
#[test]
fn nic_stall_error_cqe_rebuilds_and_reissues() {
    let (mut w, mut eng, group, client) = setup(70);
    let retry = RetryClient::with_policy(
        client,
        DeadlinePolicy {
            deadline: SimDuration::from_millis(1),
            max_attempts: 20,
            backoff: SimDuration::from_micros(200),
            backoff_cap: SimDuration::from_millis(2),
        },
    );

    // A few records land while the chain is healthy.
    let warm = Rc::new(RefCell::new(0));
    for k in 0..4u64 {
        let warm = warm.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            k * 64,
            format!("warm-{k}").as_bytes(),
            true,
            Box::new(move |_w, _e, r| {
                assert!(r.is_ok());
                *warm.borrow_mut() += 1;
            }),
        );
    }
    let warm2 = warm.clone();
    eng.run_while(&mut w, move |_| *warm2.borrow() < 4);

    let rebuilt = Rc::new(RefCell::new(false));
    {
        let retry = retry.clone();
        let rebuilt = rebuilt.clone();
        recovery::rebuild_on_cq_error(
            &group,
            &mut w,
            vec![HostId(2)],
            Some(HostId(3)),
            32,
            Box::new(move |_w, _eng, new_client| {
                *rebuilt.borrow_mut() = true;
                retry.swap(new_client);
            }),
        );
    }

    // The head replica's NIC dies for good, with the next write issued
    // straight into the outage.
    w.set_nic_stalled(HostId(1), true, &mut eng);
    let acked = Rc::new(RefCell::new(false));
    {
        let acked = acked.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            4 * 64,
            b"survives-the-stall",
            true,
            Box::new(move |_w, _e, r| {
                r.expect("supervised write must complete after rebuild");
                *acked.borrow_mut() = true;
            }),
        );
    }
    let a = acked.clone();
    assert!(
        eng.run_while(&mut w, move |_| !*a.borrow()),
        "engine drained before the supervised write settled"
    );
    assert!(*rebuilt.borrow(), "CQ error did not trigger the rebuild");

    // The record (and the warm-up history) is on every member of the
    // rebuilt chain, which excludes the dead replica.
    let c = retry.client();
    assert_eq!(c.group_size(), 3);
    for m in 0..c.group_size() {
        let host = c.member_host(m);
        assert_ne!(host, HostId(1));
        let got = w.hosts[host.0]
            .mem
            .read_vec(c.member_addr(m, 4 * 64), 18)
            .unwrap();
        assert_eq!(got, b"survives-the-stall", "member {m}");
        let got = w.hosts[host.0]
            .mem
            .read_vec(c.member_addr(m, 0), 6)
            .unwrap();
        assert_eq!(got, b"warm-0", "member {m} lost warm-up history");
    }
    assert_eq!(retry.outstanding(), 0);
}

/// With no recovery armed and the head unreachable, a supervised write
/// burns its whole attempt budget and fails *typed* — it never hangs.
#[test]
fn deadline_exceeded_is_typed_not_a_hang() {
    let (mut w, mut eng, _group, client) = setup(71);
    let retry = RetryClient::with_policy(
        client,
        DeadlinePolicy {
            deadline: SimDuration::from_micros(500),
            max_attempts: 4,
            backoff: SimDuration::from_micros(100),
            backoff_cap: SimDuration::from_micros(400),
        },
    );
    // Nothing reaches the head, in either direction.
    w.fabric.partition(HostId(0), HostId(1));
    w.fabric.partition(HostId(1), HostId(0));

    let outcome = Rc::new(RefCell::new(None));
    {
        let outcome = outcome.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            0,
            b"into-the-void",
            true,
            Box::new(move |_w, _e, r| *outcome.borrow_mut() = Some(r)),
        );
    }
    eng.run_until(&mut w, SimTime::from_nanos(100_000_000));
    match outcome.borrow().as_ref() {
        Some(Err(OpError::DeadlineExceeded { attempts: 4 })) => {}
        other => panic!("expected typed deadline failure, got {other:?}"),
    }
    assert_eq!(retry.outstanding(), 0);
    assert_eq!(
        retry.failures(),
        vec![OpError::DeadlineExceeded { attempts: 4 }]
    );
}

/// A wedged WAIT engine (packets flow, parked chains never fire) is the
/// case reliability retries cannot fix: the group degrades to Naive-CPU
/// forwarding over the same members, seeded from the client's copy, and
/// writes keep completing.
#[test]
fn wait_stall_degrades_to_naive_forwarding() {
    let (mut w, mut eng, group, client) = setup(72);

    let warm = Rc::new(RefCell::new(0));
    for k in 0..3u64 {
        let warm = warm.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                k * 64,
                format!("pre-{k}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| *warm.borrow_mut() += 1),
            )
            .unwrap();
    }
    let warm2 = warm.clone();
    eng.run_while(&mut w, move |_| *warm2.borrow() < 3);

    // The head's WAIT engine wedges: its NIC still moves packets, but
    // no deferred chain will ever fire again.
    w.set_nic_wait_stalled(HostId(1), true, &mut eng);

    let degraded: Rc<RefCell<Option<naive::NaiveClient>>> = Rc::new(RefCell::new(None));
    {
        let degraded = degraded.clone();
        recovery::degrade_to_naive(
            &group,
            &mut w,
            &mut eng,
            naive::Mode::Event,
            Box::new(move |_w, _eng, nc| *degraded.borrow_mut() = Some(nc)),
        );
    }
    let d = degraded.clone();
    assert!(
        eng.run_while(&mut w, move |_| d.borrow().is_none()),
        "degradation never completed"
    );
    let nc = degraded.borrow_mut().take().unwrap();

    // The naive chain was seeded with the pre-fault history.
    for m in 0..nc.group_size() {
        let host = nc.member_host(m);
        let got = w.hosts[host.0]
            .mem
            .read_vec(nc.member_addr(m, 0), 5)
            .unwrap();
        assert_eq!(got, b"pre-0", "member {m} missing seeded history");
    }

    // And it makes progress on the very NIC whose offload path is dead.
    let acked = Rc::new(RefCell::new(false));
    {
        let acked = acked.clone();
        nc.gwrite(
            &mut w,
            &mut eng,
            3 * 64,
            b"degraded-write",
            true,
            Box::new(move |_w, _e, _r| *acked.borrow_mut() = true),
        )
        .unwrap();
    }
    let a = acked.clone();
    assert!(
        eng.run_while(&mut w, move |_| !*a.borrow()),
        "degraded write never completed"
    );
    for m in 0..nc.group_size() {
        let host = nc.member_host(m);
        let got = w.hosts[host.0]
            .mem
            .read_vec(nc.member_addr(m, 3 * 64), 14)
            .unwrap();
        assert_eq!(got, b"degraded-write", "member {m}");
    }
}
