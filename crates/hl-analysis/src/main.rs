//! CLI for the determinism lints.
//!
//! ```text
//! cargo run -p hl-analysis -- check [ROOT]   # lint the sim-core crates
//! cargo run -p hl-analysis -- rules          # list the rules
//! ```
//!
//! `check` exits 1 when any finding survives the allow-comments.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for (name, desc) in hl_analysis::RULES {
                println!("{name:18} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => {
                    let cwd = std::env::current_dir().expect("cwd");
                    match hl_analysis::find_workspace_root(&cwd) {
                        Some(r) => r,
                        None => {
                            eprintln!("error: no workspace root found above {}", cwd.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            let findings = match hl_analysis::check_workspace(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!(
                    "hl-analysis: clean ({} crates checked)",
                    hl_analysis::SIM_CRATES.len()
                );
                ExitCode::SUCCESS
            } else {
                println!("hl-analysis: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: hl-analysis <check [ROOT] | rules>");
            ExitCode::FAILURE
        }
    }
}
