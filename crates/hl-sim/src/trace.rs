//! Lightweight event tracing.
//!
//! A ring buffer of `(time, subsystem, message)` records that tests and
//! debugging sessions can enable per-world. Disabled by default and
//! costs one branch per trace point when off.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// Subsystem tag, e.g. `"rnic"`, `"sched"`, `"hyperloop"`.
    pub sys: &'static str,
    /// Rendered message.
    pub msg: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.at, self.sys, self.msg)
    }
}

/// Bounded trace buffer.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
    /// Optional subsystem filter; empty = all.
    filter: Vec<&'static str>,
    /// Echo entries to stderr as they are recorded.
    echo: bool,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            enabled: false,
            capacity: 65_536,
            entries: VecDeque::new(),
            dropped: 0,
            filter: Vec::new(),
            echo: false,
        }
    }
}

impl Tracer {
    /// Enable tracing (optionally restricted to some subsystems).
    pub fn enable(&mut self, subsystems: &[&'static str]) {
        self.enabled = true;
        self.filter = subsystems.to_vec();
    }

    /// Also print each record to stderr as it is recorded.
    pub fn echo(&mut self, on: bool) {
        self.echo = on;
    }

    /// Is tracing on for `sys`? Callers should guard expensive message
    /// formatting with this.
    #[inline]
    pub fn wants(&self, sys: &'static str) -> bool {
        self.enabled && (self.filter.is_empty() || self.filter.contains(&sys))
    }

    /// Record a message (drops oldest-first beyond capacity).
    pub fn record(&mut self, at: SimTime, sys: &'static str, msg: String) {
        if !self.wants(sys) {
            return;
        }
        if self.echo {
            eprintln!("[{at} {sys}] {msg}");
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, sys, msg });
    }

    /// All retained entries in order (oldest first).
    pub fn entries(&self) -> &VecDeque<TraceEntry> {
        &self.entries
    }

    /// Entries whose message contains `needle`.
    pub fn grep(&self, needle: &str) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.msg.contains(needle))
            .collect()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Record a trace message with lazy formatting.
///
/// ```ignore
/// trace!(world.tracer, now, "rnic", "qp{} doorbell", qpn);
/// ```
#[macro_export]
macro_rules! trace {
    ($tracer:expr, $at:expr, $sys:expr, $($arg:tt)*) => {
        if $tracer.wants($sys) {
            $tracer.record($at, $sys, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let mut t = Tracer::default();
        t.record(SimTime::ZERO, "rnic", "hello".into());
        assert!(t.entries().is_empty());
    }

    #[test]
    fn filter_by_subsystem() {
        let mut t = Tracer::default();
        t.enable(&["rnic"]);
        t.record(SimTime::ZERO, "rnic", "keep".into());
        t.record(SimTime::ZERO, "sched", "drop".into());
        assert_eq!(t.entries().len(), 1);
        assert_eq!(t.entries()[0].msg, "keep");
    }

    #[test]
    fn grep_finds_matches() {
        let mut t = Tracer::default();
        t.enable(&[]);
        t.record(SimTime::ZERO, "a", "alpha beta".into());
        t.record(SimTime::ZERO, "b", "gamma".into());
        assert_eq!(t.grep("beta").len(), 1);
        assert_eq!(t.grep("zeta").len(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Tracer {
            capacity: 2,
            ..Default::default()
        };
        t.enable(&[]);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), "x", format!("m{i}"));
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.entries()[0].msg, "m3");
    }

    #[test]
    fn trace_macro_formats_lazily() {
        let mut t = Tracer::default();
        t.enable(&["sys"]);
        let x = 42;
        trace!(t, SimTime::ZERO, "sys", "value {}", x);
        trace!(t, SimTime::ZERO, "other", "skipped {}", x);
        assert_eq!(t.entries().len(), 1);
        assert_eq!(t.entries()[0].msg, "value 42");
    }
}
