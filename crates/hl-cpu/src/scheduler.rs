//! CFS-like multi-tenant CPU scheduler model.
//!
//! One [`HostCpu`] models all cores of a host and the processes sharing
//! them. The model is a pure state machine: callers feed it *work
//! submissions* and *timer expirations*, and it returns outputs
//! (`Timer` requests and `WorkDone` notifications) that the cluster
//! layer turns into simulation events.
//!
//! The scheduling policy is a simplified CFS:
//!
//! * per-host runqueue ordered by **vruntime** (equal weights);
//! * fixed **time slice**; a preempted or expired process keeps its
//!   unfinished work and re-enters the runqueue;
//! * **sleeper fairness**: a woken process's vruntime is floored at
//!   `min_vruntime − slice`, so interactive processes usually run soon;
//! * **wakeup preemption** with a granularity threshold: a woken process
//!   preempts the running process with the largest vruntime if it leads
//!   by more than `wakeup_granularity`;
//! * explicit **context-switch cost** and counting (Figure 2 of the
//!   paper plots context switches).
//!
//! This is exactly the machinery whose queueing delays put replica CPUs
//! on the critical path in the paper's Naïve-RDMA and native baselines;
//! HyperLoop's NIC datapath never enters this module.

use hl_sim::config::CpuProfile;
use hl_sim::{Histogram, SimDuration, SimTime};
use std::collections::VecDeque;

/// Process identifier within one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Tag identifying a completed unit of work back to the submitter.
pub type WorkTag = u64;

/// Outputs the cluster layer must act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuOutput {
    /// Schedule a call to [`HostCpu::on_timer`] for `core` at `at`.
    /// Stale timers (superseded `gen`) are ignored by the model.
    Timer {
        /// Core index.
        core: usize,
        /// Generation to pass back (staleness check).
        gen: u64,
        /// Absolute expiry time.
        at: SimTime,
    },
    /// A submitted work item finished executing.
    WorkDone {
        /// Owning process.
        pid: ProcId,
        /// Tag given at submission.
        tag: WorkTag,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Blocked,
    Runnable,
    Running { core: usize },
}

#[derive(Debug, Clone)]
struct WorkItem {
    /// Remaining CPU nanoseconds; `u64::MAX` means infinite (CPU hog).
    remaining: u64,
    tag: WorkTag,
}

impl WorkItem {
    fn is_infinite(&self) -> bool {
        self.remaining == u64::MAX
    }
}

#[derive(Debug)]
struct Proc {
    name: String,
    state: RunState,
    pinned: Option<usize>,
    vruntime: u64,
    work: VecDeque<WorkItem>,
    busy_ns: u64,
    runnable_since: SimTime,
    dispatches: u64,
}

#[derive(Debug, Clone)]
struct Core {
    running: Option<ProcId>,
    /// Reserved for its pinned process only (dedicated-core setups).
    exclusive: bool,
    /// Last process that ran here (same-process re-dispatch is free).
    last_ran: Option<ProcId>,
    /// Timer generation; stale timers carry an older value.
    gen: u64,
    /// When the currently dispatched process began consuming CPU
    /// (i.e. after the context-switch cost).
    run_start: SimTime,
    /// End of the current time slice.
    slice_end: SimTime,
}

/// All cores and processes of one simulated host.
#[derive(Debug)]
pub struct HostCpu {
    profile: CpuProfile,
    cores: Vec<Core>,
    procs: Vec<Proc>,
    /// Monotonic vruntime floor (sleeper fairness reference).
    min_vruntime: u64,
    /// Woken task preempts only if it leads the victim's vruntime by this.
    wakeup_granularity: u64,
    ctx_switches: u64,
    sched_latency: Histogram,
    started_at: SimTime,
    /// Optional noise source: real schedulers are not metronomes. When
    /// set, each dispatched slice length is jittered ±10%, which breaks
    /// the artificial lockstep of simultaneously-started CPU hogs.
    rng: Option<hl_sim::RngStream>,
}

impl HostCpu {
    /// A host with `profile.cores` cores.
    pub fn new(profile: CpuProfile) -> Self {
        let cores = (0..profile.cores)
            .map(|_| Core {
                running: None,
                exclusive: false,
                last_ran: None,
                gen: 0,
                run_start: SimTime::ZERO,
                slice_end: SimTime::ZERO,
            })
            .collect();
        HostCpu {
            cores,
            procs: Vec::new(),
            min_vruntime: 0,
            wakeup_granularity: profile.wakeup_granularity.as_nanos(),
            ctx_switches: 0,
            sched_latency: Histogram::new(),
            started_at: SimTime::ZERO,
            rng: None,
            profile,
        }
    }

    /// Install a noise source (slice-length jitter ±10%).
    pub fn set_rng(&mut self, rng: hl_sim::RngStream) {
        self.rng = Some(rng);
    }

    /// Reserve a core for its pinned process only. Unpinned processes
    /// will never be dispatched there (dedicated-core / cpuset setups).
    pub fn set_exclusive(&mut self, core: usize, on: bool) {
        self.cores[core].exclusive = on;
    }

    /// CFS-like slice: the scheduling period is divided among runnable
    /// tasks, so slices shrink as oversubscription grows (and context
    /// switches rise — Figure 2's mechanism), floored at a minimum
    /// granularity. Jittered ±10% when a noise source is installed.
    fn slice_len(&mut self) -> SimDuration {
        let runnable = self
            .procs
            .iter()
            .filter(|p| p.state != RunState::Blocked)
            .count()
            .max(1);
        let cores = self.cores.len().max(1);
        let base = self.profile.time_slice.as_nanos() as f64;
        let min_gran = base / 10.0;
        let scaled = (base * cores as f64 / runnable as f64).clamp(min_gran, base);
        let ns = match &mut self.rng {
            Some(r) => scaled * (0.9 + 0.2 * r.f64()),
            None => scaled,
        };
        SimDuration::from_nanos(ns as u64)
    }

    /// Override the wakeup-preemption granularity.
    pub fn set_wakeup_granularity(&mut self, d: SimDuration) {
        self.wakeup_granularity = d.as_nanos();
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Register a process. `pinned` restricts it to one core.
    pub fn spawn(&mut self, name: &str, pinned: Option<usize>) -> ProcId {
        if let Some(c) = pinned {
            assert!(c < self.cores.len(), "pin target out of range");
        }
        let pid = ProcId(self.procs.len());
        self.procs.push(Proc {
            name: name.to_string(),
            state: RunState::Blocked,
            pinned,
            vruntime: self.min_vruntime,
            work: VecDeque::new(),
            busy_ns: 0,
            runnable_since: SimTime::ZERO,
            dispatches: 0,
        });
        pid
    }

    /// Spawn a CPU hog: always runnable, consumes every cycle offered.
    /// Models `stress-ng` background tenants.
    pub fn spawn_hog(&mut self, now: SimTime, name: &str) -> (ProcId, Vec<CpuOutput>) {
        let pid = self.spawn(name, None);
        let out = self.submit(now, pid, u64::MAX, 0);
        (pid, out)
    }

    /// Submit `work_ns` of CPU work for `pid`, tagged `tag`. Wakes the
    /// process if blocked. `u64::MAX` means run forever (hog).
    pub fn submit(
        &mut self,
        now: SimTime,
        pid: ProcId,
        work_ns: u64,
        tag: WorkTag,
    ) -> Vec<CpuOutput> {
        self.procs[pid.0].work.push_back(WorkItem {
            remaining: work_ns,
            tag,
        });
        match self.procs[pid.0].state {
            RunState::Blocked => self.wake(now, pid),
            RunState::Runnable | RunState::Running { .. } => Vec::new(),
        }
    }

    fn wake(&mut self, now: SimTime, pid: ProcId) -> Vec<CpuOutput> {
        debug_assert_eq!(self.procs[pid.0].state, RunState::Blocked);
        self.refresh_min_vruntime();
        // Sleeper fairness: don't let long sleepers starve everyone, but
        // give them a bounded credit.
        let bonus = self.profile.sleeper_bonus.as_nanos();
        let mut target = self.min_vruntime.saturating_sub(bonus);
        // Per-CPU-runqueue imbalance: under overload, the wakeup path
        // (prev_cpu / waker-cpu affinity) sometimes enqueues behind
        // tasks already queued on a busy core instead of at the global
        // head — Linux runqueues are per-core and balancing is lazy.
        let runnable = self
            .procs
            .iter()
            .filter(|p| p.state != RunState::Blocked)
            .count();
        let overload = runnable.saturating_sub(self.cores.len());
        if overload > 0 && self.profile.wake_penalty_slices > 0.0 {
            if let Some(rng) = &mut self.rng {
                let p_bad = (overload as f64 / (32.0 * self.cores.len() as f64)).min(0.04);
                if rng.chance(p_bad) {
                    let max_pen = self.profile.time_slice.as_nanos() as f64
                        * self.profile.wake_penalty_slices;
                    target = self.min_vruntime + (rng.f64() * max_pen) as u64;
                }
            }
        }
        let p = &mut self.procs[pid.0];
        p.vruntime = p.vruntime.max(target);
        p.state = RunState::Runnable;
        p.runnable_since = now;

        // Idle core available? (Re-dispatching on the core we just ran
        // on skips the wakeup IPI.)
        if let Some(core) = self.pick_idle_core(pid) {
            let delay = if self.cores[core].last_ran == Some(pid) {
                SimDuration::ZERO
            } else {
                self.profile.wakeup
            };
            return self.dispatch(now + delay, core, pid);
        }
        // Wakeup preemption: evict the running process with the largest
        // vruntime if the woken one leads by more than the granularity.
        if let Some(core) = self.pick_preemption_victim(pid) {
            let mut out = self.preempt(now, core);
            out.extend(self.dispatch(now + self.profile.wakeup, core, pid));
            return out;
        }
        Vec::new()
    }

    fn pick_idle_core(&self, pid: ProcId) -> Option<usize> {
        let p = &self.procs[pid.0];
        match p.pinned {
            Some(c) => self.cores[c].running.is_none().then_some(c),
            None => {
                // Prefer the core this process last ran on (warm cache,
                // no cross-core wakeup); never use exclusive cores.
                let usable = |c: usize| self.cores[c].running.is_none() && !self.cores[c].exclusive;
                (0..self.cores.len())
                    .find(|&c| usable(c) && self.cores[c].last_ran == Some(pid))
                    .or_else(|| (0..self.cores.len()).find(|&c| usable(c)))
            }
        }
    }

    fn pick_preemption_victim(&self, pid: ProcId) -> Option<usize> {
        let woken = &self.procs[pid.0];
        let candidates: Box<dyn Iterator<Item = usize>> = match woken.pinned {
            Some(c) => Box::new(std::iter::once(c)),
            None => Box::new(0..self.cores.len()),
        };
        let mut best: Option<(usize, u64)> = None;
        for c in candidates {
            if self.cores[c].exclusive && self.procs[pid.0].pinned != Some(c) {
                continue;
            }
            let Some(victim) = self.cores[c].running else {
                continue;
            };
            let v = self.procs[victim.0].vruntime;
            if v > woken.vruntime + self.wakeup_granularity && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((c, v));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Stop the process on `core` mid-slice, preserving unfinished work.
    fn preempt(&mut self, now: SimTime, core: usize) -> Vec<CpuOutput> {
        // Callers only preempt a core they just found busy; an idle core
        // here is a scheduler-invariant violation worth aborting on.
        // hl-lint: allow(panic-in-handler)
        let pid = self.cores[core].running.expect("preempting idle core");
        self.charge(now, core, pid);
        let p = &mut self.procs[pid.0];
        p.state = RunState::Runnable;
        p.runnable_since = now;
        self.cores[core].running = None;
        self.cores[core].gen += 1; // invalidate outstanding timer
        Vec::new()
    }

    /// Account CPU consumed by `pid` on `core` since dispatch, shrinking
    /// its current work item.
    fn charge(&mut self, now: SimTime, core: usize, pid: ProcId) {
        let elapsed = now
            .saturating_duration_since(self.cores[core].run_start)
            .as_nanos();
        let p = &mut self.procs[pid.0];
        p.busy_ns += elapsed;
        p.vruntime += elapsed;
        if let Some(item) = p.work.front_mut() {
            if !item.is_infinite() {
                item.remaining = item.remaining.saturating_sub(elapsed);
            }
        }
    }

    /// Put `pid` on `core` starting at `now` (context-switch cost applies
    /// when the core last ran a different process).
    fn dispatch(&mut self, now: SimTime, core: usize, pid: ProcId) -> Vec<CpuOutput> {
        debug_assert!(self.cores[core].running.is_none());
        debug_assert_eq!(self.procs[pid.0].state, RunState::Runnable);
        // Continuing the same process on the same core costs nothing.
        let same = self.cores[core].last_ran == Some(pid);
        let ctx = if same {
            SimDuration::ZERO
        } else {
            self.ctx_switches += 1;
            self.profile.ctx_switch
        };
        let start = now + ctx;
        let slice = self.slice_len();
        let p = &mut self.procs[pid.0];
        p.state = RunState::Running { core };
        p.dispatches += 1;
        self.sched_latency
            .record(now.saturating_duration_since(p.runnable_since).as_nanos());
        let slice_end = start + slice;
        let decision = match p.work.front() {
            Some(w) if !w.is_infinite() => {
                (start + SimDuration::from_nanos(w.remaining)).min(slice_end)
            }
            _ => slice_end,
        };
        let c = &mut self.cores[core];
        c.running = Some(pid);
        c.last_ran = Some(pid);
        c.run_start = start;
        c.slice_end = slice_end;
        c.gen += 1;
        vec![CpuOutput::Timer {
            core,
            gen: c.gen,
            at: decision,
        }]
    }

    /// Timer callback. Ignores stale generations.
    pub fn on_timer(&mut self, now: SimTime, core: usize, gen: u64) -> Vec<CpuOutput> {
        if self.cores[core].gen != gen {
            return Vec::new();
        }
        // Scheduler invariant, not reachable from packet/external data:
        // a current-generation timer implies the core is running (idling
        // a core bumps its gen). hl-lint: allow(panic-in-handler)
        let pid = self.cores[core].running.expect("timer on idle core");
        self.charge(now, core, pid);
        // Reset run_start so later charges don't double count.
        self.cores[core].run_start = now;
        let mut out = Vec::new();

        let finished = self.procs[pid.0]
            .work
            .front()
            .is_some_and(|w| !w.is_infinite() && w.remaining == 0);
        if finished {
            // `finished` just observed a front item. hl-lint: allow(panic-in-handler)
            let item = self.procs[pid.0].work.pop_front().unwrap();
            out.push(CpuOutput::WorkDone { pid, tag: item.tag });
        }

        let slice_over = now >= self.cores[core].slice_end;
        let has_work = !self.procs[pid.0].work.is_empty();

        if has_work && !slice_over {
            // Continue within the slice on the next item.
            let slice_end = self.cores[core].slice_end;
            let decision = match self.procs[pid.0].work.front() {
                Some(w) if !w.is_infinite() => {
                    (now + SimDuration::from_nanos(w.remaining)).min(slice_end)
                }
                _ => slice_end,
            };
            let c = &mut self.cores[core];
            c.gen += 1;
            out.push(CpuOutput::Timer {
                core,
                gen: c.gen,
                at: decision,
            });
            return out;
        }

        // The process leaves the core: either it has no work (block) or
        // its slice expired (back to the runqueue).
        self.cores[core].running = None;
        self.cores[core].gen += 1;
        {
            let p = &mut self.procs[pid.0];
            if has_work {
                p.state = RunState::Runnable;
                p.runnable_since = now;
            } else {
                p.state = RunState::Blocked;
            }
        }
        out.extend(self.schedule_core(now, core));
        out
    }

    /// Pick the lowest-vruntime runnable process allowed on `core`.
    fn schedule_core(&mut self, now: SimTime, core: usize) -> Vec<CpuOutput> {
        debug_assert!(self.cores[core].running.is_none());
        let mut best: Option<(ProcId, u64)> = None;
        let exclusive = self.cores[core].exclusive;
        for (i, p) in self.procs.iter().enumerate() {
            if p.state != RunState::Runnable {
                continue;
            }
            if p.pinned.is_some_and(|c| c != core) {
                continue;
            }
            if exclusive && p.pinned != Some(core) {
                continue;
            }
            if best.is_none_or(|(_, bv)| p.vruntime < bv) {
                best = Some((ProcId(i), p.vruntime));
            }
        }
        match best {
            Some((pid, _)) => self.dispatch(now, core, pid),
            None => Vec::new(),
        }
    }

    fn refresh_min_vruntime(&mut self) {
        let active_min = self
            .procs
            .iter()
            .filter(|p| p.state != RunState::Blocked)
            .map(|p| p.vruntime)
            .min();
        if let Some(m) = active_min {
            self.min_vruntime = self.min_vruntime.max(m);
        }
    }

    // ----- metrics -------------------------------------------------------

    /// Total context switches (dispatches) on this host.
    pub fn ctx_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// CPU nanoseconds consumed by a process so far.
    pub fn busy_ns(&self, pid: ProcId) -> u64 {
        self.procs[pid.0].busy_ns
    }

    /// Total CPU nanoseconds consumed by processes whose name starts
    /// with `prefix` (experiment accounting: separate background hogs
    /// from the datapath).
    pub fn busy_ns_by_prefix(&self, prefix: &str) -> u64 {
        self.procs
            .iter()
            .filter(|p| p.name.starts_with(prefix))
            .map(|p| p.busy_ns)
            .sum()
    }

    /// Process name.
    pub fn proc_name(&self, pid: ProcId) -> &str {
        &self.procs[pid.0].name
    }

    /// Utilization of a process over `[started_at, now]`, in `[0, 1]`
    /// of one core.
    pub fn utilization(&self, now: SimTime, pid: ProcId) -> f64 {
        let window = now.saturating_duration_since(self.started_at).as_nanos();
        if window == 0 {
            return 0.0;
        }
        self.procs[pid.0].busy_ns as f64 / window as f64
    }

    /// Aggregate host utilization in `[0, 1]` across all cores.
    pub fn host_utilization(&self, now: SimTime) -> f64 {
        let window = now.saturating_duration_since(self.started_at).as_nanos();
        if window == 0 {
            return 0.0;
        }
        let busy: u64 = self.procs.iter().map(|p| p.busy_ns).sum();
        busy as f64 / (window as f64 * self.cores.len() as f64)
    }

    /// Histogram of wakeup→dispatch latencies (the scheduling delay that
    /// drives the paper's tails).
    pub fn sched_latency(&self) -> &Histogram {
        &self.sched_latency
    }

    /// Reset accounting counters (for measuring a steady-state window).
    pub fn reset_metrics(&mut self, now: SimTime) {
        self.started_at = now;
        self.ctx_switches = 0;
        self.sched_latency = Histogram::new();
        for p in &mut self.procs {
            p.busy_ns = 0;
            p.dispatches = 0;
        }
    }

    /// Is the process currently blocked with no queued work? (test aid)
    pub fn is_idle(&self, pid: ProcId) -> bool {
        self.procs[pid.0].state == RunState::Blocked && self.procs[pid.0].work.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sim::Engine;

    /// Harness: drives a HostCpu under the DES engine, collecting
    /// WorkDone completions as (time, pid, tag).
    struct Sim {
        cpu: HostCpu,
        done: Vec<(SimTime, ProcId, WorkTag)>,
    }
    hl_sim::inert_event_ctx!(Sim);

    fn route(out: Vec<CpuOutput>, sim: &mut Sim, eng: &mut Engine<Sim>) {
        for o in out {
            match o {
                CpuOutput::Timer { core, gen, at } => {
                    eng.schedule_at(at, move |sim: &mut Sim, eng| {
                        let out = sim.cpu.on_timer(eng.now(), core, gen);
                        route(out, sim, eng);
                    });
                }
                CpuOutput::WorkDone { pid, tag } => {
                    let now = eng.now();
                    sim.done.push((now, pid, tag));
                }
            }
        }
    }

    fn profile(cores: usize) -> CpuProfile {
        CpuProfile {
            cores,
            ..CpuProfile::default()
        }
    }

    #[test]
    fn single_proc_runs_immediately() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let pid = sim.cpu.spawn("worker", None);
        let out = sim.cpu.submit(SimTime::ZERO, pid, 10_000, 7);
        route(out, &mut sim, &mut eng);
        eng.run(&mut sim);
        assert_eq!(sim.done.len(), 1);
        let (t, p, tag) = sim.done[0];
        assert_eq!(p, pid);
        assert_eq!(tag, 7);
        // wakeup (2us) + ctx (3us) + work (10us) = 15us
        assert_eq!(t.as_nanos(), 15_000);
        assert!(sim.cpu.is_idle(pid));
        assert_eq!(sim.cpu.busy_ns(pid), 10_000);
    }

    #[test]
    fn work_longer_than_slice_spans_quanta() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let pid = sim.cpu.spawn("worker", None);
        // 2.5 ms of work with 1 ms slices: needs 3 dispatches.
        let out = sim.cpu.submit(SimTime::ZERO, pid, 2_500_000, 1);
        route(out, &mut sim, &mut eng);
        eng.run(&mut sim);
        assert_eq!(sim.done.len(), 1);
        assert_eq!(sim.cpu.busy_ns(pid), 2_500_000);
        // It was alone: re-dispatch on the same core is free, so only
        // the initial dispatch counts as a context switch.
        assert_eq!(sim.cpu.ctx_switches(), 1);
    }

    #[test]
    fn hog_delays_worker_wakeup() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let (_hog, out) = sim.cpu.spawn_hog(SimTime::ZERO, "stress");
        route(out, &mut sim, &mut eng);
        let pid = sim.cpu.spawn("worker", None);
        // Wake the worker mid-hog-slice. The hog has consumed nothing
        // extra yet, so vruntime gap < granularity: no preemption. The
        // worker waits for the slice end.
        eng.schedule(SimDuration::from_micros(100), move |sim: &mut Sim, eng| {
            let out = sim.cpu.submit(eng.now(), pid, 10_000, 2);
            route(out, sim, eng);
        });
        eng.run_until(&mut sim, SimTime::from_nanos(10_000_000));
        assert_eq!(sim.done.len(), 1);
        let (t, _, _) = sim.done[0];
        // Hog slice ends at wakeup(2us)+ctx(3us)+1ms; worker then needs
        // ctx + 10us. Must be later than the naive 115us.
        assert!(t.as_nanos() > 1_000_000, "got {t}");
        assert!(t.as_nanos() < 1_100_000, "got {t}");
    }

    #[test]
    fn sleeper_preempts_long_running_hog() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let (_hog, out) = sim.cpu.spawn_hog(SimTime::ZERO, "stress");
        route(out, &mut sim, &mut eng);
        let pid = sim.cpu.spawn("worker", None);
        // After the hog has accumulated ~5ms of vruntime, a fresh waker
        // (vruntime floored at min_vruntime - slice) leads by > 500us and
        // preempts.
        eng.schedule(SimDuration::from_millis(5), move |sim: &mut Sim, eng| {
            let out = sim.cpu.submit(eng.now(), pid, 10_000, 3);
            route(out, sim, eng);
        });
        eng.run_until(&mut sim, SimTime::from_nanos(20_000_000));
        assert_eq!(sim.done.len(), 1);
        let (t, _, _) = sim.done[0];
        // Preemption: wakeup + ctx + work ≈ 15us after the 5ms mark.
        assert!(
            t.as_nanos() < 5_100_000,
            "expected fast preemption, got {t}"
        );
    }

    #[test]
    fn pinned_proc_only_uses_its_core() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(2)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        // Hog occupies core 0 implicitly (first idle core).
        let (_hog, out) = sim.cpu.spawn_hog(SimTime::ZERO, "stress");
        route(out, &mut sim, &mut eng);
        let pinned = sim.cpu.spawn("pinned", Some(0));
        let out = sim.cpu.submit(SimTime::ZERO, pinned, 1_000, 4);
        route(out, &mut sim, &mut eng);
        // Core 1 is idle but the pinned proc cannot use it; it waits for
        // core 0's slice to end (no preemption: vruntime gap too small).
        eng.run_until(&mut sim, SimTime::from_nanos(3_000_000));
        assert_eq!(sim.done.len(), 1);
        assert!(sim.done[0].0.as_nanos() > 1_000_000);
    }

    #[test]
    fn two_cores_run_two_procs_in_parallel() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(2)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let a = sim.cpu.spawn("a", None);
        let b = sim.cpu.spawn("b", None);
        let out = sim.cpu.submit(SimTime::ZERO, a, 100_000, 1);
        route(out, &mut sim, &mut eng);
        let out = sim.cpu.submit(SimTime::ZERO, b, 100_000, 2);
        route(out, &mut sim, &mut eng);
        eng.run(&mut sim);
        assert_eq!(sim.done.len(), 2);
        // Both finish at the same time: they did not queue.
        assert_eq!(sim.done[0].0, sim.done[1].0);
    }

    #[test]
    fn fifo_work_items_complete_in_order() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let pid = sim.cpu.spawn("w", None);
        for tag in 1..=3 {
            let out = sim.cpu.submit(SimTime::ZERO, pid, 5_000, tag);
            route(out, &mut sim, &mut eng);
        }
        eng.run(&mut sim);
        let tags: Vec<_> = sim.done.iter().map(|d| d.2).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(sim.cpu.busy_ns(pid), 15_000);
    }

    #[test]
    fn utilization_accounting() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(2)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let pid = sim.cpu.spawn("w", None);
        let out = sim.cpu.submit(SimTime::ZERO, pid, 1_000_000, 1);
        route(out, &mut sim, &mut eng);
        eng.run(&mut sim);
        let now = eng.now();
        let u = sim.cpu.utilization(now, pid);
        // 1 ms busy over ~1.005 ms elapsed on one of two cores.
        assert!(u > 0.9 && u <= 1.0, "util {u}");
        let hu = sim.cpu.host_utilization(now);
        assert!((hu - u / 2.0).abs() < 1e-9);
    }

    #[test]
    fn contention_inflates_tail_latency() {
        // 1 core, 8 hogs, one interactive worker woken repeatedly: its
        // wakeup→dispatch latency distribution must show a heavy tail
        // relative to an uncontended host.
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        for i in 0..8 {
            let (_h, out) = sim.cpu.spawn_hog(SimTime::ZERO, &format!("hog{i}"));
            route(out, &mut sim, &mut eng);
        }
        let pid = sim.cpu.spawn("victim", None);
        fn wake_loop(pid: ProcId, n: u32, sim: &mut Sim, eng: &mut Engine<Sim>) {
            if n == 0 {
                return;
            }
            let out = sim.cpu.submit(eng.now(), pid, 5_000, n as u64);
            route(out, sim, eng);
            eng.schedule(SimDuration::from_millis(7), move |sim: &mut Sim, eng| {
                wake_loop(pid, n - 1, sim, eng);
            });
        }
        eng.schedule(SimDuration::ZERO, move |sim: &mut Sim, eng| {
            wake_loop(pid, 50, sim, eng);
        });
        eng.run_until(&mut sim, SimTime::from_nanos(2_000_000_000));
        assert!(sim.done.len() >= 40, "completed {}", sim.done.len());
        let lat = sim.cpu.sched_latency().summary();
        // Mean scheduling latency should be well above the uncontended
        // microsecond scale.
        assert!(
            lat.mean_ns > 50_000.0,
            "expected contention, mean {} ns",
            lat.mean_ns
        );
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut cpu = HostCpu::new(profile(1));
        let pid = cpu.spawn("w", None);
        let out = cpu.submit(SimTime::ZERO, pid, 10_000, 1);
        let CpuOutput::Timer { core, gen, .. } = out[0] else {
            panic!("expected timer");
        };
        // A stale generation must produce no outputs and not panic.
        assert!(cpu
            .on_timer(SimTime::from_nanos(1), core, gen + 5)
            .is_empty());
        assert!(cpu
            .on_timer(SimTime::from_nanos(1), core, gen.wrapping_sub(1))
            .is_empty());
    }

    #[test]
    fn reset_metrics_clears_counters() {
        let mut sim = Sim {
            cpu: HostCpu::new(profile(1)),
            done: Vec::new(),
        };
        let mut eng = Engine::new();
        let pid = sim.cpu.spawn("w", None);
        let out = sim.cpu.submit(SimTime::ZERO, pid, 10_000, 1);
        route(out, &mut sim, &mut eng);
        eng.run(&mut sim);
        assert!(sim.cpu.ctx_switches() > 0);
        sim.cpu.reset_metrics(eng.now());
        assert_eq!(sim.cpu.ctx_switches(), 0);
        assert_eq!(sim.cpu.busy_ns(pid), 0);
    }
}
