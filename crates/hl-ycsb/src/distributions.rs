//! YCSB key-chooser distributions.
//!
//! Implements the three generators the YCSB core workloads use:
//! uniform, (scrambled) zipfian, and latest — following the rejection
//! method of Gray et al. used by the reference YCSB implementation.

use hl_sim::RngStream;

/// Zipfian generator over `[0, n)` with the YCSB default constant 0.99.
///
/// Uses the closed-form approximation from "Quickly Generating
/// Billion-Record Synthetic Databases" (Gray et al., SIGMOD '94), the
/// same algorithm as YCSB's `ZipfianGenerator`.
///
/// ```
/// use hl_ycsb::Zipfian;
/// use hl_sim::RngFactory;
/// let z = Zipfian::ycsb(1_000);
/// let mut rng = RngFactory::new(1).stream("keys");
/// let hot = (0..1000).filter(|_| z.next_rank(&mut rng) == 0).count();
/// assert!(hot > 50, "rank 0 is hot: {hot}/1000");
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zetan: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Generator over `items` items with skew `theta` (0.99 = YCSB).
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0);
        let zetan = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            items,
            theta,
            zetan,
            zeta2,
            alpha,
            eta,
        }
    }

    /// YCSB-default skew.
    pub fn ycsb(items: u64) -> Self {
        Self::new(items, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; sampled approximation for large n keeps
        // construction O(1)-ish without visible skew error.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // Integral approximation of the tail.
            let a = 1.0 - theta;
            head + ((n as f64).powf(a) - 10_000f64.powf(a)) / a
        }
    }

    /// Draw a rank in `[0, items)`; rank 0 is the hottest.
    pub fn next_rank(&self, rng: &mut RngStream) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.items as f64) as u64;
        v.min(self.items - 1)
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Keep the precomputed constants but re-target a new item count
    /// (cheap enough to rebuild; used when inserts grow the keyspace).
    pub fn grow(&mut self, items: u64) {
        if items != self.items {
            *self = Zipfian::new(items, self.theta);
        }
        let _ = self.zeta2;
    }
}

/// FNV-based scramble so hot zipfian ranks spread over the keyspace
/// (YCSB's `ScrambledZipfianGenerator`).
pub fn scramble(rank: u64, items: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in rank.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h % items
}

/// Key chooser kinds used by the YCSB core workloads.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Uniform over the current keyspace.
    Uniform,
    /// Scrambled zipfian (workloads A, B, E, F).
    ScrambledZipfian(Zipfian),
    /// Skewed toward the most recent inserts (workload D).
    Latest(Zipfian),
}

impl KeyChooser {
    /// Draw a key id given the current record count.
    pub fn next(&mut self, rng: &mut RngStream, records: u64) -> u64 {
        match self {
            KeyChooser::Uniform => rng.range_u64(0, records),
            KeyChooser::ScrambledZipfian(z) => {
                z.grow(records.max(1));
                scramble(z.next_rank(rng), records)
            }
            KeyChooser::Latest(z) => {
                z.grow(records.max(1));
                let r = z.next_rank(rng);
                // Rank 0 = newest record.
                records - 1 - r.min(records - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sim::RngFactory;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::ycsb(1000);
        let mut rng = RngFactory::new(1).stream("z");
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let r = z.next_rank(&mut rng);
            assert!(r < 1000);
            counts[r as usize] += 1;
        }
        // Rank 0 should get ~ 1/zeta(1000) ≈ 13% of draws; definitely
        // far more than uniform (0.1%).
        assert!(counts[0] > 5_000, "rank0 {}", counts[0]);
        // And the head dominates the tail.
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(head > 20 * tail.max(1), "head {head} tail {tail}");
    }

    #[test]
    fn scramble_spreads_hot_keys() {
        let a = scramble(0, 1000);
        let b = scramble(1, 1000);
        let c = scramble(2, 1000);
        assert!(a < 1000 && b < 1000 && c < 1000);
        assert!(a != b && b != c, "adjacent ranks land apart");
    }

    #[test]
    fn latest_prefers_recent() {
        let mut ch = KeyChooser::Latest(Zipfian::ycsb(1000));
        let mut rng = RngFactory::new(2).stream("l");
        let recent = (0..10_000)
            .filter(|_| ch.next(&mut rng, 1000) >= 900)
            .count();
        assert!(recent > 5_000, "recent fraction {recent}/10000");
    }

    #[test]
    fn uniform_covers_range() {
        let mut ch = KeyChooser::Uniform;
        let mut rng = RngFactory::new(3).stream("u");
        let mut seen = [false; 100];
        for _ in 0..5_000 {
            seen[ch.next(&mut rng, 100) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn zipfian_grow_tracks_keyspace() {
        let mut z = Zipfian::ycsb(10);
        z.grow(20);
        assert_eq!(z.items(), 20);
        let mut rng = RngFactory::new(4).stream("g");
        for _ in 0..100 {
            assert!(z.next_rank(&mut rng) < 20);
        }
    }

    #[test]
    fn large_keyspace_zeta_approximation() {
        // Construction stays fast and sane for big tables.
        let z = Zipfian::ycsb(10_000_000);
        let mut rng = RngFactory::new(5).stream("big");
        for _ in 0..1000 {
            assert!(z.next_rank(&mut rng) < 10_000_000);
        }
    }
}
