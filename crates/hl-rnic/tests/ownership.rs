//! Regression tests for the WQE-ownership & DMA race detector
//! (feature `check-ownership`): each violation class is provoked at the
//! verbs level and must be reported with the offending QPNs, and the
//! legal variants of the same traffic must stay silent.

#![cfg(feature = "check-ownership")]

use hl_nvm::NvmArena;
use hl_rnic::track::Violation;
use hl_rnic::{
    flags, Access, Cqe, CqeKind, CqeStatus, Nic, NicOutput, Opcode, Packet, PacketKind, Wqe,
};
use hl_sim::config::NicProfile;
use hl_sim::{Bytes, RngFactory, SimTime};

const T1: SimTime = SimTime::from_nanos(1_000);
const T2: SimTime = SimTime::from_nanos(2_000);

fn nic() -> (Nic, NvmArena) {
    let profile = NicProfile {
        jitter_sigma: 0.0,
        ..NicProfile::default()
    };
    let nic = Nic::new(0, profile, RngFactory::new(7).stream("nic"));
    (nic, NvmArena::new(1 << 20))
}

fn write_pkt(
    src_nic: u32,
    src_qpn: u32,
    dst_qpn: u32,
    raddr: u64,
    rkey: u32,
    data: &[u8],
) -> Packet {
    Packet {
        src_nic,
        src_qpn,
        dst_qpn,
        psn: 0,
        reliable: false,
        op: 0,
        kind: PacketKind::Write {
            raddr,
            rkey,
            data: Bytes::copy_from_slice(data),
            wr_id: 1,
            signaled: false,
        },
    }
}

/// (a) A deferred WQE whose ownership flag was forged in memory (the
/// driver never granted it) must be flagged when the engine fetches it.
#[test]
fn forged_ownership_flag_is_flagged_at_fetch() {
    let (mut nic, mut mem) = nic();
    let cq = nic.create_cq();
    let qp = nic.create_qp(cq, cq, 0x1000, 8);
    let idx = nic
        .post_send(
            &mut mem,
            qp,
            Wqe {
                opcode: Opcode::Nop,
                ..Default::default()
            },
            true, // deferred: ownership stays with software
        )
        .unwrap();
    // A rogue peer (or misdirected scatter) forges the HW_OWNED bit
    // directly in host memory, bypassing grant_ownership.
    let slot = nic.sq_slot_addr(qp, idx);
    let f = mem.read(slot + 1, 1).unwrap()[0];
    mem.write(slot + 1, &[f | flags::HW_OWNED]).unwrap();
    nic.ring_doorbell(T1, qp, &mut mem);
    assert!(
        matches!(
            nic.race_violations(),
            [Violation::SwOwnedFetch { qpn, idx: 0, .. }] if *qpn == qp
        ),
        "got {:?}",
        nic.race_violations()
    );
}

/// The legal handover paths — grant_ownership and non-deferred posts —
/// must not trip the detector.
#[test]
fn granted_and_doorbell_posts_are_clean() {
    let (mut nic, mut mem) = nic();
    let cq = nic.create_cq();
    let qp = nic.create_qp(cq, cq, 0x1000, 8);
    let idx = nic
        .post_send(
            &mut mem,
            qp,
            Wqe {
                opcode: Opcode::Nop,
                ..Default::default()
            },
            true,
        )
        .unwrap();
    nic.grant_ownership(&mut mem, qp, idx);
    nic.post_send(
        &mut mem,
        qp,
        Wqe {
            opcode: Opcode::Nop,
            ..Default::default()
        },
        false,
    )
    .unwrap();
    nic.ring_doorbell(T1, qp, &mut mem);
    assert!(nic.race_violations().is_empty());
}

/// (b) A remote write landing inside a descriptor slot after ownership
/// was granted to the NIC is a fetch/rewrite race; the same write while
/// the slot is still software-owned is HyperLoop's legal metadata
/// scatter.
#[test]
fn scatter_into_granted_slot_is_flagged() {
    let (mut nic, mut mem) = nic();
    let cq = nic.create_cq();
    let qp = nic.create_qp(cq, cq, 0x1000, 8);
    nic.connect(qp, 1, 9);
    // Replicas register their rings remotely writable on purpose.
    let ring_mr = nic.register_mr(0x1000, 8 * 64, Access::REMOTE_WRITE);
    let idx = nic
        .post_send(
            &mut mem,
            qp,
            Wqe {
                opcode: Opcode::Nop,
                ..Default::default()
            },
            true,
        )
        .unwrap();
    // Legal: rewrite the length field while software still owns it.
    let slot = nic.sq_slot_addr(qp, idx);
    nic.on_packet(
        T1,
        write_pkt(1, 9, qp, slot + 4, ring_mr.rkey, &8u32.to_le_bytes()),
        &mut mem,
    );
    assert!(
        nic.race_violations().is_empty(),
        "pre-grant scatter is legal"
    );
    // Illegal: the same rewrite after the grant.
    nic.grant_ownership(&mut mem, qp, idx);
    nic.on_packet(
        T2,
        write_pkt(1, 9, qp, slot + 4, ring_mr.rkey, &16u32.to_le_bytes()),
        &mut mem,
    );
    assert!(
        matches!(
            nic.race_violations(),
            [Violation::ScatterAfterGrant {
                ring_qpn,
                slot: 0,
                src_nic: 1,
                src_qpn: 9,
                ..
            }] if *ring_qpn == qp
        ),
        "got {:?}",
        nic.race_violations()
    );
}

/// (c) Overlapping writes from two different QPs with no completion in
/// between and different bytes race; identical bytes or an intervening
/// completion make the same traffic legal.
#[test]
fn concurrent_overlapping_dma_is_flagged() {
    let (mut nic, mut mem) = nic();
    let cq = nic.create_cq();
    let qp_a = nic.create_qp(cq, cq, 0x1000, 8);
    let qp_b = nic.create_qp(cq, cq, 0x1400, 8);
    nic.connect(qp_a, 1, 0);
    nic.connect(qp_b, 2, 0);
    let mr = nic.register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    // Same epoch, same range, different peers, different bytes: race.
    nic.on_packet(
        T1,
        write_pkt(1, 0, qp_a, 0x8000, mr.rkey, &[0xaa; 64]),
        &mut mem,
    );
    nic.on_packet(
        T2,
        write_pkt(2, 0, qp_b, 0x8020, mr.rkey, &[0xbb; 64]),
        &mut mem,
    );
    assert!(
        matches!(
            nic.race_violations(),
            [Violation::ConcurrentDmaOverlap {
                addr: 0x8020,
                len: 32,
                first_src: (1, _),
                second_src: (2, _),
                ..
            }]
        ),
        "got {:?}",
        nic.race_violations()
    );
}

#[test]
fn completion_or_identical_bytes_make_overlap_legal() {
    let (mut nic, mut mem) = nic();
    let cq = nic.create_cq();
    let qp_a = nic.create_qp(cq, cq, 0x1000, 8);
    let qp_b = nic.create_qp(cq, cq, 0x1400, 8);
    nic.connect(qp_a, 1, 0);
    nic.connect(qp_b, 2, 0);
    let mr = nic.register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    // Byte-identical rewrite from another peer: a re-issued record.
    nic.on_packet(
        T1,
        write_pkt(1, 0, qp_a, 0x8000, mr.rkey, &[0xcc; 64]),
        &mut mem,
    );
    nic.on_packet(
        T2,
        write_pkt(2, 0, qp_b, 0x8000, mr.rkey, &[0xcc; 64]),
        &mut mem,
    );
    assert!(nic.race_violations().is_empty());

    // Different bytes, but a completion orders the two writes.
    nic.on_packet(
        T1,
        write_pkt(1, 0, qp_a, 0x9000, mr.rkey, &[0x11; 64]),
        &mut mem,
    );
    nic.deliver_cqe(
        T2,
        cq,
        Cqe {
            qpn: qp_a,
            wr_id: 0,
            kind: CqeKind::Recv,
            status: CqeStatus::Ok,
            byte_len: 0,
            imm: 0,
            op: 0,
        },
        &mut mem,
    );
    nic.on_packet(
        T2,
        write_pkt(2, 0, qp_b, 0x9000, mr.rkey, &[0x22; 64]),
        &mut mem,
    );
    assert!(nic.race_violations().is_empty());
}

/// (d) Remote access through a deregistered rkey is flagged *and*
/// refused with a NAK.
#[test]
fn use_after_deregister_is_flagged_and_refused() {
    let (mut nic, mut mem) = nic();
    let cq = nic.create_cq();
    let qp = nic.create_qp(cq, cq, 0x1000, 8);
    nic.connect(qp, 1, 0);
    let mr = nic.register_mr(0x4000, 0x100, Access::REMOTE_WRITE);
    assert!(nic.deregister_mr(T1, mr.rkey));
    assert!(!nic.deregister_mr(T1, mr.rkey), "double deregister");

    let outs = nic.on_packet(T2, write_pkt(1, 0, qp, 0x4000, mr.rkey, &[1; 16]), &mut mem);
    assert!(
        matches!(
            nic.race_violations(),
            [Violation::UseAfterDeregister { rkey, addr: 0x4000, .. }] if *rkey == mr.rkey
        ),
        "got {:?}",
        nic.race_violations()
    );
    assert!(
        outs.iter().any(|o| matches!(
            o,
            NicOutput::Transmit {
                packet: Packet {
                    kind: PacketKind::Nak { .. },
                    ..
                },
                ..
            }
        )),
        "stale access must be refused"
    );
}
