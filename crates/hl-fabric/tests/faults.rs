//! Fault-injection behavior of the fabric itself: probabilistic drops,
//! one-way partitions, link-down, and their heals.

use hl_fabric::{Delivery, Fabric, HostId};
use hl_sim::config::NetProfile;
use hl_sim::{RngFactory, SimTime};

fn fabric(n: usize) -> Fabric {
    Fabric::new(n, NetProfile::default())
}

#[test]
fn drop_prob_drops_the_expected_fraction_seeded() {
    let mut f = fabric(2);
    f.set_drop_prob(0.25);
    let mut rng = RngFactory::new(17).stream("fabric-drops");
    let n = 4000;
    let mut dropped = 0;
    for _ in 0..n {
        match f.send(SimTime::ZERO, HostId(0), HostId(1), 64, rng.f64()) {
            Delivery::Dropped => dropped += 1,
            Delivery::At(_) | Delivery::Duplicated(..) => {}
        }
    }
    let rate = dropped as f64 / n as f64;
    assert!(
        (0.22..=0.28).contains(&rate),
        "drop rate {rate} far from configured 0.25"
    );
    // Same seed, same draws, same decisions.
    let mut f2 = fabric(2);
    f2.set_drop_prob(0.25);
    let mut rng2 = RngFactory::new(17).stream("fabric-drops");
    let mut dropped2 = 0;
    for _ in 0..n {
        if f2.send(SimTime::ZERO, HostId(0), HostId(1), 64, rng2.f64()) == Delivery::Dropped {
            dropped2 += 1;
        }
    }
    assert_eq!(dropped, dropped2);
}

#[test]
fn zero_drop_prob_never_drops() {
    let mut f = fabric(2);
    let mut rng = RngFactory::new(3).stream("fabric-drops");
    for _ in 0..500 {
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 64, rng.f64()),
            Delivery::At(_)
        ));
    }
}

#[test]
fn partition_is_one_way_and_heals() {
    let mut f = fabric(3);
    f.partition(HostId(0), HostId(1));
    // The partitioned direction drops...
    assert_eq!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0),
        Delivery::Dropped
    );
    // ...the reverse direction and unrelated pairs still deliver.
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(1), HostId(0), 64, 1.0),
        Delivery::At(_)
    ));
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(2), 64, 1.0),
        Delivery::At(_)
    ));
    f.heal(HostId(0), HostId(1));
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0),
        Delivery::At(_)
    ));
}

#[test]
fn duplicate_partition_heals_with_one_call() {
    let mut f = fabric(2);
    f.partition(HostId(0), HostId(1));
    f.partition(HostId(0), HostId(1));
    f.heal(HostId(0), HostId(1));
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0),
        Delivery::At(_)
    ));
}

#[test]
fn link_down_blocks_both_directions_and_recovers() {
    let mut f = fabric(3);
    f.set_link_down(HostId(1), true);
    assert_eq!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0),
        Delivery::Dropped
    );
    assert_eq!(
        f.send(SimTime::ZERO, HostId(1), HostId(2), 64, 1.0),
        Delivery::Dropped
    );
    // Third parties are unaffected.
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(2), 64, 1.0),
        Delivery::At(_)
    ));
    f.set_link_down(HostId(1), false);
    assert!(matches!(
        f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0),
        Delivery::At(_)
    ));
}

#[test]
fn dropped_messages_do_not_consume_port_time_or_counters() {
    let mut f = fabric(2);
    f.partition(HostId(0), HostId(1));
    for _ in 0..10 {
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 1 << 20, 1.0),
            Delivery::Dropped
        );
    }
    assert_eq!(f.bytes_tx(HostId(0)), 0);
    assert_eq!(f.msgs_tx(HostId(0)), 0);
    f.heal(HostId(0), HostId(1));
    // The port was never busied by the dropped sends: a fresh send
    // starts from `now`, not from a backlog.
    let Delivery::At(t1) = f.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0) else {
        panic!("healed send dropped");
    };
    let mut g = fabric(2);
    let Delivery::At(t2) = g.send(SimTime::ZERO, HostId(0), HostId(1), 64, 1.0) else {
        panic!("fresh send dropped");
    };
    assert_eq!(t1, t2);
}
