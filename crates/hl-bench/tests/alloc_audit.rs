//! Allocation audit of the per-op datapath, enforced with the counting
//! allocator behind `--features alloc-audit`:
//!
//! ```text
//! cargo test -p hl-bench --features alloc-audit --test alloc_audit
//! ```
//!
//! Without the feature the file compiles to nothing, so the default
//! test run pays no global-allocator overhead.
#![cfg(feature = "alloc-audit")]

use hl_bench::alloc_audit;
use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_sim::{Engine, EventCtx, SimDuration};

struct Lanes {
    acc: u64,
    remaining: u64,
}

struct LaneEvent {
    lane: u32,
}

impl EventCtx for Lanes {
    type Event = LaneEvent;
    fn run_event(&mut self, eng: &mut Engine<Self>, ev: LaneEvent) {
        self.acc = self.acc.wrapping_add(ev.lane as u64);
        if self.remaining > 0 {
            self.remaining -= 1;
            eng.schedule_event(
                SimDuration::from_nanos(100 + (ev.lane as u64 % 7) * 10),
                LaneEvent { lane: ev.lane },
            );
        }
    }
}

/// The typed-event engine loop is amortized allocation-free in steady
/// state: after warmup has sized the arena, the slab and the calendar
/// wheel, the only remaining allocations are occasional wheel-bucket
/// capacity doublings as lane phases drift across bucket boundaries —
/// a few per thousand events, amortizing toward zero. A reintroduced
/// per-event allocation (one box or Vec per pop/push cycle) is 100×
/// over the bound and trips immediately.
#[test]
fn engine_steady_state_is_allocation_free() {
    let mut w = Lanes {
        acc: 0,
        remaining: 250_000 + 600_000,
    };
    let mut eng: Engine<Lanes> = Engine::new();
    for lane in 0..1024u32 {
        eng.schedule_event(
            SimDuration::from_nanos(100 + (lane as u64 % 7) * 10),
            LaneEvent { lane },
        );
    }
    // Warmup: let every Vec inside the engine reach its steady size.
    // This pattern advances ~0.13 ns of simulated time per event, so a
    // full calendar-wheel revolution (~65 µs, after which every ring
    // bucket has been filled once and holds its steady capacity) takes
    // ~520k events; 600k covers it with slack.
    for _ in 0..600_000 {
        assert!(eng.step(&mut w));
    }
    let (n, _) = alloc_audit::count_allocs(|| {
        for _ in 0..250_000 {
            assert!(eng.step(&mut w));
        }
    });
    assert!(
        n <= 2_500,
        "typed-event steady state allocated {n} times in 250k events \
         (bound is ~1 per 100 events; a per-event regression is ~100× this)"
    );
}

/// The full gWRITE datapath (NIC, fabric, NVM, telemetry drain, retry
/// supervision) stays within a small per-op allocation budget. This is
/// a regression tripwire: re-introducing a per-event box or a per-drain
/// `Vec` adds ~15 allocations per op (one per simulated event) and
/// blows the bound immediately.
#[test]
fn gwrite_datapath_allocations_are_bounded_per_op() {
    let cfg = MicroCfg {
        backend: Backend::HyperLoop,
        op: MicroOp::GWrite {
            size: 256,
            flush: false,
        },
        ops: 4_000,
        pipeline: 16,
        ..Default::default()
    };
    // First run warms allocator pools and sizes engine arenas inside
    // the process; the second run is the measured one. Worlds are
    // rebuilt per run, so this bounds *per-op* churn, not zero.
    let _ = run_micro(&cfg);
    let (n, _) = alloc_audit::count_allocs(|| {
        let _ = run_micro(&cfg);
    });
    // Measured ~58/op after the scratch-buffer work (CQ drain, NIC
    // telemetry drain, payload caches). A reintroduced per-event box or
    // per-drain `Vec` costs ~15/op and blows straight through 70.
    let per_op = n as f64 / cfg.ops as f64;
    assert!(
        per_op < 70.0,
        "gWRITE datapath allocated {per_op:.1} times per op ({n} total)"
    );
}
