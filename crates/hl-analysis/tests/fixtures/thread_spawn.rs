// Fixture: `thread-spawn` fires on std::thread::spawn.
fn bad() {
    std::thread::spawn(|| {});
    std::thread::spawn(|| {}); // hl-lint: allow(thread-spawn)
}
