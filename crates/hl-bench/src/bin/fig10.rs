//! Figure 10: 99th-percentile gWRITE latency for group sizes 3, 5, 7
//! (stress background). HyperLoop stays flat; Naïve degrades with chain
//! length (paper: up to 2.97x from size 3 to 7).
//!
//! Usage: `fig10 [--ops N]`

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_bench::table::{us, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    let sizes = [128usize, 256, 512, 1024, 2048, 4096, 8192];
    for backend in [Backend::NaiveEvent, Backend::HyperLoop] {
        println!(
            "\n== Figure 10: p99 gWRITE latency (us), {} ==",
            backend.name()
        );
        let mut t = Table::new(&["size", "g=3", "g=5", "g=7", "g7/g3"]);
        for &size in &sizes {
            let mut p99s = Vec::new();
            for group_size in [3usize, 5, 7] {
                let r = run_micro(&MicroCfg {
                    backend,
                    group_size,
                    op: MicroOp::GWrite { size, flush: false },
                    ops,
                    seed: 42 + size as u64 + group_size as u64 * 1000,
                    ..Default::default()
                });
                p99s.push(r.latency.p99_ns);
            }
            t.row(&[
                size.to_string(),
                us(p99s[0]),
                us(p99s[1]),
                us(p99s[2]),
                format!("{:.2}x", p99s[2] as f64 / p99s[0] as f64),
            ]);
        }
        t.print();
    }
    println!("\npaper: Naive p99 grows up to 2.97x from group 3 to 7; HyperLoop shows no significant degradation.");
}
