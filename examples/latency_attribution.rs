//! Where does the latency go? Causal op tracing over the HyperLoop
//! chain and the Naïve-RDMA baseline, side by side.
//!
//! Every group operation gets an op id at issue time; the id rides
//! inside WQE descriptors, fabric packets and CQEs, so each layer
//! stamps typed stage events onto the op without any cross-layer
//! plumbing — on the HyperLoop chain the id is scattered into the
//! pre-posted replica WQEs by the same metadata SEND that arms them
//! (zero replica CPU). The resulting spans decompose each op's latency
//! into named hop segments that sum to the end-to-end latency exactly.
//!
//! The run prints the per-hop attribution report for both backends
//! under multi-tenant CPU contention — the paper's Fig 2/9 story told
//! by traces: the baseline's tail is replica scheduling, the offloaded
//! chain never touches a replica core — and exports Chrome trace-event
//! JSON loadable in Perfetto or `chrome://tracing`.
//!
//! ```sh
//! cargo run --release --example latency_attribution
//! ```

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

const OPS: usize = 500;
const HOGS_PER_HOST: usize = 16;

fn main() {
    for offloaded in [true, false] {
        let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(11).build();
        w.enable_telemetry();
        for h in 1..3 {
            for k in 0..HOGS_PER_HOST {
                w.spawn_hog(HostId(h), &format!("stress-{h}-{k}"), &mut eng);
            }
        }
        let replicas = vec![HostId(1), HostId(2)];

        // Issue OPS durable gWRITEs, four outstanding, each completion
        // issuing the next.
        let issued = Rc::new(RefCell::new(0usize));
        let acked = Rc::new(RefCell::new(0usize));
        type Issue = Rc<
            dyn Fn(
                &mut hyperloop_repro::cluster::World,
                &mut hyperloop_repro::sim::Engine<hyperloop_repro::cluster::World>,
                u64,
                hyperloop_repro::hyperloop::OnDone,
            ) -> Result<u32, hyperloop_repro::hyperloop::Backpressure>,
        >;
        let issue: Issue = if offloaded {
            let group = GroupBuilder::new(GroupConfig {
                client: HostId(0),
                replicas,
                rep_bytes: 256 << 10,
                ring_slots: 64,
                replenish_period: SimDuration::from_micros(50),
                transport_timeout: None,
            })
            .build(&mut w);
            replica::start_replenishers(&group, &mut w, &mut eng);
            let client = HyperLoopClient::new(group, &mut w);
            Rc::new(move |w, eng, off, done| client.gwrite(w, eng, off, &[0x5au8; 256], true, done))
        } else {
            let client = NaiveBuilder::new(NaiveConfig {
                client: HostId(0),
                replicas,
                rep_bytes: 256 << 10,
                ring_slots: 64,
                mode: Mode::Event,
                ..Default::default()
            })
            .build(&mut w, &mut eng);
            Rc::new(move |w, eng, off, done| client.gwrite(w, eng, off, &[0xa5u8; 256], true, done))
        };

        fn pump(
            issue: &Issue,
            issued: &Rc<RefCell<usize>>,
            acked: &Rc<RefCell<usize>>,
            w: &mut hyperloop_repro::cluster::World,
            eng: &mut hyperloop_repro::sim::Engine<hyperloop_repro::cluster::World>,
        ) {
            let k = *issued.borrow();
            if k >= OPS {
                return;
            }
            *issued.borrow_mut() += 1;
            let (i2, a2, is2) = (issued.clone(), acked.clone(), issue.clone());
            let res = issue(
                w,
                eng,
                ((k % 128) * 256) as u64,
                Box::new(move |w, eng, _r| {
                    *a2.borrow_mut() += 1;
                    pump(&is2, &i2, &a2, w, eng);
                }),
            );
            if res.is_err() {
                // Ring credits exhausted: retry once the replenishers
                // have restocked some pre-posted slots.
                *issued.borrow_mut() -= 1;
                let (i3, a3, is3) = (issued.clone(), acked.clone(), issue.clone());
                eng.schedule(SimDuration::from_micros(20), move |w, eng| {
                    pump(&is3, &i3, &a3, w, eng);
                });
            }
        }
        for _ in 0..4 {
            pump(&issue, &issued, &acked, &mut w, &mut eng);
        }
        let probe = acked.clone();
        eng.run_while(&mut w, move |_| *probe.borrow() < OPS);

        let name = if offloaded {
            "HyperLoop"
        } else {
            "Naive-Event"
        };
        println!("=== {name}: per-hop latency attribution ({OPS} gWRITEs, {HOGS_PER_HOST} hogs/replica) ===");
        print!("{}", w.attribution());

        let now = eng.now();
        w.collect_metrics(now);
        let path = format!(
            "{}/hl-trace-{}.json",
            std::env::temp_dir().display(),
            name.to_lowercase()
        );
        std::fs::write(&path, w.telemetry.chrome_trace()).expect("write trace");
        println!("chrome trace -> {path}  (open in Perfetto / chrome://tracing)\n");
    }
}
