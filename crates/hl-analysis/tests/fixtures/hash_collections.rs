// Fixture: `hash-collections` must fire on the bare use and stay quiet
// on the allowed one.
use std::collections::HashMap;

fn order_insensitive() {
    // Provably order-insensitive: only insert/remove by key, never
    // iterated. hl-lint: allow(hash-collections)
    let mut ok: HashMap<u32, u32> = HashMap::new(); // hl-lint: allow(hash-collections)
    ok.insert(1, 2);
}
