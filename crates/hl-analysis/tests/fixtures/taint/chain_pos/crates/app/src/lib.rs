// Positive fixture: the datapath entry reaches a wall-clock read three
// crates away — app::on_packet → app::stage → mid::mid_helper →
// leaf::leaf_time.
pub fn on_packet(x: u64) -> u64 {
    stage(x)
}

fn stage(x: u64) -> u64 {
    mid::mid_helper(x)
}
