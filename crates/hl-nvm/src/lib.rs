//! # hl-nvm — non-volatile main memory model
//!
//! Models a host's battery-backed DRAM / NVM with the semantics HyperLoop
//! depends on: writes that arrive through a volatile cache (the RDMA
//! NIC's internal cache or the CPU caches) are visible immediately but
//! survive a power failure only after an explicit flush — HyperLoop's
//! gFLUSH (a 0-byte RDMA READ that forces the NIC to drain its cache) or
//! a CPU cache-line write-back.
//!
//! See [`NvmArena`] for the memory itself, [`RangeSet`] for dirty-range
//! tracking, and [`Layout`]/[`Region`] for carving arenas into named
//! regions (WAL, database, locks, WQE rings, metadata staging).

#![warn(missing_docs)]

mod arena;
mod layout;
mod range_set;

pub use arena::{MemError, NvmArena};
pub use layout::{Layout, Region};
pub use range_set::RangeSet;
