//! # hyperloop-repro — umbrella crate
//!
//! Re-exports the full reproduction stack so examples and downstream
//! users can depend on one crate:
//!
//! * [`sim`] — deterministic discrete-event core
//! * [`nvm`] — non-volatile memory model
//! * [`fabric`] — network fabric
//! * [`cpu`] — multi-tenant CPU scheduler
//! * [`rnic`] — RDMA NIC (verbs, WAIT, in-memory WQE rings)
//! * [`cluster`] — the composed testbed
//! * [`hyperloop`] — the paper's group primitives, API, baselines
//! * [`store`] — kvlite & doclite storage engines
//! * [`ycsb`] — workload generator & drivers

pub use hl_cluster as cluster;
pub use hl_cpu as cpu;
pub use hl_fabric as fabric;
pub use hl_nvm as nvm;
pub use hl_rnic as rnic;
pub use hl_sim as sim;
pub use hl_store as store;
pub use hl_ycsb as ycsb;
pub use hyperloop;
