//! Figure 12: doclite (MongoDB-like) latency across YCSB workloads,
//! native replication vs HyperLoop, in a multi-tenant cluster.
//!
//! Usage: `fig12 [--ops N] [--sets N]`

use hl_bench::apps::{run_fig12, DocMode, Fig12Cfg};
use hl_bench::table::{ms, Table};
use hl_ycsb::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    let sets = args
        .iter()
        .position(|a| a == "--sets")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let mut gaps: Vec<(f64, f64)> = Vec::new();
    for mode in [DocMode::Native, DocMode::HyperLoop] {
        println!(
            "\n== Figure 12{}: doclite with {} replication — write latency (ms) ==",
            if mode == DocMode::Native { "a" } else { "b" },
            if mode == DocMode::Native {
                "native"
            } else {
                "HyperLoop"
            },
        );
        let mut t = Table::new(&["workload", "avg(ms)", "p95(ms)", "p99(ms)", "server-util"]);
        for wl in Workload::ALL {
            let r = run_fig12(&Fig12Cfg {
                mode,
                workload: wl,
                sets,
                ops,
                ..Default::default()
            });
            // Workload E has no updates (insert only); report writes.
            let s = r.writes;
            t.row(&[
                wl.letter().to_string(),
                format!("{:.2}", s.mean_ms()),
                ms(s.p95_ns),
                ms(s.p99_ns),
                format!("{:.2}", r.server_util),
            ]);
            if wl == Workload::A {
                gaps.push((s.mean_ns, s.p99_ns as f64));
            }
        }
        t.print();
    }
    if gaps.len() == 2 {
        let (n_avg, n_p99) = gaps[0];
        let (h_avg, h_p99) = gaps[1];
        println!(
            "\nYCSB-A: HyperLoop cuts write avg by {:.0}% (paper: 79%); avg↔p99 gap by {:.0}% (paper: 81%)",
            (1.0 - h_avg / n_avg) * 100.0,
            (1.0 - (h_p99 - h_avg) / (n_p99 - n_avg)) * 100.0,
        );
    }
}
