//! # hyperloop — group-based NIC-offloading for replicated transactions
//!
//! A faithful reproduction of **HyperLoop** (SIGCOMM 2018) on the
//! simulated testbed of `hl-cluster`: group memory primitives executed
//! entirely by chains of RDMA NICs, with replica CPUs off the critical
//! path.
//!
//! * [`GroupBuilder`] wires the chain (per-primitive QPs, loopback QPs,
//!   in-memory WQE rings) and pre-posts every slot.
//! * [`HyperLoopClient`] issues [`HyperLoopClient::gwrite`],
//!   [`HyperLoopClient::gmemcpy`], [`HyperLoopClient::gcas`] and
//!   [`HyperLoopClient::gflush`]; completions arrive as callbacks with
//!   latency and gCAS result maps.
//! * [`replica::Replenisher`] re-posts consumed slots off the critical
//!   path.
//! * [`naive`] is the paper's Naïve-RDMA baseline (event-driven and
//!   polling replicas) behind the same client surface.
//! * [`api`] provides the storage-facing layer from paper §5:
//!   replicated write-ahead log (`Append`, `ExecuteAndAdvance`) and
//!   group locks (`wrLock`/`wrUnlock`/`rdLock`/`rdUnlock`).
//! * [`recovery`] implements heartbeat failure detection and chain
//!   rebuild with catch-up copy, plus transport-error (CQ error CQE)
//!   triggered rebuild and graceful degradation to the Naïve path.
//! * [`deadline`] wraps the client with per-operation deadlines,
//!   exponential backoff and idempotent re-issue so a supervised
//!   operation either completes or fails with a typed error.
//! * [`slo`] evaluates declarative latency objectives
//!   (`p99(op_latency_ns{…}) < 200us over 8 windows`) with multi-window
//!   burn rates over the windowed time-series layer, feeding
//!   [`health::HealthMonitor`] as a structured sick signal.
//! * [`fanout`] is the §7 extension: FaRM-style primary/backup
//!   replication with the coordination offloaded to the primary's NIC
//!   (parallel WAIT-triggered transfers, ack aggregation by WAIT count).
//! * [`multi`] is the §5 future-work feature: several clients share one
//!   chain through a shared receive queue on the first replica, their
//!   writes serialized by the NICs in arrival order.

#![warn(missing_docs)]

pub mod api;
mod client;
pub mod deadline;
pub mod fanout;
mod group;
pub mod health;
pub mod metadata;
pub mod migrate;
pub mod multi;
pub mod naive;
pub mod recovery;
pub mod replica;
pub mod router;
pub mod slo;

pub use client::HyperLoopClient;
pub use deadline::{Backend, DeadlinePolicy, GroupOp, OnOutcome, OpError, RetryClient, RetryStats};
pub use group::{
    Backpressure, GroupBuilder, GroupConfig, GroupInner, GroupRef, GroupStats, OnDone, OpResult,
};
pub use health::{HealthConfig, HealthMonitor, HealthState};
pub use metadata::Primitive;
pub use migrate::{merge_live, split_live, MigrationSpec, OnMigrated};
pub use router::ShardRouter;
pub use slo::{SloEngine, SloRule};
