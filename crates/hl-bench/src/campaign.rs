//! Campaign runner: fan chaos seeds (or any embarrassingly-parallel
//! sweep points) across OS threads without giving up determinism.
//!
//! Each simulated world is strictly single-threaded — that is the
//! repo-wide determinism contract — so the unit of parallelism is a
//! whole campaign: every worker thread builds its own cluster from its
//! seed, runs it to quiescence, and returns plain strings. Workers
//! claim seeds from a shared atomic counter (so a slow seed doesn't
//! stall a static partition), and results are merged back in input
//! order, which makes the parallel output byte-identical to the
//! sequential one whatever the thread count or scheduling.

use hl_cluster::chaos::FaultSchedule;
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimDuration, SimTime};
use hyperloop::api::GroupClient;
use hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupRef, HyperLoopClient, RetryClient,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

const N_RECORDS: usize = 24;
const REC_BYTES: usize = 64;
const STANDBY: HostId = HostId(3);

/// Everything a chaos campaign produces, reduced to deterministic
/// strings so it can cross a thread boundary (the live `World` holds
/// `Rc`s and cannot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignArtifact {
    /// The seed that generated the fault schedule and all RNG streams.
    pub seed: u64,
    /// One-line-per-fact invariant report (acked/failed counts,
    /// reconvergence, settlement).
    pub invariants: String,
    /// The filtered trace stream (`chaos`/`recovery`/`fault` systems).
    pub trace: String,
    /// Chrome trace-event JSON export of the whole campaign.
    pub chrome_trace: String,
    /// Windowed time-series JSON snapshot (counters, sketches, marks).
    /// Participates in the parallel == sequential byte-identity check
    /// like every other field.
    pub timeseries: String,
}

fn record(k: usize) -> Vec<u8> {
    let mut v = format!("chaos-record-{k:04}-").into_bytes();
    while v.len() < REC_BYTES {
        v.push(b'a' + (k % 26) as u8);
    }
    v
}

/// Rebuild `group`'s chain without `failed`, drawing a replacement from
/// the standby pool if one is left, and re-arm detection on the rebuilt
/// chain. The per-group latch makes each chain generation rebuild at
/// most once, however many detection paths fire.
#[allow(clippy::too_many_arguments)]
fn trigger_rebuild(
    latch: &Rc<RefCell<bool>>,
    group: &GroupRef,
    retry: &RetryClient,
    members: &[HostId],
    standbys: &Rc<RefCell<Vec<HostId>>>,
    failed: HostId,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    if std::mem::replace(&mut *latch.borrow_mut(), true) {
        return;
    }
    group.borrow_mut().paused = true;
    let survivors: Vec<HostId> = members.iter().copied().filter(|&h| h != failed).collect();
    let new_member = standbys.borrow_mut().pop();
    if survivors.is_empty() && new_member.is_none() {
        return;
    }
    let mut final_members = survivors.clone();
    if let Some(nm) = new_member {
        final_members.push(nm);
    }
    let retry = retry.clone();
    let standbys = standbys.clone();
    recovery::rebuild_chain(
        w,
        eng,
        group,
        survivors,
        new_member,
        64,
        Box::new(move |w, eng, new_client| {
            retry.swap(new_client.clone());
            arm_recovery(new_client.group(), &retry, final_members, standbys, w, eng);
        }),
    );
}

/// Arm both detection paths (heartbeat misses and transport-error CQEs)
/// and funnel them into one rebuild per chain generation.
fn arm_recovery(
    group: &GroupRef,
    retry: &RetryClient,
    members: Vec<HostId>,
    standbys: Rc<RefCell<Vec<HostId>>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let latch = Rc::new(RefCell::new(false));
    {
        let latch = latch.clone();
        let g = group.clone();
        let retry = retry.clone();
        let members = members.clone();
        let standbys = standbys.clone();
        recovery::start_heartbeats(
            group,
            HeartbeatConfig {
                period: SimDuration::from_millis(2),
                miss_threshold: 3,
            },
            Box::new(move |w, eng, idx| {
                let failed = members[idx];
                trigger_rebuild(&latch, &g, &retry, &members, &standbys, failed, w, eng);
            }),
            w,
            eng,
        );
    }
    {
        let g = group.clone();
        let retry = retry.clone();
        recovery::watch_transport_errors(
            group,
            w,
            Box::new(move |w, eng, _cqe| {
                // Transport errors surface on the hop to the head.
                let failed = members[0];
                trigger_rebuild(&latch, &g, &retry, &members, &standbys, failed, w, eng);
            }),
        );
    }
}

/// Run one chaos campaign to quiescence and reduce it to a
/// [`CampaignArtifact`].
///
/// This is the same 4-host campaign `tests/chaos.rs` asserts over (one
/// durable record every 2ms across a seeded fault window, two detection
/// paths, one standby), so the invariants it reports are the ones the
/// tier-1 suite enforces. Panics if any invariant is violated — a bench
/// sweep must not quietly average over broken campaigns.
pub fn run_campaign(seed: u64) -> CampaignArtifact {
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    w.tracer.enable(&["chaos", "recovery", "fault"]);
    w.enable_timeseries(SimDuration::from_millis(1));

    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 64,
        // The retry budget (8 x 3ms) outlasts any transient fault
        // window the schedule can generate, so only a permanent head
        // failure exhausts it and escalates to a transport-error
        // rebuild.
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    let retry = RetryClient::with_policy(
        client,
        DeadlinePolicy {
            deadline: SimDuration::from_millis(2),
            max_attempts: 20,
            backoff: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(4),
        },
    );

    arm_recovery(
        &group,
        &retry,
        vec![HostId(1), HostId(2)],
        Rc::new(RefCell::new(vec![STANDBY])),
        &mut w,
        &mut eng,
    );

    // Workload: one durable record every 2ms, spanning the fault window.
    let acked = Rc::new(RefCell::new(vec![false; N_RECORDS]));
    let failed_ops = Rc::new(RefCell::new(0u32));
    for k in 0..N_RECORDS {
        let retry = retry.clone();
        let acked = acked.clone();
        let failed_ops = failed_ops.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 2_000_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry.gwrite(
                w,
                eng,
                (k * REC_BYTES) as u64,
                &record(k),
                true,
                Box::new(move |_w, _e, r| match r {
                    Ok(_) => acked.borrow_mut()[k] = true,
                    Err(_) => *failed_ops.borrow_mut() += 1,
                }),
            );
        });
    }

    let sched = FaultSchedule::generate(
        seed,
        &[HostId(1), HostId(2)],
        HostId(0),
        SimTime::from_nanos(2_000_000),
        SimTime::from_nanos(50_000_000),
    );
    sched.apply(&mut eng);

    // Quiesce: all transients heal by ~63ms, supervision settles every
    // op well before 200ms.
    eng.run_until(&mut w, SimTime::from_nanos(200_000_000));

    // Reconvergence: a fresh append on the (possibly rebuilt) chain.
    let final_ok = Rc::new(RefCell::new(None::<bool>));
    {
        let final_ok = final_ok.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            (N_RECORDS * REC_BYTES) as u64,
            &record(N_RECORDS),
            true,
            Box::new(move |_w, _e, r| *final_ok.borrow_mut() = Some(r.is_ok())),
        );
    }
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));

    // One pre-sized buffer instead of a `format!` String per entry —
    // the trace is thousands of lines per seed.
    let trace = {
        use std::fmt::Write;
        let entries = w.tracer.entries();
        let mut out = String::with_capacity(entries.len() * 48);
        for e in entries {
            writeln!(out, "{} {} {}", e.at.as_nanos(), e.sys, e.msg).expect("string write");
        }
        out
    };
    let now = eng.now();
    w.collect_metrics(now);
    let chrome_trace = w.telemetry.chrome_trace();
    let timeseries = w.telemetry.timeseries_json();
    let acked = acked.borrow().clone();
    let failed_ops = *failed_ops.borrow();
    let final_ok = *final_ok.borrow();

    // Enforce the tier-1 invariants before reporting anything.
    assert_eq!(
        retry.outstanding(),
        0,
        "seed {seed}: supervised ops left unsettled"
    );
    let n_acked = acked.iter().filter(|&&a| a).count();
    assert_eq!(
        n_acked + failed_ops as usize,
        N_RECORDS,
        "seed {seed}: op settled neither ACK nor typed error"
    );
    assert_eq!(
        final_ok,
        Some(true),
        "seed {seed}: append after the fault window did not complete"
    );
    let c = retry.client();
    let mut intact = 0usize;
    for (k, was_acked) in acked.iter().enumerate() {
        if !was_acked {
            continue;
        }
        let want = record(k);
        for m in 0..c.group_size() {
            let host = c.member_host(m);
            let addr = c.member_addr(m, (k * REC_BYTES) as u64);
            let got = w.hosts[host.0].mem.read_vec(addr, REC_BYTES).unwrap();
            assert_eq!(
                got, want,
                "seed {seed}: acked record {k} diverges on member {m} ({host})"
            );
        }
        intact += 1;
    }

    let invariants = format!(
        "seed {seed}\nacked {n_acked}/{N_RECORDS}\nfailed_ops {failed_ops}\n\
         final_ok true\noutstanding 0\nacked_records_intact {intact}\n\
         events_executed {}\nend_ns {}\n",
        eng.events_executed(),
        now.as_nanos()
    );
    CampaignArtifact {
        seed,
        invariants,
        trace,
        chrome_trace,
        timeseries,
    }
}

/// Map `f` over `items` on `threads` OS threads, returning results in
/// input order.
///
/// Workers claim indices from a shared atomic counter, so thread
/// scheduling decides only *which thread* runs an item, never what the
/// item computes (each campaign is a self-contained deterministic
/// world) or where its result lands. With `threads <= 1` this is a
/// plain sequential map.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    // The claim counter lives alone on its cache line so worker
    // fetch_adds never false-share with the result slots below.
    #[repr(align(64))]
    struct PaddedCounter(AtomicUsize);
    let next = PaddedCounter(AtomicUsize::new(0));
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.0.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(&items[i])));
                    }
                    mine
                })
            })
            .collect();
        // Merge by moving each result into its input-order slot — no
        // clone, no sort.
        for h in handles {
            for (i, r) in h.join().expect("campaign worker panicked") {
                debug_assert!(out[i].is_none(), "result slot claimed twice");
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every input index was claimed"))
        .collect()
}

/// Run the chaos campaigns for `seeds` one after the other on this
/// thread.
pub fn run_campaigns_sequential(seeds: &[u64]) -> Vec<CampaignArtifact> {
    seeds.iter().map(|&s| run_campaign(s)).collect()
}

/// Run the chaos campaigns for `seeds` fanned across `threads` OS
/// threads. Output is byte-identical to
/// [`run_campaigns_sequential`] — same artifacts, same order.
pub fn run_campaigns_parallel(seeds: &[u64], threads: usize) -> Vec<CampaignArtifact> {
    parallel_map(seeds, threads, |&s| run_campaign(s))
}
