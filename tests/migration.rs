//! Live shard split/merge under traffic, proven correct by a migration
//! test battery.
//!
//! A three-shard HyperLoop deployment (disjoint chains placed by
//! [`ShardPlan::place`]) serves an open-loop keyed write stream while
//! shard 0 is split onto a freshly placed chain —
//! [`split_live`] streams the donor region with the dirty-log + bulk
//! catch-up + bounded-drain + dual-window machinery — and, in the
//! round-trip campaign, merged back with [`merge_live`]. The invariants,
//! per seed:
//!
//! 1. **Differential oracle** — per key, the value replicated by the
//!    HyperLoop-with-mid-run-split run is byte-identical on every member
//!    of the key's *final* owner chain to a never-split Naïve control
//!    driving the same schedule (and to the pure-function expected
//!    payload).
//! 2. **Bystander isolation** — shards 1 and 2 record byte-identical
//!    per-op latency vectors (and whole-region member snapshots) to a
//!    no-migration control of the same seed, including when the donor
//!    chain runs under a gray impairment matrix for the whole window.
//! 3. **Thread-count determinism** — the same seeds produce identical
//!    snapshots at 1, 2 and 4 [`ShardExecutor`] threads.
//! 4. **Protocol order** — stage transitions fire exactly
//!    `idle→planned→streaming→draining→cutover→retired`, and the router
//!    flip replays every parked op.
//! 5. **Model battery** — seeded proptest sequences interleaving issued
//!    ops, stage advances and crashes over [`MigrationModel`] never lose
//!    or double-apply an op.

use hyperloop_repro::cluster::chaos::{member_snapshot, BystanderProbe, FaultSchedule};
use hyperloop_repro::cluster::exec::ShardExecutor;
use hyperloop_repro::cluster::migrate::{MigrationActor, MigrationModel, MigrationStage};
use hyperloop_repro::cluster::shard::{HashRing, ShardGroup, ShardPlan};
use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::GroupClient;
use hyperloop_repro::hyperloop::naive::{Mode, NaiveBuilder, NaiveClient, NaiveConfig};
use hyperloop_repro::hyperloop::{
    merge_live, replica, split_live, DeadlinePolicy, GroupBuilder, GroupConfig, HyperLoopClient,
    MigrationSpec, RetryClient, ShardRouter,
};
use hyperloop_repro::sim::{SimDuration, SimTime};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Initial shards, members per chain, dest chain hosts.
const N_SHARDS: usize = 3;
const REPLICAS: usize = 2;
const G: usize = 1 + REPLICAS;
const DEST_CLIENT: HostId = HostId(9);
const DEST_REPLICAS: [HostId; 2] = [HostId(10), HostId(11)];
const N_HOSTS: usize = 12;
const PARENT: usize = 0;

/// Key/slot geometry: every key owns one globally unique record slot,
/// so a migrated range can never clobber a surviving shard's keys.
const K: usize = 48;
const REC_BYTES: usize = 64;
const REP_BYTES: u64 = 16 << 10;

/// Open-loop schedule: `N_OPS` writes, one every 100µs from 1ms; the
/// split starts at 4ms and the (optional) merge back at 14ms, both well
/// inside the traffic window.
const N_OPS: usize = 240;
const T_START: u64 = 1_000_000;
const OP_PERIOD: u64 = 100_000;
const T_SPLIT: u64 = 4_000_000;
const T_MERGE: u64 = 14_000_000;
const T_END: u64 = 40_000_000;

fn key_bytes(i: usize) -> [u8; 8] {
    (i as u64).to_le_bytes()
}

fn slot_off(i: usize) -> u64 {
    (i * REC_BYTES) as u64
}

/// Op `j` writes key `j % K`; the payload is a pure function of both.
fn record(i: usize, j: usize) -> Vec<u8> {
    let mut v = format!("key{i:03}-v{j:04}-").into_bytes();
    while v.len() < REC_BYTES {
        v.push(b'a' + ((i + j) % 26) as u8);
    }
    v
}

/// The last op index writing key `i` — its expected final version.
fn last_version(i: usize) -> usize {
    i + K * ((N_OPS - 1 - i) / K)
}

fn base_ring() -> HashRing {
    HashRing::new(N_SHARDS)
}

fn split_ring() -> HashRing {
    base_ring().split_shard(PARENT)
}

fn dest_group() -> ShardGroup {
    ShardGroup {
        shard: N_SHARDS,
        client: DEST_CLIENT,
        replicas: DEST_REPLICAS.to_vec(),
    }
}

fn place() -> ShardPlan {
    let hosts: Vec<HostId> = (0..N_SHARDS * G).map(HostId).collect();
    let plan = ShardPlan::place(N_SHARDS, REPLICAS, &hosts);
    assert!(plan.is_disjoint());
    plan
}

fn mig_spec() -> MigrationSpec {
    MigrationSpec {
        policy: retry_policy(),
        ring_slots: 64,
        chunk: 64 * 1024,
    }
}

fn retry_policy() -> DeadlinePolicy {
    DeadlinePolicy {
        deadline: SimDuration::from_millis(2),
        max_attempts: 20,
        backoff: SimDuration::from_micros(500),
        backoff_cap: SimDuration::from_millis(4),
    }
}

/// Everything one campaign run observes. Only plain data + shared
/// probes — no simulation state — so [`digest`] can lower it to `Send`
/// bytes for the threaded determinism property.
struct CampaignRun {
    migrated: bool,
    merged: bool,
    epoch: u64,
    n_failures: usize,
    acked: Vec<bool>,
    /// Per *original* shard: completion latencies in op order.
    probes: Vec<BystanderProbe>,
    /// `[key][member]` record bytes on the key's final owner chain.
    key_values: Vec<Vec<Vec<u8>>>,
    /// `[shard 1, shard 2][member]` whole-region snapshots.
    bystander_regions: Vec<Vec<Vec<u8>>>,
    /// Telemetry mark names in emission order (empty when disabled).
    marks: Vec<String>,
    race: Vec<String>,
}

/// Run the campaign: three chains + router, open-loop keyed writes,
/// optional mid-run split (and merge back), optional fault schedule.
fn run_campaign(
    seed: u64,
    do_split: bool,
    merge_back: bool,
    faults: Option<&FaultSchedule>,
    telemetry: bool,
) -> CampaignRun {
    assert!(do_split || !merge_back, "merge-back requires the split");
    let (mut w, mut eng) = ClusterBuilder::new(N_HOSTS)
        .arena_size(4 << 20)
        .seed(seed)
        .build();
    if telemetry {
        w.enable_telemetry();
    }

    let plan = place();
    let mut retries = Vec::new();
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes: REP_BYTES,
            ring_slots: 64,
            transport_timeout: Some((SimDuration::from_millis(3), 7)),
            ..Default::default()
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group, &mut w);
        retries.push(RetryClient::with_policy(client, retry_policy()));
    }
    let router = ShardRouter::new(retries);
    assert_eq!(router.ring(), base_ring());

    // Open-loop keyed traffic; completions recorded per *original*
    // owner so migration and control runs index identically.
    let ring0 = base_ring();
    let acked = Rc::new(RefCell::new(vec![false; N_OPS]));
    let probes: Vec<BystanderProbe> = (0..N_SHARDS).map(|_| BystanderProbe::new()).collect();
    for j in 0..N_OPS {
        let i = j % K;
        let router = router.clone();
        let acked = acked.clone();
        let probe = probes[ring0.shard_of(&key_bytes(i))].clone();
        let at = SimTime::from_nanos(T_START + j as u64 * OP_PERIOD);
        eng.schedule_at(at, move |w: &mut World, eng| {
            router.gwrite_keyed(
                w,
                eng,
                &key_bytes(i),
                slot_off(i),
                &record(i, j),
                true,
                Box::new(move |_w, _e, r| match r {
                    Ok(res) => {
                        acked.borrow_mut()[j] = true;
                        probe.record(j, res.latency.as_nanos());
                    }
                    Err(_) => probe.record_failure(),
                }),
            );
        });
    }

    let migrated = Rc::new(RefCell::new(false));
    let merged = Rc::new(RefCell::new(false));
    if do_split {
        let router2 = router.clone();
        let m = migrated.clone();
        eng.schedule_at(SimTime::from_nanos(T_SPLIT), move |w: &mut World, eng| {
            split_live(
                &router2,
                PARENT,
                dest_group(),
                mig_spec(),
                w,
                eng,
                Box::new(move |_w, _e| *m.borrow_mut() = true),
            );
        });
    }
    if merge_back {
        // Merge the split-off shard straight back into its parent. The
        // moving ranges are the slots of the keys the split moved.
        let moving: Vec<(u64, u64)> = (0..K)
            .filter(|&i| split_ring().shard_of(&key_bytes(i)) == N_SHARDS)
            .map(|i| (slot_off(i), REC_BYTES as u64))
            .collect();
        let router2 = router.clone();
        let migrated = migrated.clone();
        let m = merged.clone();
        eng.schedule_at(SimTime::from_nanos(T_MERGE), move |w: &mut World, eng| {
            assert!(
                *migrated.borrow(),
                "split must have finished before the merge starts"
            );
            merge_live(
                &router2,
                PARENT,
                moving,
                mig_spec(),
                w,
                eng,
                Box::new(move |_w, _e| *m.borrow_mut() = true),
            );
        });
    }

    if let Some(sched) = faults {
        sched.apply(&mut eng);
    }
    eng.run_until(&mut w, SimTime::from_nanos(T_END));
    assert_eq!(router.outstanding(), 0, "seed {seed}: ops still in flight");
    assert_eq!(router.parked(), 0, "seed {seed}: ops left parked");

    // Final owner ring of every key.
    let final_ring = if do_split && !merge_back {
        split_ring()
    } else {
        base_ring()
    };
    let key_values = (0..K)
        .map(|i| {
            let c = router.client(final_ring.shard_of(&key_bytes(i))).client();
            (0..c.group_size())
                .map(|m| {
                    member_snapshot(
                        &w,
                        c.member_host(m),
                        c.member_addr(m, slot_off(i)),
                        REC_BYTES,
                    )
                })
                .collect()
        })
        .collect();
    let bystander_regions = (1..N_SHARDS)
        .map(|sid| {
            let c = router.client(sid).client();
            (0..c.group_size())
                .map(|m| {
                    member_snapshot(
                        &w,
                        c.member_host(m),
                        c.member_addr(m, 0),
                        REP_BYTES as usize,
                    )
                })
                .collect()
        })
        .collect();

    #[cfg(feature = "check-ownership")]
    let race = w.race_report();
    #[cfg(not(feature = "check-ownership"))]
    let race = Vec::new();

    let (did_migrate, did_merge) = (*migrated.borrow(), *merged.borrow());
    let acked = acked.borrow().clone();
    CampaignRun {
        migrated: did_migrate,
        merged: did_merge,
        epoch: router.epoch(),
        n_failures: router.failures().len(),
        acked,
        probes,
        key_values,
        bystander_regions,
        marks: w.telemetry.marks().iter().map(|m| m.name.clone()).collect(),
        race,
    }
}

/// The never-split Naïve control: the same schedule over naive chains
/// on the same placement; returns `[key][member]` record bytes.
fn run_naive_control(seed: u64) -> Vec<Vec<Vec<u8>>> {
    let (mut w, mut eng) = ClusterBuilder::new(N_HOSTS)
        .arena_size(4 << 20)
        .seed(seed)
        .build();
    let plan = place();
    let clients: Vec<Rc<NaiveClient>> = plan
        .groups
        .iter()
        .map(|g| {
            Rc::new(
                NaiveBuilder::new(NaiveConfig {
                    client: g.client,
                    replicas: g.replicas.clone(),
                    rep_bytes: REP_BYTES,
                    ring_slots: 64,
                    mode: Mode::Event,
                    ..Default::default()
                })
                .build(&mut w, &mut eng),
            )
        })
        .collect();

    let ring = base_ring();
    for j in 0..N_OPS {
        let i = j % K;
        let c = clients[ring.shard_of(&key_bytes(i))].clone();
        let at = SimTime::from_nanos(T_START + j as u64 * OP_PERIOD);
        eng.schedule_at(at, move |w: &mut World, eng| {
            c.gwrite(
                w,
                eng,
                slot_off(i),
                &record(i, j),
                true,
                Box::new(|_w, _e, _r| {}),
            )
            .expect("paced naive issue never backpressures");
        });
    }
    eng.run_until(&mut w, SimTime::from_nanos(T_END));

    (0..K)
        .map(|i| {
            let c = &clients[ring.shard_of(&key_bytes(i))];
            (0..c.group_size())
                .map(|m| {
                    member_snapshot(
                        &w,
                        c.member_host(m),
                        c.member_addr(m, slot_off(i)),
                        REC_BYTES,
                    )
                })
                .collect()
        })
        .collect()
}

fn assert_race_free(run: &CampaignRun, what: &str) {
    assert!(run.race.is_empty(), "{what}: races: {:?}", run.race);
}

/// The split must move some of shard 0's keys and keep some — otherwise
/// both the oracle and the bystander property are vacuous.
fn assert_split_nontrivial() {
    let (b, s) = (base_ring(), split_ring());
    let moved = (0..K)
        .filter(|&i| b.shard_of(&key_bytes(i)) == PARENT && s.shard_of(&key_bytes(i)) == N_SHARDS)
        .count();
    let kept = (0..K)
        .filter(|&i| b.shard_of(&key_bytes(i)) == PARENT && s.shard_of(&key_bytes(i)) == PARENT)
        .count();
    assert!(moved > 0, "no key moves in the split; enlarge K");
    assert!(kept > 0, "every donor key moves; enlarge K");
    for i in 0..K {
        let (from, to) = (b.shard_of(&key_bytes(i)), s.shard_of(&key_bytes(i)));
        assert!(
            from == to || (from == PARENT && to == N_SHARDS),
            "key {i} moved {from}->{to}, not parent->new"
        );
    }
}

/// Invariant 1: mid-run split vs never-split Naïve control, per-key
/// byte identity on every member of the final owner chain.
#[test]
fn mid_run_split_matches_never_split_naive_control() {
    assert_split_nontrivial();
    let hl = run_campaign(42, true, false, None, false);
    assert!(hl.migrated, "split did not complete");
    assert_eq!(hl.epoch, 1, "exactly one router flip");
    assert_eq!(hl.n_failures, 0, "fault-free run must not fail ops");
    assert!(hl.acked.iter().all(|&a| a), "every op must ack");
    assert_race_free(&hl, "split campaign");

    let nv = run_naive_control(42);
    for (i, (hl_kv, nv_kv)) in hl.key_values.iter().zip(&nv).enumerate() {
        let want = record(i, last_version(i));
        for (m, got) in hl_kv.iter().enumerate() {
            assert_eq!(
                got, &want,
                "key {i}: HyperLoop member {m} of the final owner diverges"
            );
        }
        for (m, got) in nv_kv.iter().enumerate() {
            assert_eq!(got, &want, "key {i}: naive member {m} diverges");
        }
        for (m, (a, b)) in hl_kv.iter().zip(nv_kv).enumerate() {
            assert_eq!(
                a, b,
                "key {i} member {m}: split run diverges from never-split control"
            );
        }
    }
}

/// Invariant 1 (shrink direction): split, keep writing, merge back —
/// ownership is restored and every key's final version lands on every
/// member of its (original) owner chain, byte-identical to the control.
#[test]
fn split_then_merge_back_under_traffic_matches_control() {
    let hl = run_campaign(43, true, true, None, false);
    assert!(hl.migrated && hl.merged, "split+merge did not complete");
    assert_eq!(hl.epoch, 2, "two router flips (split, merge)");
    assert_eq!(hl.n_failures, 0);
    assert!(hl.acked.iter().all(|&a| a), "every op must ack");
    assert_race_free(&hl, "split+merge campaign");

    let nv = run_naive_control(43);
    for (i, (hl_kv, nv_kv)) in hl.key_values.iter().zip(&nv).enumerate() {
        let want = record(i, last_version(i));
        for (m, (a, b)) in hl_kv.iter().zip(nv_kv).enumerate() {
            assert_eq!(a, &want, "key {i} member {m}: wrong final version");
            assert_eq!(a, b, "key {i} member {m}: round trip diverges from control");
        }
    }
}

/// Invariant 2: shards 1 and 2 must not notice shard 0's migration —
/// per-op latency vectors and whole-region member snapshots are
/// byte-identical to the no-migration control of the same seed.
#[test]
fn bystanders_unperturbed_by_neighbor_split() {
    let split = run_campaign(44, true, false, None, false);
    let control = run_campaign(44, false, false, None, false);
    assert!(split.migrated);
    assert_eq!(control.epoch, 0);

    for sid in 1..N_SHARDS {
        split.probes[sid].assert_identical_to(&control.probes[sid], "migration-bystander");
        assert_eq!(
            split.bystander_regions[sid - 1],
            control.bystander_regions[sid - 1],
            "shard {sid}: member regions perturbed by the neighbor's migration"
        );
    }
    assert_race_free(&split, "bystander campaign");
}

/// Invariant 2 under gray impairment: the donor chain is degraded by a
/// seeded impairment matrix (jitter, lossy links, rate limits,
/// straggler NICs — donor-scoped by construction) for the whole
/// migration window; bystander timing must still be byte-identical
/// between the migrating run and the impaired-but-not-migrating
/// control.
#[test]
fn bystanders_unperturbed_by_split_under_gray_impairment() {
    let plan = place();
    let donor = &plan.groups[PARENT];
    let sched = FaultSchedule::generate_gray(
        77,
        &donor.replicas,
        donor.client,
        SimTime::from_nanos(2_000_000),
        SimTime::from_nanos(20_000_000),
    );
    assert!(!sched.events.is_empty());

    let split = run_campaign(45, true, false, Some(&sched), false);
    let control = run_campaign(45, false, false, Some(&sched), false);
    assert!(
        split.migrated,
        "split must ride out the gray impairment matrix"
    );
    for sid in 1..N_SHARDS {
        split.probes[sid].assert_identical_to(&control.probes[sid], "gray-migration-bystander");
        assert_eq!(
            split.bystander_regions[sid - 1],
            control.bystander_regions[sid - 1],
            "shard {sid}: member regions perturbed under impairment"
        );
        assert_eq!(split.probes[sid].failed(), 0, "bystander saw failures");
    }
    assert_race_free(&split, "gray bystander campaign");
}

/// `Send` digest of a campaign for the threaded determinism property:
/// `(migrated, epoch, acked, per-shard latencies, flattened bytes)`.
type Digest = (bool, u64, Vec<bool>, Vec<Vec<(usize, u64)>>, Vec<u8>);

fn digest(run: &CampaignRun) -> Digest {
    let lat: Vec<Vec<(usize, u64)>> = run.probes.iter().map(|p| p.latencies()).collect();
    let mut bytes = Vec::new();
    for kv in &run.key_values {
        for m in kv {
            bytes.extend_from_slice(m);
        }
    }
    for sr in &run.bystander_regions {
        for m in sr {
            bytes.extend_from_slice(m);
        }
    }
    (run.migrated, run.epoch, run.acked.clone(), lat, bytes)
}

/// Invariant 3: the same seeds produce byte-identical campaign
/// artifacts at 1, 2 and 4 executor threads (each job builds its whole
/// world inside the closure — the executor's purity contract).
#[test]
fn same_seed_identical_snapshots_across_executor_threads() {
    const JOBS: usize = 3;
    let job = |idx: usize| digest(&run_campaign(300 + idx as u64, true, false, None, false));

    let t1 = ShardExecutor::new(1).run(JOBS, job);
    let t2 = ShardExecutor::new(2).run(JOBS, job);
    let t4 = ShardExecutor::new(4).run(JOBS, job);
    for idx in 0..JOBS {
        assert_eq!(t1[idx], t2[idx], "job {idx}: 2-thread run diverged");
        assert_eq!(t1[idx], t4[idx], "job {idx}: 4-thread run diverged");
    }
}

/// Invariant 4: the protocol walks its five stages in order and the
/// router flip is observable between drain and retirement.
#[test]
fn split_stage_transitions_fire_in_order() {
    let run = run_campaign(46, true, false, None, true);
    assert!(run.migrated);

    let stages: Vec<&str> = run
        .marks
        .iter()
        .filter(|m| m.starts_with("transition:migration:"))
        .map(|m| m.as_str())
        .collect();
    assert_eq!(
        stages,
        vec![
            "transition:migration:idle->planned",
            "transition:migration:planned->streaming",
            "transition:migration:streaming->draining",
            "transition:migration:draining->cutover",
            "transition:migration:cutover->retired",
        ],
        "stage transitions out of order: {stages:?}"
    );
    assert!(
        run.marks.iter().any(|m| m == "router:flip:epoch1"),
        "router flip mark missing"
    );
    let flip = run.marks.iter().position(|m| m == "router:flip:epoch1");
    let cutover = run
        .marks
        .iter()
        .position(|m| m == "transition:migration:draining->cutover");
    let retired = run
        .marks
        .iter()
        .position(|m| m == "transition:migration:cutover->retired");
    assert!(
        cutover < flip && flip < retired,
        "flip must land inside the cutover stage"
    );
}

// ---------------------------------------------------------------------
// Model battery: interleaved issue/advance/crash sequences.
// ---------------------------------------------------------------------

/// One step of a generated migration history.
#[derive(Debug, Clone)]
enum Step {
    /// Client issues a write to key `k`.
    Issue(u64),
    /// The migration advances one stage.
    Advance,
    /// `actor` crashes (first crash wins; later ones are no-ops since
    /// the model is already Retired).
    Crash(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (0u64..16).prop_map(Step::Issue),
        3 => Just(Step::Advance),
        1 => (0usize..MigrationActor::ALL.len()).prop_map(Step::Crash),
    ]
}

/// Every third key is in the moving range.
fn moving(k: u64) -> bool {
    k.is_multiple_of(3)
}

fn run_model(steps: &[Step]) -> MigrationModel {
    let mut m = MigrationModel::new();
    for k in 0..16 {
        m.seed(k);
    }
    for s in steps {
        match *s {
            Step::Issue(k) => {
                m.issue(k, moving(k));
            }
            Step::Advance => {
                if m.stage() != MigrationStage::Retired {
                    m.advance(moving);
                }
            }
            Step::Crash(a) => {
                if m.stage() != MigrationStage::Retired {
                    m.crash(MigrationActor::ALL[a]);
                }
            }
        }
    }
    // Drive any unfinished migration to completion.
    while m.stage() != MigrationStage::Retired {
        m.advance(moving);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Invariant 5: whatever the interleaving of issued ops, stage
    /// advances and crashes (of source head, dest head or router), the
    /// final owner of every key holds each issued op exactly once — no
    /// op lost, none double-applied.
    #[test]
    fn model_interleavings_lose_nothing_apply_nothing_twice(
        steps in pvec(step_strategy(), 1..48)
    ) {
        let m = run_model(&steps);
        prop_assert!(m.check(moving).is_ok(), "{:?}", m.check(moving).err());
    }
}

/// A deterministic long interleaving as a fast CI path (no proptest
/// runner): issue-heavy traffic with a crash landing mid-drain.
#[test]
fn model_fixed_crash_mid_drain_keeps_history_exact() {
    let mut steps: Vec<Step> = (0..24).map(|k| Step::Issue(k % 16)).collect();
    steps.push(Step::Advance); // planned -> streaming
    steps.extend((0..8).map(Step::Issue));
    steps.push(Step::Advance); // streaming -> draining (window opens)
    steps.extend((0..8).map(Step::Issue)); // moving keys park
    steps.push(Step::Crash(0)); // source head dies pre-commit
    steps.extend((0..8).map(Step::Issue));
    let m = run_model(&steps);
    assert!(m.aborted(), "crash before cutover must abort to source");
    m.check(moving).expect("history exact after abort");
}
