//! Whole-stack integration tests: every crate composed, ACID properties
//! checked at the system level.

use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::{
    GroupClient, LogLayout, LogRecord, RedoEntry, ReplicatedLog,
};
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::{Engine, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(n: usize, seed: u64) -> (World, Engine<World>, Rc<HyperLoopClient>) {
    let (mut w, mut eng) = ClusterBuilder::new(n + 1)
        .arena_size(4 << 20)
        .seed(seed)
        .build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: (1..=n).map(HostId).collect(),
        rep_bytes: 1 << 20,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));
    (w, eng, client)
}

/// Durability: every ACKed (flushed) gWRITE survives a power failure on
/// every replica; an un-flushed write need not.
#[test]
fn acked_flushed_writes_survive_total_power_failure() {
    let (mut w, mut eng, client) = setup(2, 1);
    let acked = Rc::new(RefCell::new(0));
    for k in 0..25u64 {
        let a = acked.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                k * 64,
                format!("durable-{k:02}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
        let a2 = acked.clone();
        let want = k as i32 + 1;
        eng.run_while(&mut w, move |_| *a2.borrow() < want);
    }
    // Also one unflushed write (not yet durable by contract).
    let a = acked.clone();
    client
        .gwrite(
            &mut w,
            &mut eng,
            25 * 64,
            b"volatile--",
            false,
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
    let a2 = acked.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < 26);

    // Power failure everywhere.
    for h in 1..3 {
        w.hosts[h].mem.crash();
    }
    for m in 1..3 {
        for k in 0..25u64 {
            let addr = client.member_addr(m, k * 64);
            assert_eq!(
                w.hosts[m].mem.read_vec(addr, 10).unwrap(),
                format!("durable-{k:02}").into_bytes(),
                "member {m} record {k}"
            );
        }
        // The unflushed record was lost (it was only in the NIC cache).
        let addr = client.member_addr(m, 25 * 64);
        assert_eq!(w.hosts[m].mem.read_vec(addr, 10).unwrap(), vec![0u8; 10]);
    }
}

/// Atomicity: a multi-entry log record either applies fully or not at
/// all, even across a crash between append and execute — recovery
/// replays the durable log.
#[test]
fn multi_entry_records_apply_atomically_via_log_replay() {
    let (mut w, mut eng, client) = setup(2, 2);
    let layout = LogLayout {
        log_off: 0,
        log_cap: 64 << 10,
        db_off: 256 << 10,
    };
    let mut log = ReplicatedLog::new(client.clone(), layout.clone());
    let rec = LogRecord {
        entries: vec![
            RedoEntry {
                db_offset: 0,
                data: b"account-a:-100".to_vec(),
            },
            RedoEntry {
                db_offset: 0x100,
                data: b"account-b:+100".to_vec(),
            },
        ],
    };
    let appended = Rc::new(RefCell::new(false));
    let a = appended.clone();
    log.append(
        &mut w,
        &mut eng,
        &rec,
        Box::new(move |_w, _e, _r| *a.borrow_mut() = true),
    )
    .unwrap();
    let a2 = appended.clone();
    eng.run_while(&mut w, move |_| !*a2.borrow());

    // First, the happy path: execute applies BOTH entries everywhere.
    let done = Rc::new(RefCell::new(false));
    let d = done.clone();
    log.execute_and_advance(
        &mut w,
        &mut eng,
        Box::new(move |_w, _e, _r| *d.borrow_mut() = true),
    )
    .unwrap();
    let d2 = done.clone();
    eng.run_while(&mut w, move |_| !*d2.borrow());
    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let a = client.member_addr(m, layout.db_off);
        let b = client.member_addr(m, layout.db_off + 0x100);
        assert_eq!(w.hosts[host].mem.read(a, 14).unwrap(), b"account-a:-100");
        assert_eq!(w.hosts[host].mem.read(b, 14).unwrap(), b"account-b:+100");
    }

    // Append a second record, then power-fail every replica BEFORE
    // executing it. A crash also wipes the (volatile) pre-posted WQE
    // rings, exactly like real NIC state — the chain is dead until the
    // recovery protocol rebuilds it. Atomicity holds because the
    // durable log contains the record as an all-or-nothing unit that
    // replay applies in full.
    let rec2 = LogRecord {
        entries: vec![
            RedoEntry {
                db_offset: 0x200,
                data: b"account-c:-500".to_vec(),
            },
            RedoEntry {
                db_offset: 0x300,
                data: b"account-d:+500".to_vec(),
            },
        ],
    };
    let appended2 = Rc::new(RefCell::new(false));
    let a = appended2.clone();
    log.append(
        &mut w,
        &mut eng,
        &rec2,
        Box::new(move |_w, _e, _r| *a.borrow_mut() = true),
    )
    .unwrap();
    let a2 = appended2.clone();
    eng.run_while(&mut w, move |_| !*a2.borrow());
    let rec2_off = {
        // rec2 starts where rec ended in the record area.
        64 + rec.encoded_len()
    };
    for h in 1..3 {
        w.hosts[h].mem.crash();
    }
    for m in 1..3 {
        // The second record was never applied...
        let db_c = client.member_addr(m, layout.db_off + 0x200);
        assert_eq!(w.hosts[m].mem.read_vec(db_c, 14).unwrap(), vec![0u8; 14]);
        // ...but survives in the durable log in full, ready for replay.
        let tail = w.hosts[m].mem.read_u64(client.member_addr(m, 8)).unwrap();
        assert_eq!(tail, rec.encoded_len() + rec2.encoded_len());
        let bytes = w.hosts[m]
            .mem
            .read_vec(client.member_addr(m, rec2_off), rec2.encoded_len() as usize)
            .unwrap();
        let replayed = LogRecord::decode(&bytes).expect("durable record decodes");
        assert_eq!(replayed, rec2, "member {m} can replay the full record");
        // Manual replay (what recovery does): both entries apply.
        for e in &replayed.entries {
            let addr = client.member_addr(m, layout.db_off + e.db_offset);
            w.hosts[m].mem.write(addr, &e.data).unwrap();
        }
        let c = client.member_addr(m, layout.db_off + 0x200);
        let d = client.member_addr(m, layout.db_off + 0x300);
        assert_eq!(w.hosts[m].mem.read(c, 14).unwrap(), b"account-c:-500");
        assert_eq!(w.hosts[m].mem.read(d, 14).unwrap(), b"account-d:+500");
    }
}

/// Isolation: racing group-lock acquisitions never both succeed, and
/// rollback leaves every lock word consistent.
#[test]
fn racing_lock_acquisitions_are_mutually_exclusive() {
    use hyperloop_repro::hyperloop::api::{GroupLock, LockOutcome};
    let (mut w, mut eng, client) = setup(2, 3);
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    // Two owners race the same lock word in the same event step.
    for owner in [11u32, 22] {
        let lock = GroupLock::new(client.clone(), 0xf00, owner);
        let o = outcomes.clone();
        lock.wr_lock(
            &mut w,
            &mut eng,
            Box::new(move |_w, _e, r| o.borrow_mut().push((owner, r))),
        )
        .unwrap();
    }
    eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
    let o = outcomes.borrow();
    assert_eq!(o.len(), 2);
    let wins = o
        .iter()
        .filter(|(_, r)| *r == LockOutcome::Acquired)
        .count();
    assert_eq!(wins, 1, "exactly one winner: {o:?}");
    // The lock word on every member belongs to the winner.
    let winner = o
        .iter()
        .find(|(_, r)| *r == LockOutcome::Acquired)
        .unwrap()
        .0;
    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let v = w.hosts[host]
            .mem
            .read_u64(client.member_addr(m, 0xf00))
            .unwrap();
        assert_eq!(v, (1 << 63) | winner as u64, "member {m}");
    }
}

/// Determinism: the complete stack replays bit-identically from a seed.
#[test]
fn whole_stack_is_deterministic() {
    fn run(seed: u64) -> (u64, u64, Vec<u8>) {
        let (mut w, mut eng, client) = setup(2, seed);
        let acked = Rc::new(RefCell::new(0));
        for k in 0..10u64 {
            let a = acked.clone();
            let _ = client.gwrite(
                &mut w,
                &mut eng,
                k * 128,
                &[k as u8; 100],
                true,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            );
        }
        eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
        let snapshot = w.hosts[2]
            .mem
            .read_vec(client.member_addr(2, 0), 10 * 128)
            .unwrap();
        (eng.events_executed(), eng.now().as_nanos(), snapshot)
    }
    assert_eq!(run(77), run(77));
    // A different seed still converges to the same *data* (timing may
    // differ) — correctness is seed-independent.
    assert_eq!(run(77).2, run(78).2);
}

/// Group sizes beyond the paper's 7 still work (future-proofing).
#[test]
fn deep_chains_replicate_correctly() {
    let (mut w, mut eng, client) = setup(8, 4);
    let acked = Rc::new(RefCell::new(false));
    let a = acked.clone();
    client
        .gwrite(
            &mut w,
            &mut eng,
            0,
            b"nine-member-group",
            true,
            Box::new(move |_w, _e, _r| *a.borrow_mut() = true),
        )
        .unwrap();
    let a2 = acked.clone();
    eng.run_while(&mut w, move |_| !*a2.borrow());
    for m in 0..9 {
        let host = if m == 0 { 0 } else { m };
        let addr = client.member_addr(m, 0);
        assert_eq!(
            w.hosts[host].mem.read(addr, 17).unwrap(),
            b"nine-member-group"
        );
    }
}
