// Layout fixture: crate A's view of the shared descriptor — op-id at 8.
pub const DESC_SIZE: u64 = 16;
pub const OP: u64 = 8;
