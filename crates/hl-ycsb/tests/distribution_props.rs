//! Property tests for the YCSB key-chooser distributions
//! (`hl-ycsb/src/distributions.rs`), driven by seeded proptest
//! strategies so every case is replayable:
//!
//! 1. **In-range** — every chooser kind only ever emits keys inside the
//!    current keyspace, for arbitrary seeds, item counts and skews.
//! 2. **Deterministic per seed** — the same factory seed and stream
//!    name replay the exact draw sequence.
//! 3. **Skew ordering** — a higher zipfian theta concentrates strictly
//!    more mass on the head ranks than a clearly lower one.

use hl_sim::RngFactory;
use hl_ycsb::{KeyChooser, Zipfian};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every chooser kind stays inside `[0, records)` regardless of
    /// seed, keyspace size, or skew.
    #[test]
    fn choosers_stay_in_range(
        seed in any::<u64>(),
        records in 1u64..10_000,
        theta_pct in 10u32..100,
    ) {
        let theta = theta_pct as f64 / 100.0;
        let mut rng = RngFactory::new(seed).stream("props-range");
        let mut choosers = [
            KeyChooser::Uniform,
            KeyChooser::ScrambledZipfian(Zipfian::new(records, theta)),
            KeyChooser::Latest(Zipfian::new(records, theta)),
        ];
        for ch in &mut choosers {
            for _ in 0..256 {
                let k = ch.next(&mut rng, records);
                prop_assert!(k < records, "{ch:?} emitted {k} >= {records}");
            }
        }
    }

    /// Raw zipfian ranks stay in `[0, items)` too, including after the
    /// keyspace grows mid-stream.
    #[test]
    fn zipfian_ranks_stay_in_range(
        seed in any::<u64>(),
        items in 1u64..5_000,
        growth in 1u64..5_000,
    ) {
        let mut z = Zipfian::ycsb(items);
        let mut rng = RngFactory::new(seed).stream("props-zipf");
        for _ in 0..128 {
            prop_assert!(z.next_rank(&mut rng) < items);
        }
        z.grow(items + growth);
        for _ in 0..128 {
            prop_assert!(z.next_rank(&mut rng) < items + growth);
        }
    }

    /// The same factory seed and stream name replay the identical draw
    /// sequence for every chooser kind.
    #[test]
    fn draws_are_deterministic_per_seed(
        seed in any::<u64>(),
        records in 1u64..10_000,
    ) {
        for mk in [
            || KeyChooser::Uniform,
            || KeyChooser::ScrambledZipfian(Zipfian::ycsb(1)),
            || KeyChooser::Latest(Zipfian::ycsb(1)),
        ] {
            let mut a_rng = RngFactory::new(seed).stream("props-det");
            let mut b_rng = RngFactory::new(seed).stream("props-det");
            let (mut a, mut b) = (mk(), mk());
            let xs: Vec<u64> = (0..128).map(|_| a.next(&mut a_rng, records)).collect();
            let ys: Vec<u64> = (0..128).map(|_| b.next(&mut b_rng, records)).collect();
            prop_assert_eq!(xs, ys);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Skew ordering: with a clear theta gap, the hotter generator puts
    /// strictly more of its mass on the head ranks.
    #[test]
    fn higher_theta_is_more_skewed(
        seed in any::<u64>(),
        lo_pct in 20u32..50,
    ) {
        const ITEMS: u64 = 1_000;
        const DRAWS: usize = 20_000;
        const HEAD: u64 = 10;
        let lo = lo_pct as f64 / 100.0;
        let hi = lo + 0.45;
        let z_lo = Zipfian::new(ITEMS, lo);
        let z_hi = Zipfian::new(ITEMS, hi);
        let mut rng_lo = RngFactory::new(seed).stream("props-skew");
        let mut rng_hi = RngFactory::new(seed).stream("props-skew");
        let head_lo = (0..DRAWS)
            .filter(|_| z_lo.next_rank(&mut rng_lo) < HEAD)
            .count();
        let head_hi = (0..DRAWS)
            .filter(|_| z_hi.next_rank(&mut rng_hi) < HEAD)
            .count();
        prop_assert!(
            head_hi > head_lo,
            "theta {hi:.2} head {head_hi} not hotter than theta {lo:.2} head {head_lo}"
        );
    }
}
