//! Fan-out replication offload (paper §7, "Supporting other replication
//! protocols").
//!
//! In FaRM-style primary/backup replication a single primary coordinates
//! all backups. The paper sketches how HyperLoop's two mechanisms let
//! the *client* offload that coordination to the **primary's NIC**:
//! "the client can offload these operations to the primary's NIC and
//! manage the locks and logs in backups via the primary's NIC without
//! the need for polling in the primary and the backups".
//!
//! The construction here uses exactly the machinery of the chain:
//!
//! * the client WRITEs data + SENDs metadata to the primary;
//! * the primary pre-posts, **per backup**, a `WAIT(client-recv CQ) ·
//!   WRITE · SEND` bundle whose descriptors the incoming metadata
//!   rewrites — all the WAITs watch the same recv CQ, so one client
//!   SEND triggers every backup's transfer in parallel;
//! * each backup pre-posts a responder slot (`WAIT(recv) · SEND(ack)`)
//!   whose ack lands on a **shared acknowledgement CQ** at the primary;
//! * the primary's ACK queue pre-posts `WAIT(shared ack CQ, count = n)
//!   · WRITE_IMM(client)` — the WAIT's counting semantics aggregate all
//!   backup acks before the group ACK fires.
//!
//! Compared to the chain, fan-out halves the dependency depth (two NIC
//! hops instead of n) but serializes the payload n times on the
//! primary's egress port and concentrates QP state there — the paper's
//! reason to prefer chains (§7: "at most one active write-QP per
//! active partition").

use crate::group::{OnDone, OpResult};
use crate::metadata::{self, MetaMsg};
use hl_cluster::World;
use hl_fabric::HostId;
use hl_nvm::Region;
use hl_rnic::{
    field_offset, flags, Access, CqeKind, CqeStatus, Opcode, RecvWqe, ScatterEntry, Wqe, WQE_SIZE,
};
use hl_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Fan-out group configuration.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// The client (transaction coordinator).
    pub client: HostId,
    /// The primary whose NIC coordinates the backups.
    pub primary: HostId,
    /// The backups.
    pub backups: Vec<HostId>,
    /// Replicated-region size.
    pub rep_bytes: u64,
    /// Pre-posted slots.
    pub ring_slots: u32,
    /// Replenisher period (primary + backups, off the critical path).
    pub replenish_period: SimDuration,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            client: HostId(0),
            primary: HostId(1),
            backups: Vec::new(),
            rep_bytes: 1 << 20,
            ring_slots: 64,
            replenish_period: SimDuration::from_micros(200),
        }
    }
}

struct BackupState {
    host: HostId,
    /// Primary-side QP toward this backup.
    qp_out: u32,
    /// Backup-side QP from the primary (its recv cq feeds the WAIT).
    qp_in: u32,
    rcq_in: u32,
    /// Backup-side ack QP toward the primary.
    qp_ack: u32,
    /// Primary-side QP receiving this backup's acks (RECVs must be
    /// replenished per slot; its recv CQ is the shared aggregation CQ).
    pr_qp: u32,
    rep: Region,
    rep_rkey: u32,
    slots_posted: u64,
}

struct Pending {
    issued_at: SimTime,
    done: Option<OnDone>,
}

/// Shared state of a fan-out group.
pub struct FanoutInner {
    cfg: FanoutConfig,
    msg_len: u64,
    client_rep: Region,
    primary_rep: Region,
    primary_rep_rkey: u32,
    /// Client-side out QP (to the primary).
    qp_out: u32,
    /// Client-side ACK QP.
    ack_qp: u32,
    ack_rcq: u32,
    tx_staging: Region,
    ack_buf: Region,
    ack_buf_rkey: u32,
    /// Primary-side QP receiving from the client.
    pri_qp_in: u32,
    pri_rcq_in: u32,
    /// Primary-side ACK-aggregation QP toward the client, plus the
    /// shared CQ its WAIT counts.
    pri_qp_ack_out: u32,
    shared_ack_cq: u32,
    /// Primary staging for the fanned-out metadata.
    pri_staging: Region,
    backups: Vec<BackupState>,
    pri_slots_posted: u64,
    /// Client-side credit: slots the primary has reported as posted
    /// (updated by the replenisher's control message, fabric-delayed).
    posted_seen: u64,
    pending: BTreeMap<u32, Pending>,
    next_seq: u32,
    /// Completed operations.
    pub acked: u64,
}

/// Shared handle.
pub type FanoutRef = Rc<RefCell<FanoutInner>>;

/// Builds the fan-out group and pre-posts every ring.
pub struct FanoutBuilder {
    cfg: FanoutConfig,
    gid: u32,
}

fn next_gid() -> u32 {
    use std::sync::atomic::{AtomicU32, Ordering};
    static GID: AtomicU32 = AtomicU32::new(0);
    GID.fetch_add(1, Ordering::Relaxed)
}

impl FanoutBuilder {
    /// Start from a config.
    pub fn new(cfg: FanoutConfig) -> Self {
        assert!(!cfg.backups.is_empty(), "fan-out needs >= 1 backup");
        FanoutBuilder {
            cfg,
            gid: next_gid(),
        }
    }

    /// Allocate, wire and pre-post.
    pub fn build(self, w: &mut World) -> FanoutRef {
        let cfg = self.cfg;
        let gid = self.gid;
        let slots = cfg.ring_slots;
        // Metadata message reuses the chain layout: one record per
        // backup plus one for the primary (member count = backups + 2).
        let g = cfg.backups.len() + 2;
        let msg_len = metadata::msg_len(g);
        let ch = cfg.client;
        let ph = cfg.primary;

        // --- regions ---------------------------------------------------
        let client_rep = w
            .host(ch)
            .layout
            .alloc(&format!("fo{gid}.rep"), cfg.rep_bytes, 64);
        let tx_staging =
            w.host(ch)
                .layout
                .alloc(&format!("fo{gid}.tx"), slots as u64 * msg_len, 64);
        let ack_buf = w
            .host(ch)
            .layout
            .alloc(&format!("fo{gid}.ack"), slots as u64 * 8, 64);
        let ack_mr = w
            .host(ch)
            .nic
            .register_mr(ack_buf.addr, ack_buf.len, Access::REMOTE_WRITE);

        let primary_rep = w
            .host(ph)
            .layout
            .alloc(&format!("fo{gid}.rep"), cfg.rep_bytes, 64);
        let pri_mr = w.host(ph).nic.register_mr(
            primary_rep.addr,
            primary_rep.len,
            Access::REMOTE_WRITE | Access::REMOTE_READ,
        );
        let pri_staging =
            w.host(ph)
                .layout
                .alloc(&format!("fo{gid}.staging"), slots as u64 * msg_len, 64);

        // --- client QPs --------------------------------------------------
        let out_sq =
            w.host(ch)
                .layout
                .alloc(&format!("fo{gid}.out_sq"), 3 * slots as u64 * WQE_SIZE, 64);
        let out_scq = w.host(ch).nic.create_cq();
        let out_rcq = w.host(ch).nic.create_cq();
        let qp_out = w
            .host(ch)
            .nic
            .create_qp(out_scq, out_rcq, out_sq.addr, 3 * slots);
        let ack_sq = w
            .host(ch)
            .layout
            .alloc(&format!("fo{gid}.ack_sq"), 4 * WQE_SIZE, 64);
        let ack_scq = w.host(ch).nic.create_cq();
        let ack_rcq = w.host(ch).nic.create_cq();
        let ack_qp = w.host(ch).nic.create_qp(ack_scq, ack_rcq, ack_sq.addr, 4);
        for k in 0..slots as u64 {
            w.host(ch).post_recv(
                ack_qp,
                RecvWqe {
                    wr_id: k,
                    scatter: vec![],
                },
            );
        }

        // --- primary QPs -------------------------------------------------
        let pri_in_sq = w
            .host(ph)
            .layout
            .alloc(&format!("fo{gid}.in_sq"), 4 * WQE_SIZE, 64);
        let pri_in_scq = w.host(ph).nic.create_cq();
        let pri_rcq_in = w.host(ph).nic.create_cq();
        let pri_qp_in = w
            .host(ph)
            .nic
            .create_qp(pri_in_scq, pri_rcq_in, pri_in_sq.addr, 4);
        w.connect_qps(ch, qp_out, ph, pri_qp_in);

        // Shared CQ all backup acks land on (recv side of the per-backup
        // ack QPs) — its production count is what the aggregating WAIT
        // watches.
        let shared_ack_cq = w.host(ph).nic.create_cq();

        // Primary ACK queue toward the client.
        let pri_ack_sq =
            w.host(ph)
                .layout
                .alloc(&format!("fo{gid}.ack_sq"), 2 * slots as u64 * WQE_SIZE, 64);
        let pri_ack_scq = w.host(ph).nic.create_cq();
        let pri_ack_rcq = w.host(ph).nic.create_cq();
        let pri_qp_ack_out =
            w.host(ph)
                .nic
                .create_qp(pri_ack_scq, pri_ack_rcq, pri_ack_sq.addr, 2 * slots);
        w.connect_qps(ph, pri_qp_ack_out, ch, ack_qp);

        // --- per-backup wiring -------------------------------------------
        let mut backups = Vec::new();
        for (i, &bh) in cfg.backups.iter().enumerate() {
            let rep = w
                .host(bh)
                .layout
                .alloc(&format!("fo{gid}.rep"), cfg.rep_bytes, 64);
            let mr = w.host(bh).nic.register_mr(
                rep.addr,
                rep.len,
                Access::REMOTE_WRITE | Access::REMOTE_READ,
            );
            // Primary -> backup QP (3 WQEs per slot: WAIT WRITE SEND).
            let out_sq = w.host(ph).layout.alloc(
                &format!("fo{gid}.b{i}.out_sq"),
                3 * slots as u64 * WQE_SIZE,
                64,
            );
            let oscq = w.host(ph).nic.create_cq();
            let orcq = w.host(ph).nic.create_cq();
            let qp_out = w.host(ph).nic.create_qp(oscq, orcq, out_sq.addr, 3 * slots);
            // Backup <- primary QP.
            let in_sq = w
                .host(bh)
                .layout
                .alloc(&format!("fo{gid}.in_sq"), 4 * WQE_SIZE, 64);
            let iscq = w.host(bh).nic.create_cq();
            let rcq_in = w.host(bh).nic.create_cq();
            let qp_in = w.host(bh).nic.create_qp(iscq, rcq_in, in_sq.addr, 4);
            w.connect_qps(ph, qp_out, bh, qp_in);
            // Backup -> primary ack QP (2 WQEs per slot: WAIT SEND).
            let bk_ack_sq = w.host(bh).layout.alloc(
                &format!("fo{gid}.ack_sq"),
                2 * slots as u64 * WQE_SIZE,
                64,
            );
            let bscq = w.host(bh).nic.create_cq();
            let brcq = w.host(bh).nic.create_cq();
            let qp_ack = w
                .host(bh)
                .nic
                .create_qp(bscq, brcq, bk_ack_sq.addr, 2 * slots);
            // Primary-side receiving end shares `shared_ack_cq`.
            let pr_sq =
                w.host(ph)
                    .layout
                    .alloc(&format!("fo{gid}.b{i}.ackin_sq"), 4 * WQE_SIZE, 64);
            let pr_scq = w.host(ph).nic.create_cq();
            let pr_qp = w
                .host(ph)
                .nic
                .create_qp(pr_scq, shared_ack_cq, pr_sq.addr, 4);
            w.connect_qps(bh, qp_ack, ph, pr_qp);
            backups.push(BackupState {
                host: bh,
                qp_out,
                qp_in,
                rcq_in,
                qp_ack,
                pr_qp,
                rep,
                rep_rkey: mr.rkey,
                slots_posted: 0,
            });
        }

        let inner = FanoutInner {
            msg_len,
            client_rep,
            primary_rep,
            primary_rep_rkey: pri_mr.rkey,
            qp_out,
            ack_qp,
            ack_rcq,
            tx_staging,
            ack_buf,
            ack_buf_rkey: ack_mr.rkey,
            pri_qp_in,
            pri_rcq_in,
            pri_qp_ack_out,
            shared_ack_cq,
            pri_staging,
            backups,
            pri_slots_posted: 0,
            posted_seen: slots as u64,
            pending: BTreeMap::new(),
            next_seq: 0,
            acked: 0,
            cfg,
        };
        let rc: FanoutRef = Rc::new(RefCell::new(inner));
        {
            let mut inner = rc.borrow_mut();
            for _ in 0..slots {
                post_primary_slot(&mut inner, w);
                for b in 0..inner.backups.len() {
                    post_backup_slot(&mut inner, w, b);
                }
            }
            // Arm (park) every WAIT.
            let (ph2, qps): (HostId, Vec<u32>) = {
                let mut qps = vec![inner.pri_qp_ack_out];
                qps.extend(inner.backups.iter().map(|b| b.qp_out));
                (inner.cfg.primary, qps)
            };
            for qp in qps {
                let h = &mut w.hosts[ph2.0];
                let outs = h.nic.ring_doorbell(SimTime::ZERO, qp, &mut h.mem);
                debug_assert!(outs.is_empty());
            }
            for b in 0..inner.backups.len() {
                let (bh, qp) = (inner.backups[b].host, inner.backups[b].qp_ack);
                let h = &mut w.hosts[bh.0];
                let outs = h.nic.ring_doorbell(SimTime::ZERO, qp, &mut h.mem);
                debug_assert!(outs.is_empty());
            }
        }
        rc
    }
}

/// Pre-post one primary slot: per-backup `WAIT(client recv CQ) · WRITE ·
/// SEND` bundles (all watching the same CQ — they fire in parallel) and
/// the `WAIT(shared ack CQ, n) · WRITE_IMM` aggregation toward the
/// client.
fn post_primary_slot(inner: &mut FanoutInner, w: &mut World) {
    let slot = inner.pri_slots_posted;
    let slots = inner.cfg.ring_slots as u64;
    let ph = inner.cfg.primary;
    let n = inner.backups.len();
    let g = n + 2;
    let msg_len = inner.msg_len;
    let staging = inner.pri_staging.at((slot % slots) * msg_len);

    let mut scatter: Vec<ScatterEntry> = vec![ScatterEntry {
        msg_off: 0,
        len: msg_len as u32,
        addr: staging,
    }];
    let se = |msg_off: u64, len: u64, addr: u64| ScatterEntry {
        msg_off: msg_off as u32,
        len: len as u32,
        addr,
    };

    for (i, b) in inner.backups.iter().enumerate() {
        // Record i+1 describes backup i's transfer (record 0 is the
        // primary's own write, performed by the client's WRITE).
        let rec = metadata::rec_off(g, i + 1);
        let host = &mut w.hosts[ph.0];
        // Threshold mode: every backup's WAIT watches the same client
        // recv CQ; slot k fires once k+1 commands have arrived.
        let wait = Wqe {
            opcode: Opcode::Wait,
            flags: flags::HW_OWNED | flags::WAIT_THRESHOLD,
            raddr: Wqe::wait_params(inner.pri_rcq_in, (slot + 1) as u32),
            activate_n: 2,
            wr_id: slot,
            ..Default::default()
        };
        host.post_send(b.qp_out, wait, false).unwrap();
        let write = Wqe {
            opcode: Opcode::Write,
            rkey: b.rep_rkey,
            wr_id: slot,
            ..Default::default()
        };
        let widx = host.post_send(b.qp_out, write, true).unwrap();
        let send = Wqe {
            opcode: Opcode::Send,
            len: msg_len as u32,
            laddr: staging,
            wr_id: slot,
            ..Default::default()
        };
        host.post_send(b.qp_out, send, true).unwrap();
        let waddr = host.nic.sq_slot_addr(b.qp_out, widx);
        scatter.extend([
            se(rec + metadata::wrec::LEN, 4, waddr + field_offset::LEN),
            se(rec + metadata::wrec::SRC, 8, waddr + field_offset::LADDR),
            se(rec + metadata::wrec::DST, 8, waddr + field_offset::RADDR),
        ]);
    }

    // ACK aggregation: slot k's group ACK fires once (k+1)·n acks have
    // been produced on the shared CQ (threshold mode — acks from
    // different backups land on one CQ via their shared recv queue).
    let host = &mut w.hosts[ph.0];
    let wait_all = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED | flags::WAIT_THRESHOLD,
        raddr: Wqe::wait_params(inner.shared_ack_cq, ((slot + 1) * n as u64) as u32),
        activate_n: 1,
        wr_id: slot,
        ..Default::default()
    };
    host.post_send(inner.pri_qp_ack_out, wait_all, false)
        .unwrap();
    let ack_addr = inner.ack_buf.at((slot % slots) * 8);
    let wimm = Wqe {
        opcode: Opcode::WriteImm,
        len: 0,
        raddr: ack_addr,
        rkey: inner.ack_buf_rkey,
        wr_id: slot,
        ..Default::default()
    };
    let widx = host.post_send(inner.pri_qp_ack_out, wimm, true).unwrap();
    let wimm_addr = host.nic.sq_slot_addr(inner.pri_qp_ack_out, widx);
    scatter.push(se(0, 4, wimm_addr + field_offset::IMM));

    w.host(ph).post_recv(
        inner.pri_qp_in,
        RecvWqe {
            wr_id: slot,
            scatter,
        },
    );
    // One RECV per backup for this slot's ack on the shared-CQ queues.
    for b in &inner.backups {
        w.host(ph).post_recv(
            b.pr_qp,
            RecvWqe {
                wr_id: slot,
                scatter: vec![],
            },
        );
    }
    inner.pri_slots_posted += 1;
}

/// Pre-post one backup responder slot: on receiving the primary's SEND,
/// ack straight back (the data arrived one-sided just before it).
fn post_backup_slot(inner: &mut FanoutInner, w: &mut World, b: usize) {
    let slot = inner.backups[b].slots_posted;
    let bh = inner.backups[b].host;
    let host = &mut w.hosts[bh.0];
    let wait = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED,
        raddr: Wqe::wait_params(inner.backups[b].rcq_in, 1),
        activate_n: 1,
        wr_id: slot,
        ..Default::default()
    };
    host.post_send(inner.backups[b].qp_ack, wait, false)
        .unwrap();
    let ack = Wqe {
        opcode: Opcode::Send,
        len: 4,
        laddr: inner.backups[b].rep.addr, // 4 arbitrary bytes; the ack is the event
        wr_id: slot,
        ..Default::default()
    };
    host.post_send(inner.backups[b].qp_ack, ack, true).unwrap();
    // Activation comes from the WAIT; grant the SEND now so the WAIT's
    // activate_n=1 is what flips it? No: activate_n=1 flips it when the
    // WAIT fires. Post a RECV for the primary's SEND.
    host.post_recv(
        inner.backups[b].qp_in,
        RecvWqe {
            wr_id: slot,
            scatter: vec![],
        },
    );
    inner.backups[b].slots_posted += 1;
}

/// The fan-out client: gWRITE with primary-coordinated parallel backups.
#[derive(Clone)]
pub struct FanoutClient {
    inner: FanoutRef,
}

impl FanoutClient {
    /// Wrap a built group and subscribe the ACK dispatcher.
    pub fn new(inner: FanoutRef, w: &mut World) -> Self {
        let (ch, ack_rcq) = {
            let i = inner.borrow();
            (i.cfg.client, i.ack_rcq)
        };
        let rc = inner.clone();
        w.subscribe_cq_callback(ch, ack_rcq, move |cqe, w, eng| {
            if cqe.kind != CqeKind::RecvImm || cqe.status != CqeStatus::Ok {
                return;
            }
            let mut i = rc.borrow_mut();
            let Some(p) = i.pending.remove(&cqe.imm) else {
                return;
            };
            i.acked += 1;
            let ack_qp = i.ack_qp;
            w.host(i.cfg.client).post_recv(
                ack_qp,
                RecvWqe {
                    wr_id: cqe.imm as u64,
                    scatter: vec![],
                },
            );
            let latency = eng.now().duration_since(p.issued_at);
            drop(i);
            if let Some(done) = p.done {
                done(
                    w,
                    eng,
                    OpResult {
                        seq: cqe.imm,
                        results: vec![],
                        latency,
                    },
                );
            }
        });
        FanoutClient { inner }
    }

    /// The shared state.
    pub fn group(&self) -> &FanoutRef {
        &self.inner
    }

    /// Member address: 0 = client, 1 = primary, 2.. = backups.
    pub fn member_addr(&self, m: usize, offset: u64) -> u64 {
        let i = self.inner.borrow();
        match m {
            0 => i.client_rep.at(offset),
            1 => i.primary_rep.at(offset),
            b => i.backups[b - 2].rep.at(offset),
        }
    }

    /// Host of member `m`.
    pub fn member_host(&self, m: usize) -> HostId {
        let i = self.inner.borrow();
        match m {
            0 => i.cfg.client,
            1 => i.cfg.primary,
            b => i.backups[b - 2].host,
        }
    }

    /// Fan-out gWRITE: data lands on the primary and every backup; the
    /// ACK fires only after all backups acknowledged (aggregated by the
    /// primary's NIC WAIT, no CPU anywhere).
    pub fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        done: OnDone,
    ) -> Result<u32, crate::Backpressure> {
        let mut i = self.inner.borrow_mut();
        let slots = i.cfg.ring_slots as u64;
        if i.pending.len() as u64 >= slots / 2 || i.next_seq as u64 >= i.posted_seen {
            return Err(crate::Backpressure);
        }
        let seq = i.next_seq;
        i.next_seq = i.next_seq.wrapping_add(1);
        let n = i.backups.len();
        let g = n + 2;
        let ch = i.cfg.client;
        let msg_len = i.msg_len;

        // Local apply.
        let local = i.client_rep.at(offset);
        w.host(ch).mem.write(local, data).unwrap();

        // Metadata: record i+1 = backup i's transfer out of the
        // PRIMARY's copy.
        let mut msg = MetaMsg::new(g, seq);
        for (bi, b) in i.backups.iter().enumerate() {
            let src = i.primary_rep.at(offset);
            let dst = b.rep.at(offset);
            msg.set_wrec(bi + 1, data.len() as u32, src, dst, Opcode::Nop, dst, 0);
        }
        let staging = i.tx_staging.at((seq as u64 % slots) * msg_len);
        w.host(ch).mem.write(staging, msg.bytes()).unwrap();

        // Client: WRITE(data -> primary) + SEND(metadata).
        let qp_out = i.qp_out;
        let raddr = i.primary_rep.at(offset);
        let rkey = i.primary_rep_rkey;
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Write,
                    len: data.len() as u32,
                    laddr: local,
                    raddr,
                    rkey,
                    wr_id: seq as u64,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Send,
                    len: msg_len as u32,
                    laddr: staging,
                    wr_id: seq as u64,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        i.pending.insert(
            seq,
            Pending {
                issued_at: eng.now(),
                done: Some(done),
            },
        );
        drop(i);
        w.ring_doorbell(ch, qp_out, eng);
        Ok(seq)
    }
}

/// Replenisher process for a fan-out group (primary + backup slots).
pub struct FanoutReplenisher {
    inner: FanoutRef,
}

impl FanoutReplenisher {
    /// Create (run it on the primary host).
    pub fn new(inner: FanoutRef) -> Self {
        FanoutReplenisher { inner }
    }
}

impl hl_cluster::Process for FanoutReplenisher {
    fn on_event(&mut self, ev: hl_cluster::ProcEvent, ctx: &mut hl_cluster::Ctx<'_>) {
        use hl_cluster::ProcEvent;
        let period = self.inner.borrow().cfg.replenish_period;
        match ev {
            ProcEvent::Started | ProcEvent::WorkDone { .. } => {
                ctx.set_timer(period, 1, SimDuration::from_nanos(500));
            }
            ProcEvent::Timer { .. } => {
                // Repost slots consumed on every ring (conservative: use
                // the primary ack queue's head, the last stage).
                let deficit = {
                    let inner = self.inner.borrow();
                    let ph = inner.cfg.primary;
                    let (head, _, _) = ctx.world.hosts[ph.0].nic.sq_state(inner.pri_qp_ack_out);
                    let mut consumed = head / 2;
                    for b in &inner.backups {
                        let (h_out, _, _) = ctx.world.hosts[ph.0].nic.sq_state(b.qp_out);
                        consumed = consumed.min(h_out / 3);
                        let (h_ack, _, _) = ctx.world.hosts[b.host.0].nic.sq_state(b.qp_ack);
                        consumed = consumed.min(h_ack / 2);
                    }
                    (consumed + inner.cfg.ring_slots as u64).saturating_sub(inner.pri_slots_posted)
                };
                if deficit > 0 {
                    let mut inner = self.inner.borrow_mut();
                    let nb = inner.backups.len();
                    for _ in 0..deficit {
                        post_primary_slot(&mut inner, ctx.world);
                        for b in 0..nb {
                            post_backup_slot(&mut inner, ctx.world, b);
                        }
                    }
                    // Report the new credit to the client (tiny control
                    // datagram, modelled as a fabric-latency update).
                    let posted = inner.pri_slots_posted;
                    let rc = self.inner.clone();
                    ctx.eng
                        .schedule(SimDuration::from_micros(2), move |_w, _e| {
                            rc.borrow_mut().posted_seen = posted;
                        });
                    // Kick all queues.
                    let ph = inner.cfg.primary;
                    let mut kicks: Vec<(HostId, u32)> = vec![(ph, inner.pri_qp_ack_out)];
                    kicks.extend(inner.backups.iter().map(|b| (ph, b.qp_out)));
                    kicks.extend(inner.backups.iter().map(|b| (b.host, b.qp_ack)));
                    drop(inner);
                    for (h, qp) in kicks {
                        let now = ctx.now();
                        let host = &mut ctx.world.hosts[h.0];
                        let outs = host.nic.ring_doorbell(now, qp, &mut host.mem);
                        hl_cluster::route_nic(h, outs, ctx.world, ctx.eng);
                    }
                }
                ctx.set_timer(period, 1, SimDuration::from_nanos(500));
            }
            _ => {}
        }
    }
}

/// Start the fan-out replenisher on the primary.
pub fn start_replenisher(
    inner: &FanoutRef,
    w: &mut World,
    eng: &mut Engine<World>,
) -> hl_cluster::ProcAddr {
    let ph = inner.borrow().cfg.primary;
    w.start_process(
        ph,
        "fanout-replenish",
        None,
        Box::new(FanoutReplenisher::new(inner.clone())),
        SimDuration::from_micros(1),
        eng,
    )
}
