//! System-level race-detector regression (feature `check-ownership`).
//!
//! Re-creates the bug shape behind PR 1's catch-up fix: while a new
//! chain member is pulling state with catch-up READs, a stale write
//! from the old chain generation lands in the same region. The two
//! writers are different QPs, nothing orders them on the receiving
//! host, and they carry different bytes — exactly the silent-corruption
//! race the WQE-ownership & DMA detector exists to flag. One seed, one
//! deterministic detection.

#![cfg(feature = "check-ownership")]

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::recovery;
use hyperloop_repro::rnic::{flags, Access, Opcode, Wqe};
use hyperloop_repro::sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const SRC: HostId = HostId(0); // surviving replica being copied from
const DST: HostId = HostId(1); // new member catching up
const OLD: HostId = HostId(2); // stale old-generation writer
const LEN: u64 = 1024;

#[test]
fn stale_chain_write_racing_catch_up_is_detected() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(1 << 20).seed(11).build();

    // Committed state on the survivor, destination region on the new
    // member (registered remotely writable, as replica regions are).
    let src = w.host(SRC).layout.alloc("rep.src", LEN, 64);
    let dst = w.host(DST).layout.alloc("rep.dst", LEN, 64);
    let pattern: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
    w.hosts[SRC.0].mem.write(src.addr, &pattern).unwrap();
    let src_mr = w.hosts[SRC.0]
        .nic
        .register_mr(src.addr, LEN, Access::REMOTE_READ);
    let dst_mr = w.hosts[DST.0]
        .nic
        .register_mr(dst.addr, LEN, Access::REMOTE_WRITE);

    // The old chain generation still has a QP into the new member's
    // region — its in-flight write was never ordered against the copy.
    let old_sq = w.host(OLD).layout.alloc("old.sq", 8 * 64, 64);
    let dst_sq = w.host(DST).layout.alloc("old.peer.sq", 8 * 64, 64);
    let old_cq = w.hosts[OLD.0].nic.create_cq();
    let old_qp = w.hosts[OLD.0].nic.create_qp(old_cq, old_cq, old_sq.addr, 8);
    let dst_cq = w.hosts[DST.0].nic.create_cq();
    let dst_qp = w.hosts[DST.0].nic.create_qp(dst_cq, dst_cq, dst_sq.addr, 8);
    w.connect_qps(OLD, old_qp, DST, dst_qp);
    let stale = w.host(OLD).layout.alloc("stale", 64, 64);
    w.hosts[OLD.0].mem.write(stale.addr, &[0xEE; 64]).unwrap();

    // t=0: the stale write departs (unsignaled one-sided WRITE into the
    // middle of the region — no completion on the receiving host).
    w.host(OLD)
        .post_send(
            old_qp,
            Wqe {
                opcode: Opcode::Write,
                flags: 0,
                len: 64,
                laddr: stale.addr,
                raddr: dst.addr + 512,
                rkey: dst_mr.rkey,
                wr_id: 99,
                ..Default::default()
            },
            false,
        )
        .unwrap();
    w.ring_doorbell(OLD, old_qp, &mut eng);

    // Shortly after, the rebuild starts catching the new member up with
    // a single whole-region READ; its response lands over the stale
    // bytes with no intervening completion on the new member.
    let done = Rc::new(RefCell::new(false));
    let d2 = done.clone();
    eng.schedule(SimDuration::from_micros(2), move |w, eng| {
        recovery::catch_up(
            w,
            eng,
            SRC,
            src_mr.rkey,
            src.addr,
            DST,
            dst.addr,
            LEN,
            LEN as u32, // one chunk: the whole region in a single READ
            Box::new(move |_w, _e| *d2.borrow_mut() = true),
        );
    });
    eng.run_until(&mut w, SimTime::from_nanos(500_000_000));

    assert!(*done.borrow(), "catch-up must complete");
    // The copy itself converged (last writer wins)...
    assert_eq!(
        w.hosts[DST.0].mem.read_vec(dst.addr, LEN as usize).unwrap(),
        pattern
    );
    // ...but the detector must have flagged the unordered overlap,
    // naming both writers.
    let report = w.race_report();
    assert!(
        report.iter().any(|l| l.contains("concurrent DMA overlap")),
        "expected a concurrent-DMA-overlap violation, got: {report:?}"
    );
}

/// A healthy one-sided write exchange stays silent: the detector is an
/// observer, not a tripwire for legal traffic.
#[test]
fn healthy_write_traffic_reports_no_races() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 20).seed(5).build();
    let a_sq = w.host(HostId(0)).layout.alloc("a.sq", 8 * 64, 64);
    let b_sq = w.host(HostId(1)).layout.alloc("b.sq", 8 * 64, 64);
    let cq_a = w.hosts[0].nic.create_cq();
    let qp_a = w.hosts[0].nic.create_qp(cq_a, cq_a, a_sq.addr, 8);
    let cq_b = w.hosts[1].nic.create_cq();
    let qp_b = w.hosts[1].nic.create_qp(cq_b, cq_b, b_sq.addr, 8);
    w.connect_qps(HostId(0), qp_a, HostId(1), qp_b);
    let region = w.host(HostId(1)).layout.alloc("data", 4096, 64);
    let mr = w.hosts[1]
        .nic
        .register_mr(region.addr, 4096, Access::REMOTE_WRITE);
    let payload = w.host(HostId(0)).layout.alloc("payload", 64, 64);
    w.hosts[0].mem.write(payload.addr, &[0x42; 64]).unwrap();

    for k in 0..8u64 {
        w.host(HostId(0))
            .post_send(
                qp_a,
                Wqe {
                    opcode: Opcode::Write,
                    flags: flags::SIGNALED,
                    len: 64,
                    laddr: payload.addr,
                    raddr: region.addr + k * 64,
                    rkey: mr.rkey,
                    wr_id: k,
                    ..Default::default()
                },
                false,
            )
            .unwrap();
    }
    w.ring_doorbell(HostId(0), qp_a, &mut eng);
    eng.run(&mut w);

    assert_eq!(
        w.hosts[1].mem.read_vec(region.addr, 64).unwrap(),
        vec![0x42; 64]
    );
    assert!(w.race_report().is_empty(), "got: {:?}", w.race_report());
}
