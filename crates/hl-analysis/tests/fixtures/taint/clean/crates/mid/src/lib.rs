pub fn mix(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
}
