//! Live-migration campaign: quantifies what a shard split *costs* the
//! keys being moved and proves it costs the neighbours nothing.
//!
//! One three-shard HyperLoop deployment (disjoint chains) serves an
//! open-loop keyed write stream while shard 0 is split onto a freshly
//! placed chain with [`hyperloop::split_live`] — dirty-log + bulk
//! catch-up + bounded drain + dual-window cutover, traffic flowing
//! throughout. Every op's end-to-end supervised latency is recorded
//! against the key's *original* owner shard, and the campaign reports:
//!
//! * **Disruption ratio** — the migrating shard's p99 over ops issued
//!   inside the migration window `[t_split, t_retired]` divided by its
//!   steady-state p99 (every op issued outside the window).
//! * **Bystander ratio** — the bystander shards' p99 in the migrating
//!   run divided by the same shards' p99 in a no-migration control of
//!   the same seed. The per-op latency vectors must be byte-identical,
//!   so this ratio is **exactly 1.0** — computed from the two vectors,
//!   not asserted into existence.
//!
//! The run doubles as a correctness gate: every op acks, the router
//! flips exactly once, and every key's final record is byte-identical
//! on every member of its final owner chain to the pure-function
//! expected payload.

use hl_cluster::chaos::{member_snapshot, BystanderProbe};
use hl_cluster::shard::{HashRing, ShardGroup, ShardPlan};
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{SimDuration, SimTime};
use hyperloop::api::GroupClient;
use hyperloop::{
    replica, split_live, DeadlinePolicy, GroupBuilder, GroupConfig, HyperLoopClient, MigrationSpec,
    RetryClient, ShardRouter,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Initial shards, members per chain, dest-chain hosts.
const N_SHARDS: usize = 3;
const REPLICAS: usize = 2;
const G: usize = 1 + REPLICAS;
const DEST_CLIENT: HostId = HostId(9);
const DEST_REPLICAS: [HostId; 2] = [HostId(10), HostId(11)];
const N_HOSTS: usize = 12;

/// The shard being split.
pub const PARENT: usize = 0;

/// Key/slot geometry: each key owns one globally unique record slot. The
/// replicated region is deliberately large (4 MiB) so the bulk stream
/// keeps the migration window open across many paced ops — the window is
/// what the campaign measures.
const K: usize = 48;
const REC_BYTES: usize = 64;
const REP_BYTES: u64 = 4 << 20;

/// Open-loop schedule: one write per `OP_PERIOD_NS` from `T_START_NS`;
/// the split lands at `T_SPLIT_NS`, well inside the traffic window.
const T_START_NS: u64 = 1_000_000;
const OP_PERIOD_NS: u64 = 50_000;
const T_SPLIT_NS: u64 = 4_000_000;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct MigrationCfg {
    /// Total recorded operations across the three shards.
    pub ops: usize,
    /// Simulation seed (shared by the migrating run and its control).
    pub seed: u64,
}

impl Default for MigrationCfg {
    fn default() -> Self {
        MigrationCfg {
            ops: 800,
            seed: 1010,
        }
    }
}

fn key_bytes(i: usize) -> [u8; 8] {
    (i as u64).to_le_bytes()
}

fn slot_off(i: usize) -> u64 {
    (i * REC_BYTES) as u64
}

/// Op `j` writes key `j % K`; the payload is a pure function of both.
fn record(i: usize, j: usize) -> Vec<u8> {
    let mut v = format!("mig{i:03}-v{j:04}-").into_bytes();
    while v.len() < REC_BYTES {
        v.push(b'a' + ((i + j) % 26) as u8);
    }
    v
}

/// The last op index writing key `i` under an `ops`-long schedule.
fn last_version(i: usize, ops: usize) -> usize {
    i + K * ((ops - 1 - i) / K)
}

fn retry_policy() -> DeadlinePolicy {
    DeadlinePolicy {
        deadline: SimDuration::from_millis(2),
        max_attempts: 20,
        backoff: SimDuration::from_micros(500),
        backoff_cap: SimDuration::from_millis(4),
    }
}

/// One campaign run's raw observations.
pub struct MigrationRun {
    /// True once the split's cutover retired the old ownership.
    pub migrated: bool,
    /// Router ring flips (1 for the split run, 0 for the control).
    pub epoch: u64,
    /// Ops that settled OK.
    pub acked: usize,
    /// Ops that failed with a typed error.
    pub failed: usize,
    /// When the split was initiated (ns), 0 for the control.
    pub t_split_ns: u64,
    /// When the migration retired (ns), 0 for the control.
    pub t_retired_ns: u64,
    /// Per *original* shard: `(op index, latency_ns)` in settle order.
    pub latencies: Vec<Vec<(usize, u64)>>,
    /// `[key][member]` final record bytes on the key's final owner.
    pub key_values: Vec<Vec<Vec<u8>>>,
}

/// Run the campaign once: three chains + router, open-loop keyed
/// writes, and (when `do_split`) the live split of shard 0 mid-stream.
pub fn run_migration_campaign(cfg: &MigrationCfg, do_split: bool) -> MigrationRun {
    let (mut w, mut eng) = ClusterBuilder::new(N_HOSTS)
        .arena_size(16 << 20)
        .seed(cfg.seed)
        .build();

    let hosts: Vec<HostId> = (0..N_SHARDS * G).map(HostId).collect();
    let plan = ShardPlan::place(N_SHARDS, REPLICAS, &hosts);
    assert!(plan.is_disjoint());
    let mut retries = Vec::new();
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes: REP_BYTES,
            ring_slots: 64,
            transport_timeout: Some((SimDuration::from_millis(3), 7)),
            ..Default::default()
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group, &mut w);
        retries.push(RetryClient::with_policy(client, retry_policy()));
    }
    let router = ShardRouter::new(retries);

    // Completions recorded per *original* owner so the migrating run
    // and the control index identically.
    let ring0 = HashRing::new(N_SHARDS);
    let acked = Rc::new(RefCell::new(0usize));
    let probes: Vec<BystanderProbe> = (0..N_SHARDS).map(|_| BystanderProbe::new()).collect();
    for j in 0..cfg.ops {
        let i = j % K;
        let router = router.clone();
        let acked = acked.clone();
        let probe = probes[ring0.shard_of(&key_bytes(i))].clone();
        let at = SimTime::from_nanos(T_START_NS + j as u64 * OP_PERIOD_NS);
        eng.schedule_at(at, move |w: &mut World, eng| {
            router.gwrite_keyed(
                w,
                eng,
                &key_bytes(i),
                slot_off(i),
                &record(i, j),
                true,
                Box::new(move |_w, _e, r| match r {
                    Ok(res) => {
                        *acked.borrow_mut() += 1;
                        probe.record(j, res.latency.as_nanos());
                    }
                    Err(_) => probe.record_failure(),
                }),
            );
        });
    }

    let t_retired = Rc::new(RefCell::new(0u64));
    if do_split {
        let router2 = router.clone();
        let t = t_retired.clone();
        eng.schedule_at(
            SimTime::from_nanos(T_SPLIT_NS),
            move |w: &mut World, eng| {
                split_live(
                    &router2,
                    PARENT,
                    ShardGroup {
                        shard: N_SHARDS,
                        client: DEST_CLIENT,
                        replicas: DEST_REPLICAS.to_vec(),
                    },
                    MigrationSpec {
                        policy: retry_policy(),
                        ring_slots: 64,
                        chunk: 64 * 1024,
                    },
                    w,
                    eng,
                    Box::new(move |_w, eng| *t.borrow_mut() = eng.now().as_nanos()),
                );
            },
        );
    }

    let horizon = T_START_NS + cfg.ops as u64 * OP_PERIOD_NS + 60_000_000;
    eng.run_until(&mut w, SimTime::from_nanos(horizon));
    assert_eq!(router.outstanding(), 0, "ops still in flight at horizon");
    assert_eq!(router.parked(), 0, "ops left parked at horizon");

    let final_ring = if do_split {
        ring0.split_shard(PARENT)
    } else {
        ring0.clone()
    };
    let key_values = (0..K)
        .map(|i| {
            let c = router.client(final_ring.shard_of(&key_bytes(i))).client();
            (0..c.group_size())
                .map(|m| {
                    member_snapshot(
                        &w,
                        c.member_host(m),
                        c.member_addr(m, slot_off(i)),
                        REC_BYTES,
                    )
                })
                .collect()
        })
        .collect();

    let failed = probes.iter().map(|p| p.failed()).sum();
    let t_retired_ns = *t_retired.borrow();
    let acked = *acked.borrow();
    MigrationRun {
        migrated: t_retired_ns > 0,
        epoch: router.epoch(),
        acked,
        failed,
        t_split_ns: if do_split { T_SPLIT_NS } else { 0 },
        t_retired_ns,
        latencies: probes.iter().map(|p| p.latencies()).collect(),
        key_values,
    }
}

/// p99 (nearest-rank over the sorted vector); 0 for an empty set.
pub fn p99_ns(lat: &[u64]) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    let mut v = lat.to_vec();
    v.sort_unstable();
    v[(v.len() - 1) * 99 / 100]
}

/// Partition one shard's `(op, latency)` vector by whether the op was
/// *issued* inside the migration window `[t_split, t_retired]`.
pub fn split_window(
    lat: &[(usize, u64)],
    t_split_ns: u64,
    t_retired_ns: u64,
) -> (Vec<u64>, Vec<u64>) {
    let issued_at = |j: usize| T_START_NS + j as u64 * OP_PERIOD_NS;
    let (mut during, mut steady) = (Vec::new(), Vec::new());
    for &(j, l) in lat {
        if issued_at(j) >= t_split_ns && issued_at(j) <= t_retired_ns {
            during.push(l);
        } else {
            steady.push(l);
        }
    }
    (during, steady)
}

/// The distilled campaign verdict written to BENCH_10.json.
pub struct MigrationVerdict {
    /// Migration window width in nanoseconds.
    pub window_ns: u64,
    /// Migrating-shard ops issued inside the window.
    pub during_ops: usize,
    /// Migrating-shard ops issued outside the window.
    pub steady_ops: usize,
    /// Migrating-shard p99 inside the window (ns).
    pub during_p99_ns: u64,
    /// Migrating-shard p99 outside the window (ns).
    pub steady_p99_ns: u64,
    /// `during_p99 / steady_p99`.
    pub disruption_ratio: f64,
    /// True iff both bystander shards' latency vectors are
    /// byte-identical between the migrating run and the control.
    pub bystander_identical: bool,
    /// Bystander p99 in the migrating run / in the control — exactly
    /// 1.0 when the vectors are identical.
    pub bystander_ratio: f64,
    /// Bystander p99 (ns), identical across both runs.
    pub bystander_p99_ns: u64,
}

/// Reduce a (migrating run, control run) pair to the verdict.
pub fn verdict(mig: &MigrationRun, control: &MigrationRun) -> MigrationVerdict {
    let (during, steady) = split_window(&mig.latencies[PARENT], mig.t_split_ns, mig.t_retired_ns);
    let during_p99_ns = p99_ns(&during);
    let steady_p99_ns = p99_ns(&steady);

    let bystander_identical = (1..N_SHARDS).all(|s| mig.latencies[s] == control.latencies[s]);
    let by = |run: &MigrationRun| {
        let all: Vec<u64> = (1..N_SHARDS)
            .flat_map(|s| run.latencies[s].iter().map(|&(_, l)| l))
            .collect();
        p99_ns(&all)
    };
    let (by_mig, by_ctl) = (by(mig), by(control));
    MigrationVerdict {
        window_ns: mig.t_retired_ns.saturating_sub(mig.t_split_ns),
        during_ops: during.len(),
        steady_ops: steady.len(),
        during_p99_ns,
        steady_p99_ns,
        disruption_ratio: during_p99_ns as f64 / steady_p99_ns as f64,
        bystander_identical,
        bystander_ratio: by_mig as f64 / by_ctl as f64,
        bystander_p99_ns: by_mig,
    }
}

/// Correctness floor: every key's final record on every member of its
/// final owner chain equals the pure-function expectation. Returns the
/// first divergence as an error string.
pub fn check_oracle(run: &MigrationRun, ops: usize) -> Result<(), String> {
    for i in 0..K {
        let want = record(i, last_version(i, ops));
        for (m, got) in run.key_values[i].iter().enumerate() {
            if got != &want {
                return Err(format!("key {i} member {m}: final record diverges"));
            }
        }
    }
    Ok(())
}
