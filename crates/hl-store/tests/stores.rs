//! End-to-end storage-engine tests: kvlite and doclite over HyperLoop,
//! kvlite over the Naïve baseline, and the native doclite replica set.

use hl_cluster::{deliver, ClusterBuilder, ProcEvent, Process, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimDuration, SimTime};
use hl_store::doc::native::{self, ClientOp, ClientReply, DocOp, NativeDocCosts};
use hl_store::doc::{DocLayout, DocStore, Document};
use hl_store::kv::{KvConfig, KvDb};
use hyperloop::api::{GroupClient, LogLayout};
use hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn hl_client(w: &mut World, eng: &mut Engine<World>) -> Rc<HyperLoopClient> {
    let cfg = GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 2 << 20,
        ring_slots: 64,
        ..Default::default()
    };
    let group = GroupBuilder::new(cfg).build(w);
    replica::start_replenishers(&group, w, eng);
    Rc::new(HyperLoopClient::new(group, w))
}

fn counter() -> (Rc<RefCell<u32>>, hyperloop::OnDone) {
    let c = Rc::new(RefCell::new(0u32));
    let c2 = c.clone();
    (c, Box::new(move |_w, _e, _r| *c2.borrow_mut() += 1))
}

#[test]
fn kvlite_put_get_and_replica_sync() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(21).build();
    let client = hl_client(&mut w, &mut eng);
    let mut db = KvDb::open(client.clone(), KvConfig::default(), &mut w, &mut eng);

    let (acks, _) = counter();
    for k in 0..20u32 {
        let a = acks.clone();
        db.put(
            &mut w,
            &mut eng,
            format!("user{k:04}").as_bytes(),
            format!("value-{k}").as_bytes(),
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
        // Drain each append (a put is two chained gWRITEs; issuing 20
        // at once would exhaust ring credits by design).
        let a2 = acks.clone();
        let want = k + 1;
        eng.run_while(&mut w, move |_| *a2.borrow() < want);
    }
    eng.run_until(
        &mut w,
        SimTime::from_nanos(eng.now().as_nanos() + 50_000_000),
    );
    assert_eq!(*acks.borrow(), 20);

    // Client reads are immediate and strong.
    assert_eq!(db.get(b"user0007"), Some(b"value-7".as_slice()));
    assert_eq!(db.len(), 20);
    // Scans are ordered.
    let scan = db.scan(b"user0005", 3);
    assert_eq!(scan[0].0, b"user0005");
    assert_eq!(scan[2].0, b"user0007");

    // Replica syncers have replayed the WAL (eventually consistent).
    assert_eq!(db.get_at_replica(0, b"user0003"), Some(b"value-3".to_vec()));
    assert_eq!(
        db.get_at_replica(1, b"user0019"),
        Some(b"value-19".to_vec())
    );
    let applied = db.replica_applied();
    let (_, tail) = db.log_cursors();
    assert!(applied.iter().all(|&a| a == tail), "{applied:?} vs {tail}");
}

#[test]
fn kvlite_survives_crash_after_ack() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(22).build();
    let client = hl_client(&mut w, &mut eng);
    let mut db = KvDb::open(client.clone(), KvConfig::default(), &mut w, &mut eng);
    let (acks, cb) = counter();
    db.put(&mut w, &mut eng, b"durable-key", b"durable-value", cb)
        .unwrap();
    let a2 = acks.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < 1);

    // Power-fail both replicas: the WAL record must survive in NVM.
    w.hosts[1].mem.crash();
    w.hosts[2].mem.crash();
    for m in 1..3usize {
        let tail_addr = client.member_addr(m, 8);
        let tail = w.hosts[m].mem.read_u64(tail_addr).unwrap();
        assert!(tail > 0, "replica {m} tail pointer survives");
        // The record bytes survive too (record area starts at +64).
        let rec_addr = client.member_addr(m, 64);
        let bytes = w.hosts[m].mem.read_vec(rec_addr, tail as usize).unwrap();
        let rec = hyperloop::api::LogRecord::decode(&bytes).unwrap();
        let (put, key, value) = hl_store::kv::decode_kv_op(&rec).unwrap();
        assert!(put);
        assert_eq!(key, b"durable-key");
        assert_eq!(value, b"durable-value");
    }
}

#[test]
fn kvlite_truncates_and_wraps_log() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(23).build();
    let client = hl_client(&mut w, &mut eng);
    let cfg = KvConfig {
        layout: LogLayout {
            log_off: 0,
            log_cap: 8 << 10, // small: forces truncation + wrap
            db_off: 64 << 10,
        },
        sync_period: SimDuration::from_micros(200),
        truncate_at: 0.5,
        checkpoint_cap: 64 << 10,
    };
    let mut db = KvDb::open(client.clone(), cfg, &mut w, &mut eng);
    let acks = Rc::new(RefCell::new(0u32));
    // 200 puts of ~300B each ≫ 8 KiB of log.
    for k in 0..200u32 {
        loop {
            let a = acks.clone();
            let r = db.put(
                &mut w,
                &mut eng,
                format!("key{k:05}").as_bytes(),
                &[k as u8; 256],
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            );
            if r.is_ok() {
                break;
            }
            // Log full: let syncers catch up, then retry.
            let deadline = eng.now() + SimDuration::from_millis(3);
            eng.run_until(&mut w, deadline);
        }
    }
    let a2 = acks.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < 200);
    assert_eq!(*acks.borrow(), 200);
    // All data present on client and replicas.
    assert_eq!(db.get(b"key00199"), Some([199u8; 256].as_slice()));
    assert_eq!(db.get_at_replica(1, b"key00150"), Some(vec![150u8; 256]));
    let (head, tail) = db.log_cursors();
    assert!(head > 0, "log was truncated");
    assert!(tail > 8 << 10, "log wrapped at least once");
}

#[test]
fn kvlite_runs_on_naive_backend_too() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(24).build();
    let cfg = NaiveConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 2 << 20,
        mode: Mode::Event,
        ..Default::default()
    };
    let client = Rc::new(NaiveBuilder::new(cfg).build(&mut w, &mut eng));
    let mut db = KvDb::open(client.clone(), KvConfig::default(), &mut w, &mut eng);
    let (acks, cb) = counter();
    db.put(&mut w, &mut eng, b"k", b"v", cb).unwrap();
    let a2 = acks.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < 1);
    assert_eq!(db.get(b"k"), Some(b"v".as_slice()));
    eng.run_until(
        &mut w,
        SimTime::from_nanos(eng.now().as_nanos() + 20_000_000),
    );
    assert_eq!(db.get_at_replica(0, b"k"), Some(b"v".to_vec()));
}

fn ycsb_doc(id: u64) -> Document {
    let mut d = Document::new(id);
    for f in 0..10 {
        d.set(&format!("field{f}"), &[(id % 251) as u8; 100]);
    }
    d
}

#[test]
fn doclite_upsert_executes_on_all_members() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(25).build();
    let client = hl_client(&mut w, &mut eng);
    let store = DocStore::open(client.clone(), DocLayout::default(), 1, true);

    let (acks, cb) = counter();
    store.upsert(&mut w, &mut eng, &ycsb_doc(42), cb).unwrap();
    let a2 = acks.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < 1);

    // The document is in the database area of every member, durably.
    for m in 0..3 {
        let d = store.read_at(&mut w, m, 42).expect("doc on member");
        assert_eq!(d.id, 42);
        assert_eq!(d.get("field3"), Some([42u8; 100].as_slice()));
    }
    assert_eq!(store.committed(), 1);
    // The lock is free again.
    let lock_addr = client.member_addr(1, 0);
    assert_eq!(w.hosts[1].mem.read_u64(lock_addr).unwrap(), 0);
}

#[test]
fn doclite_sequential_upserts_and_scan() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(8 << 20).seed(26).build();
    let client = hl_client(&mut w, &mut eng);
    let store = DocStore::open(client.clone(), DocLayout::default(), 1, true);
    let acks = Rc::new(RefCell::new(0u32));
    for id in 100..110u64 {
        let a = acks.clone();
        store
            .upsert(
                &mut w,
                &mut eng,
                &ycsb_doc(id),
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
        let a2 = acks.clone();
        let want = (id - 99) as u32;
        eng.run_while(&mut w, move |_| *a2.borrow() < want);
    }
    assert_eq!(*acks.borrow(), 10);
    let docs = store.scan(&mut w, 100, 10);
    assert_eq!(docs.len(), 10);
    assert_eq!(docs[9].id, 109);
    // Update in place.
    let mut d = ycsb_doc(105);
    d.set("field0", b"updated!");
    let (acks2, cb) = counter();
    store.upsert(&mut w, &mut eng, &d, cb).unwrap();
    let a2 = acks2.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < 1);
    assert_eq!(
        store.read(&mut w, 105).unwrap().get("field0"),
        Some(b"updated!".as_slice())
    );
}

/// Driver process for the native replica set.
struct NativeDriver {
    primary: hl_cluster::ProcAddr,
    write_cost: SimDuration,
    ops_done: Rc<RefCell<Vec<(u64, usize)>>>, // (op_id, docs returned)
    to_send: Vec<DocOp>,
    next_id: u64,
}

impl Process for NativeDriver {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut hl_cluster::Ctx<'_>) {
        match ev {
            ProcEvent::Started => {
                if let Some(op) = self.to_send.pop() {
                    let op_id = self.next_id;
                    self.next_id += 1;
                    let size = native::client_op_wire_size(&op);
                    ctx.send_msg(
                        self.primary,
                        Box::new(ClientOp {
                            op_id,
                            reply_to: ctx.me,
                            op,
                        }),
                        size,
                        self.write_cost,
                    );
                }
            }
            ProcEvent::Message(m) => {
                if let Ok(reply) = m.downcast::<ClientReply>() {
                    self.ops_done
                        .borrow_mut()
                        .push((reply.op_id, reply.docs.len()));
                    if let Some(op) = self.to_send.pop() {
                        let op_id = self.next_id;
                        self.next_id += 1;
                        let size = native::client_op_wire_size(&op);
                        ctx.send_msg(
                            self.primary,
                            Box::new(ClientOp {
                                op_id,
                                reply_to: ctx.me,
                                op,
                            }),
                            size,
                            self.write_cost,
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

#[test]
fn native_set_replicates_and_serves_reads() {
    let (mut w, mut eng) = ClusterBuilder::new(4).arena_size(8 << 20).seed(27).build();
    // Servers: hosts 1,2,3; client driver on host 0.
    let set = native::spawn_native_set(
        &mut w,
        &mut eng,
        "set0",
        &[HostId(1), HostId(2), HostId(3)],
        1536,
        256,
        NativeDocCosts::default(),
    );
    let done = Rc::new(RefCell::new(Vec::new()));
    // Ops run LIFO off a stack: reads first (pushed last).
    let ops = vec![
        DocOp::Scan { id: 7, n: 3 },
        DocOp::Read { id: 8 },
        DocOp::Upsert(ycsb_doc(9)),
        DocOp::Upsert(ycsb_doc(8)),
        DocOp::Upsert(ycsb_doc(7)),
    ];
    w.start_process(
        HostId(0),
        "ycsb-driver",
        None,
        Box::new(NativeDriver {
            primary: set.primary,
            write_cost: set.write_recv_cost,
            ops_done: done.clone(),
            to_send: ops,
            next_id: 0,
        }),
        SimDuration::from_micros(1),
        &mut eng,
    );
    eng.run_until(&mut w, SimTime::from_nanos(200_000_000));
    let d = done.borrow();
    assert_eq!(d.len(), 5);
    // Read of id 8 returned one doc; scan returned 3.
    assert_eq!(d[3], (3, 1));
    assert_eq!(d[4], (4, 3));
    drop(d);

    // Secondaries hold the documents too (check arena of host 2).
    // Re-drive a read through the test helper: inject one more op.
    let dd = done.clone();
    let set_primary = set.primary;
    let write_cost = set.write_recv_cost;
    let drv = w.start_process(
        HostId(0),
        "probe",
        None,
        Box::new(NativeDriver {
            primary: set_primary,
            write_cost,
            ops_done: dd,
            to_send: vec![DocOp::Read { id: 9 }],
            next_id: 100,
        }),
        SimDuration::from_micros(1),
        &mut eng,
    );
    let _ = drv;
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));
    assert_eq!(done.borrow().last().unwrap().1, 1);
}

#[test]
fn native_driver_message_injection_helper_works() {
    // Smoke-test deliver() from outside a process.
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 20).seed(28).build();
    let seen = Rc::new(RefCell::new(0u32));
    struct Sink(Rc<RefCell<u32>>);
    impl Process for Sink {
        fn on_event(&mut self, ev: ProcEvent, _ctx: &mut hl_cluster::Ctx<'_>) {
            if matches!(ev, ProcEvent::Message(_)) {
                *self.0.borrow_mut() += 1;
            }
        }
    }
    let addr = w.start_process(
        HostId(1),
        "sink",
        None,
        Box::new(Sink(seen.clone())),
        SimDuration::from_micros(1),
        &mut eng,
    );
    deliver(
        addr,
        ProcEvent::Message(Box::new(42u32)),
        SimDuration::from_micros(1),
        &mut w,
        &mut eng,
    );
    eng.run(&mut w);
    assert_eq!(*seen.borrow(), 1);
}
