//! # hl-sim — deterministic discrete-event simulation core
//!
//! The foundation of the HyperLoop reproduction testbed: a deterministic
//! event loop ([`Engine`]), simulated time ([`SimTime`], [`SimDuration`]),
//! named reproducible random streams ([`RngFactory`]), HDR-style latency
//! histograms ([`Histogram`]), calibrated hardware profiles
//! ([`config::HwProfile`]) and a trace ring buffer ([`Tracer`]).
//!
//! Everything above this crate (NVM, NIC, CPU, fabric models) is written
//! as pure state machines advanced by events scheduled here; given the
//! same seed, every experiment in the repository replays bit-for-bit.

#![warn(missing_docs)]

mod bytes;
pub mod config;
mod engine;
mod rng;
mod sketch;
mod stats;
pub mod telemetry;
mod time;
pub mod timeseries;
mod trace;

pub use bytes::Bytes;
pub use engine::{Engine, EventCtx, EventToken, Handler, NoEvent};
pub use rng::{RngFactory, RngStream};
pub use sketch::Sketch;
pub use stats::{Counters, Histogram, Summary};
pub use telemetry::{
    validate_exposition, Attribution, FlightDump, FlightEvent, FlightRecorder, Mark, Metrics,
    OpKind, OpSpan, Stage, Telemetry,
};
pub use time::{SimDuration, SimTime};
pub use timeseries::TimeSeries;
pub use trace::{TraceEntry, Tracer};
