//! A minimal Rust lexer, sufficient for the determinism lints.
//!
//! The workspace builds fully offline, so there is no `syn` to lean on;
//! this hand-rolled tokenizer understands exactly as much Rust as the
//! rules need: identifiers, punctuation, numeric literals (with float
//! detection), string/char/lifetime disambiguation, nested block
//! comments, and — crucially — `// hl-lint: allow(rule, ...)` escape
//! comments, which it collects with their line numbers so the rule
//! engine can suppress findings on the same and the following line.

/// Kinds of token the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct,
    /// Integer literal.
    Int,
    /// Floating-point literal (has a dot or an `f32`/`f64` suffix).
    Float,
    /// String, byte-string, or char literal (contents ignored).
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token.
    pub kind: TokKind,
    /// Token text (single char for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// An `// hl-lint: allow(rule)` suppression found in the source.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The suppressed rule name.
    pub rule: String,
    /// Line the comment sits on (suppresses this line and the next).
    pub line: u32,
}

/// Lex `src` into tokens plus the allow-comments encountered.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Allow>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                parse_allow(&src[start..i], line, &mut allows);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (ni, nl) = skip_string_like(b, i, line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'"' => {
                let (ni, nl) = skip_quoted(b, i + 1, b'"', line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime vs char literal: 'a followed by non-quote is a
                // lifetime; anything else is a char literal.
                if i + 2 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && b[i + 2] != b'\''
                {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let (ni, nl) = skip_quoted(b, i + 1, b'\'', line);
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = ni;
                    line = nl;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut float = false;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // `1.5` — a dot followed by a digit continues the number;
                // `1..n` and `x.1` field access do not.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    float = true;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if text.ends_with("f32") || text.ends_with("f64") || text.contains('e') && float {
                    float = true;
                }
                toks.push(Tok {
                    kind: if float { TokKind::Float } else { TokKind::Int },
                    text: text.to_string(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, allows)
}

/// Does `b[i..]` start a raw string (`r"`, `r#"`) or byte string
/// (`b"`, `br"`, `b'`)?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") || rest.starts_with(b"b\"") {
        return true;
    }
    if rest.starts_with(b"br\"") || rest.starts_with(b"br#") || rest.starts_with(b"b'") {
        return true;
    }
    false
}

/// Skip a raw/byte string starting at `i`; returns (next index, line).
fn skip_string_like(b: &[u8], mut i: usize, mut line: u32) -> (usize, u32) {
    // Skip the `r`/`b`/`br` prefix.
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        return skip_quoted(b, i + 1, b'\'', line);
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        if hashes == 0 {
            // Raw string without hashes still has no escapes.
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            return (i.min(b.len() - 1) + 1, line);
        }
        loop {
            if i >= b.len() {
                return (i, line);
            }
            if b[i] == b'\n' {
                line += 1;
                i += 1;
                continue;
            }
            if b[i] == b'"' {
                let mut k = 0;
                while i + 1 + k < b.len() && b[i + 1 + k] == b'#' && k < hashes {
                    k += 1;
                }
                if k == hashes {
                    return (i + 1 + k, line);
                }
            }
            i += 1;
        }
    }
    (i, line)
}

/// Skip a quoted literal (with escapes) until the closing `close`.
fn skip_quoted(b: &[u8], mut i: usize, close: u8, mut line: u32) -> (usize, u32) {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c == close => return (i + 1, line),
            _ => i += 1,
        }
    }
    (i, line)
}

/// Extract `hl-lint: allow(a, b)` directives from a line comment.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let Some(pos) = comment.find("hl-lint:") else {
        return;
    };
    let rest = &comment[pos + "hl-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let rest = &rest[open + "allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            out.push(Allow {
                rule: rule.to_string(),
                line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let (t, _) = lex("fn foo(x: u64) { x.round() }");
        let idents: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "foo", "x", "u64", "x", "round"]);
    }

    #[test]
    fn float_detection() {
        let (t, _) = lex("let a = 1.5; let b = 2f64; let c = 3; let d = x.0;");
        let kinds: Vec<TokKind> = t
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            [TokKind::Float, TokKind::Float, TokKind::Int, TokKind::Int]
        );
    }

    #[test]
    fn strings_and_lifetimes() {
        let (t, _) = lex(r#"let s: &'a str = "HashMap"; let c = 'x';"#);
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn comments_do_not_tokenize() {
        let (t, _) = lex("// HashMap\n/* Instant /* nested */ */ let x = 1;");
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
        assert!(!t.iter().any(|t| t.is_ident("Instant")));
        assert!(t.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn allow_comments_collected() {
        let (_, allows) = lex("let x = 1; // hl-lint: allow(hash-collections, wall-clock)\n");
        let rules: Vec<&str> = allows.iter().map(|a| a.rule.as_str()).collect();
        assert_eq!(rules, ["hash-collections", "wall-clock"]);
        assert_eq!(allows[0].line, 1);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let (t, _) = lex("let s = \"a\nb\nc\";\nlet y = 1;");
        let y = t.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 4);
    }
}
