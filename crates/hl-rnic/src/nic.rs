//! The RDMA NIC state machine.
//!
//! One [`Nic`] per host. The NIC is a pure state machine: every entry
//! point takes the current time and the host's [`NvmArena`], mutates NIC
//! and memory state, and returns [`NicOutput`]s — packets to transmit,
//! completions to deliver, and deferred local operations — each stamped
//! with an absolute time. The cluster layer turns outputs into events.
//!
//! ## Send-queue semantics
//!
//! WQEs execute strictly in order per QP. The engine stops at:
//!
//! * a WQE whose ownership bit is software (not yet activated),
//! * an unsatisfied WAIT (the QP is *parked* on the watched CQ and
//!   resumes when enough completions are produced — CORE-Direct),
//! * a fencing operation in flight (READ / FLUSH / CAS block the SQ
//!   until their response, which is what makes an interleaved
//!   gWRITE+gFLUSH propagate durably in order, paper §4.2).
//!
//! WQE bytes are (re-)read from host memory at execution time, so
//! descriptors rewritten by a received metadata scatter are what
//! actually executes — remote work request manipulation is genuine in
//! this model, not emulated.
//!
//! ## Transport reliability
//!
//! By default QPs use the historical fire-and-forget model: the fabric's
//! FIFO egress guarantees ordering, and loss (fault injection) simply
//! loses the operation. [`Nic::set_qp_timeout`] upgrades one QP to real
//! RC loss recovery: requests carry PSNs, the requester keeps them on an
//! unacked list guarded by an ack-timeout timer
//! ([`NicOutput::ArmTimer`] / [`Nic::on_timer`]), timeouts trigger
//! go-back-N retransmission, and `retry_cnt` consecutive timeouts move
//! the QP to [`QpState::Error`], flushing all outstanding and posted
//! work with error completions ([`CqeStatus::RetryExceeded`] for the
//! head-of-line request, [`CqeStatus::FlushedInError`] for the rest).
//! The responder enforces expected-PSN ordering: duplicates are re-acked
//! without re-execution (fencing responses replay from a one-deep
//! cache, keeping CAS exactly-once), gaps are dropped for the sender's
//! timer to repair.
//!
//! ## Fault hooks
//!
//! [`Nic::set_stalled`] freezes the whole NIC (inbound packets are
//! dropped, the send engine halts) — a crashed/hung adapter.
//! [`Nic::set_wait_stalled`] breaks only WAIT triggering, modelling a
//! CORE-Direct offload malfunction: plain CPU-posted WQEs still execute,
//! so a chain can degrade to CPU-driven (Naïve) forwarding.

use crate::cq::{Cq, Cqe, CqeKind, CqeStatus};
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::packet::{NakReason, Packet, PacketKind};
use crate::qp::{PendingTx, Qp, QpState, QpTimeout, RecvWqe, SqRing};
#[cfg(feature = "check-ownership")]
use crate::track::{OwnershipTracker, Violation};
use crate::wqe::{flags, Opcode, Wqe, WQE_SIZE};
use hl_nvm::NvmArena;
use hl_sim::config::NicProfile;
use hl_sim::{RngStream, SimDuration, SimTime};

/// Things the cluster layer must do on the NIC's behalf.
#[derive(Debug)]
pub enum NicOutput {
    /// Hand `packet` to the fabric at time `at`.
    Transmit {
        /// Absolute transmit time (after NIC processing delays).
        at: SimTime,
        /// Destination NIC (cluster host index).
        dst_nic: u32,
        /// The packet.
        packet: Packet,
    },
    /// Call [`Nic::deliver_cqe`] at time `at`.
    Complete {
        /// Absolute delivery time.
        at: SimTime,
        /// Target CQ.
        cq: u32,
        /// The completion.
        cqe: Cqe,
    },
    /// Call [`Nic::finish_local`] at time `at` (loopback DMA / atomic).
    DoLocal {
        /// Absolute completion time of the local operation.
        at: SimTime,
        /// Loopback QP.
        qpn: u32,
        /// The WQE to execute locally.
        wqe: Wqe,
    },
    /// A CQ with an armed completion event produced a CQE; wake whoever
    /// is sleeping on it (event-mode baseline replicas).
    CqEvent {
        /// The CQ that fired.
        cq: u32,
    },
    /// Call [`Nic::on_timer`] at time `at` (retransmit timer for a
    /// reliable QP). `gen` lets the NIC ignore superseded timers.
    ArmTimer {
        /// Absolute expiry time.
        at: SimTime,
        /// The QP whose ack timer this is.
        qpn: u32,
        /// Timer generation at arm time.
        gen: u64,
    },
    /// The QP's ack timer became dead (unacked list drained, or the QP
    /// entered Error): the cluster layer should cancel the pending
    /// timer event instead of letting it fire as a stale no-op.
    CancelTimer {
        /// The QP whose ack timer is dead.
        qpn: u32,
    },
}

/// In-flight fencing operation state (at most one per QP).
#[derive(Debug, Clone, Copy)]
struct Inflight {
    wr_id: u64,
    /// Local address for READ data / CAS result.
    laddr: u64,
    signaled: bool,
    /// Telemetry op id of the fencing WQE.
    op: u32,
}

/// A telemetry event recorded inside the NIC state machine.
///
/// The NIC cannot see the cluster's `Telemetry` hub (it only borrows
/// its own arena), so op-stage events are buffered here and drained by
/// the cluster layer (`World::route_nic`) right after every entry-point
/// call. Only recorded when [`Nic::set_telemetry`] enabled it *and* the
/// op id is non-zero, so the buffer stays empty in ordinary runs.
#[derive(Debug, Clone, Copy)]
pub struct NicEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Telemetry op id (non-zero).
    pub op: u32,
    /// What happened.
    pub kind: NicEventKind,
}

/// Kinds of NIC-internal telemetry events.
#[derive(Debug, Clone, Copy)]
pub enum NicEventKind {
    /// The send engine fetched one of the op's WQEs from host memory.
    Fetch {
        /// The QP whose ring was fetched from.
        qpn: u32,
    },
    /// A WAIT guarding the op's WQEs parked (condition unmet).
    WaitPark {
        /// The watched CQ.
        cq: u32,
    },
    /// A WAIT fired and granted the op's WQEs to the NIC.
    WaitFire {
        /// The watched CQ.
        cq: u32,
    },
    /// A packet of the op was handed to the fabric.
    TxWire {
        /// Destination NIC.
        dst: u32,
    },
    /// A packet of the op arrived from the fabric.
    RxWire {
        /// Source NIC.
        src: u32,
    },
    /// A NIC-local DMA (copy/CAS/flush) of the op finished.
    DmaDone {
        /// The loopback QP.
        qpn: u32,
    },
    /// A CQE of the op was delivered.
    CqeDeliver {
        /// The target CQ.
        cq: u32,
    },
}

/// NIC counters for reporting.
#[derive(Debug, Default, Clone)]
pub struct NicCounters {
    /// WQEs executed by the send engine.
    pub wqes_executed: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Packets received.
    pub rx_packets: u64,
    /// NAKs generated (access refusals, missing RECVs).
    pub naks_sent: u64,
    /// Error completions delivered.
    pub error_cqes: u64,
    /// Cache flushes performed for FLUSH requests.
    pub flushes: u64,
    /// Go-back-N retransmissions (reliable QPs).
    pub retransmits: u64,
    /// Ack-timeout expirations on reliable QPs.
    pub timeouts: u64,
    /// Inbound packets discarded: NIC stalled, QP in Error, stale
    /// duplicates, or PSN gaps awaiting retransmission.
    pub rx_dropped: u64,
    /// Doorbell rings (send-engine kicks from software).
    pub doorbells: u64,
    /// WAIT WQEs that parked on an unsatisfied CQ condition.
    pub wait_parks: u64,
    /// WAIT WQEs that fired (unblocked and granted their successors).
    pub wait_fires: u64,
}

/// One host's RDMA NIC.
#[derive(Debug)]
pub struct Nic {
    /// This NIC's cluster-wide id (host index).
    pub id: u32,
    profile: NicProfile,
    mrs: MrTable,
    qps: Vec<Qp>,
    cqs: Vec<Cq>,
    srqs: Vec<std::collections::VecDeque<RecvWqe>>,
    /// Per-CQ list of QPs parked on an unsatisfied WAIT.
    waiters: Vec<Vec<u32>>,
    inflight: Vec<Option<Inflight>>,
    rng: RngStream,
    counters: NicCounters,
    /// Whole-NIC fault: inbound packets dropped, send engine halted.
    stalled: bool,
    /// CORE-Direct fault: WAIT WQEs never trigger (QPs park on them);
    /// everything else keeps working.
    wait_stalled: bool,
    /// Telemetry stamping enabled (see [`NicEvent`]).
    telemetry_on: bool,
    /// Buffered telemetry events awaiting [`Nic::take_events`].
    events: Vec<NicEvent>,
    /// WQE-ownership & DMA race detector (pure observation).
    #[cfg(feature = "check-ownership")]
    tracker: OwnershipTracker,
}

impl Nic {
    /// New NIC with the given timing profile and jitter stream.
    pub fn new(id: u32, profile: NicProfile, rng: RngStream) -> Self {
        Nic {
            id,
            profile,
            mrs: MrTable::new(),
            qps: Vec::new(),
            cqs: Vec::new(),
            srqs: Vec::new(),
            waiters: Vec::new(),
            inflight: Vec::new(),
            rng,
            counters: NicCounters::default(),
            stalled: false,
            wait_stalled: false,
            telemetry_on: false,
            events: Vec::new(),
            #[cfg(feature = "check-ownership")]
            tracker: OwnershipTracker::default(),
        }
    }

    /// Enable or disable telemetry event stamping. While enabled, the
    /// caller must drain [`Nic::take_events`] after each entry-point
    /// call (the cluster's output router does this).
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry_on = on;
        if !on {
            self.events.clear();
        }
    }

    /// Drain buffered telemetry events, in stamping order.
    pub fn take_events(&mut self) -> Vec<NicEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drain buffered telemetry events into `out` (appending, in
    /// stamping order). Unlike [`Nic::take_events`] this preserves both
    /// buffers' capacity, so a caller draining after every entry-point
    /// call — the cluster's output router — allocates nothing in steady
    /// state.
    pub fn take_events_into(&mut self, out: &mut Vec<NicEvent>) {
        out.append(&mut self.events);
    }

    /// Are there buffered telemetry events?
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Buffer a telemetry event (no-op when disabled or untracked).
    #[inline]
    fn ev(&mut self, at: SimTime, op: u32, kind: NicEventKind) {
        if self.telemetry_on && op != 0 {
            self.events.push(NicEvent { at, op, kind });
        }
    }

    /// Read the telemetry op id out of the WQE at ring index `idx`
    /// without consuming it. WAIT descriptors are never op-stamped, so a
    /// firing/parking WAIT borrows the id of the first WQE it guards.
    /// Returns 0 when telemetry is off, the slot is unposted, or the
    /// read fails — never panics (runs on doorbell/packet paths).
    fn peek_slot_op(&self, qpn: u32, idx: u64, mem: &NvmArena) -> u32 {
        if !self.telemetry_on {
            return 0;
        }
        let sq = &self.qps[qpn as usize].sq;
        if idx >= sq.tail {
            return 0;
        }
        mem.read_u32(sq.slot_addr(idx) + crate::wqe::field_offset::OP)
            .unwrap_or(0)
    }

    /// Violations recorded by the WQE-ownership & DMA race detector, in
    /// detection order.
    #[cfg(feature = "check-ownership")]
    pub fn race_violations(&self) -> &[Violation] {
        self.tracker.violations()
    }

    /// Counters snapshot.
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// Jittered duration: multiplies by a log-normal factor with median
    /// 1, plus a rare exponential memory-bus contention hit.
    fn jit(&mut self, d: SimDuration) -> SimDuration {
        if self.profile.jitter_sigma == 0.0 {
            return d;
        }
        let f = self.rng.lognormal(1.0, self.profile.jitter_sigma);
        let mut ns = d.as_nanos() as f64 * f;
        if self.profile.contention_prob > 0.0 && self.rng.chance(self.profile.contention_prob) {
            ns += self
                .rng
                .exponential(self.profile.contention_mean.as_nanos() as f64);
        }
        // Audited: the float factor is drawn from the seeded per-NIC
        // RngStream and rounded once (no accumulation across events), so
        // the same seed replays the same nanosecond.
        SimDuration::from_nanos(ns.round() as u64) // hl-lint: allow(float-time)
    }

    // ----- setup ---------------------------------------------------------

    /// Register a memory region.
    pub fn register_mr(&mut self, addr: u64, len: u64, access: Access) -> MemoryRegion {
        self.mrs.register(addr, len, access)
    }

    /// Deregister a memory region by rkey. Subsequent remote accesses
    /// quoting either key are refused with a `RemoteAccess` NAK (and
    /// flagged by the race detector as use-after-deregister when the
    /// `check-ownership` feature is on). Returns `false` for an unknown
    /// key.
    pub fn deregister_mr(&mut self, now: SimTime, rkey: u32) -> bool {
        let Some(mr) = self.mrs.deregister(rkey) else {
            return false;
        };
        #[cfg(feature = "check-ownership")]
        self.tracker.mr_deregistered(mr.rkey, mr.addr, mr.len, now);
        #[cfg(not(feature = "check-ownership"))]
        let _ = (now, mr);
        true
    }

    /// Create a completion queue.
    pub fn create_cq(&mut self) -> u32 {
        self.cqs.push(Cq::new());
        self.waiters.push(Vec::new());
        (self.cqs.len() - 1) as u32
    }

    /// Create a QP whose send ring lives at `sq_base` with `sq_capacity`
    /// slots. The ring memory itself must be registered separately if it
    /// is to be remotely writable (HyperLoop replicas do this).
    pub fn create_qp(&mut self, send_cq: u32, recv_cq: u32, sq_base: u64, sq_capacity: u32) -> u32 {
        let qpn = self.qps.len() as u32;
        self.qps.push(Qp::new(
            qpn,
            send_cq,
            recv_cq,
            SqRing::new(sq_base, sq_capacity),
        ));
        self.inflight.push(None);
        #[cfg(feature = "check-ownership")]
        self.tracker.track_ring(qpn, sq_base, sq_capacity);
        qpn
    }

    /// Connect a QP to a remote peer (RC). Loopback QPs stay unconnected.
    pub fn connect(&mut self, qpn: u32, remote_nic: u32, remote_qpn: u32) {
        self.qps[qpn as usize].remote = Some((remote_nic, remote_qpn));
    }

    /// Create a shared receive queue (paper §5: multi-client support).
    pub fn create_srq(&mut self) -> u32 {
        self.srqs.push(std::collections::VecDeque::new());
        (self.srqs.len() - 1) as u32
    }

    /// Attach a QP to an SRQ: its inbound two-sided operations consume
    /// from the shared ring instead of the per-QP receive queue.
    pub fn attach_srq(&mut self, qpn: u32, srq: u32) {
        assert!((srq as usize) < self.srqs.len());
        self.qps[qpn as usize].srq = Some(srq);
    }

    /// Post a receive to a shared receive queue.
    pub fn post_srq_recv(&mut self, srq: u32, wqe: RecvWqe) {
        self.srqs[srq as usize].push_back(wqe);
    }

    /// Outstanding receives on an SRQ.
    pub fn srq_depth(&self, srq: u32) -> usize {
        self.srqs[srq as usize].len()
    }

    /// Pop the next receive for a QP: from its SRQ when attached, else
    /// its own RQ.
    fn pop_recv(&mut self, qpn: u32) -> Option<RecvWqe> {
        match self.qps[qpn as usize].srq {
            Some(s) => self.srqs[s as usize].pop_front(),
            None => self.qps[qpn as usize].rq.pop_front(),
        }
    }

    /// Peer of a QP, if connected.
    pub fn peer(&self, qpn: u32) -> Option<(u32, u32)> {
        self.qps[qpn as usize].remote
    }

    // ----- transport reliability & fault hooks ---------------------------

    /// Enable the retransmit protocol on a QP: requests time out after
    /// `timeout` without a response and are retransmitted go-back-N;
    /// after `retry_cnt` consecutive timeouts the QP enters
    /// [`QpState::Error`] and flushes all outstanding work with error
    /// completions. Call before the first operation on the QP.
    pub fn set_qp_timeout(&mut self, qpn: u32, timeout: SimDuration, retry_cnt: u8) {
        assert!(timeout > SimDuration::ZERO, "zero ack timeout");
        self.qps[qpn as usize].timeout = Some(QpTimeout { timeout, retry_cnt });
    }

    /// Operational state of a QP.
    pub fn qp_state(&self, qpn: u32) -> QpState {
        self.qps[qpn as usize].state
    }

    /// Acknowledge a send-queue error ([`QpState::Sqe`]) and resume the
    /// QP. No-op in other states: [`QpState::Error`] is unrecoverable
    /// (tear down and reconnect, as with real RC).
    pub fn recover_qp(&mut self, now: SimTime, qpn: u32, mem: &mut NvmArena) -> Vec<NicOutput> {
        if self.qps[qpn as usize].state != QpState::Sqe {
            return Vec::new();
        }
        self.qps[qpn as usize].state = QpState::Rts;
        self.advance_sq(now, qpn, mem)
    }

    /// Stall or un-stall the whole NIC (fault injection: hung adapter).
    /// While stalled, inbound packets are dropped on the floor and the
    /// send engine does not run; reliable peers keep retransmitting into
    /// the void and eventually error out. Un-stalling kicks every send
    /// queue and immediately retransmits any unacked reliable requests.
    pub fn set_stalled(&mut self, now: SimTime, on: bool, mem: &mut NvmArena) -> Vec<NicOutput> {
        if self.stalled == on {
            return Vec::new();
        }
        self.stalled = on;
        if on {
            return Vec::new();
        }
        let mut out = Vec::new();
        for qpn in 0..self.qps.len() as u32 {
            out.extend(self.advance_sq(now, qpn, mem));
            if !self.qps[qpn as usize].unacked.is_empty() {
                out.extend(self.retransmit_all(now, qpn));
            }
        }
        out
    }

    /// Is the NIC currently stalled?
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Break or repair WAIT triggering (fault injection: CORE-Direct
    /// offload malfunction). While set, every WAIT parks its QP
    /// regardless of CQ state — pre-posted forwarding chains freeze —
    /// but CPU-posted plain WQEs still execute, so software can degrade
    /// to CPU-driven forwarding. Clearing re-evaluates all parked QPs.
    pub fn set_wait_stalled(
        &mut self,
        now: SimTime,
        on: bool,
        mem: &mut NvmArena,
    ) -> Vec<NicOutput> {
        if self.wait_stalled == on {
            return Vec::new();
        }
        self.wait_stalled = on;
        if on {
            return Vec::new();
        }
        let mut out = Vec::new();
        for cq in 0..self.waiters.len() {
            let parked = std::mem::take(&mut self.waiters[cq]);
            for qpn in parked {
                self.qps[qpn as usize].parked = false;
                out.extend(self.advance_sq(now, qpn, mem));
            }
        }
        out
    }

    /// Is WAIT triggering currently broken?
    pub fn is_wait_stalled(&self) -> bool {
        self.wait_stalled
    }

    // ----- driver-side verbs ---------------------------------------------

    /// Post a WQE to the send queue, serializing it into host memory.
    ///
    /// `deferred = true` is the modified-driver path (paper §4.1): the
    /// ownership bit stays with software so the descriptor can still be
    /// rewritten (locally or by a remote scatter); a WAIT or an explicit
    /// [`Nic::grant_ownership`] hands it to the NIC later.
    pub fn post_send(
        &mut self,
        mem: &mut NvmArena,
        qpn: u32,
        mut wqe: Wqe,
        deferred: bool,
    ) -> Result<u64, RingFull> {
        let qp = &mut self.qps[qpn as usize];
        if !qp.sq.has_room() {
            return Err(RingFull {
                qpn,
                capacity: qp.sq.capacity,
            });
        }
        if deferred {
            wqe.flags &= !flags::HW_OWNED;
        } else {
            wqe.flags |= flags::HW_OWNED;
        }
        let idx = qp.sq.tail;
        let addr = qp.sq.slot_addr(idx);
        mem.write(addr, &wqe.encode())
            .expect("SQ ring out of arena");
        qp.sq.tail += 1;
        #[cfg(feature = "check-ownership")]
        self.tracker.slot_posted(qpn, idx, deferred);
        Ok(idx)
    }

    /// Grant NIC ownership of a previously deferred WQE (flips the flag
    /// byte in host memory). The caller still needs a doorbell (or an
    /// in-flight WAIT chain) for the NIC to notice.
    pub fn grant_ownership(&mut self, mem: &mut NvmArena, qpn: u32, idx: u64) {
        let addr = self.qps[qpn as usize].sq.slot_addr(idx);
        let f = mem.read(addr + 1, 1).expect("ring addr")[0];
        mem.write(addr + 1, &[f | flags::HW_OWNED]).unwrap();
        #[cfg(feature = "check-ownership")]
        self.tracker.slot_granted(qpn, idx);
    }

    /// Post a receive.
    pub fn post_recv(&mut self, qpn: u32, wqe: RecvWqe) {
        self.qps[qpn as usize].rq.push_back(wqe);
    }

    /// Number of posted receives on a QP.
    pub fn rq_depth(&self, qpn: u32) -> usize {
        self.qps[qpn as usize].rq.len()
    }

    /// Send-queue state `(head, tail, capacity)` for diagnostics and
    /// replenishment decisions.
    pub fn sq_state(&self, qpn: u32) -> (u64, u64, u32) {
        let sq = &self.qps[qpn as usize].sq;
        (sq.head, sq.tail, sq.capacity)
    }

    /// Host-memory address of the WQE slot holding ring index `idx`
    /// (setup-time address math for scatter targets).
    pub fn sq_slot_addr(&self, qpn: u32, idx: u64) -> u64 {
        self.qps[qpn as usize].sq.slot_addr(idx)
    }

    /// Number of QPs created on this NIC.
    pub fn num_qps(&self) -> usize {
        self.qps.len()
    }

    /// Ring the doorbell: kick the send engine.
    pub fn ring_doorbell(&mut self, now: SimTime, qpn: u32, mem: &mut NvmArena) -> Vec<NicOutput> {
        self.counters.doorbells += 1;
        let t = now + self.profile.doorbell;
        self.advance_sq(t, qpn, mem)
    }

    /// Poll completions (CPU verb; CPU cost is accounted by the caller).
    pub fn poll_cq(&mut self, cq: u32, max: usize) -> Vec<Cqe> {
        self.cqs[cq as usize].poll(max)
    }

    /// Poll completions into a caller-owned buffer (appending), so hot
    /// drain loops can reuse one scratch `Vec` across polls.
    pub fn poll_cq_into(&mut self, cq: u32, max: usize, out: &mut Vec<Cqe>) {
        self.cqs[cq as usize].poll_into(max, out);
    }

    /// Arm the one-shot completion event on a CQ.
    pub fn arm_cq(&mut self, cq: u32) {
        self.cqs[cq as usize].arm();
    }

    /// Entries currently pollable on a CQ.
    pub fn cq_depth(&self, cq: u32) -> usize {
        self.cqs[cq as usize].depth()
    }

    // ----- send engine ----------------------------------------------------

    /// Advance a QP's send queue as far as possible.
    fn advance_sq(&mut self, now: SimTime, qpn: u32, mem: &mut NvmArena) -> Vec<NicOutput> {
        if self.stalled {
            return Vec::new();
        }
        match self.qps[qpn as usize].state {
            QpState::Rts => {}
            // SQE: halted until software calls recover_qp.
            QpState::Sqe => return Vec::new(),
            // Error: everything posted flushes without executing.
            QpState::Error => return self.flush_sq_in_error(now, qpn, mem),
        }
        let mut out = Vec::new();
        // The engine is serialized per QP.
        let mut t = now.max(self.qps[qpn as usize].busy_until);
        loop {
            let qp = &self.qps[qpn as usize];
            if qp.fenced || qp.sq.head >= qp.sq.tail {
                break;
            }
            let head_idx = qp.sq.head;
            let slot = qp.sq.slot_addr(head_idx);
            // The SQ ring's arena range is reserved at QP creation and
            // slot_addr wraps inside it; a read failing here is a
            // simulator bug, not reachable from guest data, and aborting
            // loudly is the deterministic response.
            // hl-lint: allow(panic-in-handler)
            let bytes = mem.read(slot, WQE_SIZE as usize).expect("SQ ring in arena");
            let Some(wqe) = Wqe::decode(bytes) else {
                // Corrupted descriptor (e.g. misdirected scatter): error
                // completion and skip.
                let send_cq = qp.send_cq;
                self.qps[qpn as usize].sq.head += 1;
                #[cfg(feature = "check-ownership")]
                self.tracker.slot_cleared(qpn, head_idx);
                self.counters.error_cqes += 1;
                out.push(NicOutput::Complete {
                    at: t,
                    cq: send_cq,
                    cqe: Cqe {
                        qpn,
                        wr_id: 0,
                        kind: CqeKind::SendOp,
                        status: CqeStatus::RemoteAccess,
                        byte_len: 0,
                        imm: 0,
                        op: 0,
                    },
                });
                continue;
            };
            if !wqe.hw_owned() {
                break;
            }

            if wqe.opcode == Opcode::Wait {
                let cq = wqe.wait_cq() as usize;
                let count = wqe.wait_count().max(1);
                let threshold_mode = wqe.flags & flags::WAIT_THRESHOLD != 0;
                let satisfied = if self.wait_stalled {
                    // Broken CORE-Direct engine: the trigger never fires.
                    false
                } else if threshold_mode {
                    self.cqs[cq].produced() >= count as u64
                } else {
                    self.cqs[cq].wait_satisfied(count)
                };
                if satisfied {
                    if !threshold_mode {
                        self.cqs[cq].consume_for_wait(count);
                    }
                    self.counters.wait_fires += 1;
                    // Activation: grant ownership of the next N WQEs by
                    // writing their flag bytes in host memory.
                    let (head, activate_n) = (qp.sq.head, wqe.activate_n);
                    if activate_n > 0 {
                        let fire_op = self.peek_slot_op(qpn, head + 1, mem);
                        self.ev(t, fire_op, NicEventKind::WaitFire { cq: cq as u32 });
                    }
                    for i in 1..=activate_n as u64 {
                        // Ownership-flag flips on slots inside the same
                        // creation-time ring reservation as above: a
                        // failure is a simulator bug, so panic loudly.
                        let a = self.qps[qpn as usize].sq.slot_addr(head + i);
                        // hl-lint: allow(panic-in-handler)
                        let f = mem.read(a + 1, 1).expect("ring addr")[0];
                        // hl-lint: allow(panic-in-handler)
                        mem.write(a + 1, &[f | flags::HW_OWNED]).unwrap();
                        #[cfg(feature = "check-ownership")]
                        self.tracker.slot_granted(qpn, head + i);
                    }
                    self.qps[qpn as usize].sq.head += 1;
                    #[cfg(feature = "check-ownership")]
                    self.tracker.slot_fetched(qpn, head, t);
                    self.counters.wqes_executed += 1;
                    continue;
                } else {
                    // Park until the watched CQ produces enough.
                    if !self.qps[qpn as usize].parked {
                        self.qps[qpn as usize].parked = true;
                        self.waiters[cq].push(qpn);
                        self.counters.wait_parks += 1;
                        let park_op = self.peek_slot_op(qpn, head_idx + 1, mem);
                        self.ev(t, park_op, NicEventKind::WaitPark { cq: cq as u32 });
                    }
                    break;
                }
            }

            // A real operation: consume the slot and execute.
            self.qps[qpn as usize].sq.head += 1;
            #[cfg(feature = "check-ownership")]
            self.tracker.slot_fetched(qpn, head_idx, t);
            self.counters.wqes_executed += 1;
            self.ev(t, wqe.op, NicEventKind::Fetch { qpn });
            t += self.jit(self.profile.wqe_process);
            out.extend(self.execute(t, qpn, wqe, mem));
        }
        self.qps[qpn as usize].busy_until = t;
        out
    }

    /// Execute one non-WAIT WQE at time `t`.
    fn execute(&mut self, t: SimTime, qpn: u32, wqe: Wqe, mem: &mut NvmArena) -> Vec<NicOutput> {
        let qp = &self.qps[qpn as usize];
        let send_cq = qp.send_cq;
        let remote = qp.remote;
        let mut out = Vec::new();
        match wqe.opcode {
            Opcode::Nop => {
                // Always completes locally (the gCAS execute map relies
                // on NOPs keeping WAIT counting alive).
                out.push(NicOutput::Complete {
                    at: t,
                    cq: send_cq,
                    cqe: Cqe {
                        qpn,
                        wr_id: wqe.wr_id,
                        kind: CqeKind::SendOp,
                        status: CqeStatus::Ok,
                        byte_len: 0,
                        imm: 0,
                        op: wqe.op,
                    },
                });
            }
            Opcode::Send => {
                let Ok(gather) = mem.read_vec(wqe.laddr, wqe.len as usize) else {
                    return self.local_qp_fault(t, qpn, &wqe, mem);
                };
                let data: hl_sim::Bytes = gather.into();
                let Some((dst, dst_qpn)) = remote else {
                    return self.local_qp_fault(t, qpn, &wqe, mem);
                };
                let kind = PacketKind::Send {
                    data,
                    wr_id: wqe.wr_id,
                    signaled: wqe.signaled(),
                };
                out.extend(self.tx_request(
                    t,
                    qpn,
                    dst,
                    dst_qpn,
                    kind,
                    wqe.wr_id,
                    wqe.signaled(),
                    wqe.len,
                    wqe.op,
                ));
            }
            Opcode::Write | Opcode::WriteImm => {
                let Ok(gather) = mem.read_vec(wqe.laddr, wqe.len as usize) else {
                    return self.local_qp_fault(t, qpn, &wqe, mem);
                };
                let data: hl_sim::Bytes = gather.into();
                let Some((dst, dst_qpn)) = remote else {
                    return self.local_qp_fault(t, qpn, &wqe, mem);
                };
                let kind = if wqe.opcode == Opcode::Write {
                    PacketKind::Write {
                        raddr: wqe.raddr,
                        rkey: wqe.rkey,
                        data,
                        wr_id: wqe.wr_id,
                        signaled: wqe.signaled(),
                    }
                } else {
                    PacketKind::WriteImm {
                        raddr: wqe.raddr,
                        rkey: wqe.rkey,
                        data,
                        imm: wqe.imm,
                        wr_id: wqe.wr_id,
                        signaled: wqe.signaled(),
                    }
                };
                out.extend(self.tx_request(
                    t,
                    qpn,
                    dst,
                    dst_qpn,
                    kind,
                    wqe.wr_id,
                    wqe.signaled(),
                    wqe.len,
                    wqe.op,
                ));
            }
            Opcode::Read | Opcode::Flush | Opcode::Cas => {
                let Some((dst, dst_qpn)) = remote else {
                    return self.local_qp_fault(t, qpn, &wqe, mem);
                };
                self.qps[qpn as usize].fenced = true;
                self.inflight[qpn as usize] = Some(Inflight {
                    wr_id: wqe.wr_id,
                    laddr: wqe.laddr,
                    signaled: wqe.signaled(),
                    op: wqe.op,
                });
                let kind = match wqe.opcode {
                    Opcode::Read => PacketKind::Read {
                        raddr: wqe.raddr,
                        rkey: wqe.rkey,
                        len: wqe.len,
                        wr_id: wqe.wr_id,
                    },
                    Opcode::Flush => PacketKind::Flush {
                        raddr: wqe.raddr,
                        rkey: wqe.rkey,
                        len: wqe.len,
                        wr_id: wqe.wr_id,
                    },
                    _ => PacketKind::Cas {
                        raddr: wqe.raddr,
                        rkey: wqe.rkey,
                        cmp: wqe.cmp,
                        swp: wqe.swp,
                        wr_id: wqe.wr_id,
                    },
                };
                out.extend(self.tx_request(
                    t,
                    qpn,
                    dst,
                    dst_qpn,
                    kind,
                    wqe.wr_id,
                    wqe.signaled(),
                    0,
                    wqe.op,
                ));
            }
            Opcode::LocalCopy => {
                let at = t + self.jit(self.profile.dma_time(wqe.len as usize));
                out.push(NicOutput::DoLocal { at, qpn, wqe });
            }
            Opcode::LocalCas => {
                let at = t + self.jit(self.profile.wqe_process);
                out.push(NicOutput::DoLocal { at, qpn, wqe });
            }
            Opcode::LocalFlush => {
                let at = t + self.jit(self.profile.cache_flush);
                out.push(NicOutput::DoLocal { at, qpn, wqe });
            }
            // `advance_sq` consumes WAIT slots itself and never forwards
            // them here; reaching this arm is a simulator bug.
            // hl-lint: allow(panic-in-handler)
            Opcode::Wait => unreachable!("WAIT handled by the engine loop"),
        }
        out
    }

    fn tx(&mut self, at: SimTime, dst_nic: u32, packet: Packet) -> NicOutput {
        self.counters.tx_packets += 1;
        self.ev(at, packet.op, NicEventKind::TxWire { dst: dst_nic });
        NicOutput::Transmit {
            at,
            dst_nic,
            packet,
        }
    }

    /// Transmit a request packet, stamping a PSN and recording it on the
    /// unacked list when the QP runs the retransmit protocol. Arms the
    /// ack timer on an empty-to-nonempty transition.
    #[allow(clippy::too_many_arguments)]
    fn tx_request(
        &mut self,
        t: SimTime,
        qpn: u32,
        dst_nic: u32,
        dst_qpn: u32,
        kind: PacketKind,
        wr_id: u64,
        signaled: bool,
        byte_len: u32,
        op: u32,
    ) -> Vec<NicOutput> {
        let id = self.id;
        let qp = &mut self.qps[qpn as usize];
        let Some(cfg) = qp.timeout else {
            let packet = Packet {
                src_nic: id,
                src_qpn: qpn,
                dst_qpn,
                psn: 0,
                reliable: false,
                op,
                kind,
            };
            return vec![self.tx(t, dst_nic, packet)];
        };
        let psn = qp.next_psn;
        qp.next_psn += 1;
        let packet = Packet {
            src_nic: id,
            src_qpn: qpn,
            dst_qpn,
            psn,
            reliable: true,
            op,
            kind,
        };
        let mut out = Vec::new();
        let was_empty = qp.unacked.is_empty();
        qp.unacked.push_back(PendingTx {
            psn,
            dst_nic,
            packet: packet.clone(),
            wr_id,
            signaled,
            byte_len,
        });
        if was_empty {
            qp.timer_gen += 1;
            out.push(NicOutput::ArmTimer {
                at: t + cfg.timeout,
                qpn,
                gen: qp.timer_gen,
            });
        }
        out.push(self.tx(t, dst_nic, packet));
        out
    }

    /// Go-back-N: retransmit every unacked request in order and re-arm
    /// the ack timer.
    fn retransmit_all(&mut self, now: SimTime, qpn: u32) -> Vec<NicOutput> {
        let pending: Vec<(u32, Packet)> = self.qps[qpn as usize]
            .unacked
            .iter()
            .map(|p| (p.dst_nic, p.packet.clone()))
            .collect();
        let mut out = Vec::new();
        let mut t = now;
        for (dst, pkt) in pending {
            t += self.jit(self.profile.wqe_process);
            self.counters.retransmits += 1;
            out.push(self.tx(t, dst, pkt));
        }
        let qp = &mut self.qps[qpn as usize];
        if let Some(cfg) = qp.timeout {
            qp.timer_gen += 1;
            out.push(NicOutput::ArmTimer {
                at: t + cfg.timeout,
                qpn,
                gen: qp.timer_gen,
            });
        }
        out
    }

    /// Ack-timeout expiry for a reliable QP. Stale generations (the
    /// timer was superseded by an arm after progress) are ignored.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        qpn: u32,
        gen: u64,
        mem: &mut NvmArena,
    ) -> Vec<NicOutput> {
        if self.stalled {
            // A stalled NIC does not time out its own requests; un-stall
            // retransmits anything still pending.
            return Vec::new();
        }
        let qp = &self.qps[qpn as usize];
        if qp.timer_gen != gen || qp.unacked.is_empty() || qp.state == QpState::Error {
            return Vec::new();
        }
        let Some(cfg) = qp.timeout else {
            return Vec::new();
        };
        self.counters.timeouts += 1;
        self.qps[qpn as usize].retries += 1;
        if self.qps[qpn as usize].retries > cfg.retry_cnt {
            return self.fatal_qp_error(now, qpn, mem);
        }
        self.retransmit_all(now, qpn)
    }

    /// A local fault while executing a WQE — the gather range fell
    /// outside the arena (a corrupted descriptor pointing into the
    /// void) or a wire op was posted on an unconnected QP. Real
    /// hardware completes the WQE `IBV_WC_LOC_PROT_ERR` and errors the
    /// QP rather than halting, and so do we: the faulting WQE completes
    /// [`CqeStatus::LocalProtection`], in-flight requests and the rest
    /// of the SQ flush `FlushedInError`.
    fn local_qp_fault(
        &mut self,
        now: SimTime,
        qpn: u32,
        wqe: &Wqe,
        mem: &mut NvmArena,
    ) -> Vec<NicOutput> {
        let qp = &mut self.qps[qpn as usize];
        qp.state = QpState::Error;
        qp.timer_gen += 1;
        qp.retries = 0;
        qp.fenced = false;
        let send_cq = qp.send_cq;
        let pending = std::mem::take(&mut qp.unacked);
        self.inflight[qpn as usize] = None;
        let mut out = vec![NicOutput::CancelTimer { qpn }];
        out.extend(self.deliver_cqe(
            now,
            send_cq,
            Cqe {
                qpn,
                wr_id: wqe.wr_id,
                kind: CqeKind::SendOp,
                status: CqeStatus::LocalProtection,
                byte_len: 0,
                imm: 0,
                op: wqe.op,
            },
            mem,
        ));
        for p in pending.iter() {
            out.extend(self.deliver_cqe(
                now,
                send_cq,
                Cqe {
                    qpn,
                    wr_id: p.wr_id,
                    kind: CqeKind::SendOp,
                    status: CqeStatus::FlushedInError,
                    byte_len: 0,
                    imm: 0,
                    op: p.packet.op,
                },
                mem,
            ));
        }
        out.extend(self.flush_sq_in_error(now, qpn, mem));
        out
    }

    /// Retry budget exhausted: move the QP to Error and flush everything
    /// — the head-of-line request completes `RetryExceeded`, the rest of
    /// the unacked list and every posted-but-unexecuted WQE complete
    /// `FlushedInError`. Error completions are delivered regardless of
    /// the signaled flag (as on real hardware).
    fn fatal_qp_error(&mut self, now: SimTime, qpn: u32, mem: &mut NvmArena) -> Vec<NicOutput> {
        let qp = &mut self.qps[qpn as usize];
        qp.state = QpState::Error;
        qp.timer_gen += 1;
        qp.retries = 0;
        qp.fenced = false;
        let send_cq = qp.send_cq;
        let pending = std::mem::take(&mut qp.unacked);
        self.inflight[qpn as usize] = None;
        // The ack timer dies with the QP.
        let mut out = vec![NicOutput::CancelTimer { qpn }];
        for (i, p) in pending.iter().enumerate() {
            let status = if i == 0 {
                CqeStatus::RetryExceeded
            } else {
                CqeStatus::FlushedInError
            };
            out.extend(self.deliver_cqe(
                now,
                send_cq,
                Cqe {
                    qpn,
                    wr_id: p.wr_id,
                    kind: CqeKind::SendOp,
                    status,
                    byte_len: 0,
                    imm: 0,
                    op: p.packet.op,
                },
                mem,
            ));
        }
        out.extend(self.flush_sq_in_error(now, qpn, mem));
        out
    }

    /// Flush every posted-but-unexecuted WQE of an Error-state QP with
    /// `FlushedInError` completions (also used for posts made after the
    /// transition, matching ibverbs flush semantics).
    fn flush_sq_in_error(&mut self, now: SimTime, qpn: u32, mem: &mut NvmArena) -> Vec<NicOutput> {
        let mut out = Vec::new();
        loop {
            let qp = &self.qps[qpn as usize];
            if qp.sq.head >= qp.sq.tail {
                break;
            }
            let head_idx = qp.sq.head;
            let slot = qp.sq.slot_addr(head_idx);
            let send_cq = qp.send_cq;
            let (wr_id, op) = mem
                .read(slot, WQE_SIZE as usize)
                .ok()
                .and_then(Wqe::decode)
                .map_or((0, 0), |w| (w.wr_id, w.op));
            self.qps[qpn as usize].sq.head += 1;
            #[cfg(feature = "check-ownership")]
            self.tracker.slot_cleared(qpn, head_idx);
            out.extend(self.deliver_cqe(
                now,
                send_cq,
                Cqe {
                    qpn,
                    wr_id,
                    kind: CqeKind::SendOp,
                    status: CqeStatus::FlushedInError,
                    byte_len: 0,
                    imm: 0,
                    op,
                },
                mem,
            ));
        }
        out
    }

    /// Finish a loopback operation scheduled via [`NicOutput::DoLocal`].
    pub fn finish_local(
        &mut self,
        now: SimTime,
        qpn: u32,
        wqe: Wqe,
        mem: &mut NvmArena,
    ) -> Vec<NicOutput> {
        // A descriptor scribbled out of the arena (or a DoLocal carrying
        // a non-local opcode) surfaces as a LocalProtection error CQE
        // instead of killing the simulated host.
        let ok = match wqe.opcode {
            Opcode::LocalCopy => mem
                .read_vec(wqe.laddr, wqe.len as usize)
                .ok()
                .is_some_and(|data| mem.write(wqe.raddr, &data).is_ok()),
            Opcode::LocalCas => mem
                .compare_and_swap_u64(wqe.raddr, wqe.cmp, wqe.swp)
                .ok()
                .is_some_and(|orig| mem.write_u64(wqe.laddr, orig).is_ok()),
            Opcode::LocalFlush => {
                let flushed = mem.flush(wqe.raddr, wqe.len as usize).is_ok();
                if flushed {
                    self.counters.flushes += 1;
                }
                flushed
            }
            _ => false,
        };
        let status = if ok {
            CqeStatus::Ok
        } else {
            CqeStatus::LocalProtection
        };
        self.ev(now, wqe.op, NicEventKind::DmaDone { qpn });
        if wqe.signaled() || !ok {
            let cq = self.qps[qpn as usize].send_cq;
            self.deliver_cqe(
                now,
                cq,
                Cqe {
                    qpn,
                    wr_id: wqe.wr_id,
                    kind: CqeKind::SendOp,
                    status,
                    byte_len: wqe.len,
                    imm: 0,
                    op: wqe.op,
                },
                mem,
            )
        } else {
            Vec::new()
        }
    }

    // ----- completion delivery -------------------------------------------

    /// Push a CQE into a CQ; fires armed events and resumes any QPs
    /// parked on the CQ via WAIT.
    pub fn deliver_cqe(
        &mut self,
        now: SimTime,
        cq: u32,
        cqe: Cqe,
        mem: &mut NvmArena,
    ) -> Vec<NicOutput> {
        let mut out = Vec::new();
        if cqe.status != CqeStatus::Ok {
            self.counters.error_cqes += 1;
        }
        self.ev(now, cqe.op, NicEventKind::CqeDeliver { cq });
        // A delivered completion orders earlier DMA writes before later
        // ones for anyone polling this host, closing the overlap epoch.
        #[cfg(feature = "check-ownership")]
        self.tracker.completion_delivered();
        if self.cqs[cq as usize].push(cqe) {
            out.push(NicOutput::CqEvent { cq });
        }
        // Resume parked QPs; advance re-parks them if still unsatisfied.
        let parked = std::mem::take(&mut self.waiters[cq as usize]);
        for qpn in parked {
            self.qps[qpn as usize].parked = false;
            out.extend(self.advance_sq(now, qpn, mem));
        }
        out
    }

    // ----- receive path ----------------------------------------------------

    /// Handle an inbound packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: Packet, mem: &mut NvmArena) -> Vec<NicOutput> {
        if self.stalled {
            // A hung adapter eats everything silently.
            self.counters.rx_dropped += 1;
            return Vec::new();
        }
        self.counters.rx_packets += 1;
        self.ev(now, pkt.op, NicEventKind::RxWire { src: pkt.src_nic });
        let t = now + self.jit(self.profile.rx_process);
        let qpn = pkt.dst_qpn;
        let qp = &self.qps[qpn as usize];
        if qp.state == QpState::Error {
            self.counters.rx_dropped += 1;
            return Vec::new();
        }
        // Connection safety check (paper §7): only the connected peer may
        // talk to this QP.
        if qp.remote != Some((pkt.src_nic, pkt.src_qpn)) {
            return self.refuse(t, &pkt, NakReason::NotConnected);
        }
        // Requester side: on a reliable QP every response acks
        // cumulatively — entries older than its PSN had their own
        // responses lost, so synthesize their success completions; a
        // response matching nothing pending is a stale duplicate.
        let mut pre = Vec::new();
        if qp.timeout.is_some() && Self::is_response(&pkt.kind) {
            let (proceed, outs) = self.process_cum_ack(t, qpn, pkt.psn, mem);
            if !proceed {
                return outs;
            }
            pre = outs;
        }
        // Responder side: expected-PSN enforcement for reliable requests.
        if pkt.reliable && !Self::is_response(&pkt.kind) {
            let epsn = self.qps[qpn as usize].epsn;
            if pkt.psn > epsn {
                // Gap: an earlier request was lost; drop and let the
                // requester's timer go-back-N.
                self.counters.rx_dropped += 1;
                return Vec::new();
            }
            if pkt.psn < epsn {
                // Duplicate of something already executed.
                return self.replay_duplicate(t, &pkt);
            }
            self.qps[qpn as usize].epsn += 1;
        }
        let main = match pkt.kind.clone() {
            PacketKind::Write {
                raddr,
                rkey,
                data,
                wr_id,
                signaled,
            } => {
                #[cfg(feature = "check-ownership")]
                self.tracker.remote_access(
                    rkey,
                    raddr,
                    data.len() as u64,
                    pkt.src_nic,
                    pkt.src_qpn,
                    t,
                );
                if self
                    .mrs
                    .check_remote(rkey, raddr, data.len() as u64, Access::REMOTE_WRITE)
                    .is_err()
                {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                if mem.write(raddr, &data).is_err() {
                    // MR registered beyond the arena: refuse rather than
                    // kill the simulated host.
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                #[cfg(feature = "check-ownership")]
                self.tracker
                    .remote_write(raddr, &data, pkt.src_nic, pkt.src_qpn, t);
                self.ack(t, &pkt, wr_id, signaled, data.len() as u32)
            }
            PacketKind::WriteImm {
                raddr,
                rkey,
                data,
                imm,
                wr_id,
                signaled,
            } => {
                #[cfg(feature = "check-ownership")]
                self.tracker.remote_access(
                    rkey,
                    raddr,
                    data.len() as u64,
                    pkt.src_nic,
                    pkt.src_qpn,
                    t,
                );
                if self
                    .mrs
                    .check_remote(rkey, raddr, data.len() as u64, Access::REMOTE_WRITE)
                    .is_err()
                {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                if mem.write(raddr, &data).is_err() {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                #[cfg(feature = "check-ownership")]
                self.tracker
                    .remote_write(raddr, &data, pkt.src_nic, pkt.src_qpn, t);
                let Some(recv) = self.pop_recv(qpn) else {
                    return self.refuse(t, &pkt, NakReason::ReceiverNotReady);
                };
                let recv_cq = self.qps[qpn as usize].recv_cq;
                let mut out = self.deliver_cqe(
                    t,
                    recv_cq,
                    Cqe {
                        qpn,
                        wr_id: recv.wr_id,
                        kind: CqeKind::RecvImm,
                        status: CqeStatus::Ok,
                        byte_len: data.len() as u32,
                        imm,
                        op: pkt.op,
                    },
                    mem,
                );
                out.extend(self.ack(t, &pkt, wr_id, signaled, data.len() as u32));
                out
            }
            PacketKind::Send {
                data,
                wr_id,
                signaled,
            } => {
                let Some(recv) = self.pop_recv(qpn) else {
                    return self.refuse(t, &pkt, NakReason::ReceiverNotReady);
                };
                // Scatter the payload, possibly into pre-posted WQE
                // descriptor fields — the heart of remote WQE
                // manipulation.
                for e in &recv.scatter {
                    let off = e.msg_off as usize;
                    if off >= data.len() {
                        continue;
                    }
                    let n = e.len.min((data.len() - off) as u32) as usize;
                    #[cfg(feature = "check-ownership")]
                    self.tracker.remote_write(
                        e.addr,
                        &data[off..off + n],
                        pkt.src_nic,
                        pkt.src_qpn,
                        t,
                    );
                    if mem.write(e.addr, &data[off..off + n]).is_err() {
                        // A scatter entry escaping the arena is a
                        // corrupted pre-posted descriptor; refuse the
                        // SEND (partial scatter may have landed, as with
                        // a mid-message fault on real hardware).
                        return self.refuse(t, &pkt, NakReason::RemoteAccess);
                    }
                }
                let recv_cq = self.qps[qpn as usize].recv_cq;
                let mut out = self.deliver_cqe(
                    t,
                    recv_cq,
                    Cqe {
                        qpn,
                        wr_id: recv.wr_id,
                        kind: CqeKind::Recv,
                        status: CqeStatus::Ok,
                        byte_len: data.len() as u32,
                        imm: 0,
                        op: pkt.op,
                    },
                    mem,
                );
                out.extend(self.ack(t, &pkt, wr_id, signaled, data.len() as u32));
                out
            }
            PacketKind::Read {
                raddr,
                rkey,
                len,
                wr_id,
            } => {
                #[cfg(feature = "check-ownership")]
                self.tracker
                    .remote_access(rkey, raddr, len as u64, pkt.src_nic, pkt.src_qpn, t);
                if self
                    .mrs
                    .check_remote(rkey, raddr, len as u64, Access::REMOTE_READ)
                    .is_err()
                {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                let Ok(data) = mem.read_vec(raddr, len as usize) else {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                };
                let kind = PacketKind::ReadResp {
                    data: data.into(),
                    wr_id,
                };
                if pkt.reliable {
                    self.qps[qpn as usize].resp_cache = Some((pkt.psn, kind.clone()));
                }
                vec![self.respond(t, &pkt, kind)]
            }
            PacketKind::Flush {
                raddr,
                rkey,
                len,
                wr_id,
            } => {
                #[cfg(feature = "check-ownership")]
                self.tracker
                    .remote_access(rkey, raddr, len as u64, pkt.src_nic, pkt.src_qpn, t);
                if self
                    .mrs
                    .check_remote(rkey, raddr, len as u64, Access::REMOTE_READ)
                    .is_err()
                {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                // Drain the NIC cache for the range into the durable
                // medium (the firmware feature of paper §4.2).
                if mem.flush(raddr, len as usize).is_err() {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                self.counters.flushes += 1;
                let t = t + self.profile.cache_flush;
                let kind = PacketKind::FlushResp { wr_id };
                if pkt.reliable {
                    self.qps[qpn as usize].resp_cache = Some((pkt.psn, kind.clone()));
                }
                vec![self.respond(t, &pkt, kind)]
            }
            PacketKind::Cas {
                raddr,
                rkey,
                cmp,
                swp,
                wr_id,
            } => {
                #[cfg(feature = "check-ownership")]
                self.tracker
                    .remote_access(rkey, raddr, 8, pkt.src_nic, pkt.src_qpn, t);
                if self
                    .mrs
                    .check_remote(rkey, raddr, 8, Access::REMOTE_ATOMIC)
                    .is_err()
                {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                }
                let Ok(orig) = mem.compare_and_swap_u64(raddr, cmp, swp) else {
                    return self.refuse(t, &pkt, NakReason::RemoteAccess);
                };
                let kind = PacketKind::CasResp { orig, wr_id };
                if pkt.reliable {
                    self.qps[qpn as usize].resp_cache = Some((pkt.psn, kind.clone()));
                }
                vec![self.respond(t, &pkt, kind)]
            }
            PacketKind::ReadResp { data, wr_id } => {
                let Some(fl) = self.take_inflight(qpn, wr_id) else {
                    self.counters.rx_dropped += 1;
                    return pre;
                };
                let status = if mem.write(fl.laddr, &data).is_ok() {
                    // The response landing is itself a NIC DMA write
                    // into local memory — attribute it to the peer QP.
                    #[cfg(feature = "check-ownership")]
                    self.tracker
                        .remote_write(fl.laddr, &data, pkt.src_nic, pkt.src_qpn, t);
                    CqeStatus::Ok
                } else {
                    CqeStatus::LocalProtection
                };
                self.complete_fenced(t, qpn, fl, data.len() as u32, status, mem)
            }
            PacketKind::FlushResp { wr_id } => {
                let Some(fl) = self.take_inflight(qpn, wr_id) else {
                    self.counters.rx_dropped += 1;
                    return pre;
                };
                self.complete_fenced(t, qpn, fl, 0, CqeStatus::Ok, mem)
            }
            PacketKind::CasResp { orig, wr_id } => {
                let Some(fl) = self.take_inflight(qpn, wr_id) else {
                    self.counters.rx_dropped += 1;
                    return pre;
                };
                let status = if mem.write_u64(fl.laddr, orig).is_ok() {
                    #[cfg(feature = "check-ownership")]
                    self.tracker.remote_write(
                        fl.laddr,
                        &orig.to_le_bytes(),
                        pkt.src_nic,
                        pkt.src_qpn,
                        t,
                    );
                    CqeStatus::Ok
                } else {
                    CqeStatus::LocalProtection
                };
                self.complete_fenced(t, qpn, fl, 8, status, mem)
            }
            PacketKind::Ack {
                wr_id,
                signaled,
                byte_len,
            } => {
                if signaled {
                    let cq = self.qps[qpn as usize].send_cq;
                    self.deliver_cqe(
                        t,
                        cq,
                        Cqe {
                            qpn,
                            wr_id,
                            kind: CqeKind::SendOp,
                            status: CqeStatus::Ok,
                            byte_len,
                            imm: 0,
                            op: pkt.op,
                        },
                        mem,
                    )
                } else {
                    Vec::new()
                }
            }
            PacketKind::Nak { wr_id, reason } => {
                // Error completion; clear the fence only if the refused
                // operation *is* the fencing one (a NAK for an earlier
                // SEND must not unblock an in-flight READ/FLUSH/CAS).
                let status = match reason {
                    NakReason::ReceiverNotReady => CqeStatus::ReceiverNotReady,
                    _ => CqeStatus::RemoteAccess,
                };
                let fencing_refused = self.qps[qpn as usize].fenced
                    && self.inflight[qpn as usize].is_some_and(|fl| fl.wr_id == wr_id);
                if fencing_refused {
                    self.qps[qpn as usize].fenced = false;
                    self.inflight[qpn as usize] = None;
                }
                // On the reliable transport a work-request error halts
                // the send queue until software intervenes (RTS → SQE);
                // legacy QPs keep the historical keep-going behaviour.
                if self.qps[qpn as usize].timeout.is_some() {
                    self.qps[qpn as usize].state = QpState::Sqe;
                }
                let cq = self.qps[qpn as usize].send_cq;
                let mut out = self.deliver_cqe(
                    t,
                    cq,
                    Cqe {
                        qpn,
                        wr_id,
                        kind: CqeKind::SendOp,
                        status,
                        byte_len: 0,
                        imm: 0,
                        op: pkt.op,
                    },
                    mem,
                );
                out.extend(self.advance_sq(t, qpn, mem));
                out
            }
        };
        pre.extend(main);
        pre
    }

    /// Is this packet kind a response (requester-bound)?
    fn is_response(kind: &PacketKind) -> bool {
        matches!(
            kind,
            PacketKind::ReadResp { .. }
                | PacketKind::FlushResp { .. }
                | PacketKind::CasResp { .. }
                | PacketKind::Ack { .. }
                | PacketKind::Nak { .. }
        )
    }

    /// Requester-side cumulative ack: a response with PSN `psn` proves
    /// delivery of every older pending request (their acks were lost) —
    /// pop them with synthesized success completions, then pop the
    /// matching entry itself for the caller's normal response handling.
    /// Returns `(false, ..)` for a stale duplicate that matches nothing.
    fn process_cum_ack(
        &mut self,
        t: SimTime,
        qpn: u32,
        psn: u64,
        mem: &mut NvmArena,
    ) -> (bool, Vec<NicOutput>) {
        let mut out = Vec::new();
        let mut progressed = false;
        loop {
            match self.qps[qpn as usize].unacked.front() {
                Some(front) if front.psn < psn => {}
                _ => break,
            }
            let Some(p) = self.qps[qpn as usize].unacked.pop_front() else {
                break;
            };
            progressed = true;
            if p.signaled {
                let cq = self.qps[qpn as usize].send_cq;
                out.extend(self.deliver_cqe(
                    t,
                    cq,
                    Cqe {
                        qpn,
                        wr_id: p.wr_id,
                        kind: CqeKind::SendOp,
                        status: CqeStatus::Ok,
                        byte_len: p.byte_len,
                        imm: 0,
                        op: p.packet.op,
                    },
                    mem,
                ));
            }
        }
        let matched = self.qps[qpn as usize]
            .unacked
            .front()
            .is_some_and(|p| p.psn == psn);
        if matched {
            self.qps[qpn as usize].unacked.pop_front();
            progressed = true;
        }
        if progressed {
            // Forward progress: reset the retry budget and re-arm (or
            // cancel) the ack timer for whatever is still pending.
            let qp = &mut self.qps[qpn as usize];
            qp.retries = 0;
            qp.timer_gen += 1;
            if qp.unacked.is_empty() {
                out.push(NicOutput::CancelTimer { qpn });
            } else if let Some(cfg) = qp.timeout {
                let gen = qp.timer_gen;
                out.push(NicOutput::ArmTimer {
                    at: t + cfg.timeout,
                    qpn,
                    gen,
                });
            }
        }
        if !matched {
            self.counters.rx_dropped += 1;
        }
        (matched, out)
    }

    /// Responder-side handling of a duplicate reliable request
    /// (PSN below the expected one): it already executed, so re-ack /
    /// replay the cached response without re-executing. This is what
    /// keeps RECV consumption and CAS exactly-once under retransmission.
    fn replay_duplicate(&mut self, t: SimTime, pkt: &Packet) -> Vec<NicOutput> {
        let qpn = pkt.dst_qpn as usize;
        if let Some((psn, kind)) = self.qps[qpn].resp_cache.clone() {
            if psn == pkt.psn {
                return vec![self.respond(t, pkt, kind)];
            }
        }
        match &pkt.kind {
            PacketKind::Write {
                wr_id,
                data,
                signaled,
                ..
            }
            | PacketKind::WriteImm {
                wr_id,
                data,
                signaled,
                ..
            }
            | PacketKind::Send {
                data,
                wr_id,
                signaled,
            } => self.ack(t, pkt, *wr_id, *signaled, data.len() as u32),
            _ => {
                // A fencing duplicate older than the replay cache: the
                // requester has already consumed its response.
                self.counters.rx_dropped += 1;
                Vec::new()
            }
        }
    }

    /// Claim the in-flight fencing op a response settles. `None` means
    /// the response is stale (no fencing op pending, or a cookie from an
    /// earlier incarnation): the caller drops the packet — a hostile or
    /// duplicated response must not crash the NIC.
    fn take_inflight(&mut self, qpn: u32, wr_id: u64) -> Option<Inflight> {
        let fl = self.inflight[qpn as usize].take()?;
        if fl.wr_id != wr_id {
            self.inflight[qpn as usize] = Some(fl);
            return None;
        }
        Some(fl)
    }

    /// Clear the fence, deliver the completion, resume the SQ. Error
    /// statuses are delivered regardless of the signaled flag (as on
    /// real hardware).
    fn complete_fenced(
        &mut self,
        t: SimTime,
        qpn: u32,
        fl: Inflight,
        byte_len: u32,
        status: CqeStatus,
        mem: &mut NvmArena,
    ) -> Vec<NicOutput> {
        self.qps[qpn as usize].fenced = false;
        let mut out = Vec::new();
        if fl.signaled || status != CqeStatus::Ok {
            let cq = self.qps[qpn as usize].send_cq;
            out.extend(self.deliver_cqe(
                t,
                cq,
                Cqe {
                    qpn,
                    wr_id: fl.wr_id,
                    kind: CqeKind::SendOp,
                    status,
                    byte_len,
                    imm: 0,
                    op: fl.op,
                },
                mem,
            ));
        }
        out.extend(self.advance_sq(t, qpn, mem));
        out
    }

    fn ack(
        &mut self,
        t: SimTime,
        pkt: &Packet,
        wr_id: u64,
        signaled: bool,
        byte_len: u32,
    ) -> Vec<NicOutput> {
        vec![self.respond(
            t,
            pkt,
            PacketKind::Ack {
                wr_id,
                signaled,
                byte_len,
            },
        )]
    }

    fn refuse(&mut self, t: SimTime, pkt: &Packet, reason: NakReason) -> Vec<NicOutput> {
        self.counters.naks_sent += 1;
        let wr_id = match &pkt.kind {
            PacketKind::Write { wr_id, .. }
            | PacketKind::WriteImm { wr_id, .. }
            | PacketKind::Send { wr_id, .. }
            | PacketKind::Read { wr_id, .. }
            | PacketKind::Flush { wr_id, .. }
            | PacketKind::Cas { wr_id, .. } => *wr_id,
            // Never NAK a response/ack: drop it instead.
            _ => return Vec::new(),
        };
        vec![self.respond(t, pkt, PacketKind::Nak { wr_id, reason })]
    }

    fn respond(&mut self, t: SimTime, req: &Packet, kind: PacketKind) -> NicOutput {
        self.tx(
            t,
            req.src_nic,
            Packet {
                src_nic: self.id,
                src_qpn: req.dst_qpn,
                dst_qpn: req.src_qpn,
                // Echo the request's PSN so a reliable requester can
                // match it against its unacked list; responses are not
                // themselves retransmitted (the requester re-requests).
                psn: req.psn,
                reliable: false,
                op: req.op,
                kind,
            },
        )
    }
}

/// Send ring exhausted: the caller must back off and retry after
/// completions free slots (HyperLoop clients track credits instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull {
    /// The full QP.
    pub qpn: u32,
    /// Its capacity.
    pub capacity: u32,
}

impl std::fmt::Display for RingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "send ring full on qp{} (capacity {})",
            self.qpn, self.capacity
        )
    }
}

impl std::error::Error for RingFull {}
