//! Queue pairs: send-queue rings in host memory plus NIC-side receive
//! queues.

use crate::wqe::WQE_SIZE;
use std::collections::VecDeque;

/// A send-queue ring living in host memory.
///
/// `head` and `tail` are monotonically increasing indices; the slot of
/// index `i` is at `base + (i % capacity) * 64`. The NIC consumes at
/// `head`, the driver produces at `tail`.
#[derive(Debug, Clone)]
pub struct SqRing {
    /// Arena address of slot 0.
    pub base: u64,
    /// Number of slots.
    pub capacity: u32,
    /// Next WQE the NIC will look at.
    pub head: u64,
    /// One past the last posted WQE.
    pub tail: u64,
}

impl SqRing {
    /// New ring over `[base, base + capacity*64)`.
    pub fn new(base: u64, capacity: u32) -> Self {
        assert!(capacity > 0);
        SqRing {
            base,
            capacity,
            head: 0,
            tail: 0,
        }
    }

    /// Arena address of the slot holding index `idx`.
    pub fn slot_addr(&self, idx: u64) -> u64 {
        self.base + (idx % self.capacity as u64) * WQE_SIZE
    }

    /// Posted-but-unconsumed WQEs.
    pub fn depth(&self) -> u64 {
        self.tail - self.head
    }

    /// Is there room to post another WQE?
    pub fn has_room(&self) -> bool {
        self.depth() < self.capacity as u64
    }

    /// Total bytes of arena the ring occupies.
    pub fn byte_len(&self) -> u64 {
        self.capacity as u64 * WQE_SIZE
    }
}

/// One scatter target of a posted RECV.
///
/// `msg_off` selects which slice of the incoming message lands at
/// `addr` — this is the hook HyperLoop uses to point received metadata
/// *into the descriptor fields of pre-posted WQEs* (see DESIGN.md §7 for
/// the liberty taken vs. strictly sequential verbs SGE consumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterEntry {
    /// Offset within the incoming message.
    pub msg_off: u32,
    /// Bytes to scatter.
    pub len: u32,
    /// Arena destination address.
    pub addr: u64,
}

/// A posted receive work request (kept NIC-side; only send queues live
/// in host memory because only they are remotely manipulated).
#[derive(Debug, Clone)]
pub struct RecvWqe {
    /// Caller cookie echoed in the completion.
    pub wr_id: u64,
    /// Scatter list applied to the incoming payload.
    pub scatter: Vec<ScatterEntry>,
}

/// A queue pair.
#[derive(Debug)]
pub struct Qp {
    /// QP number (index in the NIC's table).
    pub qpn: u32,
    /// CQ for send-side completions.
    pub send_cq: u32,
    /// CQ for receive-side completions.
    pub recv_cq: u32,
    /// Send ring (in host memory).
    pub sq: SqRing,
    /// Posted receives.
    pub rq: VecDeque<RecvWqe>,
    /// Shared receive queue, if attached: inbound SEND/WRITE_IMM
    /// consume from the SRQ instead of `rq`, so many QPs (e.g. one per
    /// client) drain one pre-posted ring in arrival order — the paper's
    /// §5 multi-client mechanism.
    pub srq: Option<u32>,
    /// Connected peer `(nic, qpn)`; `None` = loopback QP for NIC-local
    /// operations (gMEMCPY / gCAS local legs).
    pub remote: Option<(u32, u32)>,
    /// An outstanding fencing op (READ/FLUSH/CAS) blocks the SQ.
    pub fenced: bool,
    /// Is this QP parked in a CQ's waiter list (head is an unsatisfied
    /// WAIT)? Prevents duplicate registration.
    pub parked: bool,
    /// Earliest time the send engine is free (serializes WQE processing).
    pub busy_until: hl_sim::SimTime,
}

impl Qp {
    /// New, unconnected QP.
    pub fn new(qpn: u32, send_cq: u32, recv_cq: u32, sq: SqRing) -> Self {
        Qp {
            qpn,
            send_cq,
            recv_cq,
            sq,
            rq: VecDeque::new(),
            srq: None,
            remote: None,
            fenced: false,
            parked: false,
            busy_until: hl_sim::SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_addressing_wraps() {
        let r = SqRing::new(0x1000, 4);
        assert_eq!(r.slot_addr(0), 0x1000);
        assert_eq!(r.slot_addr(3), 0x1000 + 3 * 64);
        assert_eq!(r.slot_addr(4), 0x1000);
        assert_eq!(r.slot_addr(7), 0x1000 + 3 * 64);
    }

    #[test]
    fn ring_room_accounting() {
        let mut r = SqRing::new(0, 2);
        assert!(r.has_room());
        r.tail = 2;
        assert!(!r.has_room());
        assert_eq!(r.depth(), 2);
        r.head = 1;
        assert!(r.has_room());
        assert_eq!(r.byte_len(), 128);
    }
}
