//! Transport-reliability tests: PSN/ack/retransmit behaviour of QPs
//! configured with `set_qp_timeout`, QP error-state flushing, and the
//! NIC-level fault hooks (full stall, WAIT-engine stall).
//!
//! The harness is a miniature two/three-NIC world with fixed link
//! latency and a per-NIC "drop the next N inbound packets" knob that
//! models transient fabric loss at precise points in the exchange.

use hl_nvm::NvmArena;
use hl_rnic::{flags, Access, CqeStatus, Nic, NicOutput, Opcode, QpState, RecvWqe, Wqe};
use hl_sim::config::NicProfile;
use hl_sim::{Engine, RngFactory, SimDuration, SimTime};

const LINK: SimDuration = SimDuration::from_nanos(500);
const TIMEOUT: SimDuration = SimDuration::from_micros(20);

struct World {
    nics: Vec<Nic>,
    mems: Vec<NvmArena>,
    /// Drop the next N packets *arriving* at nic i (transient loss).
    rx_drop: Vec<u32>,
}
hl_sim::inert_event_ctx!(World);

fn world(n: usize) -> World {
    let fac = RngFactory::new(11);
    let profile = NicProfile {
        jitter_sigma: 0.0, // determinism-friendly for assertions
        ..NicProfile::default()
    };
    World {
        nics: (0..n)
            .map(|i| Nic::new(i as u32, profile.clone(), fac.stream_idx("nic", i as u64)))
            .collect(),
        mems: (0..n).map(|_| NvmArena::new(1 << 20)).collect(),
        rx_drop: vec![0; n],
    }
}

fn route(nic: usize, outs: Vec<NicOutput>, eng: &mut Engine<World>) {
    for o in outs {
        match o {
            NicOutput::Transmit {
                at,
                dst_nic,
                packet,
            } => {
                eng.schedule_at(at + LINK, move |w: &mut World, eng| {
                    let d = dst_nic as usize;
                    if w.rx_drop[d] > 0 {
                        w.rx_drop[d] -= 1;
                        return; // lost on the wire
                    }
                    let outs = w.nics[d].on_packet(eng.now(), packet, &mut w.mems[d]);
                    route(d, outs, eng);
                });
            }
            NicOutput::Complete { at, cq, cqe } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic].deliver_cqe(eng.now(), cq, cqe, &mut w.mems[nic]);
                    route(nic, outs, eng);
                });
            }
            NicOutput::DoLocal { at, qpn, wqe } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic].finish_local(eng.now(), qpn, wqe, &mut w.mems[nic]);
                    route(nic, outs, eng);
                });
            }
            NicOutput::CqEvent { .. } => {}
            NicOutput::ArmTimer { at, qpn, gen } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic].on_timer(eng.now(), qpn, gen, &mut w.mems[nic]);
                    route(nic, outs, eng);
                });
            }
            // The nic-level harness keeps legacy fire-and-ignore timer
            // semantics; stale generations no-op inside on_timer.
            NicOutput::CancelTimer { .. } => {}
        }
    }
}

/// A connected reliable QP pair between nic 0 and nic 1. Returns
/// (qp0, qp1, send_cq0, recv_cq1).
fn reliable_pair(w: &mut World, retry_cnt: u8) -> (u32, u32, u32, u32) {
    let scq0 = w.nics[0].create_cq();
    let rcq0 = w.nics[0].create_cq();
    let scq1 = w.nics[1].create_cq();
    let rcq1 = w.nics[1].create_cq();
    let qp0 = w.nics[0].create_qp(scq0, rcq0, 0x1000, 16);
    let qp1 = w.nics[1].create_qp(scq1, rcq1, 0x1000, 16);
    w.nics[0].connect(qp0, 1, qp1);
    w.nics[1].connect(qp1, 0, qp0);
    w.nics[0].set_qp_timeout(qp0, TIMEOUT, retry_cnt);
    (qp0, qp1, scq0, rcq1)
}

fn post_write(w: &mut World, qp0: u32, rkey: u32, data: &[u8], laddr: u64, raddr: u64, wr_id: u64) {
    w.mems[0].write(laddr, data).unwrap();
    let wqe = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: data.len() as u32,
        laddr,
        raddr,
        rkey,
        wr_id,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], qp0, wqe, false)
        .unwrap();
}

/// Drain a CQ into (wr_id, status) pairs, oldest first.
fn statuses(w: &mut World, nic: usize, cq: u32) -> Vec<(u64, CqeStatus)> {
    w.nics[nic]
        .poll_cq(cq, 64)
        .into_iter()
        .map(|c| (c.wr_id, c.status))
        .collect()
}

/// A lost request packet is repaired by the ack-timeout: go-back-N
/// retransmission delivers it and the requester still gets its Ok CQE.
#[test]
fn lost_write_is_retransmitted() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let (qp0, _qp1, scq0, _rcq1) = reliable_pair(&mut w, 7);
    let mr = w.nics[1].register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    w.rx_drop[1] = 1; // eat the write itself
    post_write(&mut w, qp0, mr.rkey, b"retransmit me", 0x8000, 0x8000, 7);
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[1].read(0x8000, 13).unwrap(), b"retransmit me");
    assert_eq!(statuses(&mut w, 0, scq0), vec![(7, CqeStatus::Ok)]);
    assert!(w.nics[0].counters().retransmits >= 1);
    assert_eq!(w.nics[0].qp_state(qp0), QpState::Rts);
}

/// A lost *ack* triggers a retransmission whose duplicate is suppressed
/// at the responder: the posted RECV is consumed exactly once and the
/// requester sees exactly one completion.
#[test]
fn lost_ack_does_not_double_deliver() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let (qp0, qp1, scq0, rcq1) = reliable_pair(&mut w, 7);
    // Two RECVs posted: a re-executed duplicate would eat the second.
    w.nics[1].post_recv(
        qp1,
        RecvWqe {
            wr_id: 100,
            scatter: vec![],
        },
    );
    w.nics[1].post_recv(
        qp1,
        RecvWqe {
            wr_id: 101,
            scatter: vec![],
        },
    );

    w.rx_drop[0] = 1; // eat the ack on its way back
    w.mems[0].write(0x8000, b"once").unwrap();
    let wqe = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0x8000,
        wr_id: 9,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], qp0, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    // Exactly one Recv completion (wr 100); wr 101's RECV still posted.
    let recv_wrs: Vec<u64> = w.nics[1].poll_cq(rcq1, 8).iter().map(|c| c.wr_id).collect();
    assert_eq!(recv_wrs, vec![100]);
    assert_eq!(w.nics[1].rq_depth(qp1), 1);
    // Exactly one send-side completion despite the duplicate ack path.
    assert_eq!(statuses(&mut w, 0, scq0), vec![(9, CqeStatus::Ok)]);
}

/// A lost CAS response is replayed from the responder's cache: the swap
/// applies exactly once and the requester observes the pre-swap value.
#[test]
fn cas_is_exactly_once_under_lost_response() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let (qp0, _qp1, scq0, _rcq1) = reliable_pair(&mut w, 7);
    let mr = w.nics[1].register_mr(0x8000, 0x1000, Access::REMOTE_ATOMIC);
    w.mems[1].write_u64(0x8000, 5).unwrap();

    w.rx_drop[0] = 1; // eat the CasResp
    let wqe = Wqe {
        opcode: Opcode::Cas,
        flags: flags::SIGNALED,
        laddr: 0x100, // result landing
        raddr: 0x8000,
        rkey: mr.rkey,
        cmp: 5,
        swp: 6,
        wr_id: 3,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], qp0, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    // Swapped exactly once: a re-executed CAS(5→6) would have failed the
    // compare and returned 6; the replayed response returns 5.
    assert_eq!(w.mems[1].read_u64(0x8000).unwrap(), 6);
    assert_eq!(w.mems[0].read_u64(0x100).unwrap(), 5);
    assert_eq!(statuses(&mut w, 0, scq0), vec![(3, CqeStatus::Ok)]);
    assert_eq!(w.nics[0].qp_state(qp0), QpState::Rts);
}

/// Retry exhaustion against a dead peer: the QP transitions to Error,
/// the head-of-line request completes RetryExceeded, everything behind
/// it flushes, and later posts flush too — nothing hangs silently.
#[test]
fn retry_exhaustion_flushes_the_qp() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let (qp0, _qp1, scq0, _rcq1) = reliable_pair(&mut w, 2);
    let mr = w.nics[1].register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    w.rx_drop[1] = u32::MAX; // peer is gone for good
    post_write(&mut w, qp0, mr.rkey, b"aa", 0x8000, 0x8000, 1);
    post_write(&mut w, qp0, mr.rkey, b"bb", 0x8010, 0x8010, 2);
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.nics[0].qp_state(qp0), QpState::Error);
    assert_eq!(
        statuses(&mut w, 0, scq0),
        vec![
            (1, CqeStatus::RetryExceeded),
            (2, CqeStatus::FlushedInError)
        ]
    );
    // ~ (retry_cnt + 1) timeouts elapsed before giving up.
    assert!(eng.now() >= SimTime::from_nanos(3 * TIMEOUT.as_nanos()));

    // Posting after the transition: flushed on the next doorbell.
    post_write(&mut w, qp0, mr.rkey, b"cc", 0x8020, 0x8020, 3);
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(
        statuses(&mut w, 0, scq0),
        vec![(3, CqeStatus::FlushedInError)]
    );
}

/// A stall window shorter than the retry budget: the request issued
/// mid-stall is delivered by retransmission after the NIC recovers.
#[test]
fn stall_window_recovers_without_error() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let (qp0, _qp1, scq0, _rcq1) = reliable_pair(&mut w, 7);
    let mr = w.nics[1].register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    // Stall the responder NIC now; un-stall after 3 timeout periods.
    let outs = w.nics[1].set_stalled(eng.now(), true, &mut w.mems[1]);
    route(1, outs, &mut eng);
    eng.schedule_at(
        SimTime::from_nanos(3 * TIMEOUT.as_nanos()),
        |w: &mut World, eng| {
            let outs = w.nics[1].set_stalled(eng.now(), false, &mut w.mems[1]);
            route(1, outs, eng);
        },
    );

    post_write(&mut w, qp0, mr.rkey, b"survives", 0x8000, 0x8000, 4);
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[1].read(0x8000, 8).unwrap(), b"survives");
    assert_eq!(statuses(&mut w, 0, scq0), vec![(4, CqeStatus::Ok)]);
    assert_eq!(w.nics[0].qp_state(qp0), QpState::Rts);
    assert!(w.nics[1].counters().rx_dropped >= 1);
}

/// The stalled NIC's own pending requests are neither timed out while
/// stalled nor lost: un-stalling retransmits them.
#[test]
fn stalled_sender_resumes_on_unstall() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let (qp0, _qp1, scq0, _rcq1) = reliable_pair(&mut w, 1);
    let mr = w.nics[1].register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    // The request goes out, then the *sender* stalls so the ack is
    // eaten; with retry_cnt=1 an un-suppressed timer would error out.
    post_write(&mut w, qp0, mr.rkey, b"parked", 0x8000, 0x8000, 5);
    let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.schedule_at(SimTime::from_nanos(200), |w: &mut World, eng| {
        let outs = w.nics[0].set_stalled(eng.now(), true, &mut w.mems[0]);
        route(0, outs, eng);
    });
    eng.schedule_at(
        SimTime::from_nanos(10 * TIMEOUT.as_nanos()),
        |w: &mut World, eng| {
            let outs = w.nics[0].set_stalled(eng.now(), false, &mut w.mems[0]);
            route(0, outs, eng);
        },
    );
    eng.run(&mut w);

    assert_eq!(statuses(&mut w, 0, scq0), vec![(5, CqeStatus::Ok)]);
    assert_eq!(w.nics[0].qp_state(qp0), QpState::Rts);
}

/// WAIT-engine stall: a WAIT chain freezes even when its trigger CQ
/// produces, while plain CPU-posted WQEs keep executing — the hook that
/// lets HyperLoop degrade to CPU-driven forwarding. Clearing the stall
/// releases the parked chain.
#[test]
fn wait_stall_freezes_chains_but_not_plain_wqes() {
    let mut w = world(2);
    let mut eng = Engine::new();
    // QP A: a WAIT watching cq_t, then a deferred write it would activate.
    // QP B: plain writes (the CPU-driven path), send_cq = cq_t so its
    // completions are what the WAIT watches.
    let cq_t = w.nics[0].create_cq();
    let rcq = w.nics[0].create_cq();
    let scq_a = w.nics[0].create_cq();
    let qp_a = w.nics[0].create_qp(scq_a, rcq, 0x1000, 8);
    let qp_b = w.nics[0].create_qp(cq_t, rcq, 0x2000, 8);
    let scq1 = w.nics[1].create_cq();
    let rcq1 = w.nics[1].create_cq();
    let qp1a = w.nics[1].create_qp(scq1, rcq1, 0x1000, 8);
    let qp1b = w.nics[1].create_qp(scq1, rcq1, 0x2000, 8);
    w.nics[0].connect(qp_a, 1, qp1a);
    w.nics[1].connect(qp1a, 0, qp_a);
    w.nics[0].connect(qp_b, 1, qp1b);
    w.nics[1].connect(qp1b, 0, qp_b);
    let mr = w.nics[1].register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);

    // Break the WAIT engine.
    let outs = w.nics[0].set_wait_stalled(eng.now(), true, &mut w.mems[0]);
    route(0, outs, &mut eng);

    // Chain on A: WAIT(cq_t >= 1) then an activated write of "chained".
    let wait = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED | flags::WAIT_THRESHOLD,
        imm: 1, // threshold
        len: cq_t,
        activate_n: 1,
        ..Default::default()
    };
    w.mems[0].write(0x8100, b"chained").unwrap();
    let chained = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 7,
        laddr: 0x8100,
        raddr: 0x8000,
        rkey: mr.rkey,
        wr_id: 21,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], qp_a, wait, false)
        .unwrap();
    w.nics[0]
        .post_send(&mut w.mems[0], qp_a, chained, true)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(eng.now(), qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);

    // Plain write on B: still goes through and produces on cq_t.
    w.mems[0].write(0x8200, b"plain").unwrap();
    let plain = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 5,
        laddr: 0x8200,
        raddr: 0x8040,
        rkey: mr.rkey,
        wr_id: 22,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], qp_b, plain, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(eng.now(), qp_b, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    // The plain write landed; the chained one is frozen despite cq_t
    // having produced its trigger completion.
    assert_eq!(w.mems[1].read(0x8040, 5).unwrap(), b"plain");
    assert!(w.nics[0].is_wait_stalled());
    assert_eq!(w.mems[1].read(0x8000, 7).unwrap(), &[0u8; 7]);

    // Repair the engine: the parked chain fires.
    let outs = w.nics[0].set_wait_stalled(eng.now(), false, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.mems[1].read(0x8000, 7).unwrap(), b"chained");
}
