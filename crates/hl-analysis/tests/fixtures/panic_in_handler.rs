// Fixture: `panic-in-handler` fires inside NIC handler functions only.
impl Nic {
    fn on_packet(&mut self, pkt: Packet) {
        self.qps.get(pkt.qpn).unwrap();
        self.qps.get(pkt.qpn).unwrap(); // hl-lint: allow(panic-in-handler)
    }

    fn helper(&mut self) {
        // Out of handler scope: must not fire.
        self.qps.get(0).expect("fine here");
    }
}
