//! Mergeable log-bucketed histogram sketches.
//!
//! [`Sketch`] is the sparse, windowed sibling of [`crate::Histogram`]:
//! it uses the *same* bucketization (see [`crate::stats`]) but stores
//! occupied buckets in a `BTreeMap`, which keeps per-window memory
//! proportional to the number of distinct latency magnitudes observed
//! in that window rather than the full 4096-slot dense array. Sketches
//! are the unit of aggregation for the time-series layer: per-window
//! distributions merge across shards (and, eventually, across threaded
//! shard loops) with [`Sketch::merge`], and merging is *exact* — the
//! merged sketch is bucket-for-bucket identical to a sketch built from
//! the concatenated value stream.
//!
//! # Error bound
//!
//! Values below 64 land in exact unit-width buckets; values ≥ 64 land
//! in one of 64 sub-buckets per power-of-two octave, so any reported
//! quantile `v` satisfies `v ≤ true ≤ v · (1 + 1/64)` (bucket lower
//! bounds are reported, clamped to the exactly-tracked min/max). This
//! bound is [`Sketch::RELATIVE_ERROR`] and is enforced by proptest
//! across six orders of magnitude of nanosecond latencies.

use crate::stats::{bucket_index, bucket_value};
use std::collections::BTreeMap;

/// Sparse mergeable log-bucketed histogram.
///
/// ```
/// use hl_sim::Sketch;
/// let mut a = Sketch::new();
/// let mut b = Sketch::new();
/// let mut u = Sketch::new();
/// for v in [150u64, 9_000, 2_000_000] {
///     a.record(v);
///     u.record(v);
/// }
/// for v in [40u64, 777_777] {
///     b.record(v);
///     u.record(v);
/// }
/// a.merge(&b);
/// assert_eq!(a, u); // merge is exact, not approximate
/// assert_eq!(a.count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    /// Occupied bucket index -> count. Sparse: only observed magnitudes
    /// take space.
    buckets: BTreeMap<u32, u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new()
    }
}

impl Sketch {
    /// Documented worst-case relative error of any quantile for values
    /// ≥ 64 (values below 64 are exact).
    pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// An empty sketch.
    pub fn new() -> Self {
        Sketch {
            buckets: BTreeMap::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(bucket_index(value) as u32).or_insert(0) += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another sketch into this one. Exact: equivalent to having
    /// recorded both value streams into a single sketch.
    pub fn merge(&mut self, other: &Sketch) {
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of recorded values (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, within bucket resolution.
    /// Same rank convention as [`crate::Histogram`]: `rank =
    /// max(1, ceil(q * count))`, extremes reported exactly.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max;
        }
        if rank == 1 {
            return self.min;
        }
        let mut seen = 0u64;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_value(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }
    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Occupied `(bucket_index, count)` pairs in ascending index order.
    /// Stable across runs (BTreeMap order) — the basis for deterministic
    /// snapshot export.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn empty_sketch_is_sane() {
        let s = Sketch::new();
        assert!(s.is_empty());
        assert_eq!(s.p99(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn matches_dense_histogram_quantiles() {
        // Same bucketization + same rank convention → identical
        // quantiles for identical streams.
        let mut s = Sketch::new();
        let mut h = Histogram::new();
        let mut v = 1u64;
        for i in 0..5_000u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(i) % 50_000_000 + 1;
            s.record(v);
            h.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(
                s.value_at_quantile(q),
                h.value_at_quantile(q),
                "quantile {q} diverges from dense Histogram"
            );
        }
        assert_eq!(s.count(), h.count());
        assert_eq!(s.min(), h.min());
        assert_eq!(s.max(), h.max());
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = Sketch::new();
        for v in 0..64u64 {
            s.record(v);
        }
        assert_eq!(s.value_at_quantile(0.5), 31);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 63);
    }

    #[test]
    fn sparse_storage_stays_small() {
        let mut s = Sketch::new();
        for _ in 0..100_000 {
            s.record(10_000);
        }
        assert_eq!(s.buckets.len(), 1);
        assert_eq!(s.count(), 100_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Empirical quantile with the same rank convention the sketch
        /// uses: rank = max(1, ceil(q * n)), 1-based into sorted values.
        fn empirical_quantile(sorted: &[u64], q: f64) -> u64 {
            let n = sorted.len() as u64;
            let rank = ((q * n as f64).ceil() as u64).max(1).min(n);
            sorted[(rank - 1) as usize]
        }

        proptest! {
            /// merge(a, b) is *exactly* the sketch of the concatenated
            /// stream — full structural equality, not just quantiles.
            #[test]
            fn merge_equals_concatenated_stream(
                a in proptest::collection::vec(1u64..10_000_000_000, 0..150),
                b in proptest::collection::vec(1u64..10_000_000_000, 0..150),
            ) {
                let mut sa = Sketch::new();
                let mut sb = Sketch::new();
                let mut su = Sketch::new();
                for &v in &a { sa.record(v); su.record(v); }
                for &v in &b { sb.record(v); su.record(v); }
                sa.merge(&sb);
                prop_assert_eq!(&sa, &su);
                for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                    prop_assert_eq!(sa.value_at_quantile(q), su.value_at_quantile(q));
                }
            }

            /// Reported quantiles stay within the documented relative
            /// error bound across 6 orders of magnitude of nanosecond
            /// latencies (1us .. 1s, i.e. 1e3..1e9 ns).
            #[test]
            fn relative_error_within_documented_bound(
                values in proptest::collection::vec(1_000u64..1_000_000_000, 1..300),
            ) {
                let mut s = Sketch::new();
                for &v in &values {
                    s.record(v);
                }
                let mut sorted = values.clone();
                sorted.sort_unstable();
                for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                    let truth = empirical_quantile(&sorted, q);
                    let got = s.value_at_quantile(q);
                    // Bucket lower bounds are reported, so got <= truth,
                    // and truth - got <= truth * RELATIVE_ERROR (+1 for
                    // integer truncation of the bucket boundary).
                    prop_assert!(got <= truth, "q={q}: got {got} > truth {truth}");
                    let slack = (truth as f64 * Sketch::RELATIVE_ERROR).floor() as u64 + 1;
                    prop_assert!(
                        truth - got <= slack,
                        "q={q}: got {got}, truth {truth}, slack {slack}"
                    );
                }
            }
        }
    }
}
