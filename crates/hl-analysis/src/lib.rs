//! # hl-analysis — static analysis for the simulator workspace
//!
//! The reproduction's core guarantee is that the simulator is
//! *deterministic*: the same seed yields a byte-identical event trace
//! (the invariant the chaos suite asserts). That guarantee is one
//! stray `HashMap` iteration or wall-clock read away from silently
//! breaking — and the WQE/metadata descriptor byte layout the offload
//! path scatters into is plain `const` arithmetic with nothing but
//! convention keeping it overlap-free. This crate is a dependency-free,
//! `syn`-free two-pass workspace analyzer:
//!
//! **Pass 1 — determinism lints + call-graph taint.** Lexical rules
//! run over the sim-core crates; on top of them a nesting-aware parser
//! ([`symbols`]) extracts per-crate symbol tables and an approximate
//! call graph across *all* workspace crates, and [`taint`] propagates
//! nondeterminism transitively: an event-handler entry point that
//! reaches a tainted helper two crates away is reported with the full
//! call chain.
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `hash-collections` | `std::collections::HashMap`/`HashSet` anywhere in sim code (RandomState iteration order) |
//! | `wall-clock` | `std::time::Instant`/`SystemTime` (host clock) |
//! | `os-entropy` | `thread_rng`/`OsRng`/`getrandom`/`RandomState` (unseeded randomness) |
//! | `thread-spawn` | `std::thread::spawn` / `std::thread::scope` (host scheduling order) |
//! | `float-time` | float-tainted arguments to `SimTime`/`SimDuration` constructors |
//! | `panic-in-handler` | `panic!`/`unwrap`/`expect` inside NIC packet/doorbell handlers |
//! | `rand-raw` | raw `rand::` paths outside the named-RNG-stream API |
//! | `wire-truncation` | bare `as` truncation of wire-format fields |
//! | `taint` | entry point transitively reaching any source above |
//! | `taint-panic` | NIC handler transitively reaching an unsuppressed panic site |
//!
//! **Pass 2 — wire-format layout verifier.** [`layout`] parses the
//! descriptor/offset constants out of hl-rnic's `wqe.rs` and
//! hyperloop's `metadata.rs`/`naive.rs`, reconstructs each
//! descriptor's field map, and fails on overlapping ranges, fields
//! exceeding the declared descriptor size, width drift on a logical
//! field across crates, or a `group.rs` scatter entry binding
//! mismatched fields.
//!
//! Escape hatch: `// hl-lint: allow(<rule>)` — trailing on the
//! offending line, or on its own line covering exactly the **next
//! statement or item** (not the rest of the file). Taint chains are
//! suppressible only at the source. Each allow should say *why* in
//! the surrounding comment.
//!
//! Run with `cargo run -p hl-analysis -- check` and `-- layout`; CI
//! runs both on every push. The tool exits non-zero when any finding
//! survives.

#![warn(missing_docs)]

pub mod layout;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod taint;

pub use rules::{check_source, Finding, RULES};

use std::path::{Path, PathBuf};

/// The sim-core crates the determinism rules apply to. Tooling
/// (`hl-analysis` itself), wall-clock benchmarks (`hl-bench`) and the
/// workload generator (`hl-ycsb`, which only feeds the sim through
/// seeded streams) are deliberately out of scope for *direct* lexical
/// findings, but still parsed into the call graph so a sim-crate
/// handler calling into them is caught by the taint pass.
pub const SIM_CRATES: &[&str] = &[
    "hl-sim",
    "hl-nvm",
    "hl-fabric",
    "hl-cpu",
    "hl-rnic",
    "hl-cluster",
    "hyperloop",
    "hl-store",
];

/// Lint every sim-core crate under workspace `root`: lexical rules on
/// sim-crate sources, then the transitive taint pass over the whole
/// workspace call graph. Returns all findings; a missing sim crate is
/// an I/O error, so a renamed crate cannot silently drop out of
/// coverage.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates = taint::discover_crates(root, SIM_CRATES)?;
    for krate in SIM_CRATES {
        if !crates.iter().any(|c| c.name == *krate) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "sim crate `{krate}` not found under {}/crates",
                    root.display()
                ),
            ));
        }
    }
    let model = taint::build_model(root, &crates)?;
    let mut findings = model.direct.clone();
    findings.extend(taint::taint_findings(&model, true));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(findings)
}

/// Run the wire-format layout verifier over workspace `root` with the
/// built-in descriptor schema.
pub fn layout_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    layout::verify(root, &layout::builtin_schema())
}

/// Locate the workspace root from the current directory (walk up until
/// a `Cargo.toml` with a `[workspace]` table is found).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Markdown summary table (rule → finding count) for CI job summaries.
pub fn summary_table(findings: &[Finding]) -> String {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (rule, _) in RULES {
        counts.insert(rule, 0);
    }
    for rule in [
        "taint",
        "taint-panic",
        "layout-overlap",
        "layout-bounds",
        "layout-mismatch",
        "layout-missing",
    ] {
        counts.insert(rule, 0);
    }
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut s = String::from("| rule | findings |\n|---|---|\n");
    for (rule, n) in &counts {
        s.push_str(&format!("| `{rule}` | {n} |\n"));
    }
    s.push_str(&format!("| **total** | **{}** |\n", findings.len()));
    s
}
