//! Simulator-self performance harness (ISSUE 4 "baseline the win").
//!
//! Measures the hot-path overhaul against the engine it replaced and
//! emits `BENCH_4.json`:
//!
//! 1. **Event-queue microbench** (`datapath_timer_pattern`, the
//!    headline) — the access pattern the NIC datapath actually
//!    generates: every op schedules its completion, arms a retransmit
//!    timeout, and the completion cancels it. The pre-change engine
//!    (`BinaryHeap` + per-event `Box<dyn FnOnce>`, embedded below
//!    verbatim so the baseline runs on the same machine in the same
//!    process) cannot cancel, so ~30k dead timers stay resident and
//!    deepen every heap operation until they fire as stale no-ops.
//! 2. **Uniform rotation** — 1024 lanes each rescheduling themselves
//!    at a fixed delay, no timers. This is `BinaryHeap`'s best case
//!    (every push lands at a leaf, every pop sifts a max key from the
//!    root) and measures the arena engine's bookkeeping tax when the
//!    cancel machinery goes unused.
//! 3. **End-to-end gWRITE** — wall-clock ops/sec of the full simulated
//!    stack (NIC, fabric, NVM, telemetry) via the Figure-9 throughput
//!    configuration.
//! 4. **Campaign wall-clock** — the chaos campaign fanned across OS
//!    threads vs run sequentially, with a byte-identity check on the
//!    merged artifacts.
//!
//! Timing uses `std::time::Instant`, which is legal here: hl-bench is
//! host-side tooling, deliberately outside the determinism-linted
//! simulation crates.

use hl_bench::campaign::{run_campaigns_parallel, run_campaigns_sequential};
use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_sim::{Engine, EventCtx, EventToken, SimDuration};
use std::time::Instant;

/// The engine this PR replaced, embedded as the measurement baseline:
/// a `BinaryHeap` of `(time, seq)`-ordered events, each one a separate
/// `Box<dyn FnOnce>` allocation, with no cancellation support.
mod legacy {
    use hl_sim::{SimDuration, SimTime};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    pub type Handler<C> = Box<dyn FnOnce(&mut C, &mut Engine<C>)>;

    struct Scheduled<C> {
        at: SimTime,
        seq: u64,
        run: Handler<C>,
    }

    impl<C> PartialEq for Scheduled<C> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<C> Eq for Scheduled<C> {}
    impl<C> PartialOrd for Scheduled<C> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<C> Ord for Scheduled<C> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap; invert so the earliest (time, seq) pops first.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct Engine<C> {
        queue: BinaryHeap<Scheduled<C>>,
        now: SimTime,
        seq: u64,
        executed: u64,
    }

    impl<C> Engine<C> {
        pub fn new() -> Self {
            Engine {
                queue: BinaryHeap::new(),
                now: SimTime::ZERO,
                seq: 0,
                executed: 0,
            }
        }

        pub fn events_executed(&self) -> u64 {
            self.executed
        }

        pub fn pending(&self) -> usize {
            self.queue.len()
        }

        pub fn schedule<F>(&mut self, delay: SimDuration, f: F)
        where
            F: FnOnce(&mut C, &mut Engine<C>) + 'static,
        {
            let at = (self.now + delay).max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled {
                at,
                seq,
                run: Box::new(f),
            });
        }

        pub fn step(&mut self, ctx: &mut C) -> bool {
            match self.queue.pop() {
                Some(ev) => {
                    self.now = ev.at;
                    self.executed += 1;
                    (ev.run)(ctx, self);
                    true
                }
                None => false,
            }
        }

        pub fn run(&mut self, ctx: &mut C) {
            while self.step(ctx) {}
        }
    }
}

const LANES: usize = 1024;
const EVENTS: u64 = 2_000_000;
const TIMER_OPS: u64 = 300_000;
const CAMPAIGN_SEEDS: [u64; 8] = [101, 102, 103, 104, 105, 106, 107, 108];

/// Shared lane state for the engine microbenches. `remaining` gates the
/// total event count; `acc` consumes the payload so the work per event
/// is identical (and non-optimizable-away) across all variants.
struct Lanes {
    acc: Vec<u64>,
    remaining: u64,
}

impl Lanes {
    fn new(budget: u64) -> Self {
        Lanes {
            acc: vec![0; LANES],
            remaining: budget,
        }
    }
}

/// Typed event: what the hl-cluster datapath schedules instead of a
/// boxed closure. The `[u64; 4]` payload mirrors the captured state the
/// closure variants carry, so all variants move the same bytes.
struct LaneEvent {
    lane: u32,
    payload: [u64; 4],
}

impl EventCtx for Lanes {
    type Event = LaneEvent;
    fn run_event(&mut self, eng: &mut Engine<Self>, ev: LaneEvent) {
        self.acc[ev.lane as usize] =
            self.acc[ev.lane as usize].wrapping_add(ev.payload[0] ^ ev.payload[3]);
        if self.remaining > 0 {
            self.remaining -= 1;
            eng.schedule_event(
                lane_delay(ev.lane),
                LaneEvent {
                    lane: ev.lane,
                    payload: ev.payload,
                },
            );
        }
    }
}

fn lane_delay(lane: u32) -> SimDuration {
    SimDuration::from_nanos(100 + (lane as u64 % 7) * 10)
}

fn lane_payload(lane: u32) -> [u64; 4] {
    [lane as u64 + 1, 2, 3, lane as u64]
}

fn lane_step_arena(w: &mut Lanes, eng: &mut Engine<Lanes>, lane: u32, payload: [u64; 4]) {
    w.acc[lane as usize] = w.acc[lane as usize].wrapping_add(payload[0] ^ payload[3]);
    if w.remaining > 0 {
        w.remaining -= 1;
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_arena(w, eng, lane, payload)
        });
    }
}

fn lane_step_legacy(w: &mut Lanes, eng: &mut legacy::Engine<Lanes>, lane: u32, payload: [u64; 4]) {
    w.acc[lane as usize] = w.acc[lane as usize].wrapping_add(payload[0] ^ payload[3]);
    if w.remaining > 0 {
        w.remaining -= 1;
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_legacy(w, eng, lane, payload)
        });
    }
}

struct EngineSample {
    wall_ms: f64,
    events_per_sec: f64,
    executed: u64,
    checksum: u64,
}

fn sample(wall: std::time::Duration, executed: u64, w: &Lanes) -> EngineSample {
    let secs = wall.as_secs_f64();
    EngineSample {
        wall_ms: secs * 1e3,
        events_per_sec: executed as f64 / secs,
        executed,
        checksum: w.acc.iter().fold(0u64, |a, &b| a.wrapping_add(b)),
    }
}

fn bench_legacy_closures() -> EngineSample {
    let mut w = Lanes::new(EVENTS - LANES as u64);
    let mut eng = legacy::Engine::new();
    let t0 = Instant::now();
    for lane in 0..LANES as u32 {
        let payload = lane_payload(lane);
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_legacy(w, eng, lane, payload)
        });
    }
    eng.run(&mut w);
    sample(t0.elapsed(), eng.events_executed(), &w)
}

fn bench_arena_closures() -> EngineSample {
    let mut w = Lanes::new(EVENTS - LANES as u64);
    let mut eng: Engine<Lanes> = Engine::new();
    let t0 = Instant::now();
    for lane in 0..LANES as u32 {
        let payload = lane_payload(lane);
        eng.schedule(lane_delay(lane), move |w: &mut Lanes, eng| {
            lane_step_arena(w, eng, lane, payload)
        });
    }
    eng.run(&mut w);
    sample(t0.elapsed(), eng.events_executed(), &w)
}

fn bench_arena_typed() -> EngineSample {
    let mut w = Lanes::new(EVENTS - LANES as u64);
    let mut eng: Engine<Lanes> = Engine::new();
    let t0 = Instant::now();
    for lane in 0..LANES as u32 {
        eng.schedule_event(
            lane_delay(lane),
            LaneEvent {
                lane,
                payload: lane_payload(lane),
            },
        );
    }
    eng.run(&mut w);
    sample(t0.elapsed(), eng.events_executed(), &w)
}

struct TimerSample {
    wall_ms: f64,
    events_per_sec: f64,
    ops_per_sec: f64,
    executed: u64,
    max_pending: usize,
}

/// The datapath pattern on the old engine: ops arrive every 100ns, each
/// arms a 3ms retransmit timeout (the chain's `transport_timeout`) it
/// cannot cancel, completion fires 200ns later, and the dead timer
/// fires as a stale no-op three milliseconds on — so ~30k dead entries
/// are resident at steady state, deepening
/// every heap operation, and a third of all executed events are pure
/// waste.
fn bench_timers_legacy() -> TimerSample {
    struct W {
        live: u64,
        completed: u64,
        stale_fired: u64,
    }
    fn op(w: &mut W, eng: &mut legacy::Engine<W>, remaining: u64) {
        w.live += 1;
        // The timeout: by firing time the op is long gone.
        eng.schedule(SimDuration::from_micros(3000), move |w: &mut W, _| {
            w.stale_fired += 1;
        });
        // The completion.
        eng.schedule(SimDuration::from_nanos(200), move |w: &mut W, _| {
            w.live -= 1;
            w.completed += 1;
        });
        if remaining > 0 {
            eng.schedule(SimDuration::from_nanos(100), move |w: &mut W, eng| {
                op(w, eng, remaining - 1)
            });
        }
    }
    let mut w = W {
        live: 0,
        completed: 0,
        stale_fired: 0,
    };
    let mut eng = legacy::Engine::new();
    let mut max_pending = 0usize;
    let t0 = Instant::now();
    eng.schedule(SimDuration::ZERO, move |w: &mut W, eng| {
        op(w, eng, TIMER_OPS - 1)
    });
    while eng.step(&mut w) {
        max_pending = max_pending.max(eng.pending());
    }
    let wall = t0.elapsed();
    assert_eq!(w.completed, TIMER_OPS);
    assert_eq!(w.stale_fired, TIMER_OPS);
    TimerSample {
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: eng.events_executed() as f64 / wall.as_secs_f64(),
        ops_per_sec: TIMER_OPS as f64 / wall.as_secs_f64(),
        executed: eng.events_executed(),
        max_pending,
    }
}

/// Same pattern on the new engine: completion cancels the timer token,
/// so the heap stays shallow and dead timers never execute.
fn bench_timers_cancel() -> TimerSample {
    struct W {
        live: u64,
        completed: u64,
        stale_fired: u64,
    }
    hl_sim::inert_event_ctx!(W);
    fn op(w: &mut W, eng: &mut Engine<W>, remaining: u64) {
        w.live += 1;
        let timer: EventToken =
            eng.schedule(SimDuration::from_micros(3000), move |w: &mut W, _| {
                w.stale_fired += 1;
            });
        eng.schedule(SimDuration::from_nanos(200), move |w: &mut W, eng| {
            w.live -= 1;
            w.completed += 1;
            eng.cancel(timer);
        });
        if remaining > 0 {
            eng.schedule(SimDuration::from_nanos(100), move |w: &mut W, eng| {
                op(w, eng, remaining - 1)
            });
        }
    }
    let mut w = W {
        live: 0,
        completed: 0,
        stale_fired: 0,
    };
    let mut eng: Engine<W> = Engine::new();
    let mut max_pending = 0usize;
    let t0 = Instant::now();
    eng.schedule(SimDuration::ZERO, move |w: &mut W, eng| {
        op(w, eng, TIMER_OPS - 1)
    });
    while eng.step(&mut w) {
        max_pending = max_pending.max(eng.pending());
    }
    let wall = t0.elapsed();
    assert_eq!(w.completed, TIMER_OPS);
    assert_eq!(w.stale_fired, 0, "cancelled timers must never fire");
    TimerSample {
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: eng.events_executed() as f64 / wall.as_secs_f64(),
        ops_per_sec: TIMER_OPS as f64 / wall.as_secs_f64(),
        executed: eng.events_executed(),
        max_pending,
    }
}

fn f(v: f64) -> String {
    format!("{v:.1}")
}

fn main() {
    eprintln!("perf: event-queue microbench, datapath timer pattern ({TIMER_OPS} ops)...");
    let timers_legacy = bench_timers_legacy();
    let timers_cancel = bench_timers_cancel();
    let timers_ev_speedup = timers_cancel.events_per_sec / timers_legacy.events_per_sec;
    let timers_op_speedup = timers_cancel.ops_per_sec / timers_legacy.ops_per_sec;

    eprintln!("perf: uniform rotation ({LANES} lanes, {EVENTS} events per variant)...");
    let legacy_ev = bench_legacy_closures();
    let arena_cl = bench_arena_closures();
    let arena_ty = bench_arena_typed();
    assert_eq!(legacy_ev.executed, arena_cl.executed);
    assert_eq!(legacy_ev.executed, arena_ty.executed);
    assert_eq!(
        legacy_ev.checksum, arena_ty.checksum,
        "engine variants diverged on the same workload"
    );
    assert_eq!(legacy_ev.checksum, arena_cl.checksum);
    let uniform_typed_speedup = arena_ty.events_per_sec / legacy_ev.events_per_sec;

    eprintln!("perf: end-to-end gWRITE throughput...");
    let cfg = MicroCfg {
        backend: Backend::HyperLoop,
        op: MicroOp::GWrite {
            size: 1024,
            flush: false,
        },
        ops: 20_000,
        pipeline: 16,
        ..Default::default()
    };
    let t0 = Instant::now();
    let micro = run_micro(&cfg);
    let gwrite_wall = t0.elapsed();
    let gwrite_wall_ops = cfg.ops as f64 / gwrite_wall.as_secs_f64();

    // Floor at 2 so the fan-out/merge machinery is always exercised;
    // with a single hardware thread the two timings are honestly
    // reported as roughly equal.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, CAMPAIGN_SEEDS.len());
    eprintln!(
        "perf: chaos campaign x{} sequential vs {threads} threads...",
        CAMPAIGN_SEEDS.len()
    );
    let t0 = Instant::now();
    let seq = run_campaigns_sequential(&CAMPAIGN_SEEDS);
    let seq_wall = t0.elapsed();
    let t0 = Instant::now();
    let par = run_campaigns_parallel(&CAMPAIGN_SEEDS, threads);
    let par_wall = t0.elapsed();
    let byte_identical = seq == par;
    assert!(byte_identical, "parallel campaign output diverged");
    let campaign_speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64();

    let engine_sample = |s: &EngineSample| {
        format!(
            "{{\"wall_ms\": {}, \"events_per_sec\": {}, \"events\": {}}}",
            f(s.wall_ms),
            f(s.events_per_sec),
            s.executed
        )
    };
    let timer_sample = |s: &TimerSample| {
        format!(
            "{{\"wall_ms\": {}, \"events_per_sec\": {}, \"ops_per_sec\": {}, \
             \"events\": {}, \"max_pending\": {}}}",
            f(s.wall_ms),
            f(s.events_per_sec),
            f(s.ops_per_sec),
            s.executed,
            s.max_pending
        )
    };
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"BENCH_4\",\n\
         \x20 \"engine_microbench\": {{\n\
         \x20   \"headline\": \"datapath_timer_pattern\",\n\
         \x20   \"datapath_timer_pattern\": {{\n\
         \x20     \"ops\": {TIMER_OPS},\n\
         \x20     \"baseline_legacy_dead_timers\": {},\n\
         \x20     \"arena_cancel_tokens\": {},\n\
         \x20     \"events_per_sec_speedup\": {},\n\
         \x20     \"ops_per_sec_speedup\": {}\n\
         \x20   }},\n\
         \x20   \"uniform_rotation\": {{\n\
         \x20     \"lanes\": {LANES},\n\
         \x20     \"events\": {},\n\
         \x20     \"baseline_legacy_boxed_closures\": {},\n\
         \x20     \"arena_closures\": {},\n\
         \x20     \"arena_typed\": {},\n\
         \x20     \"speedup_typed_vs_baseline\": {}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"gwrite_e2e\": {{\n\
         \x20   \"backend\": \"HyperLoop\",\n\
         \x20   \"size_bytes\": 1024,\n\
         \x20   \"ops\": {},\n\
         \x20   \"sim_kops\": {},\n\
         \x20   \"wall_ms\": {},\n\
         \x20   \"wall_ops_per_sec\": {}\n\
         \x20 }},\n\
         \x20 \"campaign\": {{\n\
         \x20   \"seeds\": {:?},\n\
         \x20   \"threads\": {threads},\n\
         \x20   \"sequential_ms\": {},\n\
         \x20   \"parallel_ms\": {},\n\
         \x20   \"speedup\": {},\n\
         \x20   \"byte_identical\": {byte_identical}\n\
         \x20 }}\n\
         }}\n",
        timer_sample(&timers_legacy),
        timer_sample(&timers_cancel),
        f(timers_ev_speedup),
        f(timers_op_speedup),
        legacy_ev.executed,
        engine_sample(&legacy_ev),
        engine_sample(&arena_cl),
        engine_sample(&arena_ty),
        f(uniform_typed_speedup),
        cfg.ops,
        f(micro.kops),
        f(gwrite_wall.as_secs_f64() * 1e3),
        f(gwrite_wall_ops),
        CAMPAIGN_SEEDS,
        f(seq_wall.as_secs_f64() * 1e3),
        f(par_wall.as_secs_f64() * 1e3),
        f(campaign_speedup),
    );
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");

    println!(
        "event-queue microbench (datapath timer pattern): {} -> {} events/sec ({}x), \
         {} -> {} ops/sec ({}x), max pending {} -> {}",
        f(timers_legacy.events_per_sec),
        f(timers_cancel.events_per_sec),
        f(timers_ev_speedup),
        f(timers_legacy.ops_per_sec),
        f(timers_cancel.ops_per_sec),
        f(timers_op_speedup),
        timers_legacy.max_pending,
        timers_cancel.max_pending
    );
    println!(
        "uniform rotation: baseline {} / arena-closures {} / arena-typed {} events/sec ({}x typed)",
        f(legacy_ev.events_per_sec),
        f(arena_cl.events_per_sec),
        f(arena_ty.events_per_sec),
        f(uniform_typed_speedup)
    );
    println!(
        "gWRITE e2e: {} sim-Kops/s, {} wall ops/sec",
        f(micro.kops),
        f(gwrite_wall_ops)
    );
    println!(
        "campaign: {} seeds, sequential {} ms, parallel({} threads) {} ms, speedup {}x, byte_identical {}",
        CAMPAIGN_SEEDS.len(),
        f(seq_wall.as_secs_f64() * 1e3),
        threads,
        f(par_wall.as_secs_f64() * 1e3),
        f(campaign_speedup),
        byte_identical
    );
    println!("wrote BENCH_4.json");
}
