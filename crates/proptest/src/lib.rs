//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched; this shim keeps the property tests
//! source-compatible: `proptest!` with an optional `proptest_config`,
//! integer-range / `any` / tuple / `prop_map` / `collection::vec` /
//! `prop_oneof!` / `Just` / simple char-class string strategies, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the full generated input so it can be replayed as an explicit
//! test) and no `proptest-regressions` persistence. Generation is fully
//! deterministic: case `i` of a test derives its RNG from the test name
//! and `i` alone.

pub mod strategy {
    use super::test_runner::TestRng;

    /// A value generator. Object-safe so heterogeneous strategies can be
    /// unified under `prop_oneof!`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Box a strategy, erasing its concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()`: the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    );

    /// Weighted choice between strategies of one value type.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(!arms.is_empty());
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// A pattern string like `"[a-z]{1,8}"` acts as a `String` strategy.
    /// Only the tiny subset the workspace uses is supported: one char
    /// class (literal chars and `a-b` ranges) with an optional `{n}` or
    /// `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, quant) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                for c in cs[i]..=cs[i + 2] {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        if quant.is_empty() {
            return Some((chars, 1, 1));
        }
        let q = quant.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match q.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = q.parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Acceptable size specifications for [`vec`].
    pub trait SizeRange {
        /// Inclusive bounds of the length.
        fn bounds(&self) -> (usize, usize);
    }
    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end);
            (self.start, self.end - 1)
        }
    }
    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases (mirrors upstream proptest).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert!` / `prop_assert_eq!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Deterministic generator state (splitmix64 walk).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        fn from_name_and_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x5eed),
            }
        }

        /// Next raw draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            // Multiply-shift; a hair biased for huge n, irrelevant here.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Drive one property: `cases` deterministic generations of the body.
    /// The body returns the formatted inputs plus the case result; any
    /// failure panics with the inputs so the case can be replayed.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        for case in 0..config.cases {
            let mut rng = TestRng::from_name_and_case(name, case);
            let (inputs, result) = body(&mut rng);
            if let Err(TestCaseError(msg)) = result {
                panic!(
                    "property `{name}` failed at case {case}: {msg}\n\
                     generated inputs: {inputs}"
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                (inputs, result)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($w as u32, $crate::strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($s))),+
        ])
    };
}
