//! Threaded shard execution must be a pure wall-clock optimisation:
//! fanning disjoint shard worlds across OS threads may change *when* a
//! shard's event loop runs, never *what* it computes. For an 8-shard
//! partitioned campaign, every per-shard artifact — report line, member
//! NVM snapshots, labelled metrics, time-series JSON — must be
//! byte-identical between `threads == 8` and the sequential
//! `threads == 1` baseline, and the merge must preserve shard order.

use hl_bench::shard::{run_shard_campaign_threaded, ShardCampaignCfg};

fn cfg() -> ShardCampaignCfg {
    ShardCampaignCfg {
        n_shards: 8,
        ops_per_shard: 400,
        warmup_per_shard: 40,
        telemetry: true,
        ..Default::default()
    }
}

#[test]
fn threaded_shards_are_byte_identical_to_sequential() {
    let cfg = cfg();
    let seq = run_shard_campaign_threaded(&cfg, 1);
    // More workers than the host has cores: claim order gets noisier,
    // which is exactly what must not leak into any artifact.
    let par = run_shard_campaign_threaded(&cfg, 8);

    assert_eq!(seq.n_shards, 8);
    assert_eq!(seq.slices.len(), 8);
    assert_eq!(par.slices.len(), 8);
    assert_eq!(seq.total_ops, 8 * cfg.ops_per_shard);

    for (a, b) in seq.slices.iter().zip(&par.slices) {
        assert_eq!(a.sid, b.sid, "merge broke shard order");
        assert_eq!(a.report, b.report, "shard {}: reports diverged", a.sid);
        assert_eq!(
            a.nvm, b.nvm,
            "shard {}: member NVM diverged between threaded and sequential",
            a.sid
        );
        assert!(
            a.nvm.iter().all(|m| m.iter().any(|&x| x != 0)),
            "shard {}: NVM snapshot all zero; identity check is vacuous",
            a.sid
        );
        assert_eq!(a.metrics, b.metrics, "shard {}: metrics diverged", a.sid);
        assert_eq!(
            a.timeseries, b.timeseries,
            "shard {}: time-series diverged",
            a.sid
        );
    }
    assert_eq!(seq.report, par.report, "merged reports diverged");
    assert_eq!(par.threads, 8);
    assert_eq!(seq.threads, 1);
}

/// Every shard world replicates: each member's snapshot of the written
/// slot area equals the head's (the slices already ran with pipelined
/// supervised writes, so this is a real replication check, not a
/// tautology).
#[test]
fn threaded_shard_members_replicate() {
    let c = ShardCampaignCfg {
        n_shards: 4,
        ops_per_shard: 200,
        warmup_per_shard: 20,
        ..Default::default()
    };
    let out = run_shard_campaign_threaded(&c, 4);
    for s in &out.slices {
        let head = &s.nvm[0];
        for (m, mem) in s.nvm.iter().enumerate().skip(1) {
            assert_eq!(
                head, mem,
                "shard {}: member {} diverges from head",
                s.sid, m
            );
        }
    }
}
