//! Region layout: a bump allocator over an arena.
//!
//! Storage servers carve their NVM into named regions — write-ahead log,
//! database area, lock words, HyperLoop metadata staging, WQE rings. The
//! allocator hands out aligned, non-overlapping `[addr, addr+len)`
//! regions and remembers them by name so tests can assert that nothing
//! overlaps and tools can pretty-print a memory map.

/// A named allocated region of an arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name (unique within one allocator).
    pub name: String,
    /// Start address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.addr + self.len
    }

    /// Does `[addr, addr+len)` fall entirely inside this region?
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.addr && addr + len <= self.end()
    }

    /// Offset of `addr` from the region start. Panics when out of range.
    pub fn offset_of(&self, addr: u64) -> u64 {
        assert!(self.contains(addr, 0), "address outside region");
        addr - self.addr
    }

    /// Absolute address of `offset` into the region. Panics past the end.
    pub fn at(&self, offset: u64) -> u64 {
        assert!(offset <= self.len, "offset outside region");
        self.addr + offset
    }
}

/// Bump allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct Layout {
    capacity: u64,
    next: u64,
    regions: Vec<Region>,
}

impl Layout {
    /// Allocator over an arena of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Layout {
            capacity,
            next: 0,
            regions: Vec::new(),
        }
    }

    /// Allocate `len` bytes aligned to `align` (a power of two) under
    /// `name`. Panics on exhaustion or duplicate name — layouts are
    /// static configuration, so failing fast is the right behaviour.
    pub fn alloc(&mut self, name: &str, len: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(
            self.regions.iter().all(|r| r.name != name),
            "duplicate region name {name:?}"
        );
        let addr = (self.next + align - 1) & !(align - 1);
        assert!(
            addr.checked_add(len).is_some_and(|e| e <= self.capacity),
            "arena exhausted allocating {name:?}: need [{addr}, +{len}) of {}",
            self.capacity
        );
        self.next = addr + len;
        let region = Region {
            name: name.to_string(),
            addr,
            len,
        };
        self.regions.push(region.clone());
        region
    }

    /// Look up a region by name.
    pub fn get(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Bytes remaining (ignoring alignment padding of future allocations).
    pub fn remaining(&self) -> u64 {
        self.capacity - self.next
    }

    /// All regions in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut l = Layout::new(4096);
        let a = l.alloc("wal", 100, 64);
        let b = l.alloc("db", 1000, 64);
        let c = l.alloc("locks", 8, 8);
        assert_eq!(a.addr % 64, 0);
        assert_eq!(b.addr % 64, 0);
        assert!(a.end() <= b.addr);
        assert!(b.end() <= c.addr);
        assert_eq!(l.regions().len(), 3);
    }

    #[test]
    fn region_math() {
        let mut l = Layout::new(1024);
        let r = l.alloc("r", 128, 64);
        assert!(r.contains(r.addr, 128));
        assert!(!r.contains(r.addr, 129));
        assert_eq!(r.offset_of(r.addr + 5), 5);
        assert_eq!(r.at(5), r.addr + 5);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut l = Layout::new(64);
        l.alloc("big", 65, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut l = Layout::new(1024);
        l.alloc("x", 8, 8);
        l.alloc("x", 8, 8);
    }

    #[test]
    fn lookup_and_remaining() {
        let mut l = Layout::new(100);
        l.alloc("a", 10, 1);
        assert!(l.get("a").is_some());
        assert!(l.get("b").is_none());
        assert_eq!(l.remaining(), 90);
    }
}
