//! Regression test for dead-timer churn (ISSUE 4 satellite).
//!
//! Every reliable-QP transmit arms a retransmit timer. Before cancel
//! tokens, a completed op's timer stayed in the event queue as a dead
//! entry until it fired as a stale no-op — so the pending-event count
//! grew with the op rate times the 3ms timeout window. With
//! `NicOutput::CancelTimer` + `Engine::cancel`, a drained QP removes
//! its timer immediately and the queue stays flat.
//!
//! The assertion is differential: a 6x longer workload must not raise
//! the high-water pending-event mark by more than a small constant. If
//! dead timers ever leak again, the long run's mark grows by roughly
//! one entry per completed op (hundreds here) and this fails loudly.

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

/// Drive `ops` sequential durable gWRITEs on a 2-replica chain with the
/// retransmit timeout armed, returning the high-water pending-event
/// mark sampled at every op completion, plus the quiescent count.
fn pending_marks(ops: usize) -> (usize, usize) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(7).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 64,
        // Arm the per-transmit retransmit timer (the churn source).
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));

    let done = Rc::new(RefCell::new(0usize));
    let mut max_pending = 0usize;
    for k in 0..ops {
        let d = done.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                (k as u64 % 512) * 64,
                format!("pending-{k:04}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
            )
            .unwrap();
        let d2 = done.clone();
        let want = k + 1;
        eng.run_while(&mut w, move |_| *d2.borrow() < want);
        max_pending = max_pending.max(eng.pending());
    }
    assert_eq!(*done.borrow(), ops, "ops left unfinished");
    // Let in-flight chain internals (trailing ACKs, replenish credits)
    // settle; replenisher/heartbeat machinery keeps a small steady set.
    let end = eng.now() + SimDuration::from_millis(10);
    eng.run_until(&mut w, end);
    (max_pending, eng.pending())
}

#[test]
fn pending_events_stay_bounded_under_sustained_reliable_traffic() {
    let (short_max, short_idle) = pending_marks(60);
    let (long_max, long_idle) = pending_marks(360);
    // 6x the ops completed inside one 3ms timeout window: leaked dead
    // timers would add ~one pending entry per extra op (~300 here).
    // The +16 margin absorbs scheduling jitter in the steady set.
    assert!(
        long_max <= short_max + 16,
        "pending-event high-water mark grew with op count \
         ({short_max} @ 60 ops -> {long_max} @ 360 ops): dead timers are leaking"
    );
    // Quiescent queues must be flat too, not draining a timer backlog.
    assert!(
        long_idle <= short_idle + 16,
        "quiescent pending-event count grew with op count \
         ({short_idle} -> {long_idle}): dead timers are leaking"
    );
}
