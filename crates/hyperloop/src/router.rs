//! Client-side shard router: keys → shards → per-shard supervised
//! clients.
//!
//! A sharded deployment runs N independent HyperLoop groups (one chain
//! each, placed by [`hl_cluster::shard::ShardPlan`]); the router is the
//! single frontend object that maps a key to its owning shard via the
//! deterministic [`HashRing`] and drives that shard's [`RetryClient`].
//! All shards live in the *same* event engine, so concurrency across
//! shards is just interleaved events — fully deterministic under a
//! fixed seed.
//!
//! Every routed issue bumps a telemetry counter labelled with the shard
//! id (`shard=<n>`), so campaign metrics can be split per shard without
//! any extra plumbing.
//!
//! ## Epochs and the migration window
//!
//! The routing table is versioned: each atomic [`ShardRouter::install`]
//! of a new `(ring, shards)` pair bumps the epoch. During a live
//! split/merge the migration driver opens a *dual window*
//! ([`ShardRouter::open_window`]): operations whose key is about to
//! change owner park in arrival order instead of being issued on the
//! old chain, while every other key keeps flowing untouched — the
//! bystander-shard timing invariant depends on the non-moving path
//! being byte-for-byte the same code. At cut-over, `install` flips the
//! table and replays the parked queue in arrival order through normal
//! keyed routing, which lands each op on its post-cutover owner.

use crate::deadline::{GroupOp, OnOutcome, OpError, RetryClient};
use hl_cluster::shard::HashRing;
use hl_cluster::World;
use hl_sim::{Bytes, Engine};
use std::cell::RefCell;
use std::rc::Rc;

/// One parked operation: the key it was routed by, the op itself and
/// its completion callback, held until the ring flips.
struct Parked {
    key: Vec<u8>,
    op: GroupOp,
    done: OnOutcome,
}

/// A pending ring change: ops whose owner differs between the serving
/// ring and `next_ring` park until [`ShardRouter::install`].
struct Window {
    next_ring: HashRing,
    parked: Vec<Parked>,
}

struct RouterInner {
    ring: HashRing,
    shards: Vec<RetryClient>,
    epoch: u64,
    window: Option<Window>,
}

/// Routes operations to per-shard [`RetryClient`]s by consistent-hash
/// key placement.
///
/// Cloning shares the routing table (and each shard client is itself a
/// shared handle), so the migration driver and the workload can hold
/// the same router.
#[derive(Clone)]
pub struct ShardRouter {
    inner: Rc<RefCell<RouterInner>>,
}

impl ShardRouter {
    /// Build a router over one supervised client per shard; shard ids
    /// are the vector indices.
    pub fn new(shards: Vec<RetryClient>) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        let ring = HashRing::new(shards.len());
        Self::with_ring(ring, shards)
    }

    /// Build a router with an explicit ring (e.g. shared with a store
    /// layer so both route identically).
    pub fn with_ring(ring: HashRing, shards: Vec<RetryClient>) -> Self {
        assert_eq!(ring.n_shards(), shards.len());
        ShardRouter {
            inner: Rc::new(RefCell::new(RouterInner {
                ring,
                shards,
                epoch: 0,
                window: None,
            })),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.inner.borrow().shards.len()
    }

    /// The routing ring (share it with stores / load generators so the
    /// whole stack agrees on placement).
    pub fn ring(&self) -> HashRing {
        self.inner.borrow().ring.clone()
    }

    /// Routing-table version: bumped by every [`ShardRouter::install`].
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch
    }

    /// Operations parked in the open migration window.
    pub fn parked(&self) -> usize {
        self.inner
            .borrow()
            .window
            .as_ref()
            .map_or(0, |w| w.parked.len())
    }

    /// Shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.inner.borrow().ring.shard_of(key)
    }

    /// Shard owning a `u64` key.
    pub fn shard_of_u64(&self, key: u64) -> usize {
        self.inner.borrow().ring.shard_of_u64(key)
    }

    /// The supervised client for shard `sid` (a shared handle).
    pub fn client(&self, sid: usize) -> RetryClient {
        self.inner.borrow().shards[sid].clone()
    }

    /// Open the dual-routing window for a pending change to
    /// `next_ring`: from now until [`ShardRouter::install`], keyed
    /// operations whose owner differs between the serving ring and
    /// `next_ring` are parked in arrival order; everything else routes
    /// exactly as before.
    pub fn open_window(&self, next_ring: HashRing) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.window.is_none(), "migration window already open");
        inner.window = Some(Window {
            next_ring,
            parked: Vec::new(),
        });
    }

    /// Atomically flip the routing table to `(ring, shards)`: bumps the
    /// epoch, closes the window and replays parked operations in
    /// arrival order through keyed routing — each lands on its
    /// post-cutover owner under full deadline supervision.
    pub fn install(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        ring: HashRing,
        shards: Vec<RetryClient>,
    ) {
        assert_eq!(ring.n_shards(), shards.len());
        let (parked, epoch) = {
            let mut inner = self.inner.borrow_mut();
            let parked = match inner.window.take() {
                Some(win) => {
                    assert_eq!(
                        win.next_ring, ring,
                        "install must match the ring the window was opened for"
                    );
                    win.parked
                }
                None => Vec::new(),
            };
            inner.ring = ring;
            inner.shards = shards;
            inner.epoch += 1;
            (parked, inner.epoch)
        };
        if w.telemetry.enabled() {
            let now = eng.now();
            w.telemetry
                .mark(now, format!("router:flip:epoch{epoch}"), 0);
            w.telemetry
                .metrics
                .counter_add("router_flips", "layer=router", 1);
            w.telemetry.metrics.counter_add(
                "router_replayed_ops",
                "layer=router",
                parked.len() as u64,
            );
        }
        for p in parked {
            self.issue_keyed(w, eng, &p.key, p.op, p.done);
        }
    }

    /// Issue `op` on an explicit shard under deadline supervision.
    ///
    /// When the windowed time-series layer is on, the routed op also
    /// feeds a per-shard `router_ops{shard=N}` window counter and, at
    /// completion, a per-shard `op_latency_ns{shard=N}` latency sketch —
    /// the series the `timeline` report renders per shard.
    pub fn issue_on(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        sid: usize,
        op: GroupOp,
        mut done: OnOutcome,
    ) {
        if w.telemetry.enabled() {
            w.telemetry
                .metrics
                .counter_add("router_ops", &format!("shard={sid}"), 1);
        }
        if w.telemetry.series.enabled() {
            let now = eng.now();
            let labels = format!("shard={sid}");
            w.telemetry
                .series
                .counter_add(now, "router_ops", &labels, 1);
            let issued_at = now;
            done = Box::new(move |w, eng, outcome| {
                if outcome.is_ok() && w.telemetry.series.enabled() {
                    let now = eng.now();
                    let e2e = now.duration_since(issued_at).as_nanos();
                    w.telemetry
                        .series
                        .record(now, "op_latency_ns", &labels, e2e);
                }
                done(w, eng, outcome);
            });
        }
        // Clone the handle out before issuing: the client's completion
        // path may re-enter the router (closed-loop drivers issue the
        // next op from the previous op's callback).
        let client = self.client(sid);
        client.issue(w, eng, op, done);
    }

    /// Route `op` by `key` and issue it on the owning shard. If a
    /// migration window is open and `key` is changing owner, the op
    /// parks until the flip and then replays onto the new owner.
    pub fn issue_keyed(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        op: GroupOp,
        done: OnOutcome,
    ) {
        let sid = {
            let mut inner = self.inner.borrow_mut();
            let sid = inner.ring.shard_of(key);
            if let Some(win) = inner.window.as_mut() {
                if win.next_ring.shard_of(key) != sid {
                    win.parked.push(Parked {
                        key: key.to_vec(),
                        op,
                        done,
                    });
                    return;
                }
            }
            sid
        };
        self.issue_on(w, eng, sid, op, done);
    }

    /// Key-routed supervised gWRITE at `offset` within the owning
    /// shard's replicated region.
    #[allow(clippy::too_many_arguments)]
    pub fn gwrite_keyed(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnOutcome,
    ) {
        self.issue_keyed(
            w,
            eng,
            key,
            GroupOp::Write {
                offset,
                data: Bytes::copy_from_slice(data),
                flush,
            },
            done,
        );
    }

    /// Supervised operations not yet settled, summed over all shards.
    /// Parked operations are not counted — they have not been issued.
    pub fn outstanding(&self) -> u32 {
        self.inner
            .borrow()
            .shards
            .iter()
            .map(|s| s.outstanding())
            .sum()
    }

    /// Typed failures recorded so far on shard `sid`.
    pub fn shard_failures(&self, sid: usize) -> Vec<OpError> {
        self.inner.borrow().shards[sid].failures()
    }

    /// Typed failures recorded so far across all shards.
    pub fn failures(&self) -> Vec<OpError> {
        self.inner
            .borrow()
            .shards
            .iter()
            .flat_map(|s| s.failures())
            .collect()
    }
}
