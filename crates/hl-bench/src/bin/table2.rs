//! Table 2: gCAS latency, Naïve-RDMA vs HyperLoop (group size 3,
//! stress-ng background).
//!
//! Usage: `table2 [--ops N]`

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_bench::table::{us, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    println!("== Table 2: gCAS latency (us) ==");
    let mut t = Table::new(&["impl", "avg", "p95", "p99"]);
    let mut rows = Vec::new();
    for backend in [Backend::NaiveEvent, Backend::HyperLoop] {
        let r = run_micro(&MicroCfg {
            backend,
            op: MicroOp::GCas,
            ops,
            ..Default::default()
        });
        t.row(&[
            backend.name().to_string(),
            format!("{:.1}", r.latency.mean_us()),
            us(r.latency.p95_ns),
            us(r.latency.p99_ns),
        ]);
        rows.push(r.latency);
    }
    t.print();
    println!(
        "ratios naive/hyperloop: avg {:.0}x  p95 {:.0}x  p99 {:.0}x   (paper: 53.9x / 302.2x / 849x)",
        rows[0].mean_ns / rows[1].mean_ns,
        rows[0].p95_ns as f64 / rows[1].p95_ns as f64,
        rows[0].p99_ns as f64 / rows[1].p99_ns as f64,
    );
    println!("paper absolute: naive 539/3928/11886 us, hyperloop 10/13/14 us");
}
