//! Figure 9: gWRITE throughput and critical-path CPU consumption vs
//! message size (group size 3). The Naïve baseline uses its best case:
//! dedicated (exclusive) polling cores on the replicas.
//!
//! Usage: `fig9 [--mb N]` (total data volume per point, default 32 MB)

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mb: usize = args
        .iter()
        .position(|a| a == "--mb")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);

    println!("== Figure 9: gWRITE throughput (Kops/s) and replica CPU (cores) ==");
    let mut t = Table::new(&["size", "naive-kops", "naive-cpu", "hl-kops", "hl-cpu"]);
    for size in [1024usize, 2048, 4096, 8192, 16384, 32768, 65536] {
        let ops = (mb * 1024 * 1024 / size).max(512);
        let mk = |backend| MicroCfg {
            backend,
            op: MicroOp::GWrite { size, flush: false },
            ops,
            warmup: 64,
            pipeline: 32,
            ring_slots: 1024,
            stress_per_host: 0, // throughput tool; CPU is what we measure
            ..Default::default()
        };
        let naive = run_micro(&mk(Backend::NaivePolling { pinned: true }));
        let hl = run_micro(&mk(Backend::HyperLoop));
        t.row(&[
            size.to_string(),
            format!("{:.0}", naive.kops),
            format!("{:.2}", naive.datapath_cores),
            format!("{:.0}", hl.kops),
            format!("{:.2}", hl.datapath_cores),
        ]);
    }
    t.print();
    println!("paper: similar throughput for both; Naive burns a whole core, HyperLoop ~0.");
}
