//! # hl-fabric — network fabric model
//!
//! A lossless (by default) data-center fabric connecting simulated hosts.
//! The model is message-granular: each message occupies its sender's
//! egress port for `size / bandwidth`, then arrives after a fixed
//! per-path propagation delay. Because egress is FIFO and propagation is
//! constant per path, delivery between any ordered pair of hosts is
//! in-order — the property RDMA reliable-connection transport needs.
//!
//! Fault injection (message drops, host partitions, link-down) is
//! explicit and off by default; benchmarks run lossless like the paper's
//! RoCE testbed, while recovery tests flip faults on.
//!
//! ## Gray failures: the impairment engine
//!
//! Binary faults (drop everything / drop nothing) miss the failure modes
//! that dominate production: jittery links, lossy-but-alive paths,
//! rate-limited uplinks, straggler NICs. [`Impairment`] is a composable
//! `tc-netem`-style spec — fixed delay, uniform jitter, probabilistic
//! loss, token-bucket rate limiting, reordering, duplication — attached
//! to a *directed* host pair ([`Fabric::set_impairment`]) or to every
//! path in and out of one host ([`Fabric::set_host_impairment`]). Pair
//! and host impairments stack: a message crossing an impaired pair
//! between two impaired hosts pays all three.
//!
//! Probabilistic knobs (loss / jitter / reorder / duplicate) draw from a
//! dedicated seeded stream installed via [`Fabric::set_impairment_rng`];
//! with no stream installed they are inert and only the deterministic
//! knobs (delay, rate) apply. Delay, jitter and rate are
//! *FIFO-preserving*: deliveries on an impaired pair are clamped to be
//! monotone, modelling a queue behind the slow link, so RC transport
//! never sees spurious reordering from them. Only the explicit `reorder`
//! knob violates FIFO (the reordered message skips the impairment queue
//! entirely), and only `duplicate` delivers a message twice — both are
//! conditions reliable QPs recover from via go-back-N and duplicate
//! replay, and both are deliberately invisible to the FIFO delivery
//! auditor (they are injected faults, not fabric-model bugs).

#![warn(missing_docs)]

use hl_sim::config::NetProfile;
use hl_sim::{RngStream, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifies a host (index into the cluster's host table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Per-host egress port state.
#[derive(Debug, Clone, Default)]
struct Port {
    /// Time at which the egress link becomes free.
    free_at: SimTime,
    /// Bytes transmitted (for reporting).
    bytes_tx: u64,
    /// Messages transmitted.
    msgs_tx: u64,
}

/// A FIFO-order violation recorded by the delivery auditor (feature
/// `check-ownership`): a message for an ordered host pair was scheduled
/// to arrive *before* an earlier message of the same pair. The RDMA RC
/// transport model assumes this never happens; any occurrence is a
/// fabric-model bug.
#[cfg(feature = "check-ownership")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderViolation {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Latest delivery time previously scheduled for this pair.
    pub prev_delivery: SimTime,
    /// The regressing delivery time.
    pub delivery: SimTime,
}

/// Result of offering a message to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message will arrive at the destination at this instant.
    At(SimTime),
    /// Message was duplicated by an impairment: the original arrives at
    /// the first instant, the copy at the second (never earlier).
    Duplicated(SimTime, SimTime),
    /// Message was dropped by fault injection.
    Dropped,
}

/// A composable `tc-netem`-style link impairment.
///
/// All knobs default to "off"; [`Impairment::stack`] combines two specs
/// (delays add, losses combine as independent events, the stricter rate
/// wins). Probabilistic knobs need an RNG stream installed with
/// [`Fabric::set_impairment_rng`]; without one they are inert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairment {
    /// Fixed extra one-way delay.
    pub delay: SimDuration,
    /// Uniform extra delay in `[0, jitter]`, drawn per message.
    pub jitter: SimDuration,
    /// Probability of losing each message.
    pub loss: f64,
    /// Token-bucket rate limit in bits per second (`None` = unlimited).
    pub rate_bps: Option<u64>,
    /// Token-bucket depth in bytes (burst allowance when rate-limited).
    pub burst_bytes: u64,
    /// Probability a message jumps the impairment queue (delivered at
    /// its unimpaired time, possibly overtaking delayed predecessors).
    pub reorder: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
}

impl Default for Impairment {
    fn default() -> Self {
        Impairment {
            delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            rate_bps: None,
            burst_bytes: 16 * 1024,
            reorder: 0.0,
            duplicate: 0.0,
        }
    }
}

impl Impairment {
    /// Fixed delay plus uniform jitter in `[0, jitter]`.
    pub fn delay(delay: SimDuration, jitter: SimDuration) -> Self {
        Impairment {
            delay,
            jitter,
            ..Default::default()
        }
    }

    /// Probabilistic loss.
    pub fn loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Impairment {
            loss: p,
            ..Default::default()
        }
    }

    /// Token-bucket rate limit.
    pub fn rate(bps: u64, burst_bytes: u64) -> Self {
        assert!(bps > 0);
        Impairment {
            rate_bps: Some(bps),
            burst_bytes,
            ..Default::default()
        }
    }

    /// True if no knob is active.
    pub fn is_noop(&self) -> bool {
        self.delay == SimDuration::ZERO
            && self.jitter == SimDuration::ZERO
            && self.loss == 0.0
            && self.rate_bps.is_none()
            && self.reorder == 0.0
            && self.duplicate == 0.0
    }

    /// Stack another impairment on top of this one: delays and jitters
    /// add, losses combine as independent drop events, the stricter rate
    /// wins (with the smaller burst), reorder/duplicate combine as
    /// independent events.
    pub fn stack(&self, other: &Impairment) -> Impairment {
        let combine = |a: f64, b: f64| 1.0 - (1.0 - a) * (1.0 - b);
        let (rate_bps, burst_bytes) = match (self.rate_bps, other.rate_bps) {
            (Some(a), Some(b)) => (Some(a.min(b)), self.burst_bytes.min(other.burst_bytes)),
            (Some(a), None) => (Some(a), self.burst_bytes),
            (None, Some(b)) => (Some(b), other.burst_bytes),
            (None, None) => (None, self.burst_bytes),
        };
        Impairment {
            delay: self.delay + other.delay,
            jitter: self.jitter + other.jitter,
            loss: combine(self.loss, other.loss),
            rate_bps,
            burst_bytes,
            reorder: combine(self.reorder, other.reorder),
            duplicate: combine(self.duplicate, other.duplicate),
        }
    }
}

/// Token-bucket state for one rate-limited impairment scope.
#[derive(Debug, Clone, Default)]
struct Bucket {
    /// Bytes available right now.
    tokens: u64,
    /// Last refill instant.
    last: SimTime,
    /// Bucket filled on first use.
    primed: bool,
}

impl Bucket {
    /// Pass a `size`-byte message ready at `ready` through the bucket;
    /// returns when it clears the rate limiter. Integer arithmetic only
    /// (nanoseconds × bits/s fits u128).
    fn pass(&mut self, ready: SimTime, size: u64, bps: u64, burst: u64) -> SimTime {
        if !self.primed {
            self.tokens = burst;
            self.last = ready;
            self.primed = true;
        }
        // The bucket is a queue: a message cannot start accumulating its
        // tokens before the previous one cleared (`self.last`).
        let start = ready.max(self.last);
        if start > self.last {
            let dt = start.as_nanos() - self.last.as_nanos();
            let refill = (bps as u128 * dt as u128 / 8_000_000_000) as u64;
            self.tokens = (self.tokens + refill).min(burst);
        }
        self.last = start;
        if self.tokens >= size {
            self.tokens -= size;
            start
        } else {
            let deficit = size - self.tokens;
            self.tokens = 0;
            let wait = (deficit as u128 * 8_000_000_000).div_ceil(bps as u128) as u64;
            let at = SimTime::from_nanos(start.as_nanos() + wait);
            self.last = at;
            at
        }
    }
}

/// An impairment spec plus the per-scope state it owns.
#[derive(Debug, Clone)]
struct ImpairState {
    imp: Impairment,
    bucket: Bucket,
}

/// The fabric connecting all hosts.
#[derive(Debug)]
pub struct Fabric {
    profile: NetProfile,
    ports: Vec<Port>,
    /// Propagation hops between host pairs, indexed `[src][dst]`;
    /// 1 = same rack through one switch.
    hops: Vec<Vec<u32>>,
    /// Blocked ordered pairs (partition injection).
    partitions: Vec<(HostId, HostId)>,
    /// Hosts whose link is administratively down.
    down: Vec<bool>,
    /// Probability of dropping any message (fault injection); requires
    /// the caller to pass a uniform draw to keep the fabric RNG-free.
    drop_prob: f64,
    /// Per-directed-pair drop probability, keyed `(src, dst)`; combined
    /// with `drop_prob` as independent events so one tenant's lossy path
    /// never perturbs bystander pairs.
    link_drop: BTreeMap<(usize, usize), f64>,
    /// Directed per-pair impairments, keyed `(src, dst)`.
    impairments: BTreeMap<(usize, usize), ImpairState>,
    /// Per-host impairments (applied to all of the host's ingress and
    /// egress paths; models a straggler or rate-capped NIC).
    host_impairments: BTreeMap<usize, ImpairState>,
    /// Latest impaired delivery per pair: delay/jitter/rate deliveries
    /// are clamped to be monotone (the queue behind the slow link).
    pair_floor: BTreeMap<(usize, usize), SimTime>,
    /// Seeded stream for the probabilistic impairment knobs. `None`
    /// (the default) leaves loss/jitter/reorder/duplicate inert.
    impair_rng: Option<RngStream>,
    /// Messages dropped for any reason (partition, link-down, random).
    drops: u64,
    /// Subset of `drops` caused by impairment loss.
    impaired_drops: u64,
    /// Latest scheduled delivery per ordered pair, indexed `[src][dst]`.
    #[cfg(feature = "check-ownership")]
    last_delivery: Vec<Vec<SimTime>>,
    /// FIFO-order violations recorded by the auditor.
    #[cfg(feature = "check-ownership")]
    order_violations: Vec<OrderViolation>,
}

impl Fabric {
    /// A fabric over `n` hosts with uniform single-switch paths.
    pub fn new(n: usize, profile: NetProfile) -> Self {
        Fabric {
            profile,
            ports: vec![Port::default(); n],
            hops: vec![vec![1; n]; n],
            partitions: Vec::new(),
            down: vec![false; n],
            drop_prob: 0.0,
            link_drop: BTreeMap::new(),
            impairments: BTreeMap::new(),
            host_impairments: BTreeMap::new(),
            pair_floor: BTreeMap::new(),
            impair_rng: None,
            drops: 0,
            impaired_drops: 0,
            #[cfg(feature = "check-ownership")]
            last_delivery: vec![vec![SimTime::ZERO; n]; n],
            #[cfg(feature = "check-ownership")]
            order_violations: Vec::new(),
        }
    }

    /// Record a scheduled delivery with the FIFO auditor.
    #[cfg(feature = "check-ownership")]
    fn audit_delivery(&mut self, src: HostId, dst: HostId, at: SimTime) {
        let prev = self.last_delivery[src.0][dst.0];
        if at < prev {
            self.order_violations.push(OrderViolation {
                src,
                dst,
                prev_delivery: prev,
                delivery: at,
            });
        } else {
            self.last_delivery[src.0][dst.0] = at;
        }
    }

    /// FIFO-order violations recorded so far (feature `check-ownership`).
    #[cfg(feature = "check-ownership")]
    pub fn order_violations(&self) -> &[OrderViolation] {
        &self.order_violations
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True if the fabric has no hosts.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Set the hop count between two hosts (both directions).
    pub fn set_hops(&mut self, a: HostId, b: HostId, hops: u32) {
        self.hops[a.0][b.0] = hops;
        self.hops[b.0][a.0] = hops;
    }

    /// Inject a one-directional partition: messages src→dst are dropped.
    pub fn partition(&mut self, src: HostId, dst: HostId) {
        if !self.partitions.contains(&(src, dst)) {
            self.partitions.push((src, dst));
        }
    }

    /// Heal a previously injected partition.
    pub fn heal(&mut self, src: HostId, dst: HostId) {
        self.partitions.retain(|&p| p != (src, dst));
    }

    /// Take a host's link down (drops everything to/from it).
    pub fn set_link_down(&mut self, host: HostId, is_down: bool) {
        self.down[host.0] = is_down;
    }

    /// Enable random drops with probability `p` (see [`Fabric::send`]).
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
    }

    /// Random drops on the single directed pair `src → dst` with
    /// probability `p` (0 clears). Combined with the global probability
    /// as independent events; other pairs are untouched.
    pub fn set_link_drop_prob(&mut self, src: HostId, dst: HostId, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            self.link_drop.remove(&(src.0, dst.0));
        } else {
            self.link_drop.insert((src.0, dst.0), p);
        }
    }

    /// Install the seeded stream the probabilistic impairment knobs draw
    /// from. Installed once at cluster build so enabling impairments
    /// never perturbs other random streams.
    pub fn set_impairment_rng(&mut self, rng: RngStream) {
        self.impair_rng = Some(rng);
    }

    /// Attach `imp` to the directed pair `src → dst` (replacing any
    /// previous pair impairment; use [`Impairment::stack`] to compose).
    pub fn set_impairment(&mut self, src: HostId, dst: HostId, imp: Impairment) {
        if imp.is_noop() {
            self.impairments.remove(&(src.0, dst.0));
        } else {
            self.impairments.insert(
                (src.0, dst.0),
                ImpairState {
                    imp,
                    bucket: Bucket::default(),
                },
            );
        }
    }

    /// Remove the pair impairment on `src → dst`.
    pub fn clear_impairment(&mut self, src: HostId, dst: HostId) {
        self.impairments.remove(&(src.0, dst.0));
    }

    /// The active pair impairment on `src → dst`, if any.
    pub fn impairment(&self, src: HostId, dst: HostId) -> Option<&Impairment> {
        self.impairments.get(&(src.0, dst.0)).map(|s| &s.imp)
    }

    /// Attach `imp` to every path in and out of `host` (straggler /
    /// rate-capped NIC). Replaces any previous host impairment.
    pub fn set_host_impairment(&mut self, host: HostId, imp: Impairment) {
        if imp.is_noop() {
            self.host_impairments.remove(&host.0);
        } else {
            self.host_impairments.insert(
                host.0,
                ImpairState {
                    imp,
                    bucket: Bucket::default(),
                },
            );
        }
    }

    /// Remove the host impairment on `host`.
    pub fn clear_host_impairment(&mut self, host: HostId) {
        self.host_impairments.remove(&host.0);
    }

    /// True if any impairment applies to messages `src → dst`.
    pub fn is_impaired(&self, src: HostId, dst: HostId) -> bool {
        self.impairments.contains_key(&(src.0, dst.0))
            || self.host_impairments.contains_key(&src.0)
            || self.host_impairments.contains_key(&dst.0)
    }

    /// Messages dropped by impairment loss (subset of [`Fabric::drops`]).
    pub fn impaired_drops(&self) -> u64 {
        self.impaired_drops
    }

    /// Offer a `size`-byte message from `src` to `dst` at time `now`.
    ///
    /// `uniform_draw` is a caller-supplied uniform sample in `[0,1)` used
    /// for drop decisions (the fabric holds no RNG so that enabling fault
    /// injection never perturbs other random streams). Pass `1.0` when
    /// drops are disabled.
    pub fn send(
        &mut self,
        now: SimTime,
        src: HostId,
        dst: HostId,
        size: usize,
        uniform_draw: f64,
    ) -> Delivery {
        if self.down[src.0] || self.down[dst.0] || self.partitions.contains(&(src, dst)) {
            self.drops += 1;
            return Delivery::Dropped;
        }
        let pair_p = self.link_drop.get(&(src.0, dst.0)).copied().unwrap_or(0.0);
        let p = 1.0 - (1.0 - self.drop_prob) * (1.0 - pair_p);
        if p > 0.0 && uniform_draw < p {
            self.drops += 1;
            return Delivery::Dropped;
        }
        let base = if src == dst {
            // Loopback never touches the wire; a nominal port-turnaround
            // delay models the NIC-internal path.
            now + SimDuration::from_nanos(100)
        } else {
            let port = &mut self.ports[src.0];
            let start = port.free_at.max(now);
            let tx = self.profile.transfer_time(size);
            let done = start + tx;
            port.free_at = done;
            port.bytes_tx += size as u64;
            port.msgs_tx += 1;
            let prop = SimDuration::from_nanos(
                self.profile.propagation.as_nanos() * self.hops[src.0][dst.0] as u64,
            );
            done + prop
        };
        if src != dst && self.is_impaired(src, dst) {
            return self.impaired_delivery(src, dst, size, base);
        }
        #[cfg(feature = "check-ownership")]
        self.audit_delivery(src, dst, base);
        Delivery::At(base)
    }

    /// Run a message already scheduled for unimpaired delivery at `base`
    /// through the active impairments on its path.
    fn impaired_delivery(
        &mut self,
        src: HostId,
        dst: HostId,
        size: usize,
        base: SimTime,
    ) -> Delivery {
        // Scope keys in application order: pair, source host, dest host.
        let pair_key = (src.0, dst.0);
        let specs: Vec<(bool, usize, usize, Impairment)> = self
            .impairments
            .get(&pair_key)
            .map(|s| (true, src.0, dst.0, s.imp))
            .into_iter()
            .chain(
                [src.0, dst.0]
                    .into_iter()
                    .filter_map(|h| self.host_impairments.get(&h).map(|s| (false, h, h, s.imp))),
            )
            .collect();

        // Probabilistic decisions first, on a stream taken out of `self`
        // so the bucket pass below can borrow mutably.
        let mut rng = self.impair_rng.take();
        let mut lost = false;
        let mut reordered = false;
        let mut duplicated = false;
        let mut extra = SimDuration::ZERO;
        for (_, _, _, imp) in &specs {
            extra += imp.delay;
            if let Some(r) = rng.as_mut() {
                if imp.loss > 0.0 && r.f64() < imp.loss {
                    lost = true;
                }
                if imp.jitter > SimDuration::ZERO {
                    extra += SimDuration::from_nanos(r.range_u64(0, imp.jitter.as_nanos() + 1));
                }
                if imp.reorder > 0.0 && r.f64() < imp.reorder {
                    reordered = true;
                }
                if imp.duplicate > 0.0 && r.f64() < imp.duplicate {
                    duplicated = true;
                }
            }
        }
        self.impair_rng = rng;
        if lost {
            self.drops += 1;
            self.impaired_drops += 1;
            return Delivery::Dropped;
        }
        if reordered {
            // The message jumps the impairment queue: delivered at its
            // unimpaired time, possibly overtaking delayed predecessors.
            // Deliberately NOT clamped and NOT audited — this is an
            // injected fault the RC transport must absorb, not a
            // fabric-model bug.
            return Delivery::At(base);
        }
        let mut at = SimTime::from_nanos(base.as_nanos() + extra.as_nanos());
        for &(is_pair, a, b, imp) in &specs {
            if let Some(bps) = imp.rate_bps {
                let st = if is_pair {
                    // `specs` was collected from these same maps a few
                    // lines up and nothing removes entries in between,
                    // so the key is present by construction.
                    // hl-lint: allow(panic-in-handler)
                    self.impairments.get_mut(&(a, b)).unwrap()
                } else {
                    // hl-lint: allow(panic-in-handler)
                    self.host_impairments.get_mut(&a).unwrap()
                };
                at = st.bucket.pass(at, size as u64, bps, imp.burst_bytes);
            }
        }
        // FIFO clamp: the queue behind the impaired link delivers in
        // order even when a later message drew less jitter.
        let floor = self.pair_floor.entry(pair_key).or_insert(SimTime::ZERO);
        if at < *floor {
            at = *floor;
        }
        *floor = at;
        #[cfg(feature = "check-ownership")]
        self.audit_delivery(src, dst, at);
        if duplicated {
            let at2 = SimTime::from_nanos(at.as_nanos() + self.profile.propagation.as_nanos());
            self.pair_floor.insert(pair_key, at2);
            #[cfg(feature = "check-ownership")]
            self.audit_delivery(src, dst, at2);
            return Delivery::Duplicated(at, at2);
        }
        Delivery::At(at)
    }

    /// Bytes transmitted by a host.
    pub fn bytes_tx(&self, host: HostId) -> u64 {
        self.ports[host.0].bytes_tx
    }

    /// Messages transmitted by a host.
    pub fn msgs_tx(&self, host: HostId) -> u64 {
        self.ports[host.0].msgs_tx
    }

    /// Messages dropped for any reason (partition, link-down, random
    /// loss) over all time.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, NetProfile::default())
    }

    #[test]
    fn delivery_includes_serialization_and_propagation() {
        let mut f = fabric(2);
        // 7000 bytes at 56 Gbps = 1000 ns; + 700 ns propagation.
        match f.send(SimTime::ZERO, HostId(0), HostId(1), 7000, 1.0) {
            Delivery::At(t) => assert_eq!(t.as_nanos(), 1700),
            _ => panic!("dropped"),
        }
    }

    #[test]
    fn egress_is_fifo_and_serializes() {
        let mut f = fabric(2);
        let d1 = f.send(SimTime::ZERO, HostId(0), HostId(1), 7000, 1.0);
        let d2 = f.send(SimTime::ZERO, HostId(0), HostId(1), 7000, 1.0);
        let (Delivery::At(t1), Delivery::At(t2)) = (d1, d2) else {
            panic!("dropped");
        };
        assert_eq!(t1.as_nanos(), 1700);
        assert_eq!(t2.as_nanos(), 2700); // waits for the first to serialize
        assert!(t2 > t1, "in-order");
    }

    #[test]
    fn different_sources_do_not_contend() {
        let mut f = fabric(3);
        let Delivery::At(t1) = f.send(SimTime::ZERO, HostId(0), HostId(2), 7000, 1.0) else {
            panic!()
        };
        let Delivery::At(t2) = f.send(SimTime::ZERO, HostId(1), HostId(2), 7000, 1.0) else {
            panic!()
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn hops_scale_propagation() {
        let mut f = fabric(2);
        f.set_hops(HostId(0), HostId(1), 3);
        let Delivery::At(t) = f.send(SimTime::ZERO, HostId(0), HostId(1), 0, 1.0) else {
            panic!()
        };
        assert_eq!(t.as_nanos(), 2100); // 3 × 700 ns, zero serialization
    }

    #[test]
    fn partition_drops_one_direction() {
        let mut f = fabric(2);
        f.partition(HostId(0), HostId(1));
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::Dropped
        );
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(1), HostId(0), 10, 1.0),
            Delivery::At(_)
        ));
        f.heal(HostId(0), HostId(1));
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::At(_)
        ));
    }

    #[test]
    fn link_down_blocks_both_ways() {
        let mut f = fabric(2);
        f.set_link_down(HostId(1), true);
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::Dropped
        );
        assert_eq!(
            f.send(SimTime::ZERO, HostId(1), HostId(0), 10, 1.0),
            Delivery::Dropped
        );
        f.set_link_down(HostId(1), false);
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 1.0),
            Delivery::At(_)
        ));
    }

    #[test]
    fn random_drops_use_caller_draw() {
        let mut f = fabric(2);
        f.set_drop_prob(0.5);
        assert_eq!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 0.4),
            Delivery::Dropped
        );
        assert!(matches!(
            f.send(SimTime::ZERO, HostId(0), HostId(1), 10, 0.6),
            Delivery::At(_)
        ));
    }

    #[test]
    fn loopback_is_fast_and_portless() {
        let mut f = fabric(1);
        let Delivery::At(t) = f.send(SimTime::ZERO, HostId(0), HostId(0), 1_000_000, 1.0) else {
            panic!()
        };
        assert_eq!(t.as_nanos(), 100);
        assert_eq!(f.bytes_tx(HostId(0)), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut f = fabric(2);
        f.send(SimTime::ZERO, HostId(0), HostId(1), 100, 1.0);
        f.send(SimTime::ZERO, HostId(0), HostId(1), 200, 1.0);
        assert_eq!(f.bytes_tx(HostId(0)), 300);
        assert_eq!(f.msgs_tx(HostId(0)), 2);
        assert_eq!(f.bytes_tx(HostId(1)), 0);
    }
}
