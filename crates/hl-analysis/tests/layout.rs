//! Layout-verifier self-tests: overlap, out-of-bounds and cross-crate
//! offset mismatch each fail with an actionable message over the
//! fixtures in `tests/fixtures/layout/`, and the real workspace schema
//! verifies clean.

use hl_analysis::layout::{builtin_schema, verify, DescSpec, FieldSpec, Schema, SizeRef};
use std::path::PathBuf;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn desc(name: &str, file: &str, fields: Vec<FieldSpec>) -> DescSpec {
    DescSpec {
        name: name.into(),
        file: file.into(),
        size: SizeRef::Const("DESC_SIZE".into()),
        fields,
        check_usage_widths: false,
    }
}

#[test]
fn overlap_is_detected() {
    let schema = Schema {
        descs: vec![desc(
            "fix",
            "tests/fixtures/layout/overlap.rs",
            vec![
                FieldSpec::new(None, "A", 8, None),
                FieldSpec::new(None, "B", 8, None),
            ],
        )],
        scatters: vec![],
    };
    let findings = verify(&manifest_dir(), &schema).unwrap();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "layout-overlap");
    assert!(
        findings[0]
            .message
            .contains("`A` (0..8) overlaps `B` (4..12)"),
        "actionable ranges in message: {}",
        findings[0].message
    );
}

#[test]
fn out_of_bounds_is_detected() {
    let schema = Schema {
        descs: vec![desc(
            "fix",
            "tests/fixtures/layout/oob.rs",
            vec![
                FieldSpec::new(None, "HEAD", 8, None),
                FieldSpec::new(None, "TAIL", 8, None),
            ],
        )],
        scatters: vec![],
    };
    let findings = verify(&manifest_dir(), &schema).unwrap();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "layout-bounds");
    assert!(
        findings[0]
            .message
            .contains("`TAIL` at 12..20 exceeds the declared 16-byte size"),
        "actionable bounds in message: {}",
        findings[0].message
    );
}

/// Two mirrored declarations of one descriptor (`@shared` space) bind
/// the same logical field to different offsets.
#[test]
fn cross_crate_offset_mismatch_is_detected() {
    let schema = Schema {
        descs: vec![
            desc(
                "a@shared",
                "tests/fixtures/layout/mismatch_a.rs",
                vec![FieldSpec::new(None, "OP", 4, Some("op-id"))],
            ),
            desc(
                "b@shared",
                "tests/fixtures/layout/mismatch_b.rs",
                vec![FieldSpec::new(None, "OP_OFF", 4, Some("op-id"))],
            ),
        ],
        scatters: vec![],
    };
    let findings = verify(&manifest_dir(), &schema).unwrap();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "layout-mismatch");
    assert!(
        findings[0].message.contains("offset 8") && findings[0].message.contains("offset 12"),
        "both offsets named: {}",
        findings[0].message
    );
    assert!(
        findings[0].message.contains("op-id"),
        "logical field named: {}",
        findings[0].message
    );
}

/// A renamed/missing const is an error, not silent loss of coverage.
#[test]
fn missing_const_is_detected() {
    let schema = Schema {
        descs: vec![desc(
            "fix",
            "tests/fixtures/layout/overlap.rs",
            vec![FieldSpec::new(None, "GONE", 4, None)],
        )],
        scatters: vec![],
    };
    let findings = verify(&manifest_dir(), &schema).unwrap();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "layout-missing");
}

/// The real workspace wire formats verify clean under the built-in
/// schema — the same gate `cargo run -p hl-analysis -- layout` enforces.
#[test]
fn real_workspace_layout_clean() {
    let root = manifest_dir();
    let root = root.parent().unwrap().parent().unwrap();
    let findings = verify(root, &builtin_schema()).unwrap();
    assert!(
        findings.is_empty(),
        "layout verifier failed on the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The built-in schema actually resolves every field it declares (no
/// vacuous success from a renamed const silently matching nothing).
#[test]
fn builtin_schema_is_fully_resolved() {
    let root = manifest_dir();
    let root = root.parent().unwrap().parent().unwrap();
    let schema = builtin_schema();
    let n_fields: usize = schema.descs.iter().map(|d| d.fields.len()).sum();
    assert!(n_fields >= 30, "schema should model the full wire formats");
    // A clean verify over a schema with this many fields plus the
    // layout-missing rule (tested above) implies every const resolved.
    let findings = verify(root, &schema).unwrap();
    assert!(findings.is_empty(), "{findings:#?}");
}
