//! # hl-bench — the experiment harness
//!
//! Reproduces every figure and table of the paper's evaluation (§6) on
//! the simulated testbed. Each `src/bin/fig*.rs` regenerates one paper
//! artifact and prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records paper-vs-measured.
//!
//! * [`micro`] — Figures 8/9/10, Table 2 (primitive latency, throughput,
//!   CPU, group-size scaling).
//! * [`apps`] — Figure 2 (native MongoDB-style multi-tenancy), Figure 11
//!   (kvlite/RocksDB), Figure 12 (doclite/MongoDB across YCSB mixes).
//! * [`gray`] — gray-failure campaign: tail latency per impairment
//!   class per backend, the crashed-host live-rejoin case, and the
//!   SLO-excursion round trip.
//! * [`migration`] — live shard split under traffic: disruption ratio
//!   for the migrating shard, byte-identical bystanders.
//! * [`timeline`] — per-shard p50/p99-over-time rendering with fault
//!   marks overlaid.
//! * [`table`] — plain-text table rendering.

#![warn(missing_docs)]

pub mod apps;
pub mod campaign;
pub mod gray;
pub mod micro;
pub mod migration;
pub mod shard;
pub mod table;
pub mod timeline;

/// Allocation audit: a counting wrapper around the system allocator,
/// compiled in only with `--features alloc-audit` so the default build
/// pays nothing. Tests use it to pin down "this loop allocates nothing
/// in steady state" claims about the datapath (telemetry drain, event
/// scheduling, campaign merge) instead of trusting comments.
#[cfg(feature = "alloc-audit")]
pub mod alloc_audit {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static FREES: AtomicU64 = AtomicU64::new(0);

    /// System allocator that counts every alloc/free.
    pub struct CountingAlloc;

    // SAFETY: defers to `System` for every operation; the counters are
    // side effects only.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            FREES.fetch_add(1, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static AUDIT_ALLOC: CountingAlloc = CountingAlloc;

    /// Allocations (including reallocs) since process start.
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Run `f` and return how many allocations it performed.
    pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
        let before = allocs();
        let r = f();
        (allocs() - before, r)
    }

    /// Debug-assert that `f` performs at most `max` allocations —
    /// compiled to a plain call in release builds, a hard check under
    /// `debug_assertions`.
    pub fn debug_assert_allocs_at_most<R>(label: &str, max: u64, f: impl FnOnce() -> R) -> R {
        let (n, r) = count_allocs(f);
        debug_assert!(
            n <= max,
            "{label}: expected at most {max} allocations, observed {n}"
        );
        r
    }
}
