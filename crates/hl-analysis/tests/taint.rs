//! Taint-pass self-tests over the fixture mini-workspaces in
//! `tests/fixtures/taint/`: a positive cross-crate 3-hop chain, the
//! same chain suppressed at its source, and a clean negative.

use hl_analysis::taint::{build_model, discover_crates, taint_findings};
use hl_analysis::Finding;
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/taint")
        .join(name)
}

fn run(name: &str) -> Vec<Finding> {
    let root = fixture_root(name);
    let crates = discover_crates(&root, &["app", "mid", "leaf"]).unwrap();
    let model = build_model(&root, &crates).unwrap();
    // `sim_entry_only = false`: fixture crates are not in the real
    // SIM_CRATES list, so report every matching entry point.
    taint_findings(&model, false)
}

/// A wall-clock read three crates away from the entry is detected and
/// the report carries the full call path through every hop.
#[test]
fn cross_crate_three_hop_chain_detected() {
    let findings = run("chain_pos");
    let taints: Vec<&Finding> = findings.iter().filter(|f| f.rule == "taint").collect();
    assert_eq!(
        taints.len(),
        1,
        "expected exactly one chain finding, got: {findings:#?}"
    );
    let f = taints[0];
    assert!(
        f.file.ends_with("app/src/lib.rs"),
        "chain must be reported at the entry point, got {}",
        f.file
    );
    assert!(
        f.message.contains("wall-clock"),
        "source rule named: {}",
        f.message
    );
    assert!(
        f.message
            .contains("on_packet → stage → mid_helper → leaf_time"),
        "full call path reported: {}",
        f.message
    );
    assert!(
        f.message.contains("leaf/src/lib.rs"),
        "source location named: {}",
        f.message
    );
}

/// The identical chain with `hl-lint: allow(wall-clock)` at the source
/// yields nothing: suppression at the source kills the whole chain.
#[test]
fn allow_at_source_suppresses_chain() {
    let findings = run("chain_allowed");
    assert!(
        findings.is_empty(),
        "allow at the source must suppress the chain: {findings:#?}"
    );
}

/// An entry that only reaches deterministic helpers is clean.
#[test]
fn clean_workspace_has_no_chains() {
    let findings = run("clean");
    assert!(findings.is_empty(), "negative fixture: {findings:#?}");
}

/// The real workspace check (lexical + taint) is clean end to end —
/// the same gate `cargo run -p hl-analysis -- check` enforces.
#[test]
fn real_workspace_taint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let findings = hl_analysis::check_workspace(root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "taint pass failed on the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
