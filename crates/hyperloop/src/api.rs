//! Storage-facing replication API (paper §5).
//!
//! The building blocks the modified RocksDB/MongoDB use:
//!
//! * [`GroupClient`] — one trait over the HyperLoop client and the
//!   Naïve-RDMA baseline so storage engines switch backends with a type
//!   parameter (the paper's apples-to-apples comparison).
//! * [`ReplicatedLog`] — `Initialize` / `Append` / `ExecuteAndAdvance`:
//!   a replicated write-ahead log whose records are lists of
//!   `(db_offset, bytes)` redo entries (ARIES-style, paper §5 "each log
//!   record is a redo-log ... list of modifications").
//! * [`GroupLock`] — `wrLock`/`wrUnlock` (group-wide, via gCAS with
//!   undo on partial acquisition) and `rdLock`/`rdUnlock` (per-member
//!   reader counting, letting every replica serve consistent reads).

use crate::group::{Backpressure, OnDone, OpResult};
use crate::{naive::NaiveClient, HyperLoopClient};
use hl_cluster::World;
use hl_sim::Engine;
use std::cell::RefCell;
use std::rc::Rc;

/// Uniform surface over [`HyperLoopClient`] and
/// [`crate::naive::NaiveClient`].
pub trait GroupClient {
    /// Replicate `data` at `offset`; optionally durable before ACK.
    fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure>;
    /// Copy within the replicated region on every member.
    #[allow(clippy::too_many_arguments)]
    fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure>;
    /// Group compare-and-swap with execute map.
    #[allow(clippy::too_many_arguments)]
    fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure>;
    /// Standalone durability flush.
    fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure>;
    /// Group size (members incl. client).
    fn group_size(&self) -> usize;
    /// Absolute arena address of `offset` on member `m` (0 = client).
    fn member_addr(&self, m: usize, offset: u64) -> u64;
    /// Host of member `m`.
    fn member_host(&self, m: usize) -> hl_fabric::HostId;
}

impl GroupClient for HyperLoopClient {
    fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        HyperLoopClient::gwrite(self, w, eng, offset, data, flush, done)
    }
    fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        HyperLoopClient::gmemcpy(self, w, eng, src_off, dst_off, len, flush, done)
    }
    fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        HyperLoopClient::gcas(self, w, eng, offset, cmp, swp, exec_map, done)
    }
    fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        HyperLoopClient::gflush(self, w, eng, offset, len, done)
    }
    fn group_size(&self) -> usize {
        self.group().borrow().g
    }
    fn member_addr(&self, m: usize, offset: u64) -> u64 {
        self.group().borrow().member_addr(m, offset)
    }
    fn member_host(&self, m: usize) -> hl_fabric::HostId {
        let g = self.group().borrow();
        if m == 0 {
            g.cfg.client
        } else {
            g.cfg.replicas[m - 1]
        }
    }
}

impl GroupClient for NaiveClient {
    fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        NaiveClient::gwrite(self, w, eng, offset, data, flush, done)
    }
    fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        NaiveClient::gmemcpy(self, w, eng, src_off, dst_off, len, flush, done)
    }
    fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        NaiveClient::gcas(self, w, eng, offset, cmp, swp, exec_map, done)
    }
    fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        NaiveClient::gflush(self, w, eng, offset, len, done)
    }
    fn group_size(&self) -> usize {
        self.group().borrow().replica_rep.len() + 1
    }
    fn member_addr(&self, m: usize, offset: u64) -> u64 {
        self.group().borrow().member_addr(m, offset)
    }
    fn member_host(&self, m: usize) -> hl_fabric::HostId {
        let g = self.group().borrow();
        if m == 0 {
            g.cfg.client
        } else {
            g.cfg.replicas[m - 1]
        }
    }
}

// ---------------------------------------------------------------------------
// Replicated write-ahead log
// ---------------------------------------------------------------------------

/// One redo entry: copy `data` to `db_offset` within the database area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoEntry {
    /// Destination offset within the database area.
    pub db_offset: u64,
    /// Bytes to apply.
    pub data: Vec<u8>,
}

/// A log record: a list of redo entries applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogRecord {
    /// The entries.
    pub entries: Vec<RedoEntry>,
}

impl LogRecord {
    /// Serialized size: u32 count + per entry (u64 off, u32 len, data).
    pub fn encoded_len(&self) -> u64 {
        4 + self
            .entries
            .iter()
            .map(|e| 12 + e.data.len() as u64)
            .sum::<u64>()
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.db_offset.to_le_bytes());
            out.extend_from_slice(&(e.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&e.data);
        }
        out
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<LogRecord> {
        let mut rec = LogRecord::default();
        let n = u32::from_le_bytes(b.get(..4)?.try_into().ok()?) as usize;
        let mut at = 4usize;
        for _ in 0..n {
            let off = u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?);
            let len = u32::from_le_bytes(b.get(at + 8..at + 12)?.try_into().ok()?) as usize;
            let data = b.get(at + 12..at + 12 + len)?.to_vec();
            rec.entries.push(RedoEntry {
                db_offset: off,
                data,
            });
            at += 12 + len;
        }
        Some(rec)
    }
}

/// Layout of the log within the replicated region:
///
/// ```text
/// log_off:      [ head u64 | tail u64 ]   (control words)
/// log_off+64:   [ record area, ring of log_cap bytes ]
/// db_off:       [ database area ]
/// ```
#[derive(Debug, Clone)]
pub struct LogLayout {
    /// Offset of the control words.
    pub log_off: u64,
    /// Capacity of the record area.
    pub log_cap: u64,
    /// Offset of the database area.
    pub db_off: u64,
}

/// Marker written at the wrap-point padding so log readers (replica
/// syncers) know to jump to the next ring lap.
pub const PAD_MARKER: u32 = 0xffff_ffff;

/// Client-side handle to the replicated write-ahead log.
pub struct ReplicatedLog<C: GroupClient> {
    client: Rc<C>,
    layout: LogLayout,
    /// Oldest unapplied record (byte cursor into the record ring).
    head: u64,
    /// One past the newest record.
    tail: u64,
    /// Byte cursors of records appended but not yet executed.
    unapplied: Rc<RefCell<Vec<(u64, LogRecord)>>>,
    /// Track appended records for `execute_and_advance` (on by default;
    /// kvlite applies at replicas instead and truncates explicitly).
    track_unapplied: bool,
}

impl<C: GroupClient + 'static> ReplicatedLog<C> {
    /// `Initialize` (paper §5): bind the log layout. The region is
    /// already zeroed NVM, so head = tail = 0 is a valid empty log.
    pub fn new(client: Rc<C>, layout: LogLayout) -> Self {
        ReplicatedLog {
            client,
            layout,
            head: 0,
            tail: 0,
            unapplied: Rc::new(RefCell::new(Vec::new())),
            track_unapplied: true,
        }
    }

    /// Disable unapplied-record tracking (for engines that apply at
    /// replicas and truncate with [`ReplicatedLog::truncate_to`]).
    pub fn set_tracking(&mut self, on: bool) {
        self.track_unapplied = on;
    }

    /// The log layout.
    pub fn layout(&self) -> &LogLayout {
        &self.layout
    }

    /// Advance and persist the head (truncation) to absolute byte
    /// cursor `to` (≤ tail). Used by engines that confirm application
    /// out of band (kvlite replica syncers).
    pub fn truncate_to(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        to: u64,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        assert!(to >= self.head && to <= self.tail);
        self.head = to;
        let head_bytes = to.to_le_bytes();
        self.client
            .gwrite(w, eng, self.layout.log_off, &head_bytes, true, done)?;
        Ok(())
    }

    fn rec_area(&self) -> u64 {
        self.layout.log_off + 64
    }

    /// Bytes of log space in use.
    pub fn used(&self) -> u64 {
        self.tail - self.head
    }

    /// Current (head, tail) cursors.
    pub fn cursors(&self) -> (u64, u64) {
        (self.head, self.tail)
    }

    /// `Append`: replicate a log record durably to all members (gWRITE +
    /// interleaved gFLUSH), then advance and persist the tail pointer.
    /// The completion fires when the *tail update* is ACKed, i.e. the
    /// record is durable group-wide.
    pub fn append(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        rec: &LogRecord,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let bytes = rec.encode();
        let len = bytes.len() as u64;
        assert!(len <= self.layout.log_cap, "record larger than the log");
        if self.used() + len > self.layout.log_cap {
            return Err(Backpressure); // log full: caller must execute+truncate
        }
        // Ring placement; records never straddle the wrap point.
        let mut at = self.tail % self.layout.log_cap;
        if at + len > self.layout.log_cap {
            // Pad to the wrap (accounted as used space) and replicate a
            // marker so log readers skip the dead bytes.
            let pad = self.layout.log_cap - at;
            if self.used() + pad + len > self.layout.log_cap {
                return Err(Backpressure);
            }
            if pad >= 4 {
                let marker_off = self.rec_area() + at;
                self.client.gwrite(
                    w,
                    eng,
                    marker_off,
                    &PAD_MARKER.to_le_bytes(),
                    true,
                    Box::new(|_, _, _| {}),
                )?;
            }
            self.tail += pad;
            at = 0;
        }
        let rec_off = self.rec_area() + at;
        self.client
            .gwrite(w, eng, rec_off, &bytes, true, Box::new(|_, _, _| {}))?;
        self.tail += len;
        if self.track_unapplied {
            self.unapplied.borrow_mut().push((rec_off, rec.clone()));
        }
        // Persist the tail control word; its ACK means the whole append
        // is durable everywhere (per-ring FIFO guarantees order).
        let tail_bytes = self.tail.to_le_bytes();
        self.client
            .gwrite(w, eng, self.layout.log_off + 8, &tail_bytes, true, done)?;
        Ok(())
    }

    /// `ExecuteAndAdvance`: apply every unapplied record to the database
    /// area on all members (one gMEMCPY + flush per redo entry, executed
    /// by the replicas' NICs from their own log copies), then advance
    /// and persist the head pointer (truncation).
    pub fn execute_and_advance(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let records: Vec<(u64, LogRecord)> = self.unapplied.borrow_mut().drain(..).collect();
        if records.is_empty() {
            // Nothing to do; still advance head to tail for symmetry.
            let head_bytes = self.tail.to_le_bytes();
            self.head = self.tail;
            self.client
                .gwrite(w, eng, self.layout.log_off, &head_bytes, true, done)?;
            return Ok(());
        }
        // Fan-in: the last copy's completion issues the head update,
        // whose own completion fires the caller's `done`.
        let total: usize = records.iter().map(|(_, r)| r.entries.len()).sum();
        let remaining = Rc::new(RefCell::new(total));
        let final_done: Rc<RefCell<Option<OnDone>>> = Rc::new(RefCell::new(Some(done)));
        let client = self.client.clone();
        let log_off = self.layout.log_off;
        self.head = self.tail;
        let new_head = self.tail;

        for (rec_off, rec) in &records {
            // Per-entry source offset: skip the record header (4) and
            // prior entries' (12 + len) prefixes.
            let mut src = rec_off + 4;
            for e in &rec.entries {
                src += 12; // entry header
                let dst = self.layout.db_off + e.db_offset;
                let cb: OnDone = {
                    let remaining = remaining.clone();
                    let final_done = final_done.clone();
                    let client = client.clone();
                    Box::new(move |w, eng, _r| {
                        let mut left = remaining.borrow_mut();
                        *left -= 1;
                        if *left == 0 {
                            drop(left);
                            // All copies applied: advance + persist head.
                            let head_bytes = new_head.to_le_bytes();
                            let done = final_done
                                .borrow_mut()
                                .take()
                                .unwrap_or_else(|| Box::new(|_, _, _| {}));
                            let _ = client.gwrite(w, eng, log_off, &head_bytes, true, done);
                        }
                    })
                };
                client.gmemcpy(w, eng, src, dst, e.data.len() as u32, true, cb)?;
                src += e.data.len() as u64;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Group locks
// ---------------------------------------------------------------------------

/// Lock word encodings.
pub mod lockword {
    /// Free.
    pub const FREE: u64 = 0;
    /// Writer-held: `WRITER | owner`.
    pub const WRITER: u64 = 1 << 63;
    /// Reader-held: `READER | count`.
    pub const READER: u64 = 1 << 62;

    /// Encode a writer.
    pub fn writer(owner: u32) -> u64 {
        WRITER | owner as u64
    }
    /// Encode `count` readers.
    pub fn readers(count: u32) -> u64 {
        READER | count as u64
    }
}

/// Outcome of a lock attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held by the caller.
    Acquired,
    /// Another owner holds it; the operation was rolled back.
    Contended,
}

/// Completion callback for lock operations.
pub type OnLock = Box<dyn FnOnce(&mut World, &mut Engine<World>, LockOutcome)>;

/// Group-wide single-writer / per-member multi-reader locks over lock
/// words stored in the replicated region.
pub struct GroupLock<C: GroupClient> {
    client: Rc<C>,
    /// Offset of the lock word.
    pub lock_off: u64,
    /// This client's owner id.
    pub owner: u32,
}

impl<C: GroupClient + 'static> GroupLock<C> {
    /// Bind a lock word at `lock_off`.
    pub fn new(client: Rc<C>, lock_off: u64, owner: u32) -> Self {
        GroupLock {
            client,
            lock_off,
            owner,
        }
    }

    /// `wrLock`: acquire the write lock on every member via one gCAS.
    /// On partial success (some member held), a second gCAS with the
    /// execute map of the members that *did* swap rolls back (paper
    /// §4.2's undo flow), and the outcome is [`LockOutcome::Contended`].
    pub fn wr_lock(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        done: OnLock,
    ) -> Result<(), Backpressure> {
        let g = self.client.group_size();
        let all: u32 = (1 << g) - 1;
        let want = lockword::writer(self.owner);
        let client = self.client.clone();
        let lock_off = self.lock_off;
        self.client.gcas(
            w,
            eng,
            self.lock_off,
            lockword::FREE,
            want,
            all,
            Box::new(move |w, eng, r: OpResult| {
                let succeeded: u32 = r
                    .results
                    .iter()
                    .enumerate()
                    .filter(|(_, &orig)| orig == lockword::FREE)
                    .map(|(m, _)| 1u32 << m)
                    .sum();
                if succeeded == all {
                    done(w, eng, LockOutcome::Acquired);
                } else if succeeded == 0 {
                    done(w, eng, LockOutcome::Contended);
                } else {
                    // Undo on the members that swapped.
                    let _ = client.gcas(
                        w,
                        eng,
                        lock_off,
                        want,
                        lockword::FREE,
                        succeeded,
                        Box::new(move |w, eng, _| done(w, eng, LockOutcome::Contended)),
                    );
                }
            }),
        )?;
        Ok(())
    }

    /// `wrUnlock`: release on every member.
    pub fn wr_unlock(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        done: OnLock,
    ) -> Result<(), Backpressure> {
        let g = self.client.group_size();
        let all: u32 = (1 << g) - 1;
        self.client.gcas(
            w,
            eng,
            self.lock_off,
            lockword::writer(self.owner),
            lockword::FREE,
            all,
            Box::new(move |w, eng, _r: OpResult| {
                done(w, eng, LockOutcome::Acquired);
            }),
        )?;
        Ok(())
    }

    /// `rdLock`: take a read share on member `m` only (readers scale
    /// across replicas). Retries the reader-count CAS up to `retries`
    /// times on races; fails as contended when a writer holds the word.
    pub fn rd_lock(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        member: usize,
        retries: u32,
        done: OnLock,
    ) -> Result<(), Backpressure> {
        self.rd_lock_step(
            w,
            eng,
            member,
            lockword::FREE,
            lockword::readers(1),
            retries,
            done,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn rd_lock_step(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        member: usize,
        cmp: u64,
        swp: u64,
        retries: u32,
        done: OnLock,
    ) -> Result<(), Backpressure> {
        let client = self.client.clone();
        let lock_off = self.lock_off;
        let owner = self.owner;
        let exec = 1u32 << member;
        self.client.gcas(
            w,
            eng,
            self.lock_off,
            cmp,
            swp,
            exec,
            Box::new(move |w, eng, r: OpResult| {
                let orig = r.results[member];
                if orig == cmp {
                    done(w, eng, LockOutcome::Acquired);
                    return;
                }
                if orig & lockword::WRITER != 0 || retries == 0 {
                    done(w, eng, LockOutcome::Contended);
                    return;
                }
                // Reader race: bump the observed count.
                let count = (orig & !lockword::READER) as u32;
                let lock = GroupLock {
                    client,
                    lock_off,
                    owner,
                };
                let _ = lock.rd_lock_step(
                    w,
                    eng,
                    member,
                    orig,
                    lockword::readers(count + 1),
                    retries - 1,
                    done,
                );
            }),
        )?;
        Ok(())
    }

    /// `rdUnlock`: drop a read share on member `m` (retry loop like
    /// [`GroupLock::rd_lock`]).
    pub fn rd_unlock(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        member: usize,
        retries: u32,
        done: OnLock,
    ) -> Result<(), Backpressure> {
        self.rd_unlock_step(
            w,
            eng,
            member,
            lockword::readers(1),
            lockword::FREE,
            retries,
            done,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn rd_unlock_step(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        member: usize,
        cmp: u64,
        swp: u64,
        retries: u32,
        done: OnLock,
    ) -> Result<(), Backpressure> {
        let client = self.client.clone();
        let lock_off = self.lock_off;
        let owner = self.owner;
        self.client.gcas(
            w,
            eng,
            self.lock_off,
            cmp,
            swp,
            1u32 << member,
            Box::new(move |w, eng, r: OpResult| {
                let orig = r.results[member];
                if orig == cmp {
                    done(w, eng, LockOutcome::Acquired);
                    return;
                }
                if retries == 0 || orig & lockword::READER == 0 {
                    done(w, eng, LockOutcome::Contended);
                    return;
                }
                let count = (orig & !lockword::READER) as u32;
                let next = if count <= 1 {
                    lockword::FREE
                } else {
                    lockword::readers(count - 1)
                };
                let lock = GroupLock {
                    client,
                    lock_off,
                    owner,
                };
                let _ = lock.rd_unlock_step(w, eng, member, orig, next, retries - 1, done);
            }),
        )?;
        Ok(())
    }
}
