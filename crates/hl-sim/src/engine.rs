//! The discrete-event engine.
//!
//! A single-threaded, deterministic event loop. Two event
//! representations share one queue:
//!
//! * **Typed events** — the context type declares a payload enum via
//!   [`EventCtx::Event`] and dispatches it in [`EventCtx::run_event`].
//!   This is the hot path: a typed event is stored inline in an arena
//!   slot, so the datapath (packet delivery, CQE dispatch, timer fire)
//!   costs no per-event heap allocation.
//! * **Boxed closures** — `FnOnce(&mut C, &mut Engine<C>)`, the escape
//!   hatch for cold-path and setup-time events that need to capture
//!   arbitrary state.
//!
//! Events are ordered by `(time, seq)`, where `seq` is a monotonically
//! increasing tiebreaker so that events scheduled for the same instant
//! fire in scheduling order. Determinism therefore depends only on the
//! order of `schedule` calls and the RNG seed — never on hash iteration
//! order, arena layout, or wall-clock time.
//!
//! Internally the queue is an index-min **4-ary heap** over a slab of
//! event slots. Every schedule call returns an [`EventToken`]
//! (generation-checked slot handle) that can later be passed to
//! [`Engine::cancel`], which removes the entry from the heap in
//! O(log n) — retransmit timers that are superseded no longer leak
//! dead entries that the loop must pop and discard.

use crate::time::{SimDuration, SimTime};

/// Event handler signature: mutate the world, schedule more events.
pub type Handler<C> = Box<dyn FnOnce(&mut C, &mut Engine<C>)>;

/// Contract between the engine and its context type.
///
/// `Event` is the typed payload for high-frequency events; contexts
/// with no typed events use [`NoEvent`] (see [`inert_event_ctx!`]).
pub trait EventCtx: Sized {
    /// Typed event payload dispatched by [`EventCtx::run_event`].
    type Event;

    /// Dispatch one typed event. Called by the engine with the event's
    /// scheduled time already applied to [`Engine::now`].
    fn run_event(&mut self, eng: &mut Engine<Self>, ev: Self::Event);
}

/// The uninhabited event type for contexts that only use closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoEvent {}

/// Implement [`EventCtx`] with no typed events (`Event = NoEvent`) for
/// one or more local context types:
///
/// ```
/// struct MyWorld {
///     ticks: u64,
/// }
/// hl_sim::inert_event_ctx!(MyWorld);
/// let mut eng: hl_sim::Engine<MyWorld> = hl_sim::Engine::new();
/// ```
#[macro_export]
macro_rules! inert_event_ctx {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::EventCtx for $t {
            type Event = $crate::NoEvent;
            fn run_event(&mut self, _eng: &mut $crate::Engine<Self>, ev: $crate::NoEvent) {
                match ev {}
            }
        }
    )+};
}

// Convenience impls so tests, benches and doc examples can use plain
// std types as trivial contexts.
inert_event_ctx!((), u32, u64, usize);

impl<T> EventCtx for Vec<T> {
    type Event = NoEvent;
    fn run_event(&mut self, _eng: &mut Engine<Self>, ev: NoEvent) {
        match ev {}
    }
}

/// Generation-checked handle to a scheduled event, returned by every
/// `schedule*` call. Pass it to [`Engine::cancel`] to remove the event
/// before it fires; a token whose event already ran (or was cancelled)
/// is harmlessly stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

/// What a scheduled slot carries.
enum Payload<C: EventCtx> {
    /// Inline typed event — no heap allocation.
    Typed(C::Event),
    /// Boxed closure escape hatch.
    Call(Handler<C>),
}

/// Bookkeeping for one arena slot. Vacant slots chain through
/// `next_free`; occupied slots know their heap position so
/// [`Engine::cancel`] is O(log n). Payloads live in a parallel vector
/// (`Engine::payloads`) so the metadata the sift loops touch stays
/// 12 bytes per slot — L1-resident at datapath arena sizes.
struct Slot {
    /// Bumped on every free; stale [`EventToken`]s fail the check.
    gen: u32,
    /// Index into the heap while occupied.
    heap_pos: u32,
    /// Free-list link while vacant.
    next_free: u32,
}

const NONE: u32 = u32::MAX;

/// A heap entry: the ordering key plus the arena slot it refers to.
/// Keys are duplicated here so sift compares stay within one cache
/// line instead of chasing the arena.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Deterministic discrete-event loop over a world of type `C`.
///
/// ```
/// use hl_sim::{Engine, SimDuration};
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// let mut world = Vec::new();
/// engine.schedule(SimDuration::from_micros(5), |w: &mut Vec<u64>, eng| {
///     w.push(eng.now().as_nanos());
/// });
/// engine.run(&mut world);
/// assert_eq!(world, vec![5_000]);
/// ```
pub struct Engine<C: EventCtx> {
    /// Index-min 4-ary heap ordered by `(at, seq)`.
    heap: Vec<HeapEntry>,
    /// Slot bookkeeping addressed by heap entries and tokens.
    slots: Vec<Slot>,
    /// Event payloads, parallel to `slots` (split off so the sift
    /// loops never pull payload bytes into cache).
    payloads: Vec<Option<Payload<C>>>,
    free_head: u32,
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Hard cap on executed events, a runaway-loop backstop.
    event_limit: u64,
}

impl<C: EventCtx> Default for Engine<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: EventCtx> Engine<C> {
    /// A fresh engine at t = 0.
    pub fn new() -> Self {
        Engine {
            heap: Vec::new(),
            slots: Vec::new(),
            payloads: Vec::new(),
            free_head: NONE,
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Limit the total number of events executed (safety net for tests).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule<F>(&mut self, delay: SimDuration, f: F) -> EventToken
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at an absolute instant. Events in the past are clamped
    /// to `now` (they still run after already-queued events at `now`,
    /// because of the `seq` tiebreaker).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventToken
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        self.push(at, Payload::Call(Box::new(f)))
    }

    /// Schedule a typed event after `delay` (allocation-free hot path).
    pub fn schedule_event(&mut self, delay: SimDuration, ev: C::Event) -> EventToken {
        self.push(self.now + delay, Payload::Typed(ev))
    }

    /// Schedule a typed event at an absolute instant, clamped to `now`
    /// like [`Engine::schedule_at`].
    pub fn schedule_event_at(&mut self, at: SimTime, ev: C::Event) -> EventToken {
        self.push(at, Payload::Typed(ev))
    }

    /// Cancel a scheduled event. Returns `true` if the token was live
    /// (the event is removed and will never fire); `false` if it already
    /// ran or was cancelled. O(log n) — the heap entry is removed, not
    /// left behind as a dead no-op.
    pub fn cancel(&mut self, tok: EventToken) -> bool {
        let Some(slot) = self.slots.get(tok.slot as usize) else {
            return false;
        };
        if slot.gen != tok.gen || self.payloads[tok.slot as usize].is_none() {
            return false;
        }
        let pos = slot.heap_pos as usize;
        self.heap_remove(pos);
        self.free_slot(tok.slot);
        true
    }

    /// Run a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self, ctx: &mut C) -> bool {
        if self.executed >= self.event_limit {
            panic!(
                "engine event limit ({}) exceeded at t={} — runaway event loop?",
                self.event_limit, self.now
            );
        }
        if self.heap.is_empty() {
            return false;
        }
        let head = self.heap[0];
        debug_assert!(head.at >= self.now, "time went backwards");
        self.heap_remove(0);
        let payload = self.payloads[head.slot as usize]
            .take()
            .expect("occupied slot");
        self.free_slot(head.slot);
        self.now = head.at;
        self.executed += 1;
        match payload {
            Payload::Typed(ev) => ctx.run_event(self, ev),
            Payload::Call(f) => f(ctx, self),
        }
        true
    }

    /// Run until the queue is empty.
    pub fn run(&mut self, ctx: &mut C) {
        while self.step(ctx) {}
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Events scheduled after the deadline remain queued; the clock is
    /// left at the last executed event (≤ deadline).
    pub fn run_until(&mut self, ctx: &mut C, deadline: SimTime) {
        while let Some(head) = self.heap.first() {
            if head.at > deadline {
                break;
            }
            self.step(ctx);
        }
    }

    /// Run until `pred(ctx)` is true, checking after every event, or until
    /// the queue drains. Returns whether the predicate was satisfied.
    pub fn run_while<F>(&mut self, ctx: &mut C, mut pred: F) -> bool
    where
        F: FnMut(&C) -> bool,
    {
        loop {
            if !pred(ctx) {
                return true;
            }
            if !self.step(ctx) {
                return false;
            }
        }
    }

    // ----- arena + 4-ary heap internals ----------------------------------

    fn push(&mut self, at: SimTime, payload: Payload<C>) -> EventToken {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        // Claim a slot from the free list, or grow the slab.
        let slot = if self.free_head != NONE {
            let s = self.free_head;
            self.free_head = self.slots[s as usize].next_free;
            self.payloads[s as usize] = Some(payload);
            s
        } else {
            assert!(self.slots.len() < NONE as usize, "event arena overflow");
            self.slots.push(Slot {
                gen: 0,
                heap_pos: 0,
                next_free: NONE,
            });
            self.payloads.push(Some(payload));
            (self.slots.len() - 1) as u32
        };
        let pos = self.heap.len();
        self.heap.push(HeapEntry { at, seq, slot });
        self.slots[slot as usize].heap_pos = pos as u32;
        self.sift_up(pos);
        EventToken {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    fn free_slot(&mut self, slot: u32) {
        self.payloads[slot as usize] = None;
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = slot;
    }

    /// Remove the heap entry at `pos`, restoring the heap property.
    fn heap_remove(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap_remove(pos);
        if pos < last {
            let moved_slot = self.heap[pos].slot;
            self.slots[moved_slot as usize].heap_pos = pos as u32;
            // The element that moved in may need to travel either way;
            // if sift_down left it in place, try the other direction.
            self.sift_down(pos);
            if self.slots[moved_slot as usize].heap_pos as usize == pos {
                self.sift_up(pos);
            }
        }
    }

    /// Both sifts use the classic hole technique: the moving entry is
    /// held in a register while displaced entries shift one copy (and
    /// one `heap_pos` fix-up) each, instead of a three-copy swap with
    /// two fix-ups per level. On the hot pop path this halves the
    /// random writes into the slot arena.
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let key = entry.key();
        let start = i;
        while i > 0 {
            let parent = (i - 1) / 4;
            let p = self.heap[parent];
            if key >= p.key() {
                break;
            }
            self.heap[i] = p;
            self.slots[p.slot as usize].heap_pos = i as u32;
            i = parent;
        }
        // Callers guarantee heap[start] and its heap_pos are already
        // consistent, so an unmoved entry needs no write-back at all —
        // the common case for a freshly pushed (latest-key) event.
        if i != start {
            self.heap[i] = entry;
            self.slots[entry.slot as usize].heap_pos = i as u32;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        let key = entry.key();
        let start = i;
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let end = (first + 4).min(len);
            let mut min = first;
            let mut min_key = self.heap[first].key();
            for c in first + 1..end {
                let k = self.heap[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key >= key {
                break;
            }
            let m = self.heap[min];
            self.heap[i] = m;
            self.slots[m.slot as usize].heap_pos = i as u32;
            i = min;
        }
        if i != start {
            self.heap[i] = entry;
            self.slots[entry.slot as usize].heap_pos = i as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }
    inert_event_ctx!(World);

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule(SimDuration::from_nanos(30), |w: &mut World, _| {
            w.log.push((30, "c"))
        });
        eng.schedule(SimDuration::from_nanos(10), |w: &mut World, _| {
            w.log.push((10, "a"))
        });
        eng.schedule(SimDuration::from_nanos(20), |w: &mut World, _| {
            w.log.push((20, "b"))
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(eng.events_executed(), 3);
    }

    #[test]
    fn same_instant_fires_in_schedule_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            eng.schedule(SimDuration::from_nanos(5), move |w: &mut World, _| {
                w.log.push((5, name))
            });
        }
        eng.run(&mut w);
        assert_eq!(
            w.log.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn handlers_can_schedule_chains() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        fn tick(w: &mut World, eng: &mut Engine<World>) {
            let n = w.log.len() as u64;
            w.log.push((eng.now().as_nanos(), "tick"));
            if n < 4 {
                eng.schedule(SimDuration::from_nanos(7), tick);
            }
        }
        eng.schedule(SimDuration::ZERO, tick);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 5);
        assert_eq!(eng.now().as_nanos(), 28);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for ns in [5u64, 15, 25] {
            eng.schedule(SimDuration::from_nanos(ns), move |w: &mut World, _| {
                w.log.push((ns, "x"))
            });
        }
        eng.run_until(&mut w, SimTime::from_nanos(16));
        assert_eq!(w.log.len(), 2);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 3);
    }

    #[test]
    fn run_while_checks_predicate() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for ns in 1..=10u64 {
            eng.schedule(SimDuration::from_nanos(ns), move |w: &mut World, _| {
                w.log.push((ns, "x"))
            });
        }
        let satisfied = eng.run_while(&mut w, |w| w.log.len() < 4);
        assert!(satisfied);
        assert_eq!(w.log.len(), 4);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        eng.schedule(SimDuration::from_nanos(100), move |_: &mut World, eng| {
            let s3 = s2.clone();
            // Attempt to schedule in the past; must clamp to now (=100).
            eng.schedule_at(SimTime::from_nanos(1), move |_, eng| {
                s3.borrow_mut().push(eng.now().as_nanos());
            });
        });
        eng.run(&mut w);
        assert_eq!(*seen.borrow(), vec![100]);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaways() {
        let mut eng: Engine<World> = Engine::new().with_event_limit(50);
        let mut w = World::default();
        fn forever(_: &mut World, eng: &mut Engine<World>) {
            eng.schedule(SimDuration::from_nanos(1), forever);
        }
        eng.schedule(SimDuration::ZERO, forever);
        eng.run(&mut w);
    }

    // ----- typed events and cancellation ---------------------------------

    struct Typed {
        fired: Vec<(u64, u32)>,
    }

    enum TypedEv {
        Mark(u32),
        Chain { left: u32 },
    }

    impl EventCtx for Typed {
        type Event = TypedEv;
        fn run_event(&mut self, eng: &mut Engine<Self>, ev: TypedEv) {
            match ev {
                TypedEv::Mark(id) => self.fired.push((eng.now().as_nanos(), id)),
                TypedEv::Chain { left } => {
                    self.fired.push((eng.now().as_nanos(), left));
                    if left > 0 {
                        eng.schedule_event(
                            SimDuration::from_nanos(3),
                            TypedEv::Chain { left: left - 1 },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_interleave_with_closures_in_seq_order() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        eng.schedule_event(SimDuration::from_nanos(5), TypedEv::Mark(1));
        eng.schedule(SimDuration::from_nanos(5), |w: &mut Typed, eng| {
            w.fired.push((eng.now().as_nanos(), 2));
        });
        eng.schedule_event(SimDuration::from_nanos(5), TypedEv::Mark(3));
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn typed_events_can_chain() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        eng.schedule_event(SimDuration::ZERO, TypedEv::Chain { left: 4 });
        eng.run(&mut w);
        assert_eq!(w.fired.len(), 5);
        assert_eq!(eng.now().as_nanos(), 12);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn cancel_removes_event_before_it_fires() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        let keep = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(1));
        let kill = eng.schedule_event(SimDuration::from_nanos(20), TypedEv::Mark(2));
        eng.schedule_event(SimDuration::from_nanos(30), TypedEv::Mark(3));
        assert!(eng.cancel(kill));
        assert_eq!(eng.pending(), 2);
        // Double-cancel and cancel-after-fire are inert.
        assert!(!eng.cancel(kill));
        eng.run(&mut w);
        assert!(!eng.cancel(keep));
        assert_eq!(w.fired, vec![(10, 1), (30, 3)]);
    }

    #[test]
    fn cancel_tokens_survive_slot_reuse() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        let a = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(1));
        assert!(eng.cancel(a));
        // The freed slot is reused; the old token must not cancel the
        // new occupant.
        let b = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(2));
        assert!(!eng.cancel(a));
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(10, 2)]);
        assert!(!eng.cancel(b));
    }

    #[test]
    fn heavy_cancel_churn_keeps_order_and_bounds_queue() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        // Arm + supersede a "timer" 1000 times; only the last survives.
        let mut tok = eng.schedule_event(SimDuration::from_nanos(10_000), TypedEv::Mark(0));
        for i in 1..1000u32 {
            assert!(eng.cancel(tok));
            tok = eng.schedule_event(SimDuration::from_nanos(10_000 + i as u64), TypedEv::Mark(i));
            assert_eq!(eng.pending(), 1);
        }
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(10_999, 999)]);
    }
}
